//! Raised-cosine (RC) and square-root raised-cosine (SRRC) pulses.
//!
//! The paper's test stimulus is "10 MHz QPSK symbols shaped by a square
//! root raised cosine filter with a roll-off factor of α = 0.5". These
//! closed-form pulse evaluators are used both for discrete filter design
//! and — crucially for PNBS — for *continuous-time* evaluation of the
//! transmitted baseband at arbitrary sample instants.
//!
//! Time is normalized to the symbol period: `t_norm = t / Ts`. The pulses
//! are normalized so `rc(0) = 1` and `srrc ⊛ srrc = rc` (unit-symbol
//! convention; energy scaling is the caller's concern).

use rfbist_math::special::sinc;
use std::f64::consts::PI;

/// Raised-cosine pulse value at normalized time `t` (in symbol periods)
/// with roll-off `alpha ∈ [0, 1]`.
///
/// Zero-ISI: `rc(k) = 0` for all non-zero integers `k`.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn rc_pulse(t: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "roll-off must be in [0, 1]");
    if alpha == 0.0 {
        return sinc(t);
    }
    let denom_arg = 2.0 * alpha * t;
    let denom = 1.0 - denom_arg * denom_arg;
    if denom.abs() < 1e-10 {
        // limit at t = ±1/(2α)
        return (PI / 4.0) * sinc(1.0 / (2.0 * alpha));
    }
    sinc(t) * (PI * alpha * t).cos() / denom
}

/// Square-root raised-cosine pulse value at normalized time `t` (in symbol
/// periods) with roll-off `alpha ∈ (0, 1]`.
///
/// Normalized so that `srrc(0) = 1 − α + 4α/π` (the standard unit-symbol
/// convention in which SRRC⊛SRRC equals the RC pulse).
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn srrc_pulse(t: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "roll-off must be in [0, 1]");
    if alpha == 0.0 {
        return sinc(t);
    }
    if t.abs() < 1e-10 {
        return 1.0 - alpha + 4.0 * alpha / PI;
    }
    let quarter = 1.0 / (4.0 * alpha);
    if (t.abs() - quarter).abs() < 1e-10 {
        // limit at t = ±1/(4α)
        let a = PI / (4.0 * alpha);
        return (alpha / 2f64.sqrt()) * ((1.0 + 2.0 / PI) * a.sin() + (1.0 - 2.0 / PI) * a.cos());
    }
    let four_at = 4.0 * alpha * t;
    ((PI * t * (1.0 - alpha)).sin() + four_at * (PI * t * (1.0 + alpha)).cos())
        / (PI * t * (1.0 - four_at * four_at))
}

/// Discrete SRRC filter taps spanning `±span` symbols at `sps` samples per
/// symbol (length `2·span·sps + 1`), normalized to unit energy
/// (`Σ h² = 1`), matching Matlab's `rcosdesign(α, span, sps, 'sqrt')`.
///
/// # Panics
///
/// Panics if `span == 0` or `sps == 0`.
pub fn srrc_taps(alpha: f64, span: usize, sps: usize) -> Vec<f64> {
    assert!(span > 0, "span must be positive");
    assert!(sps > 0, "samples per symbol must be positive");
    let half = (span * sps) as isize;
    let mut taps: Vec<f64> = (-half..=half)
        .map(|k| srrc_pulse(k as f64 / sps as f64, alpha))
        .collect();
    let energy: f64 = taps.iter().map(|&h| h * h).sum();
    let norm = energy.sqrt();
    taps.iter_mut().for_each(|h| *h /= norm);
    taps
}

/// Discrete RC filter taps spanning `±span` symbols at `sps` samples per
/// symbol, normalized to unit peak.
pub fn rc_taps(alpha: f64, span: usize, sps: usize) -> Vec<f64> {
    assert!(span > 0, "span must be positive");
    assert!(sps > 0, "samples per symbol must be positive");
    let half = (span * sps) as isize;
    (-half..=half)
        .map(|k| rc_pulse(k as f64 / sps as f64, alpha))
        .collect()
}

/// Occupied (two-sided RF) bandwidth of an SRRC-shaped signal:
/// `(1 + α)·symbol_rate`.
pub fn occupied_bandwidth(symbol_rate: f64, alpha: f64) -> f64 {
    (1.0 + alpha) * symbol_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_is_one_at_origin_and_zero_at_integers() {
        for alpha in [0.0, 0.22, 0.5, 1.0] {
            assert!((rc_pulse(0.0, alpha) - 1.0).abs() < 1e-12, "alpha {alpha}");
            for k in 1..=5 {
                assert!(
                    rc_pulse(k as f64, alpha).abs() < 1e-10,
                    "alpha {alpha}, k {k}"
                );
            }
        }
    }

    #[test]
    fn rc_special_point_is_continuous() {
        let alpha = 0.5;
        let t0 = 1.0 / (2.0 * alpha);
        let v = rc_pulse(t0, alpha);
        let v_eps = rc_pulse(t0 + 1e-7, alpha);
        assert!((v - v_eps).abs() < 1e-5);
    }

    #[test]
    fn srrc_value_at_origin() {
        let alpha = 0.5;
        let expected = 1.0 - alpha + 4.0 * alpha / PI;
        assert!((srrc_pulse(0.0, alpha) - expected).abs() < 1e-12);
    }

    #[test]
    fn srrc_special_point_is_continuous() {
        let alpha = 0.5;
        let t0 = 1.0 / (4.0 * alpha);
        let v = srrc_pulse(t0, alpha);
        let v_eps = srrc_pulse(t0 + 1e-7, alpha);
        assert!((v - v_eps).abs() < 1e-5, "{v} vs {v_eps}");
    }

    #[test]
    fn srrc_is_even() {
        for alpha in [0.25, 0.5, 0.9] {
            for t in [0.3, 0.77, 1.5, 2.25] {
                assert!((srrc_pulse(t, alpha) - srrc_pulse(-t, alpha)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn srrc_zero_alpha_degenerates_to_sinc() {
        for t in [0.0, 0.4, 1.0, 2.5] {
            assert!((srrc_pulse(t, 0.0) - sinc(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn srrc_convolved_with_itself_is_rc() {
        // Numerical check of the defining property at 16 samples/symbol.
        let alpha = 0.5;
        let sps = 16usize;
        let span = 12usize;
        let h = srrc_taps(alpha, span, sps);
        // h is unit-energy; SRRC⊛SRRC sampled at sps gives RC/sps scaling.
        let n = h.len();
        let center = n - 1; // full convolution center index
        let conv_at = |lag: isize| -> f64 {
            let mut acc = 0.0;
            for i in 0..n {
                let j = center as isize + lag - i as isize;
                if j >= 0 && (j as usize) < n {
                    acc += h[i] * h[j as usize];
                }
            }
            acc
        };
        let peak = conv_at(0);
        // ISI-free: zero at multiples of sps
        for k in 1..=4 {
            let v = conv_at((k * sps) as isize) / peak;
            assert!(v.abs() < 2e-3, "ISI at symbol {k}: {v}");
        }
        // matches RC shape at half-symbol offset
        let v_half = conv_at((sps / 2) as isize) / peak;
        let rc_half = rc_pulse(0.5, alpha);
        assert!((v_half - rc_half).abs() < 2e-3, "{v_half} vs {rc_half}");
    }

    #[test]
    fn srrc_taps_are_unit_energy_and_symmetric() {
        let taps = srrc_taps(0.5, 6, 8);
        assert_eq!(taps.len(), 2 * 6 * 8 + 1);
        let energy: f64 = taps.iter().map(|&h| h * h).sum();
        assert!((energy - 1.0).abs() < 1e-12);
        for i in 0..taps.len() / 2 {
            assert!((taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rc_taps_peak_at_center() {
        let taps = rc_taps(0.35, 5, 4);
        let center = taps.len() / 2;
        assert!((taps[center] - 1.0).abs() < 1e-12);
        let max = taps.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert_eq!(max, 1.0);
    }

    #[test]
    fn occupied_bandwidth_formula() {
        // paper: 10 MHz QPSK, α = 0.5 -> 15 MHz occupied
        assert!((occupied_bandwidth(10e6, 0.5) - 15e6).abs() < 1.0);
    }

    #[test]
    fn srrc_decays_with_time() {
        let alpha = 0.5;
        assert!(srrc_pulse(8.0, alpha).abs() < 0.01);
        assert!(srrc_pulse(20.0, alpha).abs() < 0.002);
    }

    #[test]
    #[should_panic(expected = "roll-off must be in [0, 1]")]
    fn invalid_alpha_panics() {
        let _ = srrc_pulse(0.0, 1.5);
    }
}
