//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! Cheaper than a full FFT when only a handful of frequencies matter —
//! e.g. probing the two channel spectra at the Jamal calibration tone.

use rfbist_math::Complex64;
use std::f64::consts::PI;

/// Evaluates the DFT of `x` at the single normalized frequency `f`
/// (cycles per sample, not restricted to bin centers).
///
/// Returns the complex coefficient with the same scaling as a direct DFT:
/// `X(f) = Σ x[n]·e^{-j2πfn}`.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn goertzel(x: &[f64], f: f64) -> Complex64 {
    assert!(!x.is_empty(), "goertzel over empty data");
    let w = 2.0 * PI * f;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &v in x {
        let s = v + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Final extraction: y[N-1] = s[N-1] − e^{-jw}·s[N-2] equals
    // X(f)·e^{jw(N-1)}; rotate back to the DFT reference.
    let n = x.len() as f64;
    let y = Complex64::new(s_prev - w.cos() * s_prev2, w.sin() * s_prev2);
    y * Complex64::cis(-w * (n - 1.0))
}

/// Magnitude of the DFT at normalized frequency `f`.
pub fn goertzel_magnitude(x: &[f64], f: f64) -> f64 {
    goertzel(x, f).abs()
}

/// Power (|X|²) normalized by N², i.e. the squared average phasor —
/// convenient for tone-power estimates: a full-scale real tone of
/// amplitude A at frequency f gives `≈ (A/2)²`.
pub fn goertzel_tone_power(x: &[f64], f: f64) -> f64 {
    let n = x.len() as f64;
    goertzel(x, f).norm_sqr() / (n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::fft::fft_real;

    #[test]
    fn matches_fft_at_bin_centers() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 0.3).collect();
        let spec = fft_real(&x);
        for k in [0usize, 1, 5, 31, 63] {
            let g = goertzel(&x, k as f64 / n as f64);
            assert!((g - spec[k]).abs() < 1e-8, "bin {k}: {g} vs {}", spec[k]);
        }
    }

    #[test]
    fn detects_tone_at_exact_frequency() {
        let n = 1000;
        let f0 = 0.123;
        let amp = 0.8;
        let x: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * PI * f0 * i as f64).cos())
            .collect();
        let p = goertzel_tone_power(&x, f0);
        assert!(
            ((p.sqrt() * 2.0) - amp).abs() < 0.01,
            "amp {}",
            p.sqrt() * 2.0
        );
    }

    #[test]
    fn phase_is_recovered() {
        let n = 256;
        let f0 = 32.0 / n as f64; // bin-centered
        let phase = 0.7;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 + phase).cos())
            .collect();
        let g = goertzel(&x, f0);
        // X(f0) of cos(wn+φ) at bin center = (N/2)·e^{jφ}
        assert!((g.arg() - phase).abs() < 1e-9, "phase {}", g.arg());
        assert!((g.abs() - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn off_tone_rejects() {
        let n = 1024;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * 0.25 * i as f64).sin()).collect();
        // probing far from the tone (and at a bin center) sees ~nothing
        let p = goertzel_tone_power(&x, 0.125);
        assert!(p < 1e-10, "leak {p}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = goertzel(&[], 0.1);
    }
}
