//! Goertzel algorithm: single-bin and banked multi-bin DFT evaluation.
//!
//! Cheaper than a full FFT when only a handful of frequencies matter —
//! e.g. probing the two channel spectra at the Jamal calibration tone,
//! or sweeping the few dozen PSD bins a spectral mask actually
//! constrains ([`GoertzelBank`]).

use crate::simd::force_scalar;
use rfbist_math::Complex64;
use std::f64::consts::PI;

/// Evaluates the DFT of `x` at the single normalized frequency `f`
/// (cycles per sample, not restricted to bin centers).
///
/// Returns the complex coefficient with the same scaling as a direct DFT:
/// `X(f) = Σ x[n]·e^{-j2πfn}`.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn goertzel(x: &[f64], f: f64) -> Complex64 {
    assert!(!x.is_empty(), "goertzel over empty data");
    let w = 2.0 * PI * f;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &v in x {
        let s = v + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Final extraction: y[N-1] = s[N-1] − e^{-jw}·s[N-2] equals
    // X(f)·e^{jw(N-1)}; rotate back to the DFT reference.
    let n = x.len() as f64;
    let y = Complex64::new(s_prev - w.cos() * s_prev2, w.sin() * s_prev2);
    y * Complex64::cis(-w * (n - 1.0))
}

/// Magnitude of the DFT at normalized frequency `f`.
pub fn goertzel_magnitude(x: &[f64], f: f64) -> f64 {
    goertzel(x, f).abs()
}

/// Power (|X|²) normalized by N², i.e. the squared average phasor —
/// convenient for tone-power estimates: a full-scale real tone of
/// amplitude A at frequency f gives `≈ (A/2)²`.
pub fn goertzel_tone_power(x: &[f64], f: f64) -> f64 {
    let n = x.len() as f64;
    goertzel(x, f).norm_sqr() / (n * n)
}

/// Reusable state buffers for [`GoertzelBank`]; create once and pass to
/// every [`GoertzelBank::powers_into`] call so segment-averaged scans
/// allocate nothing per segment (the `PnbsScratch` shape applied to
/// spectral scanning).
#[derive(Clone, Debug, Default)]
pub struct GoertzelScratch {
    s1: Vec<f64>,
    s2: Vec<f64>,
    out: Vec<f64>,
}

impl GoertzelScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-bin values written by the most recent banked call.
    pub fn values(&self) -> &[f64] {
        &self.out
    }
}

/// Carried recurrence state for one segment fed incrementally through
/// [`GoertzelBank::advance_state`] — the streaming form of
/// [`GoertzelBank::powers_into`] for feeds (block-reseeded
/// reconstruction, live captures) where a full segment never exists in
/// memory at once.
///
/// Because the Goertzel recurrence is strictly sequential per bin,
/// advancing a state over a segment split into arbitrary chunks
/// performs the *same* floating-point operations in the same order as
/// one pass over the whole segment: the streamed powers are
/// bit-identical to the batched ones, regardless of chunking.
#[derive(Clone, Debug, Default)]
pub struct GoertzelState {
    s1: Vec<f64>,
    s2: Vec<f64>,
}

impl GoertzelState {
    /// An empty state; sized and zeroed by
    /// [`GoertzelBank::reset_state`].
    pub fn new() -> Self {
        Self::default()
    }
}

/// A bank of Goertzel recurrences advanced together in one pass over
/// the data — the batched form of [`goertzel`] for evaluating many
/// spectral bins of the *same* signal segment.
///
/// One pass costs one fused multiply-add and one subtraction per bin
/// per sample, with all per-bin state held in flat arrays so the inner
/// loop vectorizes. Against a radix-2 FFT of length `N` this wins
/// whenever the probed bin count is small compared to the transform —
/// exactly the spectral-mask situation, where a 8192-bin PSD is checked
/// against a mask that constrains only a few dozen bins. When most of
/// the spectrum is needed, use the FFT instead; the break-even on this
/// workspace's scalar FFT sits near `N/8` bins (see the
/// `mask_scan` section of `BENCH_recon.json`).
///
/// The coefficient table (`2cos ω`, and `cos ω`/`sin ω` for the final
/// extraction) is computed once at construction and shared by every
/// segment the bank processes.
///
/// # Example
///
/// ```
/// use rfbist_dsp::goertzel::{goertzel, GoertzelBank, GoertzelScratch};
///
/// let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.3).sin()).collect();
/// let bank = GoertzelBank::new(&[0.05, 0.125, 0.3]);
/// let mut scratch = GoertzelScratch::new();
/// let powers = bank.powers_into(&x, &mut scratch).to_vec();
/// for (i, &f) in [0.05, 0.125, 0.3].iter().enumerate() {
///     assert!((powers[i] - goertzel(&x, f).norm_sqr()).abs() < 1e-6);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct GoertzelBank {
    freqs: Vec<f64>,
    /// `2cos ωⱼ` — the recurrence coefficient per bin.
    coeff: Vec<f64>,
    cos_w: Vec<f64>,
    sin_w: Vec<f64>,
}

impl GoertzelBank {
    /// Builds a bank probing the given normalized frequencies (cycles
    /// per sample, not restricted to bin centers).
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty.
    pub fn new(freqs: &[f64]) -> Self {
        assert!(!freqs.is_empty(), "goertzel bank needs at least one bin");
        let mut coeff = Vec::with_capacity(freqs.len());
        let mut cos_w = Vec::with_capacity(freqs.len());
        let mut sin_w = Vec::with_capacity(freqs.len());
        for &f in freqs {
            let w = 2.0 * PI * f;
            coeff.push(2.0 * w.cos());
            cos_w.push(w.cos());
            sin_w.push(w.sin());
        }
        GoertzelBank {
            freqs: freqs.to_vec(),
            coeff,
            cos_w,
            sin_w,
        }
    }

    /// Number of bins in the bank.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the bank has no bins (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The probed normalized frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Advances every bin's recurrence over `x` in one pass, leaving
    /// the final states `(s[N−1], s[N−2])` in `(s1, s2)` of the
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty.
    fn run_states(&self, x: &[f64], scratch: &mut GoertzelScratch) {
        assert!(!x.is_empty(), "goertzel over empty data");
        let m = self.len();
        scratch.s1.clear();
        scratch.s1.resize(m, 0.0);
        scratch.s2.clear();
        scratch.s2.resize(m, 0.0);
        self.advance_dispatch(x, &mut scratch.s1, &mut scratch.s2);
    }

    /// One runtime-dispatched recurrence pass over `x`, continuing from
    /// the states already in `(s1, s2)` — shared by the batched
    /// [`powers_into`](Self::powers_into) (which zeroes the states
    /// first) and the incremental [`advance_state`](Self::advance_state)
    /// (which carries them across chunks).
    fn advance_dispatch(&self, x: &[f64], s1: &mut [f64], s2: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            if !force_scalar() && std::arch::is_x86_feature_detected!("fma") {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: AVX-512F + FMA support was just verified
                    // at runtime by is_x86_feature_detected!; the
                    // kernel body is ordinary safe Rust, recompiled at
                    // wider vectors with hardware-FMA steps.
                    unsafe { Self::advance_avx512(&self.coeff, x, s1, s2) };
                    return;
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 + FMA support was just verified at
                    // runtime by is_x86_feature_detected!; same safe
                    // kernel body as the scalar path.
                    unsafe { Self::advance_avx2(&self.coeff, x, s1, s2) };
                    return;
                }
            }
        }
        Self::advance::<false>(&self.coeff, x, s1, s2);
    }

    /// Sizes and zeroes `state` for a fresh segment of this bank.
    pub fn reset_state(&self, state: &mut GoertzelState) {
        let m = self.len();
        state.s1.clear();
        state.s1.resize(m, 0.0);
        state.s2.clear();
        state.s2.resize(m, 0.0);
    }

    /// Advances every bin's recurrence over the next chunk `x` of a
    /// segment, carrying `state` across calls. Feeding a segment in any
    /// chunking produces bit-identical states to one
    /// [`powers_into`](Self::powers_into) pass over the whole segment
    /// (the recurrence is strictly sequential per bin). An empty chunk
    /// is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not sized by
    /// [`reset_state`](Self::reset_state) for this bank.
    pub fn advance_state(&self, state: &mut GoertzelState, x: &[f64]) {
        assert_eq!(
            state.s1.len(),
            self.len(),
            "state not sized for this bank — call reset_state first"
        );
        if x.is_empty() {
            return;
        }
        self.advance_dispatch(x, &mut state.s1, &mut state.s2);
    }

    /// [`advance_state`](Self::advance_state) with the window applied
    /// on the fly: sample `i` enters the recurrence as `x[i]·w[i]`.
    /// The product is the same single rounding a caller staging
    /// `x[i]·w[i]` into a buffer and feeding it to `advance_state`
    /// would perform, at the same point of the recurrence — the
    /// resulting states are **bit-identical** to the staged form
    /// (pinned by the `windowed_advance_matches_staged` test) while
    /// the staging buffer, and its round-trip through memory on every
    /// chunk of every segment, disappears. This is what lets a
    /// streaming consumer apply its Welch window inside the feed's
    /// output pass instead of copying each block first.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not sized by
    /// [`reset_state`](Self::reset_state) for this bank, or if `w` and
    /// `x` differ in length.
    pub fn advance_state_windowed(&self, state: &mut GoertzelState, x: &[f64], w: &[f64]) {
        assert_eq!(
            state.s1.len(),
            self.len(),
            "state not sized for this bank — call reset_state first"
        );
        assert_eq!(x.len(), w.len(), "window chunk must match the data chunk");
        if x.is_empty() {
            return;
        }
        self.advance_windowed_dispatch(x, w, &mut state.s1, &mut state.s2);
    }

    /// Adds `|X(fⱼ)|²` of the segment accumulated in `state` onto
    /// `acc[j]` — the Welch-averaging form of the power extraction in
    /// [`powers_into`](Self::powers_into) (same per-bin expression, so
    /// a streamed segment average is bit-identical to a batched one).
    ///
    /// # Panics
    ///
    /// Panics if `acc` or `state` do not match the bank's bin count.
    pub fn accumulate_powers(&self, state: &GoertzelState, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.len(), "accumulator/bank size mismatch");
        assert_eq!(state.s1.len(), self.len(), "state/bank size mismatch");
        for (((a, &s1), &s2), &c) in acc
            .iter_mut()
            .zip(&state.s1)
            .zip(&state.s2)
            .zip(&self.coeff)
        {
            *a += s1 * s1 + s2 * s2 - c * s1 * s2;
        }
    }

    /// One recurrence step `x + c·s₁ − s₂`. `FUSED` selects the
    /// hardware fused multiply-add form `c·s₁ + (x − s₂)` — two vector
    /// ops instead of three, differing from the plain form by one
    /// rounding (~1 ulp per step). Only the SIMD wrappers pass `true`:
    /// without hardware FMA, `mul_add` falls back to a soft-float
    /// routine orders of magnitude slower.
    #[inline(always)]
    fn step<const FUSED: bool>(c: f64, p1: f64, p2: f64, x: f64) -> f64 {
        if FUSED {
            c.mul_add(p1, x - p2)
        } else {
            x + c * p1 - p2
        }
    }

    /// The recurrence kernel: sample-outer / bins-inner in flat slice
    /// form (the shape the loop vectorizer handles best — every bin is
    /// an independent lane), with four samples folded per pass so each
    /// bin's state round-trips through L1 once per *four* samples
    /// instead of once per sample:
    ///
    /// ```text
    /// sₙ   = x₀ + c·s₁ − s₂      sₙ₊₂ = x₂ + c·sₙ₊₁ − sₙ
    /// sₙ₊₁ = x₁ + c·sₙ − s₁      sₙ₊₃ = x₃ + c·sₙ₊₂ − sₙ₊₁
    /// (s₁, s₂) ← (sₙ₊₃, sₙ₊₂)
    /// ```
    ///
    /// `WINDOWED` folds a per-sample window product into the quad
    /// head: sample `i` enters the recurrence as `x[i]·w[i]`, formed
    /// *once per sample* (not per bin) as a plain multiply. That is
    /// the exact operation a caller staging `x[i]·w[i]` into a buffer
    /// would perform, so the windowed kernel is bit-identical to
    /// staging + the unwindowed kernel while skipping the staging
    /// buffer's round-trip through memory. `w` is ignored (and may
    /// alias `x`) when `WINDOWED` is false.
    #[inline(always)]
    // analysis: allow(naked-panic) — quad indices are bounded by chunks_exact(4); the subscripts cannot leave the chunk
    fn advance_kernel<const FUSED: bool, const WINDOWED: bool>(
        coeff: &[f64],
        x: &[f64],
        w: &[f64],
        s1: &mut [f64],
        s2: &mut [f64],
    ) {
        debug_assert!(!WINDOWED || w.len() == x.len());
        let mut quads = x.chunks_exact(4);
        let mut wins = if WINDOWED { w } else { x }.chunks_exact(4);
        for (quad, wq) in (&mut quads).zip(&mut wins) {
            let (x0, x1, x2, x3) = if WINDOWED {
                (
                    quad[0] * wq[0],
                    quad[1] * wq[1],
                    quad[2] * wq[2],
                    quad[3] * wq[3],
                )
            } else {
                (quad[0], quad[1], quad[2], quad[3])
            };
            for ((c, p1), p2) in coeff.iter().zip(s1.iter_mut()).zip(s2.iter_mut()) {
                let s_a = Self::step::<FUSED>(*c, *p1, *p2, x0);
                let s_b = Self::step::<FUSED>(*c, s_a, *p1, x1);
                let s_c = Self::step::<FUSED>(*c, s_b, s_a, x2);
                let s_d = Self::step::<FUSED>(*c, s_c, s_b, x3);
                *p1 = s_d;
                *p2 = s_c;
            }
        }
        for (&xr, &wr) in quads.remainder().iter().zip(wins.remainder()) {
            let x0 = if WINDOWED { xr * wr } else { xr };
            for ((c, p1), p2) in coeff.iter().zip(s1.iter_mut()).zip(s2.iter_mut()) {
                let s = Self::step::<FUSED>(*c, *p1, *p2, x0);
                *p2 = *p1;
                *p1 = s;
            }
        }
    }

    /// [`advance_kernel`](Self::advance_kernel) without the window
    /// fold — the portable body behind the unwindowed wrappers.
    #[inline(always)]
    fn advance<const FUSED: bool>(coeff: &[f64], x: &[f64], s1: &mut [f64], s2: &mut [f64]) {
        Self::advance_kernel::<FUSED, false>(coeff, x, x, s1, s2);
    }

    /// [`advance`](Self::advance) compiled with AVX2 + FMA enabled and
    /// fused steps. Selected at runtime by `run_states`; agrees with
    /// the portable path to ~1 ulp per step (single rounding), far
    /// inside every consumer's tolerance.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling —
    /// `#[target_feature]` recompilation emits those instructions
    /// unconditionally. The body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn advance_avx2(coeff: &[f64], x: &[f64], s1: &mut [f64], s2: &mut [f64]) {
        Self::advance::<true>(coeff, x, s1, s2)
    }

    /// [`advance`](Self::advance) compiled with AVX-512F + FMA enabled
    /// — the AVX2 variant's contract at twice the lane count.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512F and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling; the
    /// body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn advance_avx512(coeff: &[f64], x: &[f64], s1: &mut [f64], s2: &mut [f64]) {
        Self::advance::<true>(coeff, x, s1, s2)
    }

    /// Window-folding [`advance_kernel`](Self::advance_kernel)
    /// compiled with AVX2 + FMA enabled and fused steps — the
    /// [`advance_avx2`](Self::advance_avx2) contract with the
    /// `x[i]·w[i]` product formed in-register.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling —
    /// `#[target_feature]` recompilation emits those instructions
    /// unconditionally. The body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn advance_windowed_avx2(
        coeff: &[f64],
        x: &[f64],
        w: &[f64],
        s1: &mut [f64],
        s2: &mut [f64],
    ) {
        Self::advance_kernel::<true, true>(coeff, x, w, s1, s2)
    }

    /// Window-folding kernel compiled with AVX-512F + FMA enabled —
    /// the [`advance_windowed_avx2`](Self::advance_windowed_avx2)
    /// contract at twice the lane count.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512F and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling; the
    /// body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn advance_windowed_avx512(
        coeff: &[f64],
        x: &[f64],
        w: &[f64],
        s1: &mut [f64],
        s2: &mut [f64],
    ) {
        Self::advance_kernel::<true, true>(coeff, x, w, s1, s2)
    }

    /// One runtime-dispatched window-folding recurrence pass —
    /// [`advance_dispatch`](Self::advance_dispatch) with the
    /// `x[i]·w[i]` products formed inside the kernel instead of staged
    /// through a buffer. Each dispatch arm performs the exact staged
    /// products and recurrence steps of the corresponding
    /// `advance_dispatch` arm, so callers swapping a staging buffer
    /// for this pass see bit-identical states.
    fn advance_windowed_dispatch(&self, x: &[f64], w: &[f64], s1: &mut [f64], s2: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            if !force_scalar() && std::arch::is_x86_feature_detected!("fma") {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: AVX-512F + FMA support was just verified
                    // at runtime by is_x86_feature_detected!; the
                    // kernel body is ordinary safe Rust, recompiled at
                    // wider vectors with hardware-FMA steps.
                    unsafe { Self::advance_windowed_avx512(&self.coeff, x, w, s1, s2) };
                    return;
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 + FMA support was just verified at
                    // runtime by is_x86_feature_detected!; same safe
                    // kernel body as the scalar path.
                    unsafe { Self::advance_windowed_avx2(&self.coeff, x, w, s1, s2) };
                    return;
                }
            }
        }
        Self::advance_kernel::<false, true>(&self.coeff, x, w, s1, s2);
    }

    /// Evaluates `|X(fⱼ)|²` for every bin of the bank over `x` in one
    /// pass, writing into `scratch` and returning the filled slice.
    ///
    /// Same scaling as `goertzel(x, f).norm_sqr()`: the squared direct
    /// DFT coefficient, `|Σ x[n]·e^{-j2πfn}|²`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty.
    pub fn powers_into<'s>(&self, x: &[f64], scratch: &'s mut GoertzelScratch) -> &'s [f64] {
        self.run_states(x, scratch);
        self.extract_powers(scratch)
    }

    /// [`powers_into`](Self::powers_into) with the window applied on
    /// the fly, bit-identical to staging `x[i]·w[i]` first (see
    /// [`advance_state_windowed`](Self::advance_state_windowed)) —
    /// the batched form of the window fold, so a segment-averaging
    /// scan and its streaming twin can both drop their staging
    /// buffers without their verdicts drifting apart.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `w` and `x` differ in length.
    pub fn windowed_powers_into<'s>(
        &self,
        x: &[f64],
        w: &[f64],
        scratch: &'s mut GoertzelScratch,
    ) -> &'s [f64] {
        assert!(!x.is_empty(), "goertzel over empty data");
        assert_eq!(x.len(), w.len(), "window must match the segment");
        let m = self.len();
        scratch.s1.clear();
        scratch.s1.resize(m, 0.0);
        scratch.s2.clear();
        scratch.s2.resize(m, 0.0);
        self.advance_windowed_dispatch(x, w, &mut scratch.s1, &mut scratch.s2);
        self.extract_powers(scratch)
    }

    /// `|X|² = s₁² + s₂² − 2cos ω·s₁·s₂` per bin (phase rotations drop
    /// out) from the final states in `scratch`, into `scratch.out`.
    fn extract_powers<'s>(&self, scratch: &'s mut GoertzelScratch) -> &'s [f64] {
        scratch.out.clear();
        scratch.out.extend(
            scratch
                .s1
                .iter()
                .zip(&scratch.s2)
                .zip(&self.coeff)
                .map(|((&s1, &s2), &c)| s1 * s1 + s2 * s2 - c * s1 * s2),
        );
        &scratch.out
    }

    /// Evaluates the complex DFT coefficient at every bin — the banked
    /// equivalent of calling [`goertzel`] per frequency, with the same
    /// `X(f) = Σ x[n]·e^{-j2πfn}` reference.
    pub fn dft(&self, x: &[f64]) -> Vec<Complex64> {
        let mut scratch = GoertzelScratch::new();
        self.run_states(x, &mut scratch);
        let n = x.len() as f64;
        (0..self.len())
            .map(|j| {
                let (s1, s2) = (scratch.s1[j], scratch.s2[j]);
                let y = Complex64::new(s1 - self.cos_w[j] * s2, self.sin_w[j] * s2);
                y * Complex64::cis(-2.0 * PI * self.freqs[j] * (n - 1.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::fft::fft_real;

    #[test]
    fn matches_fft_at_bin_centers() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 0.3).collect();
        let spec = fft_real(&x);
        for k in [0usize, 1, 5, 31, 63] {
            let g = goertzel(&x, k as f64 / n as f64);
            assert!((g - spec[k]).abs() < 1e-8, "bin {k}: {g} vs {}", spec[k]);
        }
    }

    #[test]
    fn detects_tone_at_exact_frequency() {
        let n = 1000;
        let f0 = 0.123;
        let amp = 0.8;
        let x: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * PI * f0 * i as f64).cos())
            .collect();
        let p = goertzel_tone_power(&x, f0);
        assert!(
            ((p.sqrt() * 2.0) - amp).abs() < 0.01,
            "amp {}",
            p.sqrt() * 2.0
        );
    }

    #[test]
    fn phase_is_recovered() {
        let n = 256;
        let f0 = 32.0 / n as f64; // bin-centered
        let phase = 0.7;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 + phase).cos())
            .collect();
        let g = goertzel(&x, f0);
        // X(f0) of cos(wn+φ) at bin center = (N/2)·e^{jφ}
        assert!((g.arg() - phase).abs() < 1e-9, "phase {}", g.arg());
        assert!((g.abs() - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn off_tone_rejects() {
        let n = 1024;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * 0.25 * i as f64).sin()).collect();
        // probing far from the tone (and at a bin center) sees ~nothing
        let p = goertzel_tone_power(&x, 0.125);
        assert!(p < 1e-10, "leak {p}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = goertzel(&[], 0.1);
    }

    #[test]
    fn bank_matches_scalar_goertzel() {
        // odd and even lengths pin the state-array parity normalization
        for n in [255usize, 256, 1000] {
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.21).sin() + 0.4 * (i as f64 * 0.043).cos())
                .collect();
            let freqs: Vec<f64> = vec![0.01, 0.125, 7.0 / n as f64, 0.33, 0.499];
            let bank = GoertzelBank::new(&freqs);
            let mut scratch = GoertzelScratch::new();
            let powers = bank.powers_into(&x, &mut scratch).to_vec();
            let spectra = bank.dft(&x);
            for (j, &f) in freqs.iter().enumerate() {
                let want = goertzel(&x, f);
                assert!(
                    (powers[j] - want.norm_sqr()).abs() <= 1e-9 * want.norm_sqr().max(1.0),
                    "n {n} bin {j}: {} vs {}",
                    powers[j],
                    want.norm_sqr()
                );
                assert!(
                    (spectra[j] - want).abs() <= 1e-8 * want.abs().max(1.0),
                    "n {n} bin {j}: {} vs {want}",
                    spectra[j]
                );
            }
        }
    }

    #[test]
    fn bank_matches_fft_at_bin_centers() {
        let n = 512;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() - 0.2).collect();
        let spec = fft_real(&x);
        let ks = [0usize, 3, 100, 255];
        let freqs: Vec<f64> = ks.iter().map(|&k| k as f64 / n as f64).collect();
        let bank = GoertzelBank::new(&freqs);
        let mut scratch = GoertzelScratch::new();
        let powers = bank.powers_into(&x, &mut scratch);
        for (j, &k) in ks.iter().enumerate() {
            assert!(
                (powers[j] - spec[k].norm_sqr()).abs() < 1e-7,
                "bin {k}: {} vs {}",
                powers[j],
                spec[k].norm_sqr()
            );
        }
    }

    #[test]
    fn bank_scratch_is_reusable_across_segments() {
        let bank = GoertzelBank::new(&[0.1, 0.2]);
        let mut scratch = GoertzelScratch::new();
        let a: Vec<f64> = (0..128).map(|i| (i as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.31).cos()).collect();
        let pa = bank.powers_into(&a, &mut scratch).to_vec();
        let pb = bank.powers_into(&b, &mut scratch).to_vec();
        // re-running the first segment reproduces it exactly: no state
        // leaks between segments
        assert_eq!(bank.powers_into(&a, &mut scratch), &pa[..]);
        assert_eq!(bank.powers_into(&b, &mut scratch), &pb[..]);
        assert_eq!(scratch.values().len(), 2);
    }

    #[test]
    fn windowed_advance_matches_staged_bit_for_bit() {
        let n = 1000;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.17).sin() + 0.2 * (i as f64 * 0.051).cos())
            .collect();
        let w: Vec<f64> = (0..n)
            .map(|i| 0.5 - 0.5 * (2.0 * PI * i as f64 / n as f64).cos())
            .collect();
        let staged: Vec<f64> = x.iter().zip(&w).map(|(a, b)| a * b).collect();
        let bank = GoertzelBank::new(&[0.03, 0.125, 0.31, 0.499]);
        let mut scratch = GoertzelScratch::new();
        let batched = bank.powers_into(&staged, &mut scratch).to_vec();
        // the on-the-fly window fold forms the same products at the
        // same recurrence points as the staged form — bit-identical,
        // batched and chunked (including off-unroll boundaries)
        assert_eq!(
            bank.windowed_powers_into(&x, &w, &mut scratch),
            &batched[..],
            "windowed batch pass diverged from staging"
        );
        for chunks in [vec![1000], vec![256, 256, 256, 232], vec![7, 501, 3, 489]] {
            let mut state = GoertzelState::new();
            bank.reset_state(&mut state);
            let mut start = 0;
            for len in chunks {
                bank.advance_state_windowed(
                    &mut state,
                    &x[start..start + len],
                    &w[start..start + len],
                );
                start += len;
            }
            assert_eq!(start, n);
            let mut acc = vec![0.0; bank.len()];
            bank.accumulate_powers(&state, &mut acc);
            assert_eq!(acc, batched, "windowed chunked pass diverged");
        }
    }

    #[test]
    fn incremental_state_matches_batched_pass_bit_for_bit() {
        let n = 1000;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.17).sin() + 0.2 * (i as f64 * 0.051).cos())
            .collect();
        let bank = GoertzelBank::new(&[0.03, 0.125, 0.31, 0.499]);
        let mut scratch = GoertzelScratch::new();
        let batched = bank.powers_into(&x, &mut scratch).to_vec();
        // any chunking — including chunk boundaries off the 4-sample
        // unroll — must reproduce the batched states exactly
        for chunks in [vec![1000], vec![256, 256, 256, 232], vec![7, 501, 3, 489]] {
            let mut state = GoertzelState::new();
            bank.reset_state(&mut state);
            let mut start = 0;
            for len in chunks {
                bank.advance_state(&mut state, &x[start..start + len]);
                start += len;
            }
            assert_eq!(start, n);
            let mut acc = vec![0.0; bank.len()];
            bank.accumulate_powers(&state, &mut acc);
            assert_eq!(acc, batched, "chunked pass diverged");
        }
    }

    #[test]
    fn accumulate_powers_sums_across_segments() {
        let bank = GoertzelBank::new(&[0.1, 0.2]);
        let a: Vec<f64> = (0..128).map(|i| (i as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut scratch = GoertzelScratch::new();
        let pa = bank.powers_into(&a, &mut scratch).to_vec();
        let pb = bank.powers_into(&b, &mut scratch).to_vec();
        let mut acc = vec![0.0; 2];
        let mut state = GoertzelState::new();
        for seg in [&a, &b] {
            bank.reset_state(&mut state);
            bank.advance_state(&mut state, seg);
            bank.accumulate_powers(&state, &mut acc);
        }
        for j in 0..2 {
            assert_eq!(acc[j], pa[j] + pb[j]);
        }
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let bank = GoertzelBank::new(&[0.1]);
        let mut state = GoertzelState::new();
        bank.reset_state(&mut state);
        let x = [1.0, -0.5, 0.25];
        bank.advance_state(&mut state, &x[..2]);
        bank.advance_state(&mut state, &[]);
        bank.advance_state(&mut state, &x[2..]);
        let mut acc = [0.0];
        bank.accumulate_powers(&state, &mut acc);
        let mut scratch = GoertzelScratch::new();
        assert_eq!(acc[0], bank.powers_into(&x, &mut scratch)[0]);
    }

    #[test]
    #[should_panic(expected = "reset_state")]
    fn unsized_state_panics() {
        let bank = GoertzelBank::new(&[0.1, 0.2]);
        let mut state = GoertzelState::new();
        bank.advance_state(&mut state, &[1.0]);
    }

    #[test]
    fn bank_accessors() {
        let bank = GoertzelBank::new(&[0.05, 0.25]);
        assert_eq!(bank.len(), 2);
        assert!(!bank.is_empty());
        assert_eq!(bank.freqs(), &[0.05, 0.25]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_bank_panics() {
        let _ = GoertzelBank::new(&[]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn bank_empty_input_panics() {
        let mut scratch = GoertzelScratch::new();
        let _ = GoertzelBank::new(&[0.1]).powers_into(&[], &mut scratch);
    }
}
