//! IIR filters: biquad sections and Butterworth designs.
//!
//! These serve as *behavioral models of analog filters* in the transmitter
//! chain (reconstruction LPF after the DACs, anti-alias filters), designed
//! via the bilinear transform with frequency pre-warping.

use rfbist_math::Complex64;
use std::f64::consts::PI;

/// A second-order IIR section in direct form II transposed.
///
/// Transfer function `H(z) = (b0 + b1 z⁻¹ + b2 z⁻²)/(1 + a1 z⁻¹ + a2 z⁻²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Biquad {
    /// Numerator coefficients.
    pub b: [f64; 3],
    /// Denominator coefficients `a1, a2` (leading 1 implied).
    pub a: [f64; 2],
}

impl Biquad {
    /// Identity (pass-through) section.
    pub fn identity() -> Self {
        Biquad {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 0.0],
        }
    }

    /// Second-order Butterworth lowpass section with the given analog
    /// quality factor, at normalized digital cutoff `fc` (cycles/sample),
    /// via bilinear transform with pre-warping.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    pub fn lowpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
    }

    /// Second-order highpass section (RBJ cookbook).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    pub fn highpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 + cw) / 2.0 / a0,
                -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
    }

    /// Second-order bandpass section (constant 0 dB peak gain).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    pub fn bandpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "center must be in (0, 0.5)");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * fc;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Biquad {
            b: [alpha / a0, 0.0, -alpha / a0],
            a: [-2.0 * w0.cos() / a0, (1.0 - alpha) / a0],
        }
    }

    /// Complex frequency response at normalized frequency `f`.
    pub fn frequency_response(&self, f: f64) -> Complex64 {
        let z1 = Complex64::cis(-2.0 * PI * f);
        let z2 = z1 * z1;
        let num = Complex64::from(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = Complex64::ONE + z1 * self.a[0] + z2 * self.a[1];
        num / den
    }

    /// Returns `true` when both poles lie strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for 2nd order: |a2| < 1 and |a1| < 1 + a2
        self.a[1].abs() < 1.0 && self.a[0].abs() < 1.0 + self.a[1]
    }
}

/// A cascade of biquad sections with per-instance state, processed sample
/// by sample.
///
/// # Example
///
/// ```
/// use rfbist_dsp::iir::IirFilter;
/// let mut lp = IirFilter::butterworth_lowpass(4, 0.1);
/// let step: Vec<f64> = (0..200).map(|_| 1.0).collect();
/// let y = lp.process_block(&step);
/// // settles to unit DC gain
/// assert!((y[199] - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct IirFilter {
    sections: Vec<Biquad>,
    state: Vec<[f64; 2]>,
}

impl IirFilter {
    /// Builds a filter from explicit sections.
    pub fn from_sections(sections: Vec<Biquad>) -> Self {
        let state = vec![[0.0; 2]; sections.len()];
        IirFilter { sections, state }
    }

    /// Butterworth lowpass of the given (even or odd) order at normalized
    /// cutoff `fc`, realized as cascaded biquads with Butterworth pole-Q
    /// values (odd orders add a Q = 0.5 real-pole-pair approximation).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `fc` is out of range.
    pub fn butterworth_lowpass(order: usize, fc: f64) -> Self {
        assert!(order > 0, "order must be positive");
        let pairs = order / 2;
        let mut sections = Vec::new();
        for k in 0..pairs {
            // Butterworth pole quality factors
            let theta = PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
            let q = 1.0 / (2.0 * theta.sin());
            sections.push(Biquad::lowpass(fc, q));
        }
        if order % 2 == 1 {
            // first-order section as a degenerate biquad
            let w = (PI * fc).tan();
            let a0 = w + 1.0;
            sections.push(Biquad {
                b: [w / a0, w / a0, 0.0],
                a: [(w - 1.0) / a0, 0.0],
            });
        }
        IirFilter::from_sections(sections)
    }

    /// The biquad sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Resets all internal state to zero.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = [0.0; 2];
        }
    }

    /// Processes one sample (direct form II transposed per section).
    pub fn process(&mut self, x: f64) -> f64 {
        let mut v = x;
        for (sec, st) in self.sections.iter().zip(self.state.iter_mut()) {
            let y = sec.b[0] * v + st[0];
            st[0] = sec.b[1] * v - sec.a[0] * y + st[1];
            st[1] = sec.b[2] * v - sec.a[1] * y;
            v = y;
        }
        v
    }

    /// Processes a block of samples.
    pub fn process_block(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process(v)).collect()
    }

    /// Cascade frequency response at normalized frequency `f`.
    pub fn frequency_response(&self, f: f64) -> Complex64 {
        self.sections
            .iter()
            .fold(Complex64::ONE, |acc, s| acc * s.frequency_response(f))
    }

    /// Cascade magnitude response in dB.
    pub fn magnitude_response_db(&self, f: f64) -> f64 {
        20.0 * self.frequency_response(f).abs().max(1e-300).log10()
    }

    /// Returns `true` when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(|s| s.is_stable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_biquad_passes_through() {
        let mut f = IirFilter::from_sections(vec![Biquad::identity()]);
        let x = [1.0, -0.5, 0.25];
        assert_eq!(f.process_block(&x).as_slice(), &x);
    }

    #[test]
    fn lowpass_biquad_dc_and_nyquist() {
        let bq = Biquad::lowpass(0.1, std::f64::consts::FRAC_1_SQRT_2);
        assert!((bq.frequency_response(0.0).abs() - 1.0).abs() < 1e-9);
        assert!(bq.frequency_response(0.5).abs() < 1e-3);
        assert!(bq.is_stable());
    }

    #[test]
    fn highpass_biquad_dc_and_nyquist() {
        let bq = Biquad::highpass(0.1, std::f64::consts::FRAC_1_SQRT_2);
        assert!(bq.frequency_response(0.0).abs() < 1e-9);
        assert!((bq.frequency_response(0.5).abs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn bandpass_biquad_peak_at_center() {
        let bq = Biquad::bandpass(0.2, 5.0);
        assert!((bq.frequency_response(0.2).abs() - 1.0).abs() < 1e-6);
        assert!(bq.frequency_response(0.02).abs() < 0.2);
        assert!(bq.frequency_response(0.45).abs() < 0.2);
    }

    #[test]
    fn butterworth_minus3db_at_cutoff() {
        for order in [2usize, 4, 6] {
            let f = IirFilter::butterworth_lowpass(order, 0.1);
            let db = f.magnitude_response_db(0.1);
            assert!((db + 3.0103).abs() < 0.15, "order {order}: {db} dB");
        }
    }

    #[test]
    fn butterworth_rolloff_slope() {
        // order n rolls off at ~20n dB/decade
        let f = IirFilter::butterworth_lowpass(4, 0.02);
        let db1 = f.magnitude_response_db(0.04);
        let db2 = f.magnitude_response_db(0.08);
        let slope_per_octave = db2 - db1;
        assert!(
            (slope_per_octave + 24.0).abs() < 2.0,
            "slope {slope_per_octave}"
        );
    }

    #[test]
    fn odd_order_butterworth_works() {
        let f = IirFilter::butterworth_lowpass(3, 0.15);
        assert!(f.is_stable());
        assert!((f.frequency_response(0.0).abs() - 1.0).abs() < 1e-9);
        let db = f.magnitude_response_db(0.15);
        assert!((db + 3.0103).abs() < 0.2, "{db}");
    }

    #[test]
    fn step_response_settles_to_dc_gain() {
        let mut f = IirFilter::butterworth_lowpass(2, 0.05);
        let mut last = 0.0;
        for _ in 0..2000 {
            last = f.process(1.0);
        }
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = IirFilter::butterworth_lowpass(2, 0.05);
        for _ in 0..100 {
            f.process(1.0);
        }
        f.reset();
        // after reset, the first output of an impulse matches a fresh filter
        let mut fresh = IirFilter::butterworth_lowpass(2, 0.05);
        assert_eq!(f.process(1.0), fresh.process(1.0));
    }

    #[test]
    fn stability_check_flags_unstable() {
        let unstable = Biquad {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 1.5],
        };
        assert!(!unstable.is_stable());
        let f = IirFilter::from_sections(vec![Biquad::identity(), unstable]);
        assert!(!f.is_stable());
    }

    #[test]
    fn tone_attenuation_matches_response() {
        let mut f = IirFilter::butterworth_lowpass(4, 0.1);
        let f0 = 0.2;
        let x: Vec<f64> = (0..2000)
            .map(|i| (2.0 * PI * f0 * i as f64).sin())
            .collect();
        let y = f.process_block(&x);
        let peak = y[1000..].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let expected = f.frequency_response(f0).abs();
        assert!((peak - expected).abs() < 0.01, "{peak} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_panics() {
        let _ = IirFilter::butterworth_lowpass(0, 0.1);
    }
}
