//! Single-tone spectral metrics for data-converter characterization.
//!
//! Given a coherently- or window-captured sine-wave record, computes the
//! classic ADC figures of merit: SNR, SINAD, THD, SFDR and ENOB. Used by
//! the converter models' self-tests and the TIADC mismatch experiments.

use crate::window::Window;
use rfbist_math::fft::fft_real;

/// Results of a single-tone FFT test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ToneMetrics {
    /// Fundamental frequency in Hz (bin-centered estimate).
    pub fundamental_hz: f64,
    /// Fundamental power (linear, relative units).
    pub fundamental_power: f64,
    /// Signal-to-noise ratio in dB (harmonics excluded).
    pub snr_db: f64,
    /// Signal-to-noise-and-distortion in dB.
    pub sinad_db: f64,
    /// Total harmonic distortion in dB (power of harmonics 2–6 relative
    /// to the fundamental; negative when distortion is below the carrier).
    pub thd_db: f64,
    /// Spurious-free dynamic range in dB.
    pub sfdr_db: f64,
    /// Effective number of bits derived from SINAD.
    pub enob: f64,
}

/// Number of harmonics (beyond the fundamental) included in THD.
const THD_HARMONICS: usize = 5;
/// Half-width (in bins) of the exclusion region around the fundamental,
/// each harmonic, and DC — sized for the main-lobe width of the
/// Blackman–Harris window plus non-coherent-sampling smear.
const LEAK_BINS: isize = 6;

/// Analyzes a real sine-wave capture.
///
/// `fs` is the sample rate in Hz. The fundamental is located as the
/// strongest non-DC bin. Window leakage is absorbed by integrating ±3 bins
/// around each spectral feature.
///
/// # Panics
///
/// Panics if the record is shorter than 32 samples or `fs <= 0`.
pub fn analyze_tone(x: &[f64], fs: f64, window: Window) -> ToneMetrics {
    assert!(x.len() >= 32, "record too short for spectral analysis");
    assert!(fs > 0.0, "sample rate must be positive");
    let n = x.len();
    let w = window.coefficients(n);
    let xw: Vec<f64> = x.iter().zip(&w).map(|(a, b)| a * b).collect();
    let spec = fft_real(&xw);
    let nbins = n / 2 + 1;
    let p: Vec<f64> = (0..nbins).map(|k| spec[k].norm_sqr()).collect();

    // locate fundamental (skip DC leakage region)
    let skip = LEAK_BINS as usize + 1;
    let (kf, _) = p
        .iter()
        .enumerate()
        .skip(skip)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in spectrum"))
        .expect("non-empty spectrum");

    let band_sum = |center: isize| -> f64 {
        let lo = (center - LEAK_BINS).max(0) as usize;
        let hi = ((center + LEAK_BINS) as usize).min(nbins - 1);
        p[lo..=hi].iter().sum()
    };

    let fund_power = band_sum(kf as isize);

    // Harmonic powers (alias-folded into the first Nyquist zone). A folded
    // harmonic can collide with the fundamental or another harmonic; such
    // collisions are skipped so no energy is double-counted.
    let mut harm_power = 0.0;
    let mut harmonic_bins: Vec<isize> = Vec::new();
    for h in 2..=(THD_HARMONICS + 1) {
        let mut k = (h * kf) % n;
        if k > n / 2 {
            k = n - k;
        }
        let k = k as isize;
        let collides_fundamental = (k - kf as isize).abs() <= 2 * LEAK_BINS;
        let collides_prior = harmonic_bins
            .iter()
            .any(|&b| (k - b).abs() <= 2 * LEAK_BINS);
        if collides_fundamental || collides_prior {
            continue;
        }
        harmonic_bins.push(k);
        harm_power += band_sum(k);
    }

    // noise: everything except DC, fundamental and harmonic regions
    let mut excluded = vec![false; nbins];
    let mut mark = |center: isize| {
        let lo = (center - LEAK_BINS).max(0) as usize;
        let hi = ((center + LEAK_BINS) as usize).min(nbins - 1);
        for e in excluded.iter_mut().take(hi + 1).skip(lo) {
            *e = true;
        }
    };
    mark(0);
    mark(kf as isize);
    for &k in &harmonic_bins {
        mark(k);
    }
    let noise_power: f64 = p
        .iter()
        .zip(&excluded)
        .filter(|(_, &e)| !e)
        .map(|(v, _)| *v)
        .sum();

    // Strongest spur: peak bin outside the fundamental region, compared
    // peak-to-peak against the fundamental so the window spreading factor
    // cancels.
    let fund_peak = {
        let lo = (kf as isize - LEAK_BINS).max(0) as usize;
        let hi = (kf + LEAK_BINS as usize).min(nbins - 1);
        p[lo..=hi].iter().fold(0.0f64, |m, &v| m.max(v))
    };
    let mut spur_peak = 0.0f64;
    for (k, &v) in p.iter().enumerate().skip(1) {
        let in_fund = (k as isize - kf as isize).abs() <= LEAK_BINS;
        if !in_fund {
            spur_peak = spur_peak.max(v);
        }
    }

    let db = |r: f64| 10.0 * r.max(1e-30).log10();
    let snr_db = db(fund_power / noise_power.max(1e-30));
    let sinad_db = db(fund_power / (noise_power + harm_power).max(1e-30));
    let thd_db = db(harm_power.max(1e-30) / fund_power);
    let sfdr_db = db(fund_peak / spur_peak.max(1e-30));
    let enob = (sinad_db - 1.76) / 6.02;

    ToneMetrics {
        fundamental_hz: kf as f64 * fs / n as f64,
        fundamental_power: fund_power,
        snr_db,
        sinad_db,
        thd_db,
        sfdr_db,
        enob,
    }
}

/// Theoretical full-scale SNR of an ideal `bits`-bit quantizer in dB:
/// `6.02·bits + 1.76`.
pub fn ideal_quantizer_snr_db(bits: u32) -> f64 {
    6.02 * bits as f64 + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::rng::Randomizer;
    use std::f64::consts::PI;

    fn sine(n: usize, fs: f64, f0: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn clean_tone_has_high_snr() {
        let fs = 1000.0;
        let x = sine(4096, fs, 101.0, 1.0);
        let m = analyze_tone(&x, fs, Window::BlackmanHarris);
        assert!(m.snr_db > 70.0, "snr {}", m.snr_db);
        assert!((m.fundamental_hz - 101.0).abs() < fs / 4096.0 + 0.01);
    }

    #[test]
    fn snr_matches_injected_noise() {
        let fs = 1000.0;
        let n = 1 << 14;
        let mut rng = Randomizer::from_seed(77);
        // SNR target 40 dB: noise sigma = A/sqrt(2)/10^2
        let amp: f64 = 1.0;
        let sigma = amp / 2f64.sqrt() / 100.0;
        let x: Vec<f64> = sine(n, fs, 123.0, amp)
            .into_iter()
            .map(|v| v + rng.normal(0.0, sigma))
            .collect();
        let m = analyze_tone(&x, fs, Window::Hann);
        assert!((m.snr_db - 40.0).abs() < 1.5, "snr {}", m.snr_db);
    }

    #[test]
    fn thd_detects_harmonic_distortion() {
        let fs = 1000.0;
        let n = 8192;
        // fundamental + second harmonic 40 dB down
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 50.0 * t).sin() + 0.01 * (2.0 * PI * 100.0 * t).sin()
            })
            .collect();
        let m = analyze_tone(&x, fs, Window::BlackmanHarris);
        assert!((m.thd_db + 40.0).abs() < 1.0, "thd {}", m.thd_db);
        assert!((m.sfdr_db - 40.0).abs() < 1.0, "sfdr {}", m.sfdr_db);
    }

    #[test]
    fn sinad_combines_noise_and_distortion() {
        let fs = 1000.0;
        let n = 8192;
        let mut rng = Randomizer::from_seed(5);
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 60.0 * t).sin()
                    + 0.02 * (2.0 * PI * 180.0 * t).sin()
                    + rng.normal(0.0, 0.005)
            })
            .collect();
        let m = analyze_tone(&x, fs, Window::Hann);
        assert!(m.sinad_db < m.snr_db);
        assert!(m.sinad_db > 20.0);
    }

    #[test]
    fn enob_of_ideal_quantizer() {
        // quantize a full-scale sine to 10 bits; ENOB should be ~10
        let fs = 1000.0;
        let n = 1 << 14;
        let bits = 10;
        let lsb = 2.0 / (1u64 << bits) as f64;
        // slightly off-bin frequency to decorrelate quantization error
        let x: Vec<f64> = sine(n, fs, 123.456, 0.999)
            .into_iter()
            .map(|v| (v / lsb).round() * lsb)
            .collect();
        let m = analyze_tone(&x, fs, Window::BlackmanHarris);
        assert!((m.enob - bits as f64).abs() < 0.6, "enob {}", m.enob);
    }

    #[test]
    fn ideal_snr_formula() {
        assert!((ideal_quantizer_snr_db(10) - 61.96).abs() < 1e-9);
        assert!((ideal_quantizer_snr_db(16) - 98.08).abs() < 1e-9);
    }

    #[test]
    fn aliased_harmonics_are_folded() {
        let fs = 1000.0;
        let n = 8192;
        // fundamental at 400 Hz: 2nd harmonic at 800 folds to 200 Hz
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 400.0 * t).sin() + 0.01 * (2.0 * PI * 800.0 * t).sin()
            })
            .collect();
        let m = analyze_tone(&x, fs, Window::BlackmanHarris);
        // the folded harmonic must be counted as distortion, not noise
        assert!((m.thd_db + 40.0).abs() < 1.5, "thd {}", m.thd_db);
        assert!(m.snr_db > 60.0);
    }

    #[test]
    #[should_panic(expected = "record too short")]
    fn short_record_panics() {
        let _ = analyze_tone(&[0.0; 16], 1.0, Window::Hann);
    }
}
