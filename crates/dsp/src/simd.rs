//! Runtime SIMD-dispatch helpers shared by the workspace's
//! `#[target_feature]`-recompiled kernels ([`crate::goertzel`]'s
//! banked recurrence, `rfbist_sampling`'s grid walk).

/// `true` when `RFBIST_FORCE_SCALAR` is set (to anything but `0` or
/// empty): the runtime SIMD dispatch is skipped and the portable
/// scalar kernels run instead. `RUSTFLAGS`-level feature flags cannot
/// reach the `target_feature`-recompiled kernels (that is the whole
/// point of runtime dispatch), so this is the hook CI's
/// scalar-portability job uses to actually execute the fallback path
/// on SIMD-capable runners. Read once and cached.
pub fn force_scalar() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("RFBIST_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}
