//! Error vector magnitude and constellation utilities.
//!
//! EVM quantifies modulation quality at the symbol level; the BIST engine
//! reports it alongside spectral-mask margins when a demodulating check is
//! requested.

use rfbist_math::Complex64;

/// Result of an EVM measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvmResult {
    /// RMS EVM as a fraction of the reference RMS level.
    pub rms: f64,
    /// Peak EVM as a fraction of the reference RMS level.
    pub peak: f64,
}

impl EvmResult {
    /// RMS EVM in percent.
    pub fn rms_percent(&self) -> f64 {
        self.rms * 100.0
    }

    /// RMS EVM in dB (`20·log10(rms)`).
    pub fn rms_db(&self) -> f64 {
        20.0 * self.rms.max(1e-30).log10()
    }
}

/// Computes EVM between measured and reference symbol sequences.
///
/// EVM is normalized by the RMS magnitude of the reference constellation,
/// per the usual communications-standard definition.
///
/// # Panics
///
/// Panics if lengths differ or the sequences are empty.
pub fn evm(measured: &[Complex64], reference: &[Complex64]) -> EvmResult {
    assert_eq!(measured.len(), reference.len(), "EVM needs equal lengths");
    assert!(!measured.is_empty(), "EVM over empty sequences");
    let ref_power: f64 =
        reference.iter().map(|z| z.norm_sqr()).sum::<f64>() / reference.len() as f64;
    let ref_rms = ref_power.sqrt().max(1e-30);
    let mut sum_err = 0.0;
    let mut peak_err = 0.0f64;
    for (m, r) in measured.iter().zip(reference) {
        let e = (*m - *r).abs();
        sum_err += e * e;
        peak_err = peak_err.max(e);
    }
    let rms = (sum_err / measured.len() as f64).sqrt() / ref_rms;
    EvmResult {
        rms,
        peak: peak_err / ref_rms,
    }
}

/// Hard-decision detection: maps each measured point to the nearest
/// constellation point, returning `(decisions, symbol_error_count)`
/// against the transmitted indices when given.
pub fn nearest_symbol(measured: Complex64, constellation: &[Complex64]) -> usize {
    assert!(!constellation.is_empty(), "empty constellation");
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in constellation.iter().enumerate() {
        let d = (measured - c).norm_sqr();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Counts symbol errors after hard-decision detection.
///
/// # Panics
///
/// Panics if `measured` and `tx_indices` lengths differ.
pub fn symbol_errors(
    measured: &[Complex64],
    tx_indices: &[usize],
    constellation: &[Complex64],
) -> usize {
    assert_eq!(measured.len(), tx_indices.len(), "length mismatch");
    measured
        .iter()
        .zip(tx_indices)
        .filter(|(m, &tx)| nearest_symbol(**m, constellation) != tx)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qpsk() -> Vec<Complex64> {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        vec![
            Complex64::new(s, s),
            Complex64::new(-s, s),
            Complex64::new(-s, -s),
            Complex64::new(s, -s),
        ]
    }

    #[test]
    fn perfect_symbols_have_zero_evm() {
        let c = qpsk();
        let r = evm(&c, &c);
        assert_eq!(r.rms, 0.0);
        assert_eq!(r.peak, 0.0);
        assert!(r.rms_db() < -200.0);
    }

    #[test]
    fn known_offset_gives_known_evm() {
        let c = qpsk(); // unit RMS constellation
        let measured: Vec<Complex64> = c.iter().map(|&z| z + Complex64::new(0.1, 0.0)).collect();
        let r = evm(&measured, &c);
        assert!((r.rms - 0.1).abs() < 1e-12);
        assert!((r.peak - 0.1).abs() < 1e-12);
        assert!((r.rms_percent() - 10.0).abs() < 1e-9);
        assert!((r.rms_db() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn peak_exceeds_rms_for_single_outlier() {
        let c = qpsk();
        let mut measured = c.clone();
        measured[2] += Complex64::new(0.5, 0.0);
        let r = evm(&measured, &c);
        assert!(r.peak > r.rms);
        assert!((r.peak - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_symbol_decides_correctly() {
        let c = qpsk();
        for (i, &s) in c.iter().enumerate() {
            let noisy = s + Complex64::new(0.05, -0.03);
            assert_eq!(nearest_symbol(noisy, &c), i);
        }
    }

    #[test]
    fn symbol_errors_counted() {
        let c = qpsk();
        let tx = [0usize, 1, 2, 3];
        // flip symbol 1 to land nearest constellation point 3
        let measured = vec![c[0], c[3], c[2], c[3]];
        assert_eq!(symbol_errors(&measured, &tx, &c), 1);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn evm_length_mismatch_panics() {
        let c = qpsk();
        let _ = evm(&c[..2], &c);
    }
}
