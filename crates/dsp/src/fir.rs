//! FIR filter design (windowed-sinc) and application.
//!
//! Frequencies are normalized to the sample rate: a cutoff of `0.25` means
//! `fs/4`. Designs force odd lengths where a type-I (symmetric, integer
//! group delay) response is required.

use crate::window::Window;
use rfbist_math::special::sinc;
use rfbist_math::Complex64;
use std::f64::consts::PI;

/// A finite-impulse-response filter defined by its taps.
///
/// # Example
///
/// ```
/// use rfbist_dsp::fir::FirFilter;
/// use rfbist_dsp::window::Window;
///
/// let lp = FirFilter::lowpass(63, 0.2, Window::Kaiser(8.0));
/// let resp_pass = lp.magnitude_response(0.05);
/// let resp_stop = lp.magnitude_response(0.45);
/// assert!(resp_pass > 0.99);
/// assert!(resp_stop < 1e-3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Wraps raw taps as a filter.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        FirFilter { taps }
    }

    /// Windowed-sinc lowpass with the given normalized cutoff
    /// (`0 < cutoff < 0.5`), normalized to unit DC gain.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the cutoff is out of range.
    pub fn lowpass(len: usize, cutoff: f64, window: Window) -> Self {
        assert!(len > 0, "filter length must be positive");
        assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5)");
        let w = window.coefficients(len);
        let mid = (len - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..len)
            .map(|i| 2.0 * cutoff * sinc(2.0 * cutoff * (i as f64 - mid)) * w[i])
            .collect();
        let sum: f64 = taps.iter().sum();
        taps.iter_mut().for_each(|t| *t /= sum);
        FirFilter { taps }
    }

    /// Windowed-sinc highpass (spectral inversion of the lowpass); `len`
    /// must be odd so the inverted impulse stays symmetric.
    ///
    /// # Panics
    ///
    /// Panics if `len` is even or the cutoff is out of range.
    pub fn highpass(len: usize, cutoff: f64, window: Window) -> Self {
        assert!(len % 2 == 1, "highpass requires odd length");
        let lp = FirFilter::lowpass(len, cutoff, window);
        let mid = len / 2;
        let mut taps: Vec<f64> = lp.taps.iter().map(|&t| -t).collect();
        taps[mid] += 1.0;
        FirFilter { taps }
    }

    /// Windowed-sinc bandpass between normalized `f_lo` and `f_hi`,
    /// normalized to unit gain at the band center.
    ///
    /// # Panics
    ///
    /// Panics if `len` is even or the band is invalid.
    pub fn bandpass(len: usize, f_lo: f64, f_hi: f64, window: Window) -> Self {
        assert!(len % 2 == 1, "bandpass requires odd length");
        assert!(
            f_lo > 0.0 && f_hi > f_lo && f_hi < 0.5,
            "band must satisfy 0 < f_lo < f_hi < 0.5"
        );
        let w = window.coefficients(len);
        let mid = (len - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..len)
            .map(|i| {
                let t = i as f64 - mid;
                (2.0 * f_hi * sinc(2.0 * f_hi * t) - 2.0 * f_lo * sinc(2.0 * f_lo * t)) * w[i]
            })
            .collect();
        // normalize at band center
        let fc = 0.5 * (f_lo + f_hi);
        let gain = FirFilter { taps: taps.clone() }.magnitude_response(fc);
        taps.iter_mut().for_each(|t| *t /= gain);
        FirFilter { taps }
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Filter order (`taps − 1`).
    pub fn order(&self) -> usize {
        self.taps.len() - 1
    }

    /// Group delay in samples for a symmetric (linear-phase) design.
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Full convolution (`len(x) + len(taps) − 1` output samples).
    pub fn convolve(&self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        let m = self.taps.len();
        if n == 0 {
            return Vec::new();
        }
        let mut y = vec![0.0; n + m - 1];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &h) in self.taps.iter().enumerate() {
                y[i + j] += xi * h;
            }
        }
        y
    }

    /// "Same"-length filtering: convolution trimmed so the output aligns
    /// with the input (delay-compensated by the integer part of the group
    /// delay).
    pub fn filter_same(&self, x: &[f64]) -> Vec<f64> {
        let full = self.convolve(x);
        let offset = (self.taps.len() - 1) / 2;
        full[offset..offset + x.len()].to_vec()
    }

    /// Complex frequency response `H(e^{j2πf})` at normalized frequency
    /// `f` (cycles/sample).
    pub fn frequency_response(&self, f: f64) -> Complex64 {
        self.taps
            .iter()
            .enumerate()
            .map(|(n, &h)| Complex64::cis(-2.0 * PI * f * n as f64) * h)
            .sum()
    }

    /// Magnitude response `|H|` at normalized frequency `f`.
    pub fn magnitude_response(&self, f: f64) -> f64 {
        self.frequency_response(f).abs()
    }

    /// Magnitude response in dB.
    pub fn magnitude_response_db(&self, f: f64) -> f64 {
        20.0 * self.magnitude_response(f).max(1e-300).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_dc_gain_is_one() {
        let f = FirFilter::lowpass(41, 0.2, Window::Hamming);
        assert!((f.magnitude_response(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_attenuates_stopband() {
        let f = FirFilter::lowpass(63, 0.15, Window::Kaiser(8.0));
        assert!(f.magnitude_response(0.05) > 0.99);
        assert!(f.magnitude_response_db(0.35) < -60.0);
    }

    #[test]
    fn highpass_blocks_dc_passes_high() {
        let f = FirFilter::highpass(63, 0.2, Window::Kaiser(8.0));
        assert!(f.magnitude_response(0.0) < 1e-6);
        assert!(f.magnitude_response(0.4) > 0.99);
    }

    #[test]
    fn bandpass_shape() {
        let f = FirFilter::bandpass(101, 0.1, 0.2, Window::Kaiser(8.0));
        assert!(f.magnitude_response(0.15) > 0.999);
        assert!(f.magnitude_response_db(0.02) < -40.0);
        assert!(f.magnitude_response_db(0.35) < -40.0);
    }

    #[test]
    fn taps_are_symmetric_linear_phase() {
        let f = FirFilter::lowpass(31, 0.25, Window::Blackman);
        let t = f.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-15);
        }
        assert_eq!(f.group_delay(), 15.0);
        assert_eq!(f.order(), 30);
    }

    #[test]
    fn convolution_identity_filter() {
        let ident = FirFilter::from_taps(vec![1.0]);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(ident.convolve(&x), x);
        assert_eq!(ident.filter_same(&x), x);
    }

    #[test]
    fn convolution_known_result() {
        let f = FirFilter::from_taps(vec![1.0, 1.0]);
        assert_eq!(f.convolve(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 5.0, 3.0]);
    }

    #[test]
    fn filter_same_preserves_length_and_aligns() {
        let f = FirFilter::lowpass(21, 0.4, Window::Hamming);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let y = f.filter_same(&x);
        assert_eq!(y.len(), x.len());
        // wide-open lowpass ≈ identity in the middle of the block
        for i in 30..70 {
            assert!((y[i] - x[i]).abs() < 0.05, "sample {i}");
        }
    }

    #[test]
    fn linearity_of_filtering() {
        let f = FirFilter::lowpass(15, 0.3, Window::Hann);
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.05).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let fa = f.convolve(&a);
        let fb = f.convolve(&b);
        let fsum = f.convolve(&sum);
        for i in 0..fsum.len() {
            assert!((fsum[i] - (2.0 * fa[i] + 3.0 * fb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn tone_through_lowpass_measures_response() {
        // steady-state sine amplitude after filtering ≈ |H(f0)|, estimated
        // from the RMS over an integer number of periods
        let f0 = 0.1;
        let f = FirFilter::lowpass(41, 0.2, Window::Hamming);
        let x: Vec<f64> = (0..400).map(|i| (2.0 * PI * f0 * i as f64).sin()).collect();
        let y = f.filter_same(&x);
        let mid = &y[100..300]; // 20 full periods
        let rms = (mid.iter().map(|v| v * v).sum::<f64>() / mid.len() as f64).sqrt();
        let amp = rms * 2f64.sqrt();
        assert!((amp - f.magnitude_response(f0)).abs() < 0.01);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let f = FirFilter::lowpass(5, 0.1, Window::Hann);
        assert!(f.convolve(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "cutoff must be in (0, 0.5)")]
    fn invalid_cutoff_panics() {
        let _ = FirFilter::lowpass(11, 0.6, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn even_highpass_panics() {
        let _ = FirFilter::highpass(10, 0.2, Window::Hann);
    }
}
