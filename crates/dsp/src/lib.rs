//! Digital signal processing library for the `rfbist` workspace.
//!
//! Built entirely on [`rfbist_math`], this crate provides the filtering and
//! spectral-estimation machinery the BIST reproduction needs:
//!
//! - [`window`]: window functions (rectangular through Kaiser),
//! - [`fir`]: windowed-sinc FIR design and filtering,
//! - [`iir`]: biquad sections and Butterworth designs (behavioral analog
//!   filter models),
//! - [`srrc`]: raised-cosine and square-root raised-cosine pulses,
//! - [`psd`]: periodogram and Welch power-spectral-density estimation,
//! - [`specmetrics`]: single-tone converter metrics (SNR, SINAD, SFDR,
//!   ENOB, THD),
//! - [`resample`]: rational and sinc-based resampling, fractional delay,
//! - [`goertzel`]: single-bin DFT evaluation,
//! - [`evm`]: error-vector-magnitude and constellation utilities.
//!
//! # Example
//!
//! ```
//! use rfbist_dsp::window::Window;
//! use rfbist_dsp::fir::FirFilter;
//!
//! // 31-tap lowpass at a quarter of the sample rate.
//! let fir = FirFilter::lowpass(31, 0.25, Window::Hamming);
//! assert_eq!(fir.taps().len(), 31);
//! // Unit DC gain by construction.
//! let dc: f64 = fir.taps().iter().sum();
//! assert!((dc - 1.0).abs() < 1e-12);
//! ```

pub mod evm;
pub mod fir;
pub mod goertzel;
pub mod iir;
pub mod psd;
pub mod resample;
pub mod simd;
pub mod specmetrics;
pub mod srrc;
pub mod window;
