//! Power spectral density estimation.
//!
//! Periodogram and Welch estimators for real-valued signals, returning
//! one-sided densities in linear power-per-hertz units (with dB helpers).
//! The spectral-mask compliance engine in `rfbist-core` consumes these.

use crate::window::Window;
use rfbist_math::fft::fft_real;

/// A one-sided power spectral density estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct PsdEstimate {
    /// Bin center frequencies in Hz, `0 ..= fs/2`.
    pub freqs: Vec<f64>,
    /// Power density per bin, in (signal units)²/Hz.
    pub psd: Vec<f64>,
    /// Resolution bandwidth of the estimate in Hz (per-bin spacing times
    /// the window's equivalent noise bandwidth).
    pub rbw: f64,
}

impl PsdEstimate {
    /// PSD in dB (10·log10 of the density); floors at −300 dB.
    pub fn psd_db(&self) -> Vec<f64> {
        self.psd
            .iter()
            .map(|&p| 10.0 * p.max(1e-30).log10())
            .collect()
    }

    /// Total power integrated over `[f_lo, f_hi]` (inclusive of partial
    /// edge bins by nearest-bin approximation).
    pub fn band_power(&self, f_lo: f64, f_hi: f64) -> f64 {
        assert!(f_hi >= f_lo, "band must be ordered");
        if self.freqs.len() < 2 {
            return 0.0;
        }
        let df = self.freqs[1] - self.freqs[0];
        self.freqs
            .iter()
            .zip(&self.psd)
            .filter(|(f, _)| **f >= f_lo && **f <= f_hi)
            .map(|(_, p)| p * df)
            .sum()
    }

    /// Total power across the whole estimate.
    pub fn total_power(&self) -> f64 {
        if self.freqs.len() < 2 {
            return 0.0;
        }
        let df = self.freqs[1] - self.freqs[0];
        self.psd.iter().map(|p| p * df).sum()
    }

    /// Mean one-sided density (linear, per Hz) over the bins whose
    /// offset from `carrier_hz` lies in `[offset_lo, offset_hi]` (both
    /// sidebands) — the noise-floor estimator behind the BIST's
    /// noise-figure verdict. Uses the same bin-center membership test
    /// as the banked-Goertzel scan path, so the two strategies read
    /// the same bins. Returns `None` when no bin falls in the band.
    ///
    /// # Panics
    ///
    /// Panics if the band is malformed (`offset_lo < 0` or
    /// `offset_hi <= offset_lo`).
    pub fn mean_density_in_offset_band(
        &self,
        carrier_hz: f64,
        offset_lo: f64,
        offset_hi: f64,
    ) -> Option<f64> {
        assert!(
            offset_lo >= 0.0 && offset_hi > offset_lo,
            "noise band offsets must satisfy 0 <= lo < hi"
        );
        let (mut sum, mut n) = (0.0f64, 0usize);
        for (f, p) in self.freqs.iter().zip(&self.psd) {
            let offset = (f - carrier_hz).abs();
            if offset >= offset_lo && offset <= offset_hi {
                sum += p;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Frequency of the strongest bin.
    pub fn peak_frequency(&self) -> f64 {
        self.freqs
            .iter()
            .zip(&self.psd)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in PSD"))
            .map(|(f, _)| *f)
            .unwrap_or(0.0)
    }
}

/// Single-segment windowed periodogram of a real signal.
///
/// # Panics
///
/// Panics if `x` is empty or `fs <= 0`.
pub fn periodogram(x: &[f64], fs: f64, window: Window) -> PsdEstimate {
    assert!(!x.is_empty(), "periodogram of empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    let w = window.coefficients(x.len());
    periodogram_with_coefficients(x, fs, &w)
}

/// Periodogram core with the window coefficients (and the
/// normalizations derived from them) supplied by the caller, so
/// averaging estimators can generate the window once per run instead
/// of once per segment.
fn periodogram_with_coefficients(x: &[f64], fs: f64, w: &[f64]) -> PsdEstimate {
    let n = x.len();
    debug_assert_eq!(n, w.len());
    let u: f64 = w.iter().map(|&v| v * v).sum(); // window power norm
    let sum: f64 = w.iter().sum();
    let xw: Vec<f64> = x.iter().zip(w).map(|(a, b)| a * b).collect();
    let spec = fft_real(&xw);
    let nbins = n / 2 + 1;
    let scale = 1.0 / (fs * u);
    let mut psd: Vec<f64> = (0..nbins).map(|k| spec[k].norm_sqr() * scale).collect();
    // double the interior bins for one-sided density
    for (k, p) in psd.iter_mut().enumerate() {
        let is_nyquist = n.is_multiple_of(2) && k == nbins - 1;
        if k != 0 && !is_nyquist {
            *p *= 2.0;
        }
    }
    let freqs: Vec<f64> = (0..nbins).map(|k| k as f64 * fs / n as f64).collect();
    // ENBW in bins is n·Σw²/(Σw)², computed from the shared coefficients.
    let rbw = fs / n as f64 * (n as f64 * u / (sum * sum));
    PsdEstimate { freqs, psd, rbw }
}

/// Welch's averaged-periodogram PSD estimate.
///
/// `segment_len` samples per segment, `overlap` samples shared between
/// consecutive segments. A trailing partial segment is discarded.
///
/// # Panics
///
/// Panics if `segment_len == 0`, `overlap >= segment_len`, `fs <= 0`, or
/// `x` is shorter than one segment.
pub fn welch(
    x: &[f64],
    fs: f64,
    segment_len: usize,
    overlap: usize,
    window: Window,
) -> PsdEstimate {
    assert!(segment_len > 0, "segment length must be positive");
    assert!(
        overlap < segment_len,
        "overlap must be smaller than the segment"
    );
    assert!(fs > 0.0, "sample rate must be positive");
    assert!(
        x.len() >= segment_len,
        "signal shorter ({}) than one segment ({segment_len})",
        x.len()
    );
    let hop = segment_len - overlap;
    // One coefficient vector shared by every segment: window generation
    // (a Bessel series per tap for Kaiser) runs once, not per segment.
    let w = window.coefficients(segment_len);
    let mut acc: Option<PsdEstimate> = None;
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let est = periodogram_with_coefficients(&x[start..start + segment_len], fs, &w);
        match &mut acc {
            None => acc = Some(est),
            Some(a) => {
                for (p, q) in a.psd.iter_mut().zip(&est.psd) {
                    *p += *q;
                }
            }
        }
        count += 1;
        start += hop;
    }
    let mut out = acc.expect("at least one segment");
    out.psd.iter_mut().for_each(|p| *p /= count as f64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, f0: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn tone_power_is_recovered() {
        // A sine of amplitude A has power A²/2 regardless of window.
        let fs = 1000.0;
        let x = tone(4096, fs, 100.0, 2.0);
        for w in [Window::Rectangular, Window::Hann, Window::Kaiser(8.0)] {
            let est = periodogram(&x, fs, w);
            let p = est.band_power(80.0, 120.0);
            assert!((p - 2.0).abs() < 0.05, "{w:?}: {p}");
        }
    }

    #[test]
    fn offset_band_mean_density_recovers_white_noise_floor() {
        // white noise of variance σ² has one-sided density σ²/(fs/2);
        // a quiet offset band away from a strong tone must read it
        let fs = 1000.0;
        let n = 1 << 14;
        let mut rng = rfbist_math::rng::Randomizer::from_seed(9);
        let sigma = 0.01f64;
        let x: Vec<f64> = tone(n, fs, 100.0, 1.0)
            .into_iter()
            .map(|v| v + rng.normal(0.0, sigma))
            .collect();
        let est = welch(&x, fs, 2048, 1024, Window::BlackmanHarris);
        let want = sigma * sigma / (fs / 2.0);
        let got = est
            .mean_density_in_offset_band(100.0, 150.0, 300.0)
            .expect("band has bins");
        let err_db = 10.0 * (got / want).log10();
        assert!(err_db.abs() < 1.0, "density off by {err_db} dB");
    }

    #[test]
    fn offset_band_covers_both_sidebands() {
        // a spur below the carrier must be seen by the offset band
        let fs = 1000.0;
        let x: Vec<f64> = tone(8192, fs, 300.0, 1.0)
            .iter()
            .zip(tone(8192, fs, 250.0, 0.1))
            .map(|(a, b)| a + b)
            .collect();
        let est = welch(&x, fs, 2048, 1024, Window::BlackmanHarris);
        let with_spur = est.mean_density_in_offset_band(300.0, 40.0, 60.0).unwrap();
        let quiet = est
            .mean_density_in_offset_band(300.0, 120.0, 140.0)
            .unwrap();
        assert!(with_spur > 100.0 * quiet, "{with_spur} vs {quiet}");
        assert!(est.mean_density_in_offset_band(300.0, 0.01, 0.02).is_none());
    }

    #[test]
    #[should_panic(expected = "0 <= lo < hi")]
    fn malformed_offset_band_panics() {
        let est = periodogram(&tone(256, 1000.0, 100.0, 1.0), 1000.0, Window::Hann);
        let _ = est.mean_density_in_offset_band(100.0, 50.0, 10.0);
    }

    #[test]
    fn peak_frequency_matches_tone() {
        let fs = 1000.0;
        let x = tone(2048, fs, 125.0, 1.0);
        let est = periodogram(&x, fs, Window::Hann);
        assert!((est.peak_frequency() - 125.0).abs() < fs / 2048.0 + 0.01);
    }

    #[test]
    fn white_noise_psd_is_flat_at_variance_over_bandwidth() {
        use rfbist_math::rng::Randomizer;
        let mut rng = Randomizer::from_seed(123);
        let fs = 2000.0;
        let sigma2: f64 = 4.0;
        let x = rng.normal_vec(1 << 16, 0.0, sigma2.sqrt());
        let est = welch(&x, fs, 1024, 512, Window::Hann);
        // expected density: σ²/(fs/2) one-sided
        let expected = sigma2 / (fs / 2.0);
        let mid: Vec<f64> = est.psd[10..est.psd.len() - 10].to_vec();
        let mean_psd = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!(
            (mean_psd - expected).abs() / expected < 0.1,
            "{mean_psd} vs {expected}"
        );
        // and total power ≈ variance
        assert!((est.total_power() - sigma2).abs() / sigma2 < 0.1);
    }

    #[test]
    fn welch_reduces_variance_vs_periodogram() {
        use rfbist_math::rng::Randomizer;
        let mut rng = Randomizer::from_seed(7);
        let fs = 1000.0;
        let x = rng.normal_vec(1 << 14, 0.0, 1.0);
        let single = periodogram(&x, fs, Window::Hann);
        let avg = welch(&x, fs, 512, 256, Window::Hann);
        let var = |p: &[f64]| {
            let m = p.iter().sum::<f64>() / p.len() as f64;
            p.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / p.len() as f64
        };
        // Compare variance on overlapping-resolution estimates by decimating
        // the periodogram to Welch's bin count.
        let dec: Vec<f64> = single
            .psd
            .chunks(single.psd.len() / avg.psd.len())
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        assert!(var(&avg.psd) < var(&dec));
    }

    #[test]
    fn band_power_splits_tones() {
        let fs = 1000.0;
        let mut x = tone(8192, fs, 100.0, 1.0);
        let t2 = tone(8192, fs, 300.0, 0.5);
        for (a, b) in x.iter_mut().zip(&t2) {
            *a += *b;
        }
        let est = periodogram(&x, fs, Window::Hann);
        let p1 = est.band_power(90.0, 110.0);
        let p2 = est.band_power(290.0, 310.0);
        assert!((p1 - 0.5).abs() < 0.02, "p1 {p1}");
        assert!((p2 - 0.125).abs() < 0.01, "p2 {p2}");
    }

    #[test]
    fn psd_db_is_monotone_transform() {
        let fs = 100.0;
        let x = tone(512, fs, 10.0, 1.0);
        let est = periodogram(&x, fs, Window::Hann);
        let db = est.psd_db();
        let imax_lin = est
            .psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let imax_db = db
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(imax_lin, imax_db);
    }

    #[test]
    fn rbw_scales_with_window() {
        let fs = 1000.0;
        let x = tone(1024, fs, 100.0, 1.0);
        let rect = periodogram(&x, fs, Window::Rectangular);
        let hann = periodogram(&x, fs, Window::Hann);
        assert!(hann.rbw > rect.rbw); // Hann ENBW = 1.5 bins
        assert!((rect.rbw - fs / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn welch_handles_exact_and_partial_segments() {
        let fs = 100.0;
        let x = tone(1000, fs, 10.0, 1.0);
        let est = welch(&x, fs, 256, 128, Window::Hann);
        assert_eq!(est.freqs.len(), 129);
        assert!((est.peak_frequency() - 10.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn welch_too_short_panics() {
        let _ = welch(&[1.0; 10], 1.0, 64, 32, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn welch_bad_overlap_panics() {
        let _ = welch(&[1.0; 100], 1.0, 32, 32, Window::Hann);
    }
}
