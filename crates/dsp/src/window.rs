//! Window functions.
//!
//! Symmetric (filter-design) windows are generated with the standard
//! `N−1` denominator convention, matching Matlab's `window(@name, N)` and
//! SciPy's `sym=True`. The Kaiser window — used by the paper to window the
//! Kohlenberg reconstruction filter — exposes its `β` parameter directly
//! and through the Kaiser-design formula from stopband attenuation.

use rfbist_math::special::bessel_i0;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::rc::Rc;

thread_local! {
    /// Most-recently-used coefficient table, keyed by (window, length).
    /// Welch PSDs, the banked mask scan and repeated BIST runs all
    /// regenerate the same window — a cosine or Bessel series per tap,
    /// ~300 µs for the mask path's 8192-tap Blackman–Harris — so the
    /// cache turns steady-state regeneration into one memcpy. A single
    /// entry suffices: the workspace's window traffic comes in runs of
    /// one configuration (mirroring the FFT twiddle cache).
    static COEFF_CACHE: RefCell<Option<(Window, usize, Rc<[f64]>)>> = const { RefCell::new(None) };
}

/// Window function selector.
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// let w = Window::Kaiser(8.0).coefficients(61);
/// assert_eq!(w.len(), 61);
/// // Symmetric, peaking at the center tap.
/// assert!((w[0] - w[60]).abs() < 1e-12);
/// assert!((w[30] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Triangular (Bartlett) window.
    Bartlett,
    /// Hann (raised-cosine) window.
    Hann,
    /// Hamming window (0.54/0.46 coefficients).
    Hamming,
    /// Blackman window (exact three-term coefficients 0.42/0.5/0.08).
    Blackman,
    /// Four-term Blackman–Harris window (−92 dB sidelobes).
    BlackmanHarris,
    /// Kaiser window with shape parameter `β`.
    Kaiser(f64),
}

impl Window {
    /// Generates the symmetric `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return vec![1.0];
        }
        COEFF_CACHE.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some((w, len, table)) = slot.as_ref() {
                if *w == self && *len == n {
                    return table.to_vec();
                }
            }
            let m = (n - 1) as f64;
            let table: Rc<[f64]> = (0..n).map(|i| self.at(i as f64 / m)).collect();
            let out = table.to_vec();
            *slot = Some((self, n, table));
            out
        })
    }

    /// Evaluates the window at normalized position `x ∈ [0, 1]`
    /// (0 and 1 are the edges, 0.5 the center).
    ///
    /// Values outside `[0, 1]` return 0. This continuous form is what the
    /// PNBS reconstructor uses to taper the interpolant at arbitrary
    /// (non-integer) tap offsets.
    pub fn at(self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        match self {
            Window::Rectangular => 1.0,
            Window::Bartlett => 1.0 - (2.0 * x - 1.0).abs(),
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * (2.0 * PI * x).cos() + 0.14128 * (4.0 * PI * x).cos()
                    - 0.01168 * (6.0 * PI * x).cos()
            }
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // in [-1, 1]
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Kaiser `β` for a target stopband attenuation in dB
    /// (Kaiser's empirical formula).
    pub fn kaiser_beta(atten_db: f64) -> f64 {
        if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
        } else {
            0.0
        }
    }

    /// Estimated Kaiser filter order for given attenuation (dB) and
    /// normalized transition width (cycles/sample).
    pub fn kaiser_order(atten_db: f64, transition_width: f64) -> usize {
        assert!(transition_width > 0.0, "transition width must be positive");
        (((atten_db - 7.95) / (2.285 * 2.0 * PI * transition_width)).ceil() as usize).max(1)
    }

    /// Coherent gain: mean of the window coefficients (1.0 for
    /// rectangular).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        w.iter().sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins: `N·Σw² / (Σw)²`.
    pub fn enbw(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        let sum: f64 = w.iter().sum();
        let sumsq: f64 = w.iter().map(|&v| v * v).sum();
        n as f64 * sumsq / (sum * sum)
    }
}

impl Window {
    /// Prepares this window for repeated pointwise evaluation.
    ///
    /// The PNBS reconstruction plan calls the window twice per tap per
    /// probe instant; for [`Window::Kaiser`] the naive
    /// [`at`](Self::at) pays a Bessel-`I0` series (with its per-term
    /// divisions) *and* the `1/I0(β)` normalization on every call. The
    /// sampler hoists the normalization and rewrites the window as a
    /// polynomial table evaluated by Horner's rule — see
    /// [`WindowSampler`].
    pub fn sampler(self) -> WindowSampler {
        WindowSampler::new(self)
    }
}

impl Default for Window {
    /// Hann — a safe general-purpose default for spectral estimation.
    fn default() -> Self {
        Window::Hann
    }
}

/// A window prepared for cheap repeated evaluation at arbitrary
/// (non-grid) positions.
///
/// For the Kaiser window the key identity is that
/// `I0(β·√(1−t²))` is an *entire* function of `y = 1 − t²`:
///
/// ```text
/// I0(β√y) = Σₖ ((β²/4)ᵏ / (k!)²) · yᵏ
/// ```
///
/// so the whole window is a short polynomial in `y` (≈ 30 terms for
/// β = 8 at full double precision) whose coefficients — *including* the
/// hoisted `1/I0(β)` normalization — are computed once. Evaluation is
/// then one Horner pass: no Bessel series, no per-call divisions. All
/// other window shapes are already one or two trig calls and delegate
/// to [`Window::at`].
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// let w = Window::Kaiser(8.0);
/// let s = w.sampler();
/// for i in 0..=100 {
///     let x = i as f64 / 100.0;
///     assert!((s.at(x) - w.at(x)).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct WindowSampler {
    repr: SamplerRepr,
}

#[derive(Clone, Debug)]
enum SamplerRepr {
    /// Kaiser as a normalized polynomial in `y = 1 − (2x−1)²`,
    /// highest-order coefficient first (Horner order).
    KaiserPoly(Vec<f64>),
    /// Shapes whose pointwise form is already cheap.
    Direct(Window),
}

impl WindowSampler {
    fn new(window: Window) -> Self {
        let repr = match window {
            Window::Kaiser(beta) => {
                // cₖ = (β²/4)ᵏ/(k!)², accumulated exactly like
                // `bessel_i0`'s series so the sampler agrees with the
                // direct path to the same convergence floor.
                let q = beta * beta / 4.0;
                let mut coeffs = vec![1.0f64];
                let mut term = 1.0f64;
                let mut sum = 1.0f64;
                let mut k = 1.0f64;
                loop {
                    term *= q / (k * k);
                    coeffs.push(term);
                    sum += term;
                    if term < sum * 1e-17 || k > 400.0 {
                        break;
                    }
                    k += 1.0;
                }
                // `sum` is Σcₖ = I0(β): fold the normalization in.
                let inv_norm = 1.0 / sum;
                coeffs.iter_mut().for_each(|c| *c *= inv_norm);
                coeffs.reverse();
                SamplerRepr::KaiserPoly(coeffs)
            }
            other => SamplerRepr::Direct(other),
        };
        WindowSampler { repr }
    }

    /// Evaluates the window at normalized position `x ∈ [0, 1]`;
    /// positions outside the support return 0, exactly as
    /// [`Window::at`].
    #[inline]
    pub fn at(&self, x: f64) -> f64 {
        match &self.repr {
            SamplerRepr::Direct(w) => w.at(x),
            SamplerRepr::KaiserPoly(coeffs) => {
                if !(0.0..=1.0).contains(&x) {
                    return 0.0;
                }
                let t = 2.0 * x - 1.0;
                let y = (1.0 - t * t).max(0.0);
                let mut acc = 0.0;
                for &c in coeffs {
                    acc = acc * y + c;
                }
                acc
            }
        }
    }
}

/// Applies a window to data in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply_window(data: &mut [f64], window: &[f64]) {
    assert_eq!(data.len(), window.len(), "window length mismatch");
    for (d, w) in data.iter_mut().zip(window) {
        *d *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric(w: &[f64]) {
        let n = w.len();
        for i in 0..n / 2 {
            assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert_eq!(Window::Rectangular.coefficients(5), vec![1.0; 5]);
    }

    #[test]
    fn all_windows_are_symmetric_and_bounded() {
        let windows = [
            Window::Rectangular,
            Window::Bartlett,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::Kaiser(6.0),
        ];
        for win in windows {
            for n in [8usize, 9, 61] {
                let w = win.coefficients(n);
                assert_symmetric(&w);
                for &v in &w {
                    assert!(
                        (-1e-12..=1.0 + 1e-12).contains(&v),
                        "{win:?} out of range: {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_matches_reference() {
        // Matlab blackman(5) = [0 0.34 1 0.34 0]
        let w = Window::Blackman.coefficients(5);
        assert!(w[0].abs() < 1e-12);
        assert!((w[1] - 0.34).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kaiser_zero_beta_is_rectangular() {
        let w = Window::Kaiser(0.0).coefficients(7);
        for &v in &w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_matches_bessel_reference() {
        // Endpoint value is 1/I0(β); I0(8) = 427.56411572 (A&S tables).
        let w = Window::Kaiser(8.0).coefficients(5);
        let expected_edge = 1.0 / 427.56411572;
        assert!(
            (w[0] - expected_edge).abs() < 1e-9,
            "{} vs {expected_edge}",
            w[0]
        );
        assert!((w[2] - 1.0).abs() < 1e-12);
        // strictly increasing toward the center
        assert!(w[0] < w[1] && w[1] < w[2]);
    }

    #[test]
    fn kaiser_beta_formula_regions() {
        assert_eq!(Window::kaiser_beta(10.0), 0.0);
        // A&S formula reference: atten 60 dB -> beta ≈ 5.65326
        assert!((Window::kaiser_beta(60.0) - 5.65326).abs() < 1e-4);
        let b30 = Window::kaiser_beta(30.0);
        assert!(b30 > 1.0 && b30 < 4.0);
    }

    #[test]
    fn kaiser_order_scales_inversely_with_transition() {
        let n_wide = Window::kaiser_order(60.0, 0.1);
        let n_narrow = Window::kaiser_order(60.0, 0.01);
        assert!(n_narrow > 5 * n_wide);
    }

    #[test]
    fn continuous_at_outside_support_is_zero() {
        assert_eq!(Window::Hann.at(-0.1), 0.0);
        assert_eq!(Window::Kaiser(5.0).at(1.1), 0.0);
    }

    #[test]
    fn single_point_window_is_one() {
        for win in [Window::Hann, Window::Kaiser(9.0), Window::Blackman] {
            assert_eq!(win.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn coherent_gain_and_enbw_reference() {
        // Rectangular: CG = 1, ENBW = 1 bin.
        assert!((Window::Rectangular.coherent_gain(64) - 1.0).abs() < 1e-12);
        assert!((Window::Rectangular.enbw(64) - 1.0).abs() < 1e-12);
        // Hann: CG -> 0.5, ENBW -> 1.5 bins for large N.
        assert!((Window::Hann.coherent_gain(4096) - 0.5).abs() < 1e-3);
        assert!((Window::Hann.enbw(4096) - 1.5).abs() < 1e-2);
    }

    #[test]
    fn sampler_matches_direct_evaluation() {
        let windows = [
            Window::Rectangular,
            Window::Bartlett,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::Kaiser(0.0),
            Window::Kaiser(2.5),
            Window::Kaiser(8.0),
            Window::Kaiser(14.0),
        ];
        for win in windows {
            let s = win.sampler();
            for i in 0..=1000 {
                let x = i as f64 / 1000.0;
                let diff = (s.at(x) - win.at(x)).abs();
                assert!(diff < 1e-13, "{win:?} at {x}: diff {diff:.3e}");
            }
        }
    }

    #[test]
    fn sampler_is_zero_outside_support() {
        for win in [Window::Kaiser(8.0), Window::Hann] {
            let s = win.sampler();
            assert_eq!(s.at(-1e-12), 0.0);
            assert_eq!(s.at(1.0 + 1e-12), 0.0);
            assert_eq!(s.at(f64::NAN), 0.0);
        }
    }

    #[test]
    fn sampler_kaiser_edges_and_center() {
        let s = Window::Kaiser(8.0).sampler();
        // Edge value 1/I0(8), center exactly the polynomial's sum = 1.
        assert!((s.at(0.0) - 1.0 / 427.56411572).abs() < 1e-9);
        assert!((s.at(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_window_multiplies() {
        let mut d = vec![2.0, 4.0, 6.0];
        apply_window(&mut d, &[0.5, 0.25, 0.0]);
        assert_eq!(d, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_panics() {
        let _ = Window::Hann.coefficients(0);
    }
}
