//! Window functions.
//!
//! Symmetric (filter-design) windows are generated with the standard
//! `N−1` denominator convention, matching Matlab's `window(@name, N)` and
//! SciPy's `sym=True`. The Kaiser window — used by the paper to window the
//! Kohlenberg reconstruction filter — exposes its `β` parameter directly
//! and through the Kaiser-design formula from stopband attenuation.

use rfbist_math::special::bessel_i0;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::Arc;

thread_local! {
    /// Most-recently-used coefficient table, keyed by (window, length).
    /// Welch PSDs, the banked mask scan and repeated BIST runs all
    /// regenerate the same window — a cosine or Bessel series per tap,
    /// ~300 µs for the mask path's 8192-tap Blackman–Harris — so the
    /// cache turns steady-state regeneration into one memcpy. A single
    /// entry suffices: the workspace's window traffic comes in runs of
    /// one configuration (mirroring the FFT twiddle cache).
    #[allow(clippy::type_complexity)]
    static COEFF_CACHE: RefCell<Option<(Window, usize, Arc<[f64]>)>> = const { RefCell::new(None) };

    /// Most-recently-used [`WindowTable`], keyed by (window, node
    /// alignment). Grid-plan construction tabulates the same window for
    /// every delay candidate of a cost sweep; the cache makes all
    /// builds after the first a reference-count bump.
    static TABLE_CACHE: RefCell<Option<(Window, usize, WindowTable)>> = const { RefCell::new(None) };
}

/// Window function selector.
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// let w = Window::Kaiser(8.0).coefficients(61);
/// assert_eq!(w.len(), 61);
/// // Symmetric, peaking at the center tap.
/// assert!((w[0] - w[60]).abs() < 1e-12);
/// assert!((w[30] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Triangular (Bartlett) window.
    Bartlett,
    /// Hann (raised-cosine) window.
    Hann,
    /// Hamming window (0.54/0.46 coefficients).
    Hamming,
    /// Blackman window (exact three-term coefficients 0.42/0.5/0.08).
    Blackman,
    /// Four-term Blackman–Harris window (−92 dB sidelobes).
    BlackmanHarris,
    /// Kaiser window with shape parameter `β`.
    Kaiser(f64),
}

impl Window {
    /// Generates the symmetric `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return vec![1.0];
        }
        COEFF_CACHE.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some((w, len, table)) = slot.as_ref() {
                if *w == self && *len == n {
                    return table.to_vec();
                }
            }
            let m = (n - 1) as f64;
            let table: Arc<[f64]> = (0..n).map(|i| self.at(i as f64 / m)).collect();
            let out = table.to_vec();
            *slot = Some((self, n, table));
            out
        })
    }

    /// Evaluates the window at normalized position `x ∈ [0, 1]`
    /// (0 and 1 are the edges, 0.5 the center).
    ///
    /// Values outside `[0, 1]` return 0. This continuous form is what the
    /// PNBS reconstructor uses to taper the interpolant at arbitrary
    /// (non-integer) tap offsets.
    pub fn at(self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        self.shape(x)
    }

    /// The window's analytic formula without the support clamp — the
    /// natural extension of every shape beyond `[0, 1]`, used to pad
    /// the edge nodes of [`WindowTable`] so its edge intervals
    /// interpolate the true shape instead of a flat extension.
    fn shape(self, x: f64) -> f64 {
        match self {
            Window::Rectangular => 1.0,
            Window::Bartlett => 1.0 - (2.0 * x - 1.0).abs(),
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * (2.0 * PI * x).cos() + 0.14128 * (4.0 * PI * x).cos()
                    - 0.01168 * (6.0 * PI * x).cos()
            }
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // in [-1, 1]
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Kaiser `β` for a target stopband attenuation in dB
    /// (Kaiser's empirical formula).
    pub fn kaiser_beta(atten_db: f64) -> f64 {
        if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
        } else {
            0.0
        }
    }

    /// Estimated Kaiser filter order for given attenuation (dB) and
    /// normalized transition width (cycles/sample).
    pub fn kaiser_order(atten_db: f64, transition_width: f64) -> usize {
        assert!(transition_width > 0.0, "transition width must be positive");
        (((atten_db - 7.95) / (2.285 * 2.0 * PI * transition_width)).ceil() as usize).max(1)
    }

    /// Coherent gain: mean of the window coefficients (1.0 for
    /// rectangular).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        w.iter().sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins: `N·Σw² / (Σw)²`.
    pub fn enbw(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        let sum: f64 = w.iter().sum();
        let sumsq: f64 = w.iter().map(|&v| v * v).sum();
        n as f64 * sumsq / (sum * sum)
    }
}

impl Window {
    /// Prepares this window for repeated pointwise evaluation.
    ///
    /// The PNBS reconstruction plan calls the window twice per tap per
    /// probe instant; for [`Window::Kaiser`] the naive
    /// [`at`](Self::at) pays a Bessel-`I0` series (with its per-term
    /// divisions) *and* the `1/I0(β)` normalization on every call. The
    /// sampler hoists the normalization and rewrites the window as a
    /// polynomial table evaluated by Horner's rule — see
    /// [`WindowSampler`].
    pub fn sampler(self) -> WindowSampler {
        WindowSampler::new(self)
    }

    /// Prepares this window for the cheapest repeated evaluation of
    /// all: a dense cubic-interpolation table — see [`WindowTable`].
    ///
    /// Builds (including the against-the-sampler validation pass) run
    /// once per window configuration; a thread-local MRU cache turns
    /// every later call into a reference-count bump, mirroring the
    /// [`coefficients`](Self::coefficients) cache, so per-candidate
    /// plan construction in cost sweeps stays allocation-free.
    pub fn tabulated(self) -> WindowTable {
        self.tabulated_aligned(1)
    }

    /// [`tabulated`](Self::tabulated) with the node count rounded up to
    /// a multiple of `alignment` nodes per unit interval.
    ///
    /// When `alignment` divides the caller's evaluation stride into the
    /// node grid exactly — the grid-aware reconstruction plan walks a
    /// tap row at stride `1/(2·(h+1))` and aligns on `2·(h+1)` — every
    /// position of the row shares one set of interpolation weights and
    /// an integer node stride, so a whole row costs four contiguous
    /// loads and four fused multiply-adds per position.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is zero.
    pub fn tabulated_aligned(self, alignment: usize) -> WindowTable {
        assert!(alignment > 0, "alignment must be positive");
        TABLE_CACHE.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some((w, a, table)) = slot.as_ref() {
                if *w == self && *a == alignment {
                    return table.clone();
                }
            }
            let table = WindowTable::build(self, alignment);
            *slot = Some((self, alignment, table.clone()));
            table
        })
    }
}

impl Default for Window {
    /// Hann — a safe general-purpose default for spectral estimation.
    fn default() -> Self {
        Window::Hann
    }
}

/// A window prepared for cheap repeated evaluation at arbitrary
/// (non-grid) positions.
///
/// For the Kaiser window the key identity is that
/// `I0(β·√(1−t²))` is an *entire* function of `y = 1 − t²`:
///
/// ```text
/// I0(β√y) = Σₖ ((β²/4)ᵏ / (k!)²) · yᵏ
/// ```
///
/// so the whole window is a short polynomial in `y` (≈ 30 terms for
/// β = 8 at full double precision) whose coefficients — *including* the
/// hoisted `1/I0(β)` normalization — are computed once. Evaluation is
/// then one Horner pass: no Bessel series, no per-call divisions. All
/// other window shapes are already one or two trig calls and delegate
/// to [`Window::at`].
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// let w = Window::Kaiser(8.0);
/// let s = w.sampler();
/// for i in 0..=100 {
///     let x = i as f64 / 100.0;
///     assert!((s.at(x) - w.at(x)).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct WindowSampler {
    repr: SamplerRepr,
}

#[derive(Clone, Debug)]
enum SamplerRepr {
    /// Kaiser as a normalized polynomial in `y = 1 − (2x−1)²`,
    /// highest-order coefficient first (Horner order).
    KaiserPoly(Vec<f64>),
    /// Shapes whose pointwise form is already cheap.
    Direct(Window),
}

impl WindowSampler {
    fn new(window: Window) -> Self {
        let repr = match window {
            Window::Kaiser(beta) => {
                // cₖ = (β²/4)ᵏ/(k!)², accumulated exactly like
                // `bessel_i0`'s series so the sampler agrees with the
                // direct path to the same convergence floor.
                let q = beta * beta / 4.0;
                let mut coeffs = vec![1.0f64];
                let mut term = 1.0f64;
                let mut sum = 1.0f64;
                let mut k = 1.0f64;
                loop {
                    term *= q / (k * k);
                    coeffs.push(term);
                    sum += term;
                    if term < sum * 1e-17 || k > 400.0 {
                        break;
                    }
                    k += 1.0;
                }
                // `sum` is Σcₖ = I0(β): fold the normalization in.
                let inv_norm = 1.0 / sum;
                coeffs.iter_mut().for_each(|c| *c *= inv_norm);
                coeffs.reverse();
                SamplerRepr::KaiserPoly(coeffs)
            }
            other => SamplerRepr::Direct(other),
        };
        WindowSampler { repr }
    }

    /// Evaluates the window at normalized position `x ∈ [0, 1]`;
    /// positions outside the support return 0, exactly as
    /// [`Window::at`].
    #[inline]
    pub fn at(&self, x: f64) -> f64 {
        match &self.repr {
            SamplerRepr::Direct(w) => w.at(x),
            SamplerRepr::KaiserPoly(coeffs) => {
                if !(0.0..=1.0).contains(&x) {
                    return 0.0;
                }
                let t = 2.0 * x - 1.0;
                let y = (1.0 - t * t).max(0.0);
                let mut acc = 0.0;
                for &c in coeffs {
                    acc = acc * y + c;
                }
                acc
            }
        }
    }

    /// The analytic shape without the support clamp. For the Kaiser
    /// polynomial the Horner argument `y = 1 − (2x−1)²` simply goes
    /// negative outside the support (the series is entire in `y`), so
    /// edge padding follows the true curvature — constant-extending the
    /// edge value instead would bend [`WindowTable`]'s first and last
    /// intervals by ~1e-6, far outside the interpolation budget.
    fn at_extended(&self, x: f64) -> f64 {
        match &self.repr {
            SamplerRepr::Direct(w) => w.shape(x),
            SamplerRepr::KaiserPoly(coeffs) => {
                let t = 2.0 * x - 1.0;
                let y = 1.0 - t * t;
                let mut acc = 0.0;
                for &c in coeffs {
                    acc = acc * y + c;
                }
                acc
            }
        }
    }
}

/// Intervals in a [`WindowTable`]: at 1/4096 node spacing the cubic
/// Lagrange stencil's `O(h⁴·max|w⁗|)` error stays below ~1e-12 for
/// every smooth window in the workspace (Kaiser β ≲ 20, the
/// cosine-series shapes), well under the validation budget.
const TABLE_INTERVALS: usize = 4096;

/// Midpoint-validation budget for the cubic table. Comfortably above
/// the ~1e-12 interpolation error of the smooth shapes, decisively
/// below the ~1e-7 error a kinked shape (Bartlett's center crease)
/// produces — so validation cleanly routes kinked windows to the
/// direct-sampler fallback. Two orders of margin remain against the
/// reconstruction suite's 1e-9 equivalence budget even after a 61-tap
/// accumulation.
const TABLE_TOLERANCE: f64 = 5e-12;

/// A window prepared as a dense value table with four-point cubic
/// Lagrange interpolation — the cheapest evaluation form, used by the
/// grid-aware reconstruction plan where the window is read twice per
/// tap per grid point.
///
/// Where [`WindowSampler`] replaces the Kaiser Bessel series with a
/// ~31-term Horner polynomial, the table replaces the polynomial with
/// four loads and nine flops. Node values come from the sampler itself
/// (exact at nodes); every build runs a midpoint validation pass
/// against the sampler and falls back to direct sampling for shapes the
/// cubic cannot represent to [`TABLE_TOLERANCE`] (kinked or
/// discontinuous windows), so `WindowTable::at` is *always* within the
/// tolerance of [`Window::at`] on the support.
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// let w = Window::Kaiser(8.0);
/// let table = w.tabulated();
/// for i in 0..=1000 {
///     let x = i as f64 / 1000.0;
///     assert!((table.at(x) - w.at(x)).abs() < 5e-12);
/// }
/// assert_eq!(table.at(-0.1), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct WindowTable {
    repr: TableRepr,
}

#[derive(Clone, Debug)]
enum TableRepr {
    /// `vals[j] = shape((j − 1)/m)` for `j ∈ [0, m + 3]` — pad nodes
    /// beyond the support edges so every interval (and a stencil
    /// anchored exactly at x = 1) has its four-node Lagrange stencil.
    /// `scale = m as f64`.
    Cubic { scale: f64, vals: Arc<[f64]> },
    /// Shapes the cubic table cannot represent to tolerance.
    Direct(WindowSampler),
}

impl WindowTable {
    fn build(window: Window, alignment: usize) -> Self {
        let sampler = window.sampler();
        // Round the node count up to the alignment; one pad node before
        // the support and two after (so a stencil anchored exactly at
        // x = 1 still has its four nodes).
        let m = alignment * TABLE_INTERVALS.div_ceil(alignment);
        let h = 1.0 / m as f64;
        let vals: Arc<[f64]> = (0..=m + 3)
            .map(|j| sampler.at_extended((j as f64 - 1.0) * h))
            .collect();
        let table = WindowTable {
            repr: TableRepr::Cubic {
                scale: m as f64,
                vals,
            },
        };
        // Validation at interval midpoints — the cubic's worst case.
        for i in 0..m {
            let x = (i as f64 + 0.5) * h;
            if (table.at(x) - sampler.at(x)).abs() > TABLE_TOLERANCE {
                return WindowTable {
                    repr: TableRepr::Direct(sampler),
                };
            }
        }
        table
    }

    /// `true` when evaluation goes through the cubic table rather than
    /// the direct-sampler fallback.
    pub fn is_tabulated(&self) -> bool {
        matches!(self.repr, TableRepr::Cubic { .. })
    }

    /// The raw cubic table as `(scale, padded node values)` when this
    /// window tabulated, `None` for the direct-sampler fallback.
    ///
    /// For callers that fuse the interpolation into their own inner
    /// loops (the grid-aware reconstruction plan evaluates the window
    /// twice per tap per grid point): pairing this with
    /// [`cubic_window_eval`] is exactly [`at`](Self::at), but lets the
    /// hot loop monomorphize away the representation dispatch.
    pub fn cubic_parts(&self) -> Option<(f64, &[f64])> {
        match &self.repr {
            TableRepr::Cubic { scale, vals } => Some((*scale, vals)),
            TableRepr::Direct(_) => None,
        }
    }

    /// Evaluates the window at normalized position `x ∈ [0, 1]`;
    /// positions outside the support return 0, exactly as
    /// [`Window::at`].
    #[inline]
    pub fn at(&self, x: f64) -> f64 {
        match &self.repr {
            TableRepr::Direct(s) => s.at(x),
            TableRepr::Cubic { scale, vals } => cubic_window_eval(*scale, vals, x),
        }
    }
}

/// Evaluates a [`WindowTable`]'s raw cubic table (from
/// [`WindowTable::cubic_parts`]) at normalized position `x`; positions
/// outside `[0, 1]` return 0.
#[inline(always)]
pub fn cubic_window_eval(scale: f64, vals: &[f64], x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) {
        return 0.0;
    }
    let pos = x * scale;
    // interval index, clamped so x = 1.0 lands in the last one
    let i = (pos as usize).min(vals.len() - 4);
    let s = pos - i as f64;
    // one bounds check for the whole four-node stencil
    let p = &vals[i..i + 4];
    // cubic Lagrange on the stencil at s ∈ {−1, 0, 1, 2}; exact (s = 0
    // and s = 1 reproduce the nodes bit-for-bit), O(h⁴) between them
    let sp = s + 1.0;
    let sm = s - 1.0;
    let s2 = s - 2.0;
    (sp * sm * s2 * 0.5) * p[1] - (s * sm * s2 / 6.0) * p[0] - (sp * s * s2 * 0.5) * p[2]
        + (sp * s * sm / 6.0) * p[3]
}

/// Applies a window to data in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply_window(data: &mut [f64], window: &[f64]) {
    assert_eq!(data.len(), window.len(), "window length mismatch");
    for (d, w) in data.iter_mut().zip(window) {
        *d *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric(w: &[f64]) {
        let n = w.len();
        for i in 0..n / 2 {
            assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert_eq!(Window::Rectangular.coefficients(5), vec![1.0; 5]);
    }

    #[test]
    fn all_windows_are_symmetric_and_bounded() {
        let windows = [
            Window::Rectangular,
            Window::Bartlett,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::Kaiser(6.0),
        ];
        for win in windows {
            for n in [8usize, 9, 61] {
                let w = win.coefficients(n);
                assert_symmetric(&w);
                for &v in &w {
                    assert!(
                        (-1e-12..=1.0 + 1e-12).contains(&v),
                        "{win:?} out of range: {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_matches_reference() {
        // Matlab blackman(5) = [0 0.34 1 0.34 0]
        let w = Window::Blackman.coefficients(5);
        assert!(w[0].abs() < 1e-12);
        assert!((w[1] - 0.34).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kaiser_zero_beta_is_rectangular() {
        let w = Window::Kaiser(0.0).coefficients(7);
        for &v in &w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_matches_bessel_reference() {
        // Endpoint value is 1/I0(β); I0(8) = 427.56411572 (A&S tables).
        let w = Window::Kaiser(8.0).coefficients(5);
        let expected_edge = 1.0 / 427.56411572;
        assert!(
            (w[0] - expected_edge).abs() < 1e-9,
            "{} vs {expected_edge}",
            w[0]
        );
        assert!((w[2] - 1.0).abs() < 1e-12);
        // strictly increasing toward the center
        assert!(w[0] < w[1] && w[1] < w[2]);
    }

    #[test]
    fn kaiser_beta_formula_regions() {
        assert_eq!(Window::kaiser_beta(10.0), 0.0);
        // A&S formula reference: atten 60 dB -> beta ≈ 5.65326
        assert!((Window::kaiser_beta(60.0) - 5.65326).abs() < 1e-4);
        let b30 = Window::kaiser_beta(30.0);
        assert!(b30 > 1.0 && b30 < 4.0);
    }

    #[test]
    fn kaiser_order_scales_inversely_with_transition() {
        let n_wide = Window::kaiser_order(60.0, 0.1);
        let n_narrow = Window::kaiser_order(60.0, 0.01);
        assert!(n_narrow > 5 * n_wide);
    }

    #[test]
    fn continuous_at_outside_support_is_zero() {
        assert_eq!(Window::Hann.at(-0.1), 0.0);
        assert_eq!(Window::Kaiser(5.0).at(1.1), 0.0);
    }

    #[test]
    fn single_point_window_is_one() {
        for win in [Window::Hann, Window::Kaiser(9.0), Window::Blackman] {
            assert_eq!(win.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn coherent_gain_and_enbw_reference() {
        // Rectangular: CG = 1, ENBW = 1 bin.
        assert!((Window::Rectangular.coherent_gain(64) - 1.0).abs() < 1e-12);
        assert!((Window::Rectangular.enbw(64) - 1.0).abs() < 1e-12);
        // Hann: CG -> 0.5, ENBW -> 1.5 bins for large N.
        assert!((Window::Hann.coherent_gain(4096) - 0.5).abs() < 1e-3);
        assert!((Window::Hann.enbw(4096) - 1.5).abs() < 1e-2);
    }

    #[test]
    fn sampler_matches_direct_evaluation() {
        let windows = [
            Window::Rectangular,
            Window::Bartlett,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::Kaiser(0.0),
            Window::Kaiser(2.5),
            Window::Kaiser(8.0),
            Window::Kaiser(14.0),
        ];
        for win in windows {
            let s = win.sampler();
            for i in 0..=1000 {
                let x = i as f64 / 1000.0;
                let diff = (s.at(x) - win.at(x)).abs();
                assert!(diff < 1e-13, "{win:?} at {x}: diff {diff:.3e}");
            }
        }
    }

    #[test]
    fn sampler_is_zero_outside_support() {
        for win in [Window::Kaiser(8.0), Window::Hann] {
            let s = win.sampler();
            assert_eq!(s.at(-1e-12), 0.0);
            assert_eq!(s.at(1.0 + 1e-12), 0.0);
            assert_eq!(s.at(f64::NAN), 0.0);
        }
    }

    #[test]
    fn sampler_kaiser_edges_and_center() {
        let s = Window::Kaiser(8.0).sampler();
        // Edge value 1/I0(8), center exactly the polynomial's sum = 1.
        assert!((s.at(0.0) - 1.0 / 427.56411572).abs() < 1e-9);
        assert!((s.at(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_matches_sampler_within_tolerance() {
        let windows = [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::Kaiser(0.0),
            Window::Kaiser(2.5),
            Window::Kaiser(8.0),
            Window::Kaiser(14.0),
        ];
        for win in windows {
            let table = win.tabulated();
            assert!(table.is_tabulated(), "{win:?} should tabulate");
            let s = win.sampler();
            for i in 0..=4000 {
                // off-node positions (4000 does not divide 4096)
                let x = i as f64 / 4000.0;
                let diff = (table.at(x) - s.at(x)).abs();
                assert!(diff <= 5e-12, "{win:?} at {x}: diff {diff:.3e}");
            }
        }
    }

    #[test]
    fn table_is_exact_at_nodes() {
        let win = Window::Kaiser(8.0);
        let table = win.tabulated();
        let s = win.sampler();
        for i in [0usize, 1, 2048, 4095, 4096] {
            let x = i as f64 / 4096.0;
            assert_eq!(table.at(x), s.at(x), "node {i}");
        }
    }

    #[test]
    fn kinked_window_falls_back_to_direct_sampling() {
        // Bartlett's center crease defeats cubic interpolation; the
        // validation pass must route it to the sampler fallback, which
        // then agrees with Window::at exactly.
        let table = Window::Bartlett.tabulated();
        assert!(!table.is_tabulated());
        for i in 0..=999 {
            let x = i as f64 / 999.0;
            assert_eq!(table.at(x), Window::Bartlett.at(x));
        }
    }

    #[test]
    fn table_is_zero_outside_support() {
        for win in [Window::Kaiser(8.0), Window::Hann, Window::Bartlett] {
            let table = win.tabulated();
            assert_eq!(table.at(-1e-12), 0.0);
            assert_eq!(table.at(1.0 + 1e-12), 0.0);
            assert_eq!(table.at(f64::NAN), 0.0);
            assert_ne!(table.at(0.5), 0.0);
        }
    }

    #[test]
    fn table_cache_round_trips_between_windows() {
        // The MRU cache holds one entry; alternating windows must keep
        // returning correct tables.
        for _ in 0..3 {
            let k = Window::Kaiser(8.0).tabulated();
            assert!((k.at(0.5) - 1.0).abs() < 1e-12);
            let h = Window::Hann.tabulated();
            assert!((h.at(0.25) - Window::Hann.at(0.25)).abs() < 5e-12);
        }
    }

    #[test]
    fn apply_window_multiplies() {
        let mut d = vec![2.0, 4.0, 6.0];
        apply_window(&mut d, &[0.5, 0.25, 0.0]);
        assert_eq!(d, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_panics() {
        let _ = Window::Hann.coefficients(0);
    }
}
