//! Resampling and fractional delay.
//!
//! Integer up/down-sampling with windowed-sinc anti-alias/interpolation
//! filters, plus truncated-sinc fractional delay — used to cross-validate
//! the analytic continuous-time models against grid simulations.

use crate::fir::FirFilter;
use crate::window::Window;
use rfbist_math::special::sinc;

/// Upsamples by integer factor `l` (zero-stuffing followed by a windowed-
/// sinc interpolation filter of `2·half_len·l + 1` taps).
///
/// Output length is `x.len() · l`; the interpolation filter's group delay
/// is compensated internally.
///
/// # Panics
///
/// Panics if `l == 0` or `half_len == 0`.
pub fn upsample(x: &[f64], l: usize, half_len: usize) -> Vec<f64> {
    assert!(l > 0, "upsampling factor must be positive");
    assert!(half_len > 0, "filter half-length must be positive");
    if l == 1 {
        return x.to_vec();
    }
    let taps = 2 * half_len * l + 1;
    let fir = FirFilter::lowpass(taps, 0.5 / l as f64 - 1e-9, Window::Kaiser(8.0));
    let mut stuffed = vec![0.0; x.len() * l];
    for (i, &v) in x.iter().enumerate() {
        stuffed[i * l] = v * l as f64; // gain compensation
    }
    fir.filter_same(&stuffed)
}

/// Downsamples by integer factor `m` with a preceding anti-alias filter.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn decimate(x: &[f64], m: usize, half_len: usize) -> Vec<f64> {
    assert!(m > 0, "decimation factor must be positive");
    if m == 1 {
        return x.to_vec();
    }
    let taps = 2 * half_len * m + 1;
    let fir = FirFilter::lowpass(taps, 0.5 / m as f64 - 1e-9, Window::Kaiser(8.0));
    let filtered = fir.filter_same(x);
    filtered.iter().step_by(m).copied().collect()
}

/// Delays a signal by a fractional number of samples using a truncated
/// (Kaiser-windowed) sinc interpolator with `2·half_width + 1` taps.
///
/// Output has the same length; edges are zero-extended.
///
/// # Panics
///
/// Panics if `half_width == 0`.
pub fn fractional_delay(x: &[f64], delay: f64, half_width: usize) -> Vec<f64> {
    assert!(half_width > 0, "interpolator needs at least one tap");
    let n = x.len();
    let w = Window::Kaiser(8.0);
    let span = half_width as f64 + 1.0;
    (0..n)
        .map(|i| {
            let pos = i as f64 - delay;
            let center = pos.round() as isize;
            let mut acc = 0.0;
            for k in (center - half_width as isize)..=(center + half_width as isize) {
                if k >= 0 && (k as usize) < n {
                    let frac = pos - k as f64;
                    let taper = w.at(0.5 + frac / (2.0 * span));
                    acc += x[k as usize] * sinc(frac) * taper;
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * f * i as f64).sin()).collect()
    }

    #[test]
    fn upsample_by_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(upsample(&x, 1, 4), x);
        assert_eq!(decimate(&x, 1, 4), x);
    }

    #[test]
    fn upsample_interpolates_tone() {
        let f0 = 0.05; // cycles/sample at original rate
        let x = tone(256, f0);
        let y = upsample(&x, 4, 8);
        assert_eq!(y.len(), 1024);
        // interior samples should match the dense tone
        for (i, &v) in y.iter().enumerate().take(800).skip(200) {
            let want = (2.0 * PI * f0 * i as f64 / 4.0).sin();
            assert!((v - want).abs() < 0.02, "sample {i}: {v} vs {want}");
        }
    }

    #[test]
    fn decimate_preserves_low_frequency_tone() {
        let f0 = 0.02;
        let x = tone(1024, f0);
        let y = decimate(&x, 4, 8);
        assert_eq!(y.len(), 256);
        for (i, &v) in y.iter().enumerate().take(200).skip(50) {
            let want = (2.0 * PI * f0 * (i * 4) as f64).sin();
            assert!((v - want).abs() < 0.02, "sample {i}");
        }
    }

    #[test]
    fn decimate_removes_aliasing_tone() {
        // tone above the post-decimation Nyquist must be suppressed
        let f_alias = 0.4; // would alias at m=4 (Nyquist 0.125)
        let x = tone(2048, f_alias);
        let y = decimate(&x, 4, 12);
        let peak = y[100..y.len() - 100]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 0.01, "alias peak {peak}");
    }

    #[test]
    fn fractional_delay_shifts_tone() {
        let f0 = 0.03;
        let x = tone(512, f0);
        let d = 2.5;
        let y = fractional_delay(&x, d, 16);
        for (i, &v) in y.iter().enumerate().take(400).skip(100) {
            let want = (2.0 * PI * f0 * (i as f64 - d)).sin();
            assert!((v - want).abs() < 2e-3, "sample {i}: {v} vs {want}");
        }
    }

    #[test]
    fn integer_delay_matches_shift() {
        let x: Vec<f64> = (0..200)
            .map(|i| ((i * 7919) % 100) as f64 / 100.0)
            .collect();
        // bandlimit first so sinc interpolation is valid
        let fir = FirFilter::lowpass(41, 0.2, Window::Kaiser(8.0));
        let xb = fir.filter_same(&x);
        let y = fractional_delay(&xb, 3.0, 20);
        for i in 60..140 {
            assert!((y[i] - xb[i - 3]).abs() < 5e-3, "sample {i}");
        }
    }

    #[test]
    fn zero_delay_is_near_identity() {
        let x = tone(256, 0.04);
        let y = fractional_delay(&x, 0.0, 12);
        for i in 40..200 {
            assert!((y[i] - x[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_panics() {
        let _ = upsample(&[1.0], 0, 4);
    }
}
