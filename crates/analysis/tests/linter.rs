//! The linter's own test suite: per-lint fixture snippets (positive
//! and negative), baseline round-trips, `--update-baseline`
//! idempotence, and the seeded-violation tree that CI uses to prove
//! the binary actually fails a dirty tree.

use rfbist_analysis::baseline::Baseline;
use rfbist_analysis::findings::Finding;
use rfbist_analysis::{analyze_source, json, registry};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Lints one snippet as if it lived at `rel_path` in the workspace.
fn lint(rel_path: &str, src: &str) -> Vec<Finding> {
    analyze_source(&registry::default_lints(), rel_path, src)
}

fn slugs(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(|f| f.slug.clone()).collect()
}

/// A path inside the typed-error crates (activates every lint).
const CORE: &str = "crates/core/src/snippet.rs";
/// A path outside them (panic-discipline lints only).
const DSP: &str = "crates/dsp/src/snippet.rs";

// ---------------------------------------------------------------- lint 1

#[test]
fn typed_parity_flags_missing_twin() {
    let f = lint(
        CORE,
        r#"
pub fn margin(level: f64) -> f64 {
    assert!(level.is_finite(), "level must be finite");
    level
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "typed-error-parity" && x.slug == "missing-try-twin"),
        "expected missing-try-twin, got {:?}",
        slugs(&f)
    );
}

#[test]
fn typed_parity_accepts_thin_delegate_shape_a() {
    let f = lint(
        CORE,
        r#"
pub fn margin(level: f64) -> f64 {
    try_margin(level).unwrap_or_else(|e| panic!("{e}"))
}
pub fn try_margin(level: f64) -> Result<f64, String> {
    if level.is_finite() { Ok(level) } else { Err("bad".into()) }
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "typed-error-parity"),
        "shape-A delegate must pass, got {:?}",
        slugs(&f)
    );
}

#[test]
fn typed_parity_accepts_one_expression_forward_shape_b() {
    // The real `run` -> `run_with` -> `try_run_with` chain.
    let f = lint(
        CORE,
        r#"
pub fn run(x: f64) -> f64 {
    run_with(x, 0.0)
}
pub fn try_run(x: f64) -> Result<f64, String> {
    try_run_with(x, 0.0)
}
pub fn run_with(x: f64, y: f64) -> f64 {
    try_run_with(x, y).unwrap_or_else(|e| panic!("{e}"))
}
pub fn try_run_with(x: f64, y: f64) -> Result<f64, String> {
    Ok(x + y)
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "typed-error-parity"),
        "shape-B forward must pass, got {:?}",
        slugs(&f)
    );
}

#[test]
fn typed_parity_flags_fat_body_next_to_twin() {
    let f = lint(
        CORE,
        r#"
pub fn scan(wave: &[f64]) -> f64 {
    let mut acc = 0.0;
    for w in wave {
        assert!(w.is_finite());
        acc += w * w;
    }
    acc
}
pub fn try_scan(wave: &[f64]) -> Result<f64, String> {
    Ok(wave.iter().map(|w| w * w).sum())
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "typed-error-parity" && x.slug == "not-thin-delegate"),
        "expected not-thin-delegate, got {:?}",
        slugs(&f)
    );
}

#[test]
fn typed_parity_ignores_debug_assert_and_test_code() {
    let f = lint(
        CORE,
        r#"
pub fn margin(level: f64) -> f64 {
    debug_assert!(level.is_finite());
    level
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_freely() {
        assert!(super::margin(1.0) > 0.0, "fine in tests");
    }
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "typed-error-parity"),
        "debug_assert cannot panic in release; tests are exempt — got {:?}",
        slugs(&f)
    );
}

#[test]
fn typed_parity_scope_is_core_and_sampling_only() {
    let snippet = r#"
pub fn margin(level: f64) -> f64 {
    assert!(level.is_finite());
    level
}
"#;
    assert!(lint(DSP, snippet)
        .iter()
        .all(|x| x.lint != "typed-error-parity"));
    assert!(lint("crates/sampling/src/snippet.rs", snippet)
        .iter()
        .any(|x| x.lint == "typed-error-parity"));
}

// ---------------------------------------------------------------- lint 2

#[test]
fn safety_comment_flags_bare_unsafe_block() {
    let f = lint(
        DSP,
        r#"
fn read_first(wave: &[f64]) -> f64 {
    unsafe { *wave.as_ptr() }
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "safety-comment" && x.slug == "missing-safety-unsafe-block"),
        "expected missing-safety-unsafe-block, got {:?}",
        slugs(&f)
    );
}

#[test]
fn safety_comment_accepts_adjacent_comment_and_safety_doc() {
    let f = lint(
        DSP,
        r#"
fn read_first(wave: &[f64]) -> f64 {
    // SAFETY: the caller guarantees `wave` is non-empty, so the
    // pointer is valid for one read.
    unsafe { *wave.as_ptr() }
}

/// # Safety
/// `wave` must be non-empty.
pub unsafe fn read_unchecked(wave: &[f64]) -> f64 {
    *wave.as_ptr()
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "safety-comment"),
        "annotated sites must pass, got {:?}",
        slugs(&f)
    );
}

// ---------------------------------------------------------------- lint 3

#[test]
fn guarded_intrinsics_flags_undispatched_call() {
    let f = lint(
        DSP,
        r#"
/// # Safety
/// Caller must verify AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_avx2(wave: &[f64]) -> f64 {
    wave.iter().sum()
}

pub fn sum_fast(wave: &[f64]) -> f64 {
    // SAFETY: nothing verified the feature — the seeded violation.
    unsafe { sum_avx2(wave) }
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "guarded-intrinsics" && x.slug == "unguarded-call-sum_avx2"),
        "expected unguarded-call-sum_avx2, got {:?}",
        slugs(&f)
    );
}

#[test]
fn guarded_intrinsics_accepts_detected_dispatch_and_kernel_chains() {
    let f = lint(
        DSP,
        r#"
/// # Safety
/// Caller must verify AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_avx2(wave: &[f64]) -> f64 {
    sum_avx2_inner(wave)
}

/// # Safety
/// Caller must verify AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn sum_avx2_inner(wave: &[f64]) -> f64 {
    wave.iter().sum()
}

pub fn sum(wave: &[f64]) -> f64 {
    if !force_scalar() && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { sum_avx2(wave) };
    }
    wave.iter().sum()
}

fn force_scalar() -> bool {
    std::env::var_os("RFBIST_FORCE_SCALAR").is_some()
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "guarded-intrinsics"),
        "dispatched + kernel-to-kernel calls must pass, got {:?}",
        slugs(&f)
    );
}

// ---------------------------------------------------------------- lint 4

#[test]
fn naked_panic_flags_unwrap_expect_macro_and_indexing() {
    let f = lint(
        DSP,
        r#"
fn verdict(wave: &[f64]) -> f64 {
    let head = wave.first().unwrap();
    let tail = wave.last().expect("non-empty");
    if wave.len() > 64 {
        panic!("capture too long");
    }
    head + tail
}

fn butterfly(v: &mut [f64], i: usize, j: usize) {
    v[i] = v[i] + v[j] * v[i + 1] - v[j + 1];
}
"#,
    );
    for slug in [
        "naked-unwrap",
        "naked-expect",
        "naked-panic-macro",
        "indexing-heavy",
    ] {
        assert!(
            f.iter().any(|x| x.lint == "naked-panic" && x.slug == slug),
            "expected {slug}, got {:?}",
            slugs(&f)
        );
    }
}

#[test]
fn naked_panic_exempts_wrappers_tests_and_bench() {
    let wrapper = r#"
pub fn margin(level: f64) -> f64 {
    try_margin(level).unwrap_or_else(|e| panic!("{e}"))
}
pub fn try_margin(level: f64) -> Result<f64, String> {
    Ok(level)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_freely() {
        let v: Option<f64> = Some(1.0);
        v.unwrap();
    }
}
"#;
    let f = lint(CORE, wrapper);
    assert!(
        !f.iter().any(|x| x.lint == "naked-panic"),
        "wrapper + test code must pass, got {:?}",
        slugs(&f)
    );
    // Bench drivers are CLI tools, out of scope entirely.
    let bench = lint(
        "crates/bench/src/bin/tool.rs",
        "fn main() { std::env::args().next().unwrap(); }",
    );
    assert!(bench.iter().all(|x| x.lint != "naked-panic"));
}

#[test]
fn inline_waiver_suppresses_a_finding() {
    let f = lint(
        DSP,
        r#"
fn verdict(wave: &[f64]) -> f64 {
    // analysis: allow(naked-panic) — startup config, fail-fast is the contract
    wave.first().unwrap() + 1.0
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "naked-panic"),
        "waived finding must be dropped, got {:?}",
        slugs(&f)
    );
}

// ---------------------------------------------------------------- lint 5

#[test]
fn unit_discipline_flags_undocumented_raw_unit_param() {
    let f = lint(
        DSP,
        r#"
/// Sets the carrier used by the scan.
pub fn set_carrier(carrier_hz: f64) -> f64 {
    carrier_hz
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "unit-discipline" && x.slug == "undocumented-unit-carrier_hz"),
        "expected undocumented-unit-carrier_hz, got {:?}",
        slugs(&f)
    );
}

#[test]
fn unit_discipline_accepts_documented_units_and_non_f64() {
    let f = lint(
        DSP,
        r#"
/// Sets the carrier; `carrier_hz` is the RF center in Hz.
pub fn set_carrier(carrier_hz: f64) -> f64 {
    carrier_hz
}

/// Bin count is dimensionless — the suffix heuristic must not fire
/// on non-f64 parameters.
pub fn set_bins(bins_hz: usize) -> usize {
    bins_hz
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.lint == "unit-discipline"),
        "documented / non-f64 params must pass, got {:?}",
        slugs(&f)
    );
}

// ---------------------------------------------------------------- lint 6

#[test]
fn scratch_reuse_flags_allocation_in_scratch_hot_path() {
    let f = lint(
        CORE,
        r#"
pub fn scan_with(wave: &[f64], scratch: &mut Vec<f64>) -> f64 {
    let staged: Vec<f64> = wave.iter().map(|x| x * x).collect();
    scratch.clear();
    scratch.extend_from_slice(&staged);
    scratch.iter().sum()
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.lint == "scratch-reuse" && x.slug == "alloc-in-hot-path"),
        "expected alloc-in-hot-path, got {:?}",
        slugs(&f)
    );
}

#[test]
fn scratch_reuse_ignores_clean_paths_other_fns_and_other_crates() {
    // A scratch-taking hot path that only reuses its scratch passes.
    let clean = lint(
        CORE,
        r#"
pub fn scan_with(wave: &[f64], scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend_from_slice(wave);
    scratch.iter().sum()
}

pub fn build_plan(n: usize) -> Vec<f64> {
    // Constructors allocate by design — no scratch param, no finding.
    Vec::with_capacity(n)
}
"#,
    );
    assert!(
        !clean.iter().any(|x| x.lint == "scratch-reuse"),
        "clean scratch path + constructor must pass, got {:?}",
        slugs(&clean)
    );
    // Outside the typed-error crates the rule does not apply at all.
    let dsp = lint(
        DSP,
        r#"
pub fn scan_with(wave: &[f64], scratch: &mut Vec<f64>) -> f64 {
    let staged = wave.to_vec();
    scratch.extend_from_slice(&staged);
    scratch.iter().sum()
}
"#,
    );
    assert!(dsp.iter().all(|x| x.lint != "scratch-reuse"));
}

// ------------------------------------------------------- baseline logic

fn sample_findings() -> Vec<Finding> {
    lint(
        CORE,
        r#"
pub fn margin(level: f64) -> f64 {
    assert!(level.is_finite());
    level
}
fn verdict(wave: &[f64]) -> f64 {
    wave.first().unwrap() + 1.0
}
"#,
    )
}

#[test]
fn baseline_round_trips_through_json() {
    let findings = sample_findings();
    assert!(!findings.is_empty());
    let baseline = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&baseline.to_json()).expect("round-trip parse");
    assert_eq!(baseline.to_json(), reparsed.to_json());
    assert_eq!(baseline.len(), reparsed.len());
    for f in &findings {
        assert!(reparsed.contains(&f.fingerprint()));
    }
}

#[test]
fn baseline_diff_separates_new_and_stale() {
    let findings = sample_findings();
    let mut grandfathered = findings.clone();
    let fresh = grandfathered.pop().expect("at least two findings");
    // An entry nothing matches any more: stale, never failing.
    let ghost = Finding {
        lint: "naked-panic".into(),
        file: "crates/core/src/removed.rs".into(),
        line: 1,
        symbol: "gone".into(),
        slug: "naked-unwrap".into(),
        message: String::new(),
    };
    let baseline = Baseline::parse(
        &Baseline::from_findings(
            &grandfathered
                .iter()
                .cloned()
                .chain([ghost.clone()])
                .collect::<Vec<_>>(),
        )
        .to_json(),
    )
    .expect("parse");
    let new = baseline.new_fingerprints(&findings);
    assert_eq!(new, vec![fresh.fingerprint()]);
    let stale = baseline.stale_fingerprints(&findings);
    assert_eq!(stale, vec![ghost.fingerprint()]);
}

#[test]
fn fingerprints_exclude_line_numbers() {
    let a = sample_findings();
    // Shift everything down by a comment block: lines move, identity
    // must not.
    let shifted = lint(
        CORE,
        r#"
// A freshly added explanatory comment.
// It moves every construct below it.

pub fn margin(level: f64) -> f64 {
    assert!(level.is_finite());
    level
}
fn verdict(wave: &[f64]) -> f64 {
    wave.first().unwrap() + 1.0
}
"#,
    );
    let fps = |v: &[Finding]| {
        let mut f: Vec<String> = v.iter().map(Finding::fingerprint).collect();
        f.sort();
        f
    };
    assert_eq!(fps(&a), fps(&shifted));
    assert_ne!(
        a.iter().map(|f| f.line).collect::<Vec<_>>(),
        shifted.iter().map(|f| f.line).collect::<Vec<_>>()
    );
}

#[test]
fn findings_document_parses_under_schema() {
    let findings = sample_findings();
    let fps: Vec<String> = findings.iter().map(Finding::fingerprint).collect();
    let doc = rfbist_analysis::findings::findings_document(&findings, &fps, 1);
    let parsed = json::parse(&doc).expect("valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(json::JsonValue::as_str),
        Some("rfbist-analysis-findings/v1")
    );
    assert_eq!(
        parsed
            .get("findings")
            .and_then(json::JsonValue::as_arr)
            .map(<[json::JsonValue]>::len),
        Some(findings.len())
    );
}

// ------------------------------------------------------ the binary, e2e

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfbist-analysis"))
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/seeded")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn seeded_fixture_fails_with_every_lint_represented() {
    let out = bin()
        .args(["--root"])
        .arg(fixture_root())
        .arg("crates")
        .output()
        .expect("run linter");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violations must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for lint_name in [
        "typed-error-parity",
        "safety-comment",
        "guarded-intrinsics",
        "naked-panic",
        "unit-discipline",
        "scratch-reuse",
    ] {
        assert!(
            stdout.contains(&format!("[{lint_name}]")),
            "lint {lint_name} missing from seeded report:\n{stdout}"
        );
    }
}

#[test]
fn workspace_scan_is_clean_against_committed_baseline() {
    let out = bin()
        .args(["--workspace", "--root"])
        .arg(repo_root())
        .output()
        .expect("run linter");
    assert_eq!(
        out.status.code(),
        Some(0),
        "the shipped tree must be clean against ANALYSIS_BASELINE.json; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn update_baseline_is_idempotent_and_silences_the_run() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded_baseline.json");
    let _ = std::fs::remove_file(&tmp);

    let update = |tmp: &Path| {
        let out = bin()
            .args(["--root"])
            .arg(fixture_root())
            .arg("crates")
            .arg("--baseline")
            .arg(tmp)
            .arg("--update-baseline")
            .output()
            .expect("run linter");
        assert_eq!(out.status.code(), Some(0), "--update-baseline exits 0");
        std::fs::read(tmp).expect("baseline written")
    };
    let first = update(&tmp);
    let second = update(&tmp);
    assert_eq!(first, second, "--update-baseline must be byte-idempotent");

    let parsed = Baseline::parse(&String::from_utf8(first).expect("utf-8")).expect("parses");
    assert!(parsed.len() >= 5, "at least one fingerprint per lint");

    // With everything grandfathered, the same scan is clean.
    let out = bin()
        .args(["--root"])
        .arg(fixture_root())
        .arg("crates")
        .arg("--baseline")
        .arg(&tmp)
        .output()
        .expect("run linter");
    assert_eq!(
        out.status.code(),
        Some(0),
        "baselined findings must not fail; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
