//! Seeded violations for the linter's non-zero-exit check — at least
//! one per shipped design rule. This tree sits under `fixtures/`, so
//! the workspace walk never sees it; CI and the integration tests
//! scan it explicitly, with the strict empty baseline:
//!
//! ```sh
//! cargo run -p rfbist-analysis -- --root crates/analysis/fixtures/seeded crates
//! ```
//!
//! Expected: exit code 1, with every lint represented in the report.

/// Verdict margin with a contract assert — can panic but has no
/// typed twin. (typed-error-parity: missing-try-twin)
pub fn margin(level: f64) -> f64 {
    assert!(level.is_finite(), "level must be finite");
    level
}

/// Has a `try_scan` twin but re-implements the panicking body instead
/// of delegating to it. (typed-error-parity: not-thin-delegate)
pub fn scan(wave: &[f64]) -> f64 {
    let mut acc = 0.0;
    for w in wave {
        assert!(w.is_finite(), "non-finite sample");
        acc += w * w;
    }
    acc
}

/// The typed twin `scan` should have delegated to.
pub fn try_scan(wave: &[f64]) -> Result<f64, String> {
    let mut acc = 0.0;
    for w in wave {
        if !w.is_finite() {
            return Err("non-finite sample".to_string());
        }
        acc += w * w;
    }
    Ok(acc)
}

/// Dereferences a raw pointer with no adjacent safety argument.
/// (safety-comment: missing-safety-unsafe-block)
fn read_first(wave: &[f64]) -> f64 {
    unsafe { *wave.as_ptr() }
}

/// # Safety
/// The caller must verify AVX2 support at runtime before calling.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_avx2(wave: &[f64]) -> f64 {
    wave.iter().sum()
}

/// Calls the kernel with no runtime feature dispatch in its body.
/// (guarded-intrinsics: unguarded-call-sum_avx2)
pub fn sum_fast(wave: &[f64]) -> f64 {
    // SAFETY: this claim is the seeded violation — nothing here
    // verified AVX2 support, which is exactly what the lint rejects.
    unsafe { sum_avx2(wave) }
}

/// Unwraps outside any registered wrapper. (naked-panic: naked-unwrap)
fn last(wave: &[f64]) -> f64 {
    *wave.last().unwrap() + read_first(wave)
}

/// Butterfly step with dense manual indexing on one line.
/// (naked-panic: indexing-heavy)
fn butterfly(v: &mut [f64], i: usize, j: usize) {
    v[i] = v[i] + v[j] * v[i + 1] - v[j + 1] + last(v);
}

/// Sets the carrier used by the seeded scan.
/// (unit-discipline — the doc names neither the parameter nor its
/// frequency unit)
pub fn set_carrier(carrier_hz: f64) -> f64 {
    carrier_hz
}

/// Scratch-taking hot path that still allocates a staging buffer per
/// call instead of reusing the scratch. (scratch-reuse:
/// alloc-in-hot-path)
pub fn accumulate_with(wave: &[f64], scratch: &mut Vec<f64>) -> f64 {
    let staged = wave.to_vec();
    scratch.clear();
    scratch.extend_from_slice(&staged);
    scratch.iter().sum()
}
