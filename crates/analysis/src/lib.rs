//! `rfbist-analysis` — the workspace invariant linter.
//!
//! A BIST is a self-checking instrument: the checker is baked into
//! the design, not bolted on. This crate applies the same premise to
//! the codebase itself — the contracts that make the verdict pipeline
//! fail-safe (every panicking entry point is a thin wrapper over its
//! `try_*` twin, every `unsafe` block carries its safety argument,
//! every `#[target_feature]` kernel hides behind runtime dispatch,
//! every raw unit-suffixed `f64` documents its unit) are machine
//! checked on every CI run instead of enforced by reviewer memory.
//!
//! The pass is a dependency-free, hand-rolled line/token scanner
//! (see [`scanner`]) — deliberately not a Rust parser, in the same
//! spirit as the campaign checkpoint's `minijson`. Findings emit
//! human text plus schema'd JSON (`rfbist-analysis-findings/v1`) and
//! are diffed against the committed `ANALYSIS_BASELINE.json`: only
//! **new** findings fail, so the rules ratchet instead of blocking
//! adoption.
//!
//! ```sh
//! cargo run -p rfbist-analysis -- --workspace
//! cargo run -p rfbist-analysis -- --workspace --update-baseline
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod findings;
pub mod json;
pub mod lints;
pub mod registry;
pub mod scanner;

use baseline::Baseline;
use findings::Finding;
use registry::Lint;
use scanner::SourceFile;
use std::path::{Path, PathBuf};

/// Directories never scanned (third-party code, build output, and
/// the linter's own violation fixtures).
const EXCLUDED: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Outcome of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Every finding, baselined or not, in path/line order.
    pub findings: Vec<Finding>,
    /// Fingerprints not covered by the baseline — the failures.
    pub new_fingerprints: Vec<String>,
    /// Baseline fingerprints no current finding matches.
    pub stale_fingerprints: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True when the run should exit 0.
    pub fn passed(&self) -> bool {
        self.new_fingerprints.is_empty()
    }

    /// The findings JSON document (`rfbist-analysis-findings/v1`).
    pub fn to_json(&self) -> String {
        findings::findings_document(&self.findings, &self.new_fingerprints, self.files_scanned)
    }
}

/// Collects the `.rs` files under `root` that the workspace scan
/// audits, workspace-relative and sorted for determinism.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read dir `{}`: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir `{}`: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Scans and lints one file already loaded as `text`.
pub fn analyze_source(lints: &[Box<dyn Lint>], rel_path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::scan(rel_path, text);
    let mut out = Vec::new();
    registry::run_lints(lints, &file, &mut out);
    out
}

/// Runs the full pass: scan `files` (workspace-relative under
/// `root`), apply every registered lint, and diff against `baseline`.
pub fn run_analysis(
    root: &Path,
    files: &[PathBuf],
    baseline: &Baseline,
) -> Result<Analysis, String> {
    let lints = registry::default_lints();
    let mut findings = Vec::new();
    for rel in files {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read `{}`: {e}", path.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(analyze_source(&lints, &rel_str, &text));
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    let new_fingerprints = baseline.new_fingerprints(&findings);
    let stale_fingerprints = baseline.stale_fingerprints(&findings);
    Ok(Analysis {
        findings,
        new_fingerprints,
        stale_fingerprints,
        files_scanned: files.len(),
    })
}
