//! Lint 6 — **scratch reuse**: the `*_with(.., scratch)` entry points
//! exist precisely so steady-state callers pay zero allocation; an
//! allocation inside one of those bodies silently re-introduces the
//! per-call heap traffic the scratch parameter was added to remove.
//! The rule audits the typed-error crates (the hot pipeline), flags
//! allocating expressions on non-test lines of any function whose
//! name ends in `_with` and takes a `scratch` parameter, and accepts
//! a waiver when the allocation is genuinely once-per-call by design.

use crate::findings::Finding;
use crate::registry::{has_typed_error_contract, Lint};
use crate::scanner::SourceFile;

/// Expressions that allocate. Token-level on masked code, so strings
/// and comments never match. `.collect()` covers the iterator path;
/// `with_capacity(`/`vec![`/`Vec::new(`/`Box::new(` cover the direct
/// constructors; `.to_vec()` covers slice cloning.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "with_capacity(",
    "Box::new(",
    ".to_vec(",
    ".collect(",
];

pub struct ScratchReuse;

impl Lint for ScratchReuse {
    fn name(&self) -> &'static str {
        "scratch-reuse"
    }

    fn description(&self) -> &'static str {
        "allocation inside a *_with(.., scratch) hot path — reuse the caller's scratch instead"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        has_typed_error_contract(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for f in &file.fns {
            if !f.name.ends_with("_with") || !f.params.iter().any(|(n, _)| n == "scratch") {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            for line in lo..=hi {
                if file.is_test_line(line) {
                    continue;
                }
                let Some(code) = file.code.get(line) else {
                    continue;
                };
                for token in ALLOC_TOKENS {
                    if code.contains(token) {
                        out.push(Finding {
                            lint: "scratch-reuse".to_string(),
                            file: file.rel_path.clone(),
                            line: line + 1,
                            symbol: f.name.clone(),
                            slug: "alloc-in-hot-path".to_string(),
                            message: format!(
                                "`{token}` inside `{}` — a scratch-taking hot path must not \
                                 allocate; grow the scratch struct or hoist the buffer to the \
                                 caller",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }
}
