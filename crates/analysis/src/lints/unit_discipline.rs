//! Lint 5 — **unit discipline**: a raw `f64` parameter named `*_hz`,
//! `*_db`, `*_dbc`, `*_dbhz`, `*_ps` or `*_s` on a public function is
//! a latent unit bug (the type system cannot catch a caller passing
//! MHz where Hz is meant). The convention this lint enforces is the
//! documented one: either the parameter's unit appears in the fn's
//! doc comment (by parameter name or unit word), or the API should
//! move to a newtype. Undocumented raw-unit parameters are flagged.

use crate::findings::Finding;
use crate::registry::{is_library_source, Lint};
use crate::scanner::SourceFile;

/// Suffix → unit words any of which satisfies the doc requirement.
const UNITS: &[(&str, &[&str])] = &[
    ("_hz", &["Hz", "hertz"]),
    ("_dbhz", &["dB/Hz"]),
    ("_dbc", &["dBc"]),
    ("_db", &["dB", "decibel"]),
    ("_ps", &["ps", "picosecond"]),
    ("_s", &["second", "sec", " s ", " s."]),
];

pub struct UnitDiscipline;

impl Lint for UnitDiscipline {
    fn name(&self) -> &'static str {
        "unit-discipline"
    }

    fn description(&self) -> &'static str {
        "raw f64 unit-suffixed params on pub fns must document their unit (or use a newtype)"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        is_library_source(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for decl in &file.fns {
            if !decl.is_pub || file.is_test_line(decl.sig_line) {
                continue;
            }
            for (pname, ptype) in &decl.params {
                if ptype != "f64" {
                    continue;
                }
                let Some((suffix, words)) = UNITS.iter().find(|(s, _)| pname.ends_with(s)).copied()
                else {
                    continue;
                };
                let documented = decl.doc.contains(&format!("`{pname}`"))
                    || decl.doc.contains(pname.as_str())
                    || words.iter().any(|w| decl.doc.contains(w));
                if documented {
                    continue;
                }
                out.push(Finding {
                    lint: self.name().to_string(),
                    file: file.rel_path.clone(),
                    line: decl.sig_line + 1,
                    symbol: decl.name.clone(),
                    slug: format!("undocumented-unit-{pname}"),
                    message: format!(
                        "pub fn `{}` takes raw `f64` parameter `{pname}` ({} suffix `{suffix}`) \
                         without documenting the unit — mention `{pname}`/{} in the doc comment \
                         or use a newtype",
                        decl.name,
                        unit_name(suffix),
                        words[0],
                    ),
                });
            }
        }
    }
}

fn unit_name(suffix: &str) -> &'static str {
    match suffix {
        "_hz" => "frequency",
        "_dbhz" => "spectral density",
        "_dbc" => "relative level",
        "_db" => "level",
        "_ps" => "time",
        _ => "duration",
    }
}
