//! The shipped design rules. Each lint is a pure function of the
//! scanned [`SourceFile`](crate::scanner::SourceFile) model; scoping
//! and waivers are handled by the [`registry`](crate::registry).

pub mod guarded_intrinsics;
pub mod naked_panic;
pub mod safety_comment;
pub mod scratch_reuse;
pub mod typed_parity;
pub mod unit_discipline;

use crate::scanner::has_token;

/// Macro invocations that abort: `name!`.
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Assertion macros — panicking contract checks. `debug_assert!` is
/// deliberately excluded: it vanishes in release builds, so it cannot
/// panic in the deployed pipeline.
pub const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// True when masked `text` invokes any of `macros` (token match, so
/// `debug_assert!` does not count as `assert!`).
pub fn calls_macro(text: &str, macros: &[&str]) -> bool {
    macros.iter().any(|m| {
        let mut from = 0;
        while let Some(pos) = text[from..].find(*m) {
            let abs = from + pos;
            let before_ok = abs == 0 || {
                let c = text.as_bytes()[abs - 1] as char;
                !(c.is_alphanumeric() || c == '_')
            };
            let after = text[abs + m.len()..].trim_start();
            if before_ok && after.starts_with('!') {
                return true;
            }
            from = abs + m.len().max(1);
        }
        false
    })
}

/// True when masked `text` calls `.unwrap()` or `.expect(` on some
/// receiver.
pub fn calls_unwrap_or_expect(text: &str) -> bool {
    text.contains(".unwrap()") || text.contains(".expect(")
}

/// True when masked `text` can panic directly: panic-family macro,
/// assertion macro, or unwrap/expect.
pub fn panics_directly(text: &str) -> bool {
    calls_unwrap_or_expect(text)
        || calls_macro(text, PANIC_MACROS)
        || calls_macro(text, ASSERT_MACROS)
}

/// True when masked `text` contains a call of `name` (i.e. the token
/// followed by an opening paren, possibly via `Self::name(`).
pub fn calls_fn(text: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(name) {
        let abs = from + pos;
        let before_ok = abs == 0 || {
            let c = text.as_bytes()[abs - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let after = text[abs + name.len()..].trim_start();
        if before_ok && (after.starts_with('(') || after.starts_with("::<")) {
            return true;
        }
        from = abs + name.len().max(1);
    }
    false
}

/// True when `text` mentions `token` at an identifier boundary —
/// re-exported convenience over the scanner's matcher.
pub fn mentions(text: &str, token: &str) -> bool {
    has_token(text, token)
}
