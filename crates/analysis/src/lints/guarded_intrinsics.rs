//! Lint 3 — **guarded intrinsics**: a `#[target_feature]` function
//! executes instructions the host may not have; calling one is only
//! sound behind a runtime check. Every call site of a
//! `#[target_feature]` fn must live inside a function whose body
//! performs `is_x86_feature_detected!` dispatch (the
//! `RFBIST_FORCE_SCALAR` escape hatch — a `force_scalar()` guard — is
//! also recognized, since the workspace's dispatchers combine both).

use super::{calls_fn, mentions};
use crate::findings::Finding;
use crate::registry::Lint;
use crate::scanner::SourceFile;

pub struct GuardedIntrinsics;

impl Lint for GuardedIntrinsics {
    fn name(&self) -> &'static str {
        "guarded-intrinsics"
    }

    fn description(&self) -> &'static str {
        "#[target_feature] fns may only be called behind is_x86_feature_detected! dispatch"
    }

    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let kernels: Vec<String> = file
            .fns
            .iter()
            .filter(|f| f.attrs.iter().any(|a| a.contains("target_feature")))
            .map(|f| f.name.clone())
            .collect();
        if kernels.is_empty() {
            return;
        }

        for caller in &file.fns {
            let Some((body_lo, _)) = caller.body else {
                continue;
            };
            if caller.attrs.iter().any(|a| a.contains("target_feature")) {
                // Kernel-to-kernel calls inherit the caller's guard.
                continue;
            }
            if file.is_test_line(caller.sig_line) {
                // Tests may force a path deliberately.
                continue;
            }
            let body = file.body_text(caller);
            let called: Vec<&String> = kernels
                .iter()
                .filter(|k| **k != caller.name && calls_fn(&body, k))
                .collect();
            if called.is_empty() {
                continue;
            }
            let guarded = mentions(&body, "is_x86_feature_detected")
                || mentions(&body, "force_scalar")
                || mentions(&body, "RFBIST_FORCE_SCALAR");
            if guarded {
                continue;
            }
            for k in called {
                out.push(Finding {
                    lint: self.name().to_string(),
                    file: file.rel_path.clone(),
                    line: body_lo + 1,
                    symbol: caller.name.clone(),
                    slug: format!("unguarded-call-{k}"),
                    message: format!(
                        "`{}` calls #[target_feature] fn `{k}` without \
                         is_x86_feature_detected!/RFBIST_FORCE_SCALAR dispatch in its body",
                        caller.name
                    ),
                });
            }
        }
    }
}
