//! Lint 2 — **SAFETY-comment coverage**: every `unsafe` site must
//! carry its safety argument where the reader meets it. `unsafe {`
//! blocks and `unsafe impl`s need a `// SAFETY:` comment immediately
//! above (same line, or directly above with only comments, attributes
//! and blank lines between); `unsafe fn`s may alternatively state the
//! contract in a `# Safety` doc section.

use crate::findings::Finding;
use crate::registry::Lint;
use crate::scanner::{SourceFile, UnsafeKind};

pub struct SafetyComment;

impl Lint for SafetyComment {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/fn/impl needs an adjacent SAFETY comment (or a `# Safety` doc section)"
    }

    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for site in &file.unsafe_sites {
            if has_safety_comment(file, site.line) {
                continue;
            }
            if site.kind == UnsafeKind::Fn {
                // An `unsafe fn` may document its contract instead.
                if let Some(decl) = file
                    .fns
                    .iter()
                    .find(|f| f.is_unsafe && f.sig_line == site.line)
                {
                    if decl.doc.contains("# Safety") || decl.doc.contains("SAFETY") {
                        continue;
                    }
                }
            }
            let kind = match site.kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::Impl => "unsafe impl",
            };
            let symbol = file
                .enclosing_fn(site.line)
                .map(|f| f.name.clone())
                .unwrap_or_default();
            out.push(Finding {
                lint: self.name().to_string(),
                file: file.rel_path.clone(),
                line: site.line + 1,
                symbol,
                slug: format!("missing-safety-{kind}").replace(' ', "-"),
                message: format!(
                    "{kind} without an immediately preceding `// SAFETY:` comment{}",
                    if site.kind == UnsafeKind::Fn {
                        " (or a `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

/// True when a SAFETY marker sits on the site line itself or directly
/// above it, with only comment, attribute and blank lines between.
fn has_safety_comment(file: &SourceFile, line: usize) -> bool {
    let marker = |l: usize| {
        file.comments
            .get(l)
            .is_some_and(|c| c.contains("SAFETY:") || c.contains("Safety:"))
    };
    if marker(line) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        if marker(i) {
            return true;
        }
        let code = file.code.get(i).map(|l| l.trim()).unwrap_or("");
        let raw = file.lines.get(i).map(|l| l.trim()).unwrap_or("");
        let is_comment = raw.starts_with("//");
        let is_attr = code.starts_with("#[");
        let is_blank = code.is_empty() && raw.is_empty();
        if !(is_comment || is_attr || is_blank) {
            return false;
        }
    }
    false
}
