//! Lint 4 — **no naked panics**: `unwrap`/`expect`/`panic!`-family
//! calls and indexing-heavy expressions in non-test library code,
//! outside registered wrapper functions. The sanctioned place for a
//! panic is a thin wrapper over a `try_*` twin (lint 1's shape);
//! everything else should carry a typed error, a contract assert
//! (which lint 1 forces to grow a twin on public API), or a waiver
//! with its justification in the comment.

use super::{calls_fn, calls_macro, PANIC_MACROS};
use crate::findings::Finding;
use crate::registry::{is_library_source, Lint};
use crate::scanner::SourceFile;

/// A line with this many subscript expressions is "indexing-heavy":
/// dense manual indexing is where slice-bound panics hide, and the
/// kernels that genuinely need it (hot DSP loops) should say so with
/// a waiver or get a baseline entry a reviewer signed off once.
const INDEXING_HEAVY: usize = 4;

pub struct NakedPanic;

impl Lint for NakedPanic {
    fn name(&self) -> &'static str {
        "naked-panic"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic! and indexing-heavy lines outside registered try_* wrappers"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        is_library_source(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Registered wrappers: fns whose body is the lint-1 delegate
        // shape — their `unwrap_or_else(|e| panic!(..))` is the point.
        let wrapper_spans: Vec<(usize, usize)> = file
            .fns
            .iter()
            .filter(|f| {
                let body = file.body_text(f);
                body.contains("unwrap_or_else")
                    && body.contains("panic!")
                    && file
                        .fns
                        .iter()
                        .any(|g| g.name.starts_with("try_") && calls_fn(&body, &g.name))
            })
            .filter_map(|f| f.body)
            .collect();
        let in_wrapper = |line: usize| {
            wrapper_spans
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
        };

        for (i, code) in file.code.iter().enumerate() {
            if file.is_test_line(i) || in_wrapper(i) {
                continue;
            }
            let symbol = file
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_default();
            let mut push = |slug: &str, message: String| {
                out.push(Finding {
                    lint: "naked-panic".to_string(),
                    file: file.rel_path.clone(),
                    line: i + 1,
                    symbol: symbol.clone(),
                    slug: slug.to_string(),
                    message,
                });
            };
            if code.contains(".unwrap()") {
                push("naked-unwrap", "`.unwrap()` outside a registered wrapper — use a `try_*` form or a typed error".into());
            }
            if code.contains(".expect(") {
                push("naked-expect", "`.expect(..)` outside a registered wrapper — use a `try_*` form or a typed error".into());
            }
            if calls_macro(code, PANIC_MACROS) {
                push(
                    "naked-panic-macro",
                    "panic-family macro outside a registered wrapper".into(),
                );
            }
            let subs = subscript_count(code);
            if subs >= INDEXING_HEAVY {
                push(
                    "indexing-heavy",
                    format!(
                        "indexing-heavy expression ({INDEXING_HEAVY}+ subscripts on one line) — \
                         slice-bound panics hide here; prefer iterators or split_at"
                    ),
                );
            }
        }
    }
}

/// Counts subscript expressions: `[` directly preceded by an
/// identifier character, `]` or `)` (i.e. an index, not an array
/// literal, attribute or slice pattern).
fn subscript_count(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev.is_alphanumeric() || prev == '_' || prev == ']' || prev == ')' {
            n += 1;
        }
    }
    n
}
