//! Lint 1 — **typed-error parity**: every non-test `pub fn` in the
//! typed-error crates (`rfbist-core`, `rfbist-sampling`) that can
//! panic must have a `try_*` twin, and the panicking form must be a
//! thin delegate over it (`try_*(..).unwrap_or_else(|e| panic!(..))`,
//! or a one-expression forward to another such wrapper — the
//! `run` → `run_with` → `try_run_with` chain).
//!
//! Panic capability propagates: a `pub fn` whose body only calls a
//! panicking sibling in the same file can panic too (that is exactly
//! what the thin wrappers do), so the fixpoint over same-file calls
//! decides, not just the function's own tokens.

use super::{calls_fn, panics_directly};
use crate::findings::Finding;
use crate::registry::{has_typed_error_contract, Lint};
use crate::scanner::SourceFile;

pub struct TypedErrorParity;

impl Lint for TypedErrorParity {
    fn name(&self) -> &'static str {
        "typed-error-parity"
    }

    fn description(&self) -> &'static str {
        "panicking pub fns in rfbist-core/rfbist-sampling need a try_* twin and a thin-delegate body"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        has_typed_error_contract(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let bodies: Vec<String> = file.fns.iter().map(|f| file.body_text(f)).collect();

        // Panic capability to fixpoint over same-file calls.
        let mut can_panic: Vec<bool> = bodies.iter().map(|b| panics_directly(b)).collect();
        loop {
            let mut changed = false;
            for i in 0..file.fns.len() {
                if can_panic[i] {
                    continue;
                }
                let body = &bodies[i];
                let propagated = file
                    .fns
                    .iter()
                    .enumerate()
                    .any(|(j, g)| j != i && can_panic[j] && calls_fn(body, &g.name));
                if propagated {
                    can_panic[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (i, decl) in file.fns.iter().enumerate() {
            if !decl.is_pub
                || decl.name.starts_with("try_")
                || decl.body.is_none()
                || file.is_test_line(decl.sig_line)
                || !can_panic[i]
            {
                continue;
            }
            let twin = format!("try_{}", decl.name);
            let has_twin = file.fns.iter().any(|g| g.name == twin);
            if !has_twin {
                out.push(Finding {
                    lint: self.name().to_string(),
                    file: file.rel_path.clone(),
                    line: decl.sig_line + 1,
                    symbol: decl.name.clone(),
                    slug: "missing-try-twin".to_string(),
                    message: format!(
                        "pub fn `{}` can panic but has no `{twin}` twin returning a typed BistError",
                        decl.name
                    ),
                });
                continue;
            }
            if !is_thin_delegate(file, &bodies[i], &decl.name) {
                out.push(Finding {
                    lint: self.name().to_string(),
                    file: file.rel_path.clone(),
                    line: decl.sig_line + 1,
                    symbol: decl.name.clone(),
                    slug: "not-thin-delegate".to_string(),
                    message: format!(
                        "pub fn `{}` has a `{twin}` twin but its body is not a thin delegate \
                         (`{twin}(..).unwrap_or_else(|e| panic!(..))` or a one-expression \
                         forward to another wrapper)",
                        decl.name
                    ),
                });
            }
        }
    }
}

/// Accepts the two sanctioned wrapper shapes.
fn is_thin_delegate(file: &SourceFile, body: &str, name: &str) -> bool {
    let twin = format!("try_{name}");
    // Shape A: delegate straight to the twin and re-panic the typed
    // error's Display (which preserves the legacy panic message).
    if calls_fn(body, &twin) && body.contains("unwrap_or_else") && body.contains("panic!") {
        return true;
    }
    // Shape B: a one-expression forward to another fn that itself has
    // a `try_` twin in this file (e.g. `run` forwarding to `run_with`
    // with fresh scratch).
    let code_lines = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "{" && *l != "}")
        .count();
    if code_lines <= 3 {
        return file.fns.iter().any(|g| {
            g.name != name
                && !g.name.starts_with("try_")
                && calls_fn(body, &g.name)
                && file.fns.iter().any(|h| h.name == format!("try_{}", g.name))
        });
    }
    false
}
