//! Baseline I/O: the committed `ANALYSIS_BASELINE.json` holds the
//! fingerprints of grandfathered findings. A run fails only on
//! findings whose fingerprint is absent from the baseline, so the
//! design rules can be adopted on a living tree and ratcheted down —
//! the same only-new-regressions contract as the CI perf gate.

use crate::findings::Finding;
use crate::json::{self, JsonValue};
use std::collections::BTreeSet;
use std::path::Path;

/// Schema tag of the baseline document.
pub const BASELINE_SCHEMA: &str = "rfbist-analysis-baseline/v1";

/// A set of grandfathered finding fingerprints.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    fingerprints: BTreeSet<String>,
}

impl Baseline {
    /// An empty baseline (every finding is new).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Builds the baseline that annotates exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        Baseline {
            fingerprints: findings.iter().map(Finding::fingerprint).collect(),
        }
    }

    /// Loads a baseline file. A missing file is an empty baseline (the
    /// bootstrap state); a malformed one is an error — silently
    /// ignoring a corrupt baseline would re-grandfather nothing and
    /// fail CI noisily, but the message should say why.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::empty());
            }
            Err(e) => return Err(format!("read `{}`: {e}", path.display())),
        };
        Self::parse(&text).map_err(|e| format!("`{}`: {e}", path.display()))
    }

    /// Parses a baseline document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(BASELINE_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported baseline schema `{other}`")),
            None => return Err("missing `schema` field".to_string()),
        }
        let arr = doc
            .get("fingerprints")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `fingerprints` array")?;
        let mut fingerprints = BTreeSet::new();
        for item in arr {
            let fp = item.as_str().ok_or("non-string fingerprint")?;
            fingerprints.insert(fp.to_string());
        }
        Ok(Baseline { fingerprints })
    }

    /// Serializes deterministically (sorted, deduplicated) so
    /// `--update-baseline` twice in a row is byte-identical.
    pub fn to_json(&self) -> String {
        let doc = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(BASELINE_SCHEMA.into())),
            (
                "fingerprints".into(),
                JsonValue::Arr(
                    self.fingerprints
                        .iter()
                        .map(|f| JsonValue::Str(f.clone()))
                        .collect(),
                ),
            ),
        ]);
        let mut out = String::new();
        doc.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes atomically (tmp-then-rename, like the campaign
    /// checkpoint) so an interrupted update never leaves a truncated
    /// baseline behind.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write `{}`: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename `{}` -> `{}`: {e}", tmp.display(), path.display()))
    }

    /// Number of grandfathered fingerprints.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// True when no fingerprints are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    pub fn contains(&self, fingerprint: &str) -> bool {
        self.fingerprints.contains(fingerprint)
    }

    /// Fingerprints of `findings` that are **not** grandfathered —
    /// the ones that fail the run — deduplicated, in first-seen order.
    pub fn new_fingerprints(&self, findings: &[Finding]) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for f in findings {
            let fp = f.fingerprint();
            if !self.fingerprints.contains(&fp) && seen.insert(fp.clone()) {
                out.push(fp);
            }
        }
        out
    }

    /// Grandfathered fingerprints that no current finding matches —
    /// candidates for pruning with `--update-baseline`.
    pub fn stale_fingerprints(&self, findings: &[Finding]) -> Vec<String> {
        let current: BTreeSet<String> = findings.iter().map(Finding::fingerprint).collect();
        self.fingerprints
            .iter()
            .filter(|fp| !current.contains(*fp))
            .cloned()
            .collect()
    }
}
