//! The lint registry: every design rule implements [`Lint`]; the
//! registry owns the default set and runs them over scanned sources.
//!
//! Per-file scoping lives here (which crates a lint audits) so the
//! lints themselves stay pure source-model checks. A source line may
//! carry an inline waiver `// analysis: allow(<lint-name>) — reason`
//! which suppresses that lint for the line's enclosing function; the
//! waiver is visible in the diff, which is the point.

use crate::findings::Finding;
use crate::lints;
use crate::scanner::SourceFile;

/// One design rule.
pub trait Lint {
    /// Kebab-case lint name (stable: part of every fingerprint).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Whether this lint audits `rel_path` at all.
    fn applies_to(&self, rel_path: &str) -> bool;
    /// Runs the rule, appending findings.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// True for paths inside the library crates the panic-discipline
/// lints audit (the facade and every `crates/*` lib except the bench
/// drivers; the linter audits itself too).
pub fn is_library_source(rel_path: &str) -> bool {
    if rel_path.starts_with("src/") {
        return true;
    }
    if !rel_path.starts_with("crates/") {
        return false;
    }
    // Bench drivers are CLI tools: `expect` on a missing flag is the
    // correct behavior there, not a design-rule violation.
    if rel_path.starts_with("crates/bench/") {
        return false;
    }
    rel_path.contains("/src/")
}

/// The crates whose public API carries the typed-error contract.
pub fn has_typed_error_contract(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/src/") || rel_path.starts_with("crates/sampling/src/")
}

/// The default registry: the six shipped design rules.
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::typed_parity::TypedErrorParity),
        Box::new(lints::safety_comment::SafetyComment),
        Box::new(lints::guarded_intrinsics::GuardedIntrinsics),
        Box::new(lints::naked_panic::NakedPanic),
        Box::new(lints::unit_discipline::UnitDiscipline),
        Box::new(lints::scratch_reuse::ScratchReuse),
    ]
}

/// Runs every applicable lint over `file`, dropping findings waived
/// by an inline `// analysis: allow(<lint>)` comment on the finding
/// line or on the enclosing fn's signature line.
pub fn run_lints(lints: &[Box<dyn Lint>], file: &SourceFile, out: &mut Vec<Finding>) {
    let mut raw = Vec::new();
    for lint in lints {
        if !lint.applies_to(&file.rel_path) {
            continue;
        }
        lint.check(file, &mut raw);
    }
    out.extend(raw.into_iter().filter(|f| !is_waived(file, f)));
}

fn is_waived(file: &SourceFile, finding: &Finding) -> bool {
    let marker = format!("analysis: allow({})", finding.lint);
    let line = finding.line.saturating_sub(1);
    let waived_at = |l: usize| {
        file.comments
            .get(l)
            .is_some_and(|c| c.contains(&marker))
            // A waiver may also sit on its own comment line directly
            // above the construct.
            || l > 0 && file.comments.get(l - 1).is_some_and(|c| c.contains(&marker))
    };
    if waived_at(line) {
        return true;
    }
    file.enclosing_fn(line)
        .is_some_and(|f| waived_at(f.sig_line))
}
