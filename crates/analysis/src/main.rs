//! CLI for the workspace invariant linter.
//!
//! ```sh
//! rfbist-analysis --workspace                  # lint the tree, diff vs ANALYSIS_BASELINE.json
//! rfbist-analysis --workspace --update-baseline
//! rfbist-analysis --workspace --json findings.json
//! rfbist-analysis path/to/dir-or-file.rs       # strict mode: empty baseline unless --baseline
//! ```
//!
//! Exit codes: `0` clean (no new findings), `1` new findings, `2`
//! usage or I/O error.

use rfbist_analysis::baseline::Baseline;
use rfbist_analysis::{registry, run_analysis, workspace_files};
use std::path::PathBuf;
use std::process::ExitCode;

struct Config {
    workspace: bool,
    paths: Vec<PathBuf>,
    root: PathBuf,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    json_out: Option<PathBuf>,
    list: bool,
}

const USAGE: &str = "usage: rfbist-analysis (--workspace | PATH...) \
    [--root DIR] [--baseline FILE] [--update-baseline] [--json FILE] [--list]";

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        workspace: false,
        paths: Vec::new(),
        root: PathBuf::from("."),
        baseline: None,
        update_baseline: false,
        json_out: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => cfg.workspace = true,
            "--root" => cfg.root = PathBuf::from(next(&mut args, "--root")?),
            "--baseline" => cfg.baseline = Some(PathBuf::from(next(&mut args, "--baseline")?)),
            "--update-baseline" => cfg.update_baseline = true,
            "--json" => cfg.json_out = Some(PathBuf::from(next(&mut args, "--json")?)),
            "--list" => cfg.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => cfg.paths.push(PathBuf::from(path)),
        }
    }
    if !cfg.list && !cfg.workspace && cfg.paths.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(cfg)
}

fn next(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("rfbist-analysis: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let cfg = parse_args()?;

    if cfg.list {
        for lint in registry::default_lints() {
            println!("{:<22} {}", lint.name(), lint.description());
        }
        return Ok(true);
    }

    // File set: the whole workspace, or the explicit paths (each a
    // file or a directory to walk), all relative to --root.
    let files: Vec<PathBuf> = if cfg.workspace {
        workspace_files(&cfg.root)?
    } else {
        let mut out = Vec::new();
        for p in &cfg.paths {
            let abs = cfg.root.join(p);
            if abs.is_dir() {
                out.extend(workspace_files(&abs)?.into_iter().map(|f| p.join(f)));
            } else {
                out.push(p.clone());
            }
        }
        out.sort();
        out
    };

    // Baseline: the committed workspace file by default in
    // --workspace mode; strict (empty) for explicit paths unless one
    // is named, so fixture runs fail on every seeded violation.
    let baseline_path = match (&cfg.baseline, cfg.workspace) {
        (Some(p), _) => Some(cfg.root.join(p)),
        (None, true) => Some(cfg.root.join("ANALYSIS_BASELINE.json")),
        (None, false) => None,
    };
    let baseline = match &baseline_path {
        Some(p) => Baseline::load(p)?,
        None => Baseline::empty(),
    };

    let analysis = run_analysis(&cfg.root, &files, &baseline)?;

    if let Some(json_path) = &cfg.json_out {
        std::fs::write(json_path, analysis.to_json())
            .map_err(|e| format!("write `{}`: {e}", json_path.display()))?;
    }

    if cfg.update_baseline {
        let path = baseline_path.ok_or("--update-baseline requires --workspace or --baseline")?;
        let updated = Baseline::from_findings(&analysis.findings);
        updated.store(&path)?;
        println!(
            "baseline updated: {} fingerprint(s) ({} finding(s)) -> {}",
            updated.len(),
            analysis.findings.len(),
            path.display()
        );
        return Ok(true);
    }

    // Human report: new findings in full, baselined ones as a count.
    let new_set: std::collections::BTreeSet<&str> = analysis
        .new_fingerprints
        .iter()
        .map(String::as_str)
        .collect();
    let mut shown = 0usize;
    for f in &analysis.findings {
        if new_set.contains(f.fingerprint().as_str()) {
            println!("NEW  {}", f.render());
            shown += 1;
        }
    }
    println!(
        "rfbist-analysis: {} file(s), {} finding(s) total, {} baselined, {} new{}",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.findings.len() - shown,
        analysis.new_fingerprints.len(),
        if analysis.stale_fingerprints.is_empty() {
            String::new()
        } else {
            format!(
                ", {} stale baseline entr(ies) — consider --update-baseline",
                analysis.stale_fingerprints.len()
            )
        }
    );
    if !analysis.passed() {
        println!("new findings fail the run; annotate with `// analysis: allow(<lint>) — reason`, fix, or re-baseline deliberately with --update-baseline");
    }
    Ok(analysis.passed())
}
