//! Minimal JSON emit + parse — the linter's own `minijson`, in the
//! same spirit as the campaign checkpoint's: no dependencies, exact
//! and deterministic output (object key order preserved, stable
//! number formatting) so `--update-baseline` is byte-idempotent.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation; integers without a
    /// fractional part print as integers (the only numbers this crate
    /// writes are counts and line numbers).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of document".to_string())
    }

    fn consume(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.pos;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number at byte {start}"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
