//! Hand-rolled Rust source model: a character-level mask pass (string
//! and comment stripping with raw-string, nested-block-comment and
//! lifetime handling) followed by a line/brace-level structural pass
//! that recovers function declarations, attribute/doc context,
//! `#[cfg(test)]` spans and `unsafe` sites.
//!
//! This is deliberately **not** a Rust parser. Like the campaign
//! checkpoint's `minijson`, it is a small, dependency-free scanner
//! with exactly enough state tracking to be reliable on this
//! workspace's idiomatic rustfmt-formatted sources; the lint fixtures
//! in `tests/` pin the constructs it must understand.

/// One scanned source file: raw lines, masked code lines (string and
/// comment contents blanked), per-line comment text, and the
/// structural model built from them.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw source lines.
    pub lines: Vec<String>,
    /// Masked lines: comments removed, string/char-literal contents
    /// blanked to spaces (delimiters kept), so token scans cannot be
    /// fooled by `"panic!"` inside a literal.
    pub code: Vec<String>,
    /// Comment text per line (contents after `//` / inside `/* */`),
    /// empty when the line carries no comment.
    pub comments: Vec<String>,
    /// Function declarations in source order.
    pub fns: Vec<FnDecl>,
    /// 0-based inclusive line ranges that are test code
    /// (`#[cfg(test)]` modules, `#[test]` functions).
    pub test_ranges: Vec<(usize, usize)>,
    /// `unsafe` sites (blocks, fns, impls) in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// A recovered `fn` declaration.
#[derive(Debug)]
pub struct FnDecl {
    pub name: String,
    pub is_pub: bool,
    pub is_unsafe: bool,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive body span (brace to matching brace); `None`
    /// for bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Attribute lines (masked text) directly above the signature.
    pub attrs: Vec<String>,
    /// Doc-comment text (`///` lines) directly above the signature.
    pub doc: String,
    /// `(name, type)` pairs of the parameter list, receivers skipped.
    pub params: Vec<(String, String)>,
}

/// What kind of `unsafe` token a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
}

/// One `unsafe` occurrence in code (never in a string or comment).
#[derive(Debug)]
pub struct UnsafeSite {
    pub line: usize,
    pub kind: UnsafeKind,
}

impl SourceFile {
    /// Scans `text` into the structural model.
    pub fn scan(rel_path: &str, text: &str) -> SourceFile {
        let (masked, comment_mask) = mask_source(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = masked.lines().map(str::to_string).collect();
        let comments: Vec<String> = comment_mask.lines().map(str::to_string).collect();
        // `lines()` drops a trailing empty line difference; pad the
        // derived views so indexing by raw line number always works.
        let n = lines.len();
        let mut file = SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            lines,
            code: pad_to(code, n),
            comments: pad_to(comments, n),
            fns: Vec::new(),
            test_ranges: Vec::new(),
            unsafe_sites: Vec::new(),
        };
        file.find_fns();
        file.find_test_ranges();
        file.find_unsafe_sites();
        file
    }

    /// True when 0-based `line` falls inside test code (a
    /// `#[cfg(test)]` module, a `#[test]` fn, or an integration-test
    /// file under `tests/`).
    pub fn is_test_line(&self, line: usize) -> bool {
        if self.rel_path.starts_with("tests/") || self.rel_path.contains("/tests/") {
            return true;
        }
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The innermost function whose body contains 0-based `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnDecl> {
        self.fns
            .iter()
            .filter(|f| match f.body {
                Some((lo, hi)) => lo <= line && line <= hi || f.sig_line == line,
                None => f.sig_line == line,
            })
            .min_by_key(|f| match f.body {
                Some((lo, hi)) => hi - lo,
                None => 0,
            })
    }

    /// Masked body text of `decl`, joined with newlines.
    pub fn body_text(&self, decl: &FnDecl) -> String {
        match decl.body {
            Some((lo, hi)) => self.code[lo..=hi.min(self.code.len() - 1)].join("\n"),
            None => String::new(),
        }
    }

    /// Finds every `fn` token in masked code and recovers its
    /// declaration.
    fn find_fns(&mut self) {
        let mut decls = Vec::new();
        for i in 0..self.code.len() {
            let line = self.code[i].clone();
            let Some(col) = find_token(&line, "fn") else {
                continue;
            };
            // Name: first identifier after `fn`.
            let after = &line[col + 2..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let prefix = &line[..col];
            let is_pub = find_token(prefix, "pub").is_some();
            let is_unsafe = find_token(prefix, "unsafe").is_some();

            let (attrs, doc) = self.context_above(i);
            let params = self.parse_params(i, col);
            let body = self.body_span(i, col);
            decls.push(FnDecl {
                name,
                is_pub,
                is_unsafe,
                sig_line: i,
                body,
                attrs,
                doc,
                params,
            });
        }
        self.fns = decls;
    }

    /// Attribute lines and doc text directly above `line` (walking up
    /// through attributes, doc comments and plain comments).
    fn context_above(&self, line: usize) -> (Vec<String>, String) {
        let mut attrs = Vec::new();
        let mut doc_lines = Vec::new();
        let mut i = line;
        while i > 0 {
            i -= 1;
            let code = self.code[i].trim();
            let raw = self.lines[i].trim();
            if raw.starts_with("///") || raw.starts_with("//!") {
                doc_lines.push(raw.trim_start_matches(['/', '!']).trim().to_string());
            } else if code.starts_with("#[") {
                attrs.push(code.to_string());
            } else if raw.starts_with("//") {
                // plain comment between attrs/docs: keep walking
            } else if code.is_empty() && raw.is_empty() {
                break;
            } else if code.is_empty() {
                // masked-out content (e.g. a string continuation): stop
                break;
            } else {
                break;
            }
        }
        doc_lines.reverse();
        attrs.reverse();
        (attrs, doc_lines.join("\n"))
    }

    /// Parses the parameter list starting at the `(` after the fn name
    /// on `sig_line` (which may wrap over several lines).
    fn parse_params(&self, sig_line: usize, fn_col: usize) -> Vec<(String, String)> {
        // Collect text from the opening paren to its match.
        let mut text = String::new();
        let mut depth = 0i32;
        let mut started = false;
        'outer: for (li, l) in self.code.iter().enumerate().skip(sig_line) {
            let start = if li == sig_line { fn_col } else { 0 };
            for c in l[start.min(l.len())..].chars() {
                match c {
                    '(' => {
                        depth += 1;
                        if depth == 1 {
                            started = true;
                            continue;
                        }
                    }
                    ')' => {
                        depth -= 1;
                        if started && depth == 0 {
                            break 'outer;
                        }
                    }
                    _ => {}
                }
                if started {
                    text.push(c);
                }
            }
            if started {
                text.push(' ');
            }
            if li > sig_line + 40 {
                break; // runaway: malformed source
            }
        }
        split_top_level(&text, ',')
            .into_iter()
            .filter_map(|p| {
                let p = p.trim();
                let (name, ty) = p.split_once(':')?;
                let name = name.trim().trim_start_matches("mut ").trim();
                if name.contains("self") || !is_ident(name) {
                    return None;
                }
                Some((name.to_string(), ty.trim().to_string()))
            })
            .collect()
    }

    /// Finds the body span of the fn declared at (`sig_line`,
    /// `fn_col`): the first `{` at paren-depth 0 after the signature,
    /// to its matching `}`. Returns `None` when a `;` closes the
    /// declaration first.
    fn body_span(&self, sig_line: usize, fn_col: usize) -> Option<(usize, usize)> {
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut body_start = None;
        for (li, l) in self.code.iter().enumerate().skip(sig_line) {
            let start = if li == sig_line { fn_col } else { 0 };
            for c in l[start.min(l.len())..].chars() {
                match c {
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    ';' if paren == 0 && body_start.is_none() => return None,
                    '{' if paren == 0 => {
                        if body_start.is_none() {
                            body_start = Some(li);
                        }
                        brace += 1;
                    }
                    '}' if paren == 0 => {
                        brace -= 1;
                        if body_start.is_some() && brace == 0 {
                            return Some((body_start.unwrap_or(li), li));
                        }
                    }
                    _ => {}
                }
            }
        }
        body_start.map(|s| (s, self.code.len().saturating_sub(1)))
    }

    /// Marks `#[cfg(test)]` module spans and `#[test]` fn bodies.
    fn find_test_ranges(&mut self) {
        let mut ranges = Vec::new();
        for i in 0..self.code.len() {
            let t = self.code[i].trim();
            if !(t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")) {
                continue;
            }
            // The item below: a mod (span to matching brace) or fn.
            let mut brace = 0i32;
            let mut started = false;
            for (li, l) in self.code.iter().enumerate().skip(i) {
                for c in l.chars() {
                    match c {
                        '{' => {
                            brace += 1;
                            started = true;
                        }
                        '}' => {
                            brace -= 1;
                        }
                        ';' if !started && brace == 0 => {
                            // bodiless item (e.g. `mod tests;`)
                            ranges.push((i, li));
                            brace = i32::MIN;
                        }
                        _ => {}
                    }
                    if started && brace == 0 {
                        ranges.push((i, li));
                        brace = i32::MIN;
                    }
                    if brace == i32::MIN {
                        break;
                    }
                }
                if brace == i32::MIN {
                    break;
                }
            }
        }
        // `#[test]` fns (covers fixtures outside cfg(test) mods).
        let fn_spans: Vec<(usize, usize, usize)> = self
            .fns
            .iter()
            .filter(|f| f.attrs.iter().any(|a| a.contains("#[test]")))
            .filter_map(|f| f.body.map(|(lo, hi)| (f.sig_line, lo, hi)))
            .collect();
        for (sig, _, hi) in fn_spans {
            ranges.push((sig, hi));
        }
        ranges.sort_unstable();
        self.test_ranges = ranges;
    }

    /// Records every `unsafe` token in masked code with its kind.
    fn find_unsafe_sites(&mut self) {
        let mut sites = Vec::new();
        for (i, l) in self.code.iter().enumerate() {
            let mut search_from = 0usize;
            while let Some(col) = find_token(&l[search_from..], "unsafe") {
                let abs = search_from + col;
                let after = l[abs + "unsafe".len()..].trim_start();
                let kind = if after.starts_with("fn") {
                    UnsafeKind::Fn
                } else if after.starts_with("impl") {
                    UnsafeKind::Impl
                } else {
                    UnsafeKind::Block
                };
                sites.push(UnsafeSite { line: i, kind });
                search_from = abs + "unsafe".len();
            }
        }
        self.unsafe_sites = sites;
    }
}

fn pad_to(mut v: Vec<String>, n: usize) -> Vec<String> {
    while v.len() < n {
        v.push(String::new());
    }
    v
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// Splits `text` on `sep` at bracket depth 0 (parens, brackets and
/// angle brackets all tracked — enough for parameter lists).
pub fn split_top_level(text: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '<' | '{' => depth += 1,
            // Clamp at zero so a stray `>` (e.g. the `->` of an
            // `impl Fn(..) -> T` parameter type) cannot poison the
            // depth for the rest of the list.
            ')' | ']' | '>' | '}' if depth > 0 => depth -= 1,
            _ => {}
        }
        if c == sep && depth == 0 {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Finds `token` in `s` at an identifier boundary (not part of a
/// longer identifier on either side), returning its byte offset.
pub fn find_token(s: &str, token: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut from = 0;
    while let Some(pos) = s[from..].find(token) {
        let abs = from + pos;
        let before_ok = abs == 0 || {
            let c = bytes[abs - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = abs + token.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return Some(abs);
        }
        from = abs + token.len().max(1);
    }
    None
}

/// True when `s` contains `token` at an identifier boundary.
pub fn has_token(s: &str, token: &str) -> bool {
    find_token(s, token).is_some()
}

/// The character-level pass: returns `(masked, comment_text)`, both
/// the same shape as the input (newlines preserved). In `masked`,
/// comment bodies and string/char-literal contents become spaces; in
/// `comment_text`, everything *except* comment bodies becomes spaces.
fn mask_source(text: &str) -> (String, String) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = text.as_bytes();
    let mut masked = String::with_capacity(text.len());
    let mut comment = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            masked.push('\n');
            comment.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    masked.push_str("  ");
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    masked.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    masked.push('"');
                    comment.push(' ');
                    i += 1;
                } else if c == 'r' && is_raw_string_start(bytes, i) {
                    let hashes = count_hashes(bytes, i + 1);
                    state = State::RawStr(hashes);
                    for _ in 0..(1 + hashes + 1) {
                        masked.push(' ');
                        comment.push(' ');
                    }
                    i += 1 + hashes + 1;
                } else if c == '\'' && is_char_literal(bytes, i) {
                    state = State::Char;
                    masked.push('\'');
                    comment.push(' ');
                    i += 1;
                } else {
                    masked.push(c);
                    comment.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                masked.push(' ');
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                    let d = depth - 1;
                    state = if d == 0 {
                        State::Code
                    } else {
                        State::BlockComment(d)
                    };
                    masked.push_str("  ");
                    comment.push_str("*/");
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    masked.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else {
                    masked.push(' ');
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    masked.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    masked.push('"');
                    comment.push(' ');
                    i += 1;
                } else {
                    masked.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(bytes, i, hashes) {
                    state = State::Code;
                    for _ in 0..(1 + hashes) {
                        masked.push(' ');
                        comment.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    masked.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    masked.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    masked.push('\'');
                    comment.push(' ');
                    i += 1;
                } else {
                    masked.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
        }
    }
    (masked, comment)
}

/// `r"`, `r#"` (after checking the `r` is not part of an identifier).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1] as char;
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> usize {
    let mut n = 0;
    while bytes.get(i) == Some(&b'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Distinguishes a char literal from a lifetime: `'x'` and `'\n'` are
/// literals; `'a` followed by anything else is a lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}
