//! The finding record every lint emits, and its stable fingerprint —
//! the identity the baseline diff keys on. Fingerprints deliberately
//! exclude line numbers so unrelated edits above a grandfathered
//! finding do not churn the baseline.

use crate::json::JsonValue;

/// Schema tag written into every findings document.
pub const FINDINGS_SCHEMA: &str = "rfbist-analysis-findings/v1";

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (kebab-case, e.g. `typed-error-parity`).
    pub lint: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending construct.
    pub line: usize,
    /// Enclosing symbol (fn name) when one exists.
    pub symbol: String,
    /// Short stable violation slug (no line numbers, no counts) —
    /// part of the fingerprint.
    pub slug: String,
    /// Human explanation with the specific evidence.
    pub message: String,
}

impl Finding {
    /// The baseline identity: `lint|file|symbol|slug`.
    pub fn fingerprint(&self) -> String {
        format!("{}|{}|{}|{}", self.lint, self.file, self.symbol, self.slug)
    }

    /// One human-readable report line.
    pub fn render(&self) -> String {
        let sym = if self.symbol.is_empty() {
            String::new()
        } else {
            format!(" ({})", self.symbol)
        };
        format!(
            "{}:{}{} [{}] {}",
            self.file, self.line, sym, self.lint, self.message
        )
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("lint".into(), JsonValue::Str(self.lint.clone())),
            ("file".into(), JsonValue::Str(self.file.clone())),
            ("line".into(), JsonValue::Num(self.line as f64)),
            ("symbol".into(), JsonValue::Str(self.symbol.clone())),
            ("slug".into(), JsonValue::Str(self.slug.clone())),
            ("message".into(), JsonValue::Str(self.message.clone())),
            ("fingerprint".into(), JsonValue::Str(self.fingerprint())),
        ])
    }
}

/// Serializes a findings report (`rfbist-analysis-findings/v1`):
/// every finding, plus which fingerprints are new against the
/// baseline and how many were baselined away.
pub fn findings_document(
    findings: &[Finding],
    new_fingerprints: &[String],
    files_scanned: usize,
) -> String {
    let doc = JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str(FINDINGS_SCHEMA.into())),
        ("files_scanned".into(), JsonValue::Num(files_scanned as f64)),
        (
            "total_findings".into(),
            JsonValue::Num(findings.len() as f64),
        ),
        (
            "new_findings".into(),
            JsonValue::Num(new_fingerprints.len() as f64),
        ),
        (
            "baselined_findings".into(),
            JsonValue::Num((findings.len() - new_fingerprints.len()) as f64),
        ),
        (
            "new_fingerprints".into(),
            JsonValue::Arr(
                new_fingerprints
                    .iter()
                    .map(|f| JsonValue::Str(f.clone()))
                    .collect(),
            ),
        ),
        (
            "findings".into(),
            JsonValue::Arr(findings.iter().map(Finding::to_json).collect()),
        ),
    ]);
    let mut out = String::new();
    doc.write_pretty(&mut out, 0);
    out.push('\n');
    out
}
