//! Verdict-service saturation-curve driver: sweeps the persistent
//! worker pool across worker counts on a fixed batch of calibrated-skew
//! jobs and writes the throughput curve as JSON — the CI artifact that
//! records how verdicts/s saturates with pool size on each runner
//! flavor (AVX2 and forced-scalar).
//!
//! ```sh
//! cargo run --release -p rfbist-bench --bin verdict_service -- --quick --out service-saturation.json
//! ```
//!
//! Unlike `perf_report`, this binary asserts no speedup floors — the
//! curve's *shape* is machine-dependent by nature (a single-core
//! runner saturates at 1 worker) and the throughput gates live in
//! `perf_report`'s `service` section. What it does assert, on every
//! worker count it sweeps, is the service's reason to exist: every
//! pool outcome must be **bit-identical** to the direct
//! `try_run_with` verdict for the same job.

use rfbist_core::bist::{BistConfig, BistEngine, BistScratch};
use rfbist_core::mask::SpectralMask;
use rfbist_core::service::{ServiceConfig, SharedSignal, VerdictJob, VerdictService};
use rfbist_rfchain::impairments::TxImpairments;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    quick: bool,
    out: String,
}

fn main() {
    let mut cfg = Config {
        quick: false,
        out: "service-saturation.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => cfg.out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: verdict_service [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let (reps, jobs_per_batch) = if cfg.quick { (3, 4) } else { (5, 8) };
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // 1, 2, 4, … up to the first power of two at or above the core
    // count, so the artifact always shows where the curve flattens.
    let mut worker_counts = vec![1usize];
    while *worker_counts.last().expect("non-empty") < available.min(16) {
        worker_counts.push(worker_counts.last().expect("non-empty") * 2);
    }

    let mut bist = BistConfig::paper_default().with_calibrated_skew(180e-12);
    bist.grid_len = 2048;
    bist.stream_workers = 1;
    let mask = SpectralMask::qpsk_10msym();
    let stimulus: SharedSignal =
        Arc::new(rfbist_bench::paper_tx(TxImpairments::typical(), 160, 0xACE1).rf_output());
    let make_jobs = |n: usize| -> Vec<VerdictJob> {
        (0..n as u64)
            .map(|job_id| VerdictJob {
                job_id,
                dut: job_id as u32,
                standard: "qpsk-10msym-srrc0.5".into(),
                config: bist.clone(),
                mask: mask.clone(),
                stimulus: Arc::clone(&stimulus),
                reference: None,
            })
            .collect()
    };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };

    // Direct single-shot reference: the per-verdict cost without the
    // pool, and the report every service outcome must reproduce.
    let template = make_jobs(1).remove(0);
    let mut scratch = BistScratch::new();
    let direct_report = BistEngine::new(template.config.clone())
        .try_run_with(
            &template.stimulus,
            &template.mask,
            template.reference.as_ref(),
            &mut scratch,
        )
        .expect("clean direct verdict");
    let direct_ns = median(
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..jobs_per_batch {
                    black_box(
                        BistEngine::new(template.config.clone())
                            .try_run_with(
                                &template.stimulus,
                                &template.mask,
                                template.reference.as_ref(),
                                &mut scratch,
                            )
                            .expect("clean direct verdict"),
                    );
                }
                start.elapsed().as_nanos() as f64 / jobs_per_batch as f64
            })
            .collect(),
    );

    println!(
        "verdict_service ({} mode): {} jobs/batch, {} reps, workers {:?} (machine has {})",
        if cfg.quick { "quick" } else { "full" },
        jobs_per_batch,
        reps,
        worker_counts,
        available,
    );
    println!(
        "direct             {:>10.1} us/verdict ({:.0} verdicts/s)",
        direct_ns / 1e3,
        1e9 / direct_ns,
    );

    let mut curve = Vec::new();
    for &workers in &worker_counts {
        let mut svc =
            VerdictService::try_start(ServiceConfig::paper_default().with_workers(workers))
                .expect("verdict service starts");
        // warm batch (thread start, scratch growth) doubles as the
        // equivalence assertion for this worker count
        let outcomes = svc
            .try_run_all(make_jobs(jobs_per_batch))
            .expect("pool alive");
        for outcome in &outcomes {
            assert_eq!(
                outcome.result.as_ref().expect("clean service verdict"),
                &direct_report,
                "service verdict diverged from the direct run at {workers} worker(s)"
            );
        }
        let ns = median(
            (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    let outcomes = svc
                        .try_run_all(make_jobs(jobs_per_batch))
                        .expect("pool alive");
                    black_box(&outcomes);
                    start.elapsed().as_nanos() as f64 / jobs_per_batch as f64
                })
                .collect(),
        );
        svc.shutdown();
        println!(
            "service {workers:>2}w        {:>10.1} us/verdict ({:.0} verdicts/s)",
            ns / 1e3,
            1e9 / ns,
        );
        curve.push((workers, ns));
    }

    let one_w_ns = curve[0].1;
    let curve_json = curve
        .iter()
        .map(|&(workers, ns)| {
            format!(
                r#"    {{ "workers": {workers}, "median_ns_per_verdict": {ns:.2}, "verdicts_per_sec": {vps:.2}, "speedup_vs_1w": {speedup:.3} }}"#,
                vps = 1e9 / ns,
                speedup = one_w_ns / ns,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        r#"{{
  "generator": "verdict_service",
  "mode": "{mode}",
  "reps": {reps},
  "jobs_per_batch": {jobs_per_batch},
  "available_workers": {available},
  "force_scalar": {force_scalar},
  "direct_median_ns_per_verdict": {direct_ns:.2},
  "saturation": [
{curve_json}
  ]
}}
"#,
        mode = if cfg.quick { "quick" } else { "full" },
        force_scalar = std::env::var_os("RFBIST_FORCE_SCALAR").is_some(),
    );
    std::fs::write(&cfg.out, json).expect("write saturation curve");
    println!("wrote {}", cfg.out);
}
