//! **Extension experiment**: decomposition of the LMS skew-estimation
//! error into its front-end causes (an ablation DESIGN.md calls out).
//!
//! Runs the estimator under combinations of quantizer resolution and
//! jitter model/placement, reporting median |D̂ − D| across seeds.
//! This explains the gap between the paper's "< 0.1 ps" Table I entry
//! and what a literal skew-jitter reading of the front-end allows: with
//! jitter *on the DCDE*, the physical skew wanders by the realized mean
//! jitter (~3 ps/√N), and no estimator can beat that floor against the
//! nominal D.

use rfbist_bench::{paper_stimulus, print_header, print_row};
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig, JitterPlacement};
use rfbist_converter::clock::JitterModel;
use rfbist_core::cost::DualRateCost;
use rfbist_core::lms::{estimate_skew_lms, LmsConfig};
use rfbist_sampling::dualrate::DualRateConfig;

const SEEDS: u64 = 7;

fn median_err(bits: u32, jitter: JitterModel, placement: JitterPlacement) -> f64 {
    let cfg = DualRateConfig::paper_section_v();
    let tx = paper_stimulus(96, 0xACE1);
    let mut errs: Vec<f64> = (0..SEEDS)
        .map(|seed| {
            let mut fast_cfg = BpTiadcConfig::paper_section_v(cfg.delay())
                .with_seed(0x5EED ^ seed.rotate_left(17))
                .with_jitter_placement(placement);
            fast_cfg.bits = bits;
            let mut slow_cfg = fast_cfg
                .with_sample_rate(cfg.slow_rate())
                .with_seed(0x51DE ^ seed);
            slow_cfg.bits = bits;
            slow_cfg.jitter = jitter;
            fast_cfg.jitter = jitter;
            let mut fast = BpTiadc::new(fast_cfg);
            let mut slow = BpTiadc::new(slow_cfg);
            let cost = DualRateCost::paper_probes(
                fast.capture(&tx, 80, 260),
                slow.capture(&tx, 40, 160),
                cfg,
                300,
                42 + seed,
            );
            let r = estimate_skew_lms(&cost, LmsConfig::paper_default(100e-12));
            (r.estimate - cfg.delay()).abs() * 1e12
        })
        .collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    errs[errs.len() / 2]
}

fn main() {
    println!("# Extension — LMS skew-error breakdown by front-end effect");
    println!("(median |D_hat − D| over {SEEDS} seeds; true D = 180 ps)");
    println!();
    print_header(&["quantizer", "jitter", "placement", "median |err| [ps]"]);
    let j = JitterModel::paper_default();
    let cases: [(&str, u32, JitterModel, JitterPlacement); 5] = [
        ("24-bit", 24, JitterModel::None, JitterPlacement::DcdeOnly),
        ("10-bit", 10, JitterModel::None, JitterPlacement::DcdeOnly),
        ("24-bit", 24, j, JitterPlacement::DcdeOnly),
        ("10-bit", 10, j, JitterPlacement::DcdeOnly),
        ("10-bit", 10, j, JitterPlacement::CommonMode),
    ];
    for (qlabel, bits, jit, place) in cases {
        let jlabel = match jit {
            JitterModel::None => "none",
            JitterModel::Gaussian { .. } => "3 ps rms",
        };
        let plabel = match place {
            JitterPlacement::DcdeOnly => "DCDE (skew wanders)",
            JitterPlacement::CommonMode => "common-mode (skew exact)",
        };
        print_row(&[
            qlabel.to_string(),
            jlabel.to_string(),
            plabel.to_string(),
            format!("{:.3}", median_err(bits, jit, place)),
        ]);
    }
    println!();
    println!("Reading: quantization alone costs < 0.1 ps (the paper's Table I number);");
    println!("DCDE-placed jitter sets a physical floor ≈ 3 ps/√N that the estimator");
    println!("correctly *tracks* — its estimate follows the realized mean skew.");
}
