//! Regenerates paper **Table I**: time-skew estimation analysis.
//!
//! Rows 1–2: the sine-fit baseline (adapted from Jamal et al. [14])
//! with test tones whose aliases land at ω₀ = 0.4·B and 0.46·B.
//! Rows 3–4: the paper's LMS technique started from D̂₀ = 50 ps and
//! 400 ps.
//!
//! Columns: `|D̂ − D|`, `|1 − D̂/D|`, and `Δε(f^T_D̂(t))` — the relative
//! RMS error of reconstructing the QPSK test signal with the estimate.
//!
//! Shape to reproduce: both techniques give usable estimates, but the
//! baseline is sensitive to ω₀ (the rational 0.4·B tone revisits only 5
//! phases, so quantization bias stops averaging out), while LMS is
//! sub-0.1-ps accurate regardless of the starting point and needs no
//! dedicated test tone.

use rfbist_bench::{paper_cost, paper_stimulus, print_header, print_row, Frontend};
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
use rfbist_core::jamal::{estimate_skew_jamal, test_tone_for_ratio};
use rfbist_core::lms::{estimate_skew_lms, LmsConfig};
use rfbist_core::skew::skew_error_with_reconstruction;
use rfbist_math::rng::Randomizer;
use rfbist_sampling::dualrate::DualRateConfig;
use rfbist_signal::tone::Tone;

const D_TRUE: f64 = 180e-12;
/// Number of independent noise realizations per table row.
const SEEDS: usize = 9;

fn main() {
    let dual = DualRateConfig::paper_section_v();
    let stimulus = paper_stimulus(96, 0xACE1);

    // Reconstruction capture used for the Δε column (QPSK stimulus
    // through the paper front-end at rate B).
    let mut recon_adc = BpTiadc::new(BpTiadcConfig::paper_section_v(D_TRUE));
    let recon_cap = recon_adc.capture(&stimulus, 80, 260);
    let mut rng = Randomizer::from_seed(0x7AB1);
    let band = dual.fast_band();
    let probe_lo = (80 + 31) as f64 / dual.fast_rate();
    let probe_hi = (80 + 260 - 32) as f64 / dual.fast_rate();
    let times: Vec<f64> = (0..300).map(|_| rng.uniform(probe_lo, probe_hi)).collect();

    let metrics = |d_hat: f64| {
        skew_error_with_reconstruction(D_TRUE, d_hat, band, &recon_cap, &stimulus, &times)
    };

    println!("# Table I — time-skew estimation analysis (true D = 180 ps)");
    println!("(median of {SEEDS} independent jitter/quantization realizations)");
    println!();
    print_header(&[
        "method",
        "|D_hat − D| [ps]",
        "|1 − D_hat/D| [%]",
        "delta_eps [%]",
    ]);

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };

    // Rows 1–2: sine-fit baseline at the paper's two tone placements.
    for ratio in [0.4, 0.46] {
        let f_rf = test_tone_for_ratio(1e9, dual.fast_rate(), ratio);
        let estimates: Vec<f64> = (0..SEEDS)
            .map(|seed| {
                let mut adc =
                    BpTiadc::new(BpTiadcConfig::paper_section_v(D_TRUE).with_seed(seed as u64));
                let cap = adc.capture(&Tone::new(f_rf, 0.9, 0.37), 0, 300);
                estimate_skew_jamal(&cap, f_rf).delay
            })
            .collect();
        let med_abs = median(estimates.iter().map(|d| (d - D_TRUE).abs()).collect());
        let d_median = median(estimates.clone());
        let m = metrics(d_median);
        print_row(&[
            format!("Jamal [14], w0 = {ratio}B"),
            format!("{:.3}", med_abs * 1e12),
            format!("{:.3}", med_abs / D_TRUE * 100.0),
            format!("{:.3}", m.reconstruction_error.unwrap() * 100.0),
        ]);
    }

    // Rows 3–4: LMS from the paper's two starting points, under both
    // readings of where the 3 ps jitter physically lives (the paper's
    // Fig. 4 has a single clock generator; its sub-0.1 ps accuracy is
    // consistent with common-mode base-clock jitter, while literal
    // "time-skew jitter" on the DCDE makes the *skew itself* wander by
    // the realized mean jitter — which the estimator then correctly
    // tracks).
    for (frontend, tag) in [
        (Frontend::Paper, "skew jitter on DCDE"),
        (Frontend::PaperCommonMode, "common-mode clock jitter"),
    ] {
        for d0_ps in [50.0, 400.0] {
            let estimates: Vec<f64> = (0..SEEDS)
                .map(|seed| {
                    let cost = paper_cost(frontend, 300, 42 + seed as u64);
                    estimate_skew_lms(&cost, LmsConfig::paper_default(d0_ps * 1e-12)).estimate
                })
                .collect();
            let med_abs = median(estimates.iter().map(|d| (d - D_TRUE).abs()).collect());
            let d_median = median(estimates.clone());
            let m = metrics(d_median);
            print_row(&[
                format!("LMS, D0 = {d0_ps} ps ({tag})"),
                format!("{:.3}", med_abs * 1e12),
                format!("{:.3}", med_abs / D_TRUE * 100.0),
                format!("{:.3}", m.reconstruction_error.unwrap() * 100.0),
            ]);
        }
    }

    println!();
    println!("Paper reference values:");
    println!("| w0 = 0.4B   | 5 ps    | 2.8 % | 3.5 %  |");
    println!("| w0 = 0.46B  | 0.3 ps  | 0.1 % | 1 %    |");
    println!("| D0 = 50 ps  | <0.1 ps | <0.1% | 0.84 % |");
    println!("| D0 = 400 ps | <0.1 ps | <0.1% | 0.84 % |");
}
