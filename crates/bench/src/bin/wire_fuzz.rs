//! Seeded wire-format fuzz harness for the verdict service's frame
//! decoder: deterministic property sweeps (vendored proptest
//! strategies, fixed seed) over three input classes —
//!
//! 1. **round-trip** — random well-formed [`WireFrame`]s (including
//!    NaN/∞ sample payloads from raw bit patterns and multi-byte
//!    UTF-8 names) encoded and replayed through the incremental
//!    decoder under random transport chunking must decode to the
//!    identical frame;
//! 2. **mutation** — well-formed frames with random byte flips,
//!    truncations and insertions must decode to *something* — another
//!    valid frame, "need more bytes", or a typed [`BistError::Wire`]
//!    — and never anything else;
//! 3. **garbage** — raw random byte streams, same acceptance.
//!
//! The process exits 0 only when every case lands in its accepted
//! outcome set; any panic (the decoder crashing on hostile input)
//! aborts with a non-zero code, which is exactly what the CI smoke
//! step asserts.
//!
//! ```sh
//! cargo run --release -p rfbist-bench --bin wire_fuzz -- --cases 256 --seed 0xACE1
//! ```

use proptest::prelude::*;
use rfbist_core::error::BistError;
use rfbist_core::mask::{MaskReport, MaskViolation};
use rfbist_core::wire::{FrameDecoder, WireFrame};

fn usize_in(rng: &mut TestRng, range: std::ops::Range<usize>) -> usize {
    range.sample(rng)
}

fn random_string(rng: &mut TestRng) -> String {
    let pool = [
        "qpsk-10msym-srrc0.5",
        "gsm-like-270k",
        "wideband μ-law Ω",
        "",
        "a-very-long-standard-name-that-spans-more-than-one-cache-line-of-bytes",
    ];
    pool[usize_in(rng, 0..pool.len())].to_string()
}

fn random_samples(rng: &mut TestRng) -> Vec<f64> {
    let n = usize_in(rng, 0..64);
    (0..n)
        .map(|_| {
            // raw bit patterns: NaNs, infinities, subnormals included —
            // the decoder must pass them through bit-exactly
            f64::from_bits(rng.next_u64())
        })
        .collect()
}

fn random_report(rng: &mut TestRng) -> MaskReport {
    let listed = usize_in(rng, 0..5);
    MaskReport {
        mask_name: random_string(rng),
        passed: rng.next_u64().is_multiple_of(2),
        worst_margin_db: f64::from_bits(rng.next_u64()),
        worst_frequency_hz: rng.next_f64() * 6.5e9,
        reference_db: -40.0 + rng.next_f64() * 20.0,
        violation_count: listed + usize_in(rng, 0..10),
        violations: (0..listed)
            .map(|_| MaskViolation {
                frequency: rng.next_f64() * 6.5e9,
                measured_dbc: -rng.next_f64() * 60.0,
                limit_dbc: -33.0,
            })
            .collect(),
        truncated: rng.next_u64().is_multiple_of(2),
    }
}

fn random_frame(rng: &mut TestRng) -> WireFrame {
    let job_id = rng.next_u64();
    match usize_in(rng, 0..7) {
        0 => WireFrame::JobOpen {
            job_id,
            standard: random_string(rng),
        },
        1 => WireFrame::SampleBlock {
            job_id,
            samples: random_samples(rng),
        },
        2 => WireFrame::ReportRequest { job_id },
        3 => WireFrame::PartialReport {
            job_id,
            segments: rng.next_u64() % 1000,
            report: random_report(rng),
        },
        4 => WireFrame::FinalReport {
            job_id,
            report: random_report(rng),
        },
        5 => WireFrame::JobClose { job_id },
        _ => WireFrame::Error {
            job_id,
            reason: random_string(rng),
        },
    }
}

/// Drains the decoder after `bytes` arrives in `chunk`-byte reads.
/// Returns the decoded frames, or the first typed wire error.
fn drain(bytes: &[u8], chunk: usize) -> Result<Vec<WireFrame>, BistError> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        dec.feed(piece);
        loop {
            match dec.try_next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(frames)
}

fn main() {
    let mut cases: u32 = 256;
    let mut seed: u64 = 0xACE1_F0CC;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cases requires a count")
            }
            "--seed" => {
                let v = args.next().expect("--seed requires a value");
                seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .or_else(|_| v.parse())
                    .expect("--seed takes hex or decimal");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: wire_fuzz [--cases N] [--seed HEX]");
                std::process::exit(2);
            }
        }
    }
    println!("wire_fuzz: {cases} cases per property, seed {seed:#x}");
    let mut rng = TestRng::from_seed(seed);

    // Property 1: encode∘decode is the identity under any chunking.
    for case in 0..cases {
        let frames: Vec<WireFrame> = (0..usize_in(&mut rng, 1..5))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        let chunk = usize_in(&mut rng, 1..bytes.len() + 2);
        let got = drain(&bytes, chunk)
            .unwrap_or_else(|e| panic!("case {case}: well-formed stream rejected: {e}"));
        // compare re-encodings, not frames: payloads may carry NaN bit
        // patterns, which `==` on f64 would spuriously reject
        let reencoded: Vec<u8> = got.iter().flat_map(|f| f.encode()).collect();
        assert_eq!(
            reencoded,
            bytes,
            "case {case}: round-trip diverged ({} frames in, {} out)",
            frames.len(),
            got.len()
        );
    }
    println!("  round-trip: {cases} cases ok");

    // Property 2: mutated well-formed frames never panic the decoder
    // and never produce a non-Wire error.
    let mut mutation_outcomes = [0usize; 3]; // decoded / starved / rejected
    for case in 0..cases {
        let mut bytes = random_frame(&mut rng).encode();
        for _ in 0..usize_in(&mut rng, 1..9) {
            match usize_in(&mut rng, 0..4) {
                0 if !bytes.is_empty() => {
                    // flip one byte anywhere, length prefix included
                    let at = usize_in(&mut rng, 0..bytes.len());
                    bytes[at] ^= (rng.next_u64() % 255 + 1) as u8;
                }
                1 if bytes.len() > 1 => bytes.truncate(usize_in(&mut rng, 0..bytes.len())),
                2 => bytes.push(rng.next_u64() as u8),
                _ if !bytes.is_empty() => {
                    let at = usize_in(&mut rng, 0..bytes.len());
                    bytes.remove(at);
                }
                _ => bytes.push(rng.next_u64() as u8),
            }
        }
        let chunk = usize_in(&mut rng, 1..bytes.len() + 2);
        match drain(&bytes, chunk) {
            Ok(frames) if frames.is_empty() => mutation_outcomes[1] += 1,
            Ok(_) => mutation_outcomes[0] += 1,
            Err(e) => {
                assert!(
                    matches!(e, BistError::Wire { .. }),
                    "case {case}: malformed bytes produced a non-Wire error: {e}"
                );
                mutation_outcomes[2] += 1;
            }
        }
    }
    println!(
        "  mutation:   {cases} cases ok ({} decoded, {} starved, {} rejected as Wire errors)",
        mutation_outcomes[0], mutation_outcomes[1], mutation_outcomes[2]
    );

    // Property 3: raw garbage, same acceptance set.
    let mut garbage_rejected = 0usize;
    for case in 0..cases {
        let n = usize_in(&mut rng, 0..2048);
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let chunk = usize_in(&mut rng, 1..n + 2);
        if let Err(e) = drain(&bytes, chunk) {
            assert!(
                matches!(e, BistError::Wire { .. }),
                "case {case}: garbage produced a non-Wire error: {e}"
            );
            garbage_rejected += 1;
        }
    }
    println!("  garbage:    {cases} cases ok ({garbage_rejected} rejected as Wire errors)");
    println!("wire_fuzz: all properties hold");
}
