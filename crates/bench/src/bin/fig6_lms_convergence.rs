//! Regenerates paper **Fig. 6**: evolution of the LMS cost function for
//! several starting estimates `D̂₀ ∈ {50, 100, 350, 400} ps`
//! (µ₀ = 1e-12, paper Section V setup).
//!
//! The paper's claim to reproduce: "The algorithm is able to accurately
//! estimate D and converges, every time, in less than 20 iterations."

use rfbist_bench::{paper_cost, print_header, print_row, Frontend};
use rfbist_core::lms::{estimate_skew_lms, LmsConfig};

fn main() {
    let cost = paper_cost(Frontend::Paper, 300, 7);
    let starts_ps = [50.0, 100.0, 350.0, 400.0];

    println!("# Fig. 6 — LMS cost vs iteration for several D̂₀ (true D = 180 ps)");
    println!();

    let runs: Vec<_> = starts_ps
        .iter()
        .map(|&d0| estimate_skew_lms(&cost, LmsConfig::paper_default(d0 * 1e-12)))
        .collect();

    let max_iters = runs.iter().map(|r| r.trace.len()).max().unwrap_or(0);
    let header: Vec<String> = std::iter::once("iter".to_string())
        .chain(starts_ps.iter().map(|d| format!("cost (D0={d} ps)")))
        .collect();
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for i in 0..max_iters {
        let mut row = vec![i.to_string()];
        for r in &runs {
            row.push(
                r.trace
                    .get(i)
                    .map(|it| format!("{:.6}", it.cost))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        print_row(&row);
    }

    println!();
    print_header(&[
        "D0 [ps]",
        "final D_hat [ps]",
        "|err| [ps]",
        "iterations",
        "converged",
    ]);
    for (d0, r) in starts_ps.iter().zip(&runs) {
        print_row(&[
            format!("{d0}"),
            format!("{:.3}", r.estimate * 1e12),
            format!("{:.3}", (r.estimate - 180e-12).abs() * 1e12),
            r.iterations.to_string(),
            r.converged.to_string(),
        ]);
    }
    println!();
    let worst_iters = runs.iter().map(|r| r.iterations).max().unwrap_or(0);
    println!("All runs converged in ≤ {worst_iters} iterations (paper: < 20 every time).");
}
