//! Fault-coverage campaign driver: runs the Monte-Carlo campaign
//! (fault corpus × five standards × jitter profiles) and writes the
//! detection-coverage / false-alarm matrix as
//! `BENCH_fault_coverage.json`.
//!
//! ```sh
//! cargo run --release -p rfbist-bench --bin fault_coverage             # full
//! cargo run --release -p rfbist-bench --bin fault_coverage -- --quick  # CI smoke
//! cargo run --release -p rfbist-bench --bin fault_coverage -- --out some.json
//! cargo run --release -p rfbist-bench --bin fault_coverage -- --quick --resume
//! ```
//!
//! Full mode sweeps [`standard_fault_set`] at two payload trials over
//! two in-spec clock profiles (1.5 ps and the paper's 3 ps DCDE
//! jitter); quick mode keeps all five standards (the claim is
//! per-standard) but only the gross fault grades at one trial. Both modes calibrate the sampler
//! skew per (standard, jitter) cell on a wideband burst — the fix for
//! the narrowband trap where a GSM-shaped stimulus leaves the LMS
//! ~170 ps wrong while the mask still passes — and both end in the
//! acceptance self-asserts: every gross fault detected on every
//! standard, zero false alarms, calibrated skew at the picosecond
//! hardware floor.
//!
//! The driver checkpoints after every completed (standard, jitter)
//! cell (to `<out>.checkpoint.json` unless `--checkpoint PATH`
//! overrides it) and `--resume` continues a killed campaign from the
//! first missing cell; the resumed matrix is bit-identical to an
//! uninterrupted run. `--kill-after-cells N` stops after N cells with
//! exit code 3 — the hook the CI kill-and-resume smoke uses.

use rfbist_core::campaign::{try_run_campaign_supervised, CampaignConfig, CampaignProgress};
use rfbist_core::error::BistError;
use rfbist_rfchain::faults::standard_fault_set;
use std::path::PathBuf;
use std::time::Instant;

struct Config {
    quick: bool,
    out: String,
    checkpoint: Option<String>,
    resume: bool,
    kill_after_cells: Option<usize>,
}

fn main() {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_fault_coverage.json".to_string(),
        checkpoint: None,
        resume: false,
        kill_after_cells: None,
    };
    let usage = "usage: fault_coverage [--quick] [--out PATH] [--checkpoint PATH] \
                 [--resume] [--kill-after-cells N]";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => cfg.out = args.next().expect("--out requires a path"),
            "--checkpoint" => {
                cfg.checkpoint = Some(args.next().expect("--checkpoint requires a path"))
            }
            "--resume" => cfg.resume = true,
            "--kill-after-cells" => {
                let n = args.next().expect("--kill-after-cells requires a count");
                cfg.kill_after_cells =
                    Some(n.parse().expect("--kill-after-cells requires an integer"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    let campaign = if cfg.quick {
        CampaignConfig::quick()
    } else {
        CampaignConfig::paper_default()
    };
    let runs_per_standard =
        campaign.trials * campaign.jitter_rms.len() * (campaign.faults.len() + 1);
    println!(
        "fault-coverage campaign ({} mode): {} standards × {} runs each ({} faults + healthy, {} trials, {} jitter profiles)",
        if cfg.quick { "quick" } else { "full" },
        campaign.deployments.len(),
        runs_per_standard,
        campaign.faults.len(),
        campaign.trials,
        campaign.jitter_rms.len(),
    );

    let checkpoint = PathBuf::from(
        cfg.checkpoint
            .clone()
            .unwrap_or_else(|| format!("{}.checkpoint.json", cfg.out)),
    );
    if cfg.resume && checkpoint.exists() {
        println!("resuming from checkpoint {}", checkpoint.display());
    }

    let kill_after = cfg.kill_after_cells;
    let mut observer = |p: &CampaignProgress| {
        println!(
            "  cell {}/{} done: {} @ {:.1} ps jitter",
            p.completed_cells,
            p.total_cells,
            p.standard,
            p.jitter_rms * 1e12
        );
        kill_after.is_none_or(|n| p.completed_cells < n)
    };

    let t0 = Instant::now();
    let matrix = match try_run_campaign_supervised(
        &campaign,
        Some(&checkpoint),
        cfg.resume,
        &mut observer,
    ) {
        Ok(matrix) => matrix,
        Err(e @ BistError::Interrupted { .. }) => {
            println!("{e}; checkpoint retained at {}", checkpoint.display());
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("fault_coverage: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    println!(
        "\n{:<24} {:>8} {:>7} {:>7} {:>10} {:>9} {:>12}",
        "standard", "healthy", "alarms", "errors", "fault runs", "detected", "skew err ps"
    );
    for s in &matrix.standards {
        println!(
            "{:<24} {:>8} {:>7} {:>7} {:>10} {:>9} {:>12.3}",
            s.standard,
            s.healthy_runs,
            s.false_alarms,
            s.errored_runs,
            s.fault_runs(),
            s.detected(),
            s.worst_skew_error * 1e12,
        );
    }
    println!(
        "\noverall detection {:.1} % | gross detection {:.1} % | false alarms {:.1} % | worst skew {:.3} ps | {:.1} s",
        matrix.overall_detection_rate() * 100.0,
        matrix.gross_detection_rate() * 100.0,
        matrix.overall_false_alarm_rate() * 100.0,
        matrix.worst_skew_error() * 1e12,
        elapsed,
    );

    std::fs::write(&cfg.out, matrix.to_json()).expect("write coverage matrix");
    println!("wrote {}", cfg.out);
    // the campaign completed: its checkpoint has served its purpose
    let _ = std::fs::remove_file(&checkpoint);

    // acceptance self-asserts — a red exit code is the point of a
    // coverage campaign
    assert_eq!(
        matrix.gross_detection_rate(),
        1.0,
        "a gross fault escaped on some standard"
    );
    assert_eq!(
        matrix.overall_false_alarm_rate(),
        0.0,
        "a healthy unit was condemned"
    );
    let errored: usize = matrix.standards.iter().map(|s| s.errored_runs).sum();
    assert_eq!(errored, 0, "{errored} runs errored out instead of scoring");
    assert!(
        matrix.worst_skew_error() < 2.5e-12,
        "calibrated skew error {} ps exceeds the 2.5 ps hardware floor",
        matrix.worst_skew_error() * 1e12
    );
    if !cfg.quick {
        // the graded corpus deliberately includes marginal severities
        // (−1 dB gain steps, small IQ errors) that sit below both the
        // mask and the golden-comparison floor — that frontier is the
        // campaign's product, not a defect. The floor only pins the
        // measured rate against regression (83.5 % at this corpus).
        let rate = matrix.overall_detection_rate();
        assert!(
            rate >= 0.8,
            "graded-corpus detection fell to {:.1} % (corpus size {})",
            rate * 100.0,
            standard_fault_set().len()
        );
    }
    println!("fault_coverage: all acceptance gates green");
}
