//! Validates paper **eq. (4)** numerically and reproduces the
//! **eq. (5)** worked example.
//!
//! Eq. (4) predicts the relative spectral error of a PNBS
//! reconstruction whose delay estimate is off by ΔD:
//! `ΔF ≈ π·B·(k+1)·ΔD`. This binary sweeps ΔD, measures the actual
//! reconstruction error on an in-band tone, and prints both series —
//! the measured error should track the analytic line until it
//! saturates.

use rfbist_bench::{print_header, print_row};
use rfbist_math::rng::Randomizer;
use rfbist_math::stats::nrmse;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::error::{paper_eq5_example, skew_budget, spectral_error_bound};
use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
use rfbist_signal::tone::Tone;
use rfbist_signal::traits::ContinuousSignal;

fn main() {
    let band = BandSpec::centered(1e9, 90e6);
    let d_true = 180e-12;
    let tone = Tone::new(0.9871e9, 1.0, 0.3);
    let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d_true, -60, 400);
    let mut rng = Randomizer::from_seed(17);
    let times: Vec<f64> = (0..250).map(|_| rng.uniform(0.5e-6, 2.5e-6)).collect();
    let truth = tone.sample(&times);

    println!("# Eq. (4) — reconstruction sensitivity to skew-knowledge error");
    println!("band: fc = 1 GHz, B = 90 MHz, k+1 = {}", band.k() + 1);
    println!();
    print_header(&["dD [ps]", "measured dF [%]", "analytic piB(k+1)dD [%]"]);
    for dd_ps in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let dd = dd_ps * 1e-12;
        let rec = PnbsReconstructor::new_unchecked(
            band,
            d_true + dd,
            61,
            rfbist_dsp::window::Window::Kaiser(8.0),
        );
        let measured = nrmse(&rec.reconstruct(&cap, &times), &truth);
        let analytic = spectral_error_bound(band, dd);
        print_row(&[
            format!("{dd_ps:.2}"),
            format!("{:.3}", measured * 100.0),
            format!("{:.3}", analytic * 100.0),
        ]);
    }

    println!();
    println!("# Eq. (5) — worked example");
    let budget = paper_eq5_example();
    println!(
        "fc = 1 GHz, B = 80 MHz (k+1 = 25), target dF = 1 % -> dD <= {:.3} ps (paper: ~2 ps)",
        budget * 1e12
    );
    println!(
        "Same target on the Section V band (B = 90 MHz, k+1 = 23): dD <= {:.3} ps",
        skew_budget(BandSpec::centered(1e9, 90e6), 0.01) * 1e12
    );
}
