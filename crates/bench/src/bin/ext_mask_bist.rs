//! **Extension experiment**: the complete spectral-mask BIST the paper's
//! conclusion points toward ("opening the way for a complete RF BIST
//! loopback strategy").
//!
//! Runs the end-to-end engine (capture → calibrate → LMS skew →
//! reconstruct → PSD → mask) against a healthy transmitter and the
//! standard fault catalogue, reporting the mask verdict, worst margin
//! and reconstruction deviation (Δε vs the ideal output) per fault.
//!
//! Expected shape: PA nonlinearity faults raise out-of-band regrowth
//! and fail the mask; modulator faults (IQ imbalance, LO leakage) stay
//! inside the occupied band — the emission mask alone cannot see them,
//! but the Δε-vs-golden column does, motivating a complementary
//! in-band/EVM check in a production BIST.

use rfbist_bench::{paper_tx, print_header, print_row};
use rfbist_core::bist::{BistConfig, BistEngine, BistScratch};
use rfbist_core::error::BistError;
use rfbist_core::mask::MaskLibrary;
use rfbist_rfchain::faults::standard_fault_set;
use rfbist_rfchain::impairments::TxImpairments;

fn main() -> Result<(), BistError> {
    let engine = BistEngine::new(BistConfig::paper_default());
    let library = MaskLibrary::builtin();
    let mask = &library
        .get("qpsk-10msym-srrc0.5")
        .expect("paper standard is built in")
        .mask;
    let healthy = TxImpairments::typical();

    println!("# Extension — spectral-mask BIST verdicts under injected faults");
    println!(
        "mask: {} (limits {:?} dBc), from the {}-standard library",
        mask.name(),
        mask.segments()
            .iter()
            .map(|s| s.limit_dbc)
            .collect::<Vec<_>>(),
        library.len()
    );
    println!();
    print_header(&[
        "device",
        "verdict",
        "worst margin [dB]",
        "violating bins",
        "skew |err| [ps]",
        "delta_eps vs golden [%]",
    ]);

    // baseline: the golden reference is the same payload, no
    // impairments. One shared scratch across the sweep — the fault
    // loop is exactly the repeated-verdict workload `run_with` exists
    // for.
    let mut scratch = BistScratch::new();
    let mut run = |imp: TxImpairments, label: &str| -> Result<(), BistError> {
        let tx = paper_tx(imp, 160, 0xACE1);
        let golden = tx.ideal_rf_output();
        let report = engine.try_run_with(&tx.rf_output(), mask, Some(&golden), &mut scratch)?;
        print_row(&[
            label.to_string(),
            if report.passed() {
                "PASS".into()
            } else {
                "FAIL".into()
            },
            format!("{:+.2}", report.mask.worst_margin_db),
            format!("{}", report.mask.violation_count),
            format!("{:.3}", report.skew_abs_error() * 1e12),
            format!("{:.2}", report.reconstruction_error.unwrap() * 100.0),
        ]);
        Ok(())
    };

    run(healthy, "healthy")?;
    for fault in standard_fault_set() {
        let label = format!("{:?}", fault.kind);
        run(fault.inject(healthy), &label)?;
    }

    println!();
    println!("Reading: regrowth (PA) faults trip the mask; in-band (IQ/LO) faults are");
    println!("invisible to an emission mask but show up in the golden-comparison column.");
    Ok(())
}
