//! Regenerates paper **Fig. 3**: the constraints on the sampling rate
//! for uniform (first-order) bandpass sampling.
//!
//! - Fig. 3a: the alias-free wedges in the `(f_H/B, f_s/B)` plane. This
//!   binary prints the wedge boundary lines and an ASCII rendering of
//!   the classified grid (`.` alias-free, `#` aliased, space below 2B).
//! - Fig. 3b: the particular case `f_H = 2.03 GHz`, `B = 30 MHz` — the
//!   valid sampling windows between 60 and 100 MHz, showing the
//!   few-hundred-kHz clock precision uniform sampling would demand.
//!
//! Usage: `fig3_pbs_constraints [--case a|b|both]` (default both).

use rfbist_bench::{print_header, print_row};
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::pbs::{classify_fig3a, valid_rate_ranges, valid_windows_in, Fig3Cell};

fn case_a() {
    println!("# Fig. 3a — PBS alias-free regions (normalized)");
    println!();
    println!("Wedge boundaries (n: fs_min/B .. fs_max/B at fH/B = 4):");
    let demo = BandSpec::new(3.0, 4.0);
    print_header(&["n", "fs_min/B", "fs_max/B"]);
    for r in valid_rate_ranges(demo) {
        print_row(&[
            r.n.to_string(),
            format!("{:.4}", r.fs_min),
            if r.fs_max.is_finite() {
                format!("{:.4}", r.fs_max)
            } else {
                "inf".into()
            },
        ]);
    }
    println!();
    println!("Grid (x: fH/B in [1, 7], y: fs/B in [8, 0]; '.'=valid, '#'=alias, ' '=below 2B):");
    let cols = 61;
    let rows = 33;
    for j in 0..rows {
        let fs_over_b = 8.0 * (rows - 1 - j) as f64 / (rows - 1) as f64;
        let mut line = String::with_capacity(cols);
        for i in 0..cols {
            let fh_over_b = 1.0 + 6.0 * i as f64 / (cols - 1) as f64;
            let c = match classify_fig3a(fh_over_b, fs_over_b) {
                Fig3Cell::Valid => '.',
                Fig3Cell::Aliased => '#',
                Fig3Cell::BelowNyquist => ' ',
            };
            line.push(c);
        }
        println!("{fs_over_b:4.1} {line}");
    }
    println!();
    println!("The minimal-rate line fs = 2B is reachable only where fH/B is integer —");
    println!("the flexibility problem PNBS removes (straight red line of the paper).");
}

fn case_b() {
    println!("# Fig. 3b — valid fs for fH = 2.03 GHz, B = 30 MHz (fs in 60..100 MHz)");
    println!();
    let band = BandSpec::new(2.0e9, 2.03e9);
    print_header(&["n", "fs_min [MHz]", "fs_max [MHz]", "width [kHz]"]);
    let windows = valid_windows_in(band, 60e6, 100e6, 0.0);
    for w in &windows {
        print_row(&[
            w.n.to_string(),
            format!("{:.4}", w.fs_min / 1e6),
            format!("{:.4}", w.fs_max / 1e6),
            format!("{:.1}", w.width() / 1e3),
        ]);
    }
    let near_90: Vec<_> = windows
        .iter()
        .filter(|w| w.fs_min >= 85e6 && w.fs_max <= 95e6)
        .collect();
    let min_width = near_90
        .iter()
        .map(|w| w.width())
        .fold(f64::INFINITY, f64::min);
    println!();
    println!(
        "Windows near 90 MHz are {:.0}–{:.0} kHz wide → the sampling clock needs",
        min_width / 1e3,
        near_90.iter().map(|w| w.width()).fold(0.0, f64::max) / 1e3
    );
    println!("precision of a few hundred kHz, exactly as the paper argues.");
}

fn main() {
    let arg = std::env::args().nth(2).or_else(|| std::env::args().nth(1));
    match arg.as_deref() {
        Some("a") | Some("--case=a") => case_a(),
        Some("b") | Some("--case=b") => case_b(),
        _ => {
            case_a();
            println!();
            case_b();
        }
    }
}
