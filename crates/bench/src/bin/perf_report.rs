//! Headless perf-trajectory harness: times the PNBS reconstruction
//! kernels (planned engine vs the preserved scalar baseline, measured
//! in the same run) and writes `BENCH_recon.json`.
//!
//! ```sh
//! cargo run --release -p rfbist-bench --bin perf_report            # full
//! cargo run --release -p rfbist-bench --bin perf_report -- --quick # CI smoke
//! cargo run --release -p rfbist-bench --bin perf_report -- --out some.json
//! ```
//!
//! Three kernels, mirroring the criterion benches but with medians a
//! machine can diff across commits:
//!
//! 1. **kernel_eval** — Kohlenberg `s(t)` over a 61-tap row:
//!    `KohlenbergInterpolant::eval` per tap vs `PnbsPlan::kernel_row`.
//! 2. **point_reconstruct** — one eq. 6 evaluation (61 taps, Kaiser
//!    β = 8): `reconstruct_at_reference` vs the planned
//!    `reconstruct_at`.
//! 3. **cost_grid** — the Fig. 5 sweep: `evaluate_reference` per
//!    candidate vs the batched+planned grid. The asserted ≥ 5×
//!    speedup is measured single-threaded (`eval_grid`, scratch
//!    reuse) so it pins the engine rather than the core count; the
//!    chunked `std::thread::scope` parallel wall clock
//!    (`CostEvaluator` per worker) is reported alongside. The same
//!    run also reports the NRMSE between the planned and reference
//!    grids — the ≤ 1e-9 equivalence contract.

use rfbist_bench::{paper_cost, par, Frontend};
use rfbist_dsp::window::Window;
use rfbist_math::stats::nrmse;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::kohlenberg::KohlenbergInterpolant;
use rfbist_sampling::plan::PnbsPlan;
use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
use rfbist_signal::tone::Tone;
use std::hint::black_box;
use std::time::Instant;

const FC: f64 = 1e9;
const B: f64 = 90e6;
const D: f64 = 180e-12;
const TAPS: usize = 61;

struct Config {
    quick: bool,
    out: String,
    /// timing samples per kernel; the reported figure is their median
    reps: usize,
    probes: usize,
    candidates: usize,
}

/// Runs `work` (a closure performing `ops` operations) `reps` times and
/// returns the median ns/op.
fn median_ns_per_op<F: FnMut()>(reps: usize, ops: usize, mut work: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_kernel_eval(cfg: &Config) -> (f64, f64) {
    let band = BandSpec::centered(FC, B);
    let kern = KohlenbergInterpolant::new(band, D).expect("valid delay");
    let plan = PnbsPlan::new(band, D, TAPS, Window::Kaiser(8.0));
    let t_s = 1.0 / B;
    let rows = if cfg.quick { 2_000 } else { 20_000 };
    let mut buf = vec![0.0f64; TAPS];

    let reference = median_ns_per_op(cfg.reps, rows * TAPS, || {
        for r in 0..rows {
            let t0 = 3.4e-7 + r as f64 * 1.3e-11;
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = kern.eval(t0 - i as f64 * t_s);
            }
            black_box(&buf);
        }
    });
    let planned = median_ns_per_op(cfg.reps, rows * TAPS, || {
        for r in 0..rows {
            let t0 = 3.4e-7 + r as f64 * 1.3e-11;
            plan.kernel_row(t0, -t_s, &mut buf);
            black_box(&buf);
        }
    });
    (reference, planned)
}

fn bench_point_reconstruct(cfg: &Config) -> (f64, f64) {
    let band = BandSpec::centered(FC, B);
    let tone = Tone::unit(0.987e9);
    let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -60, 400);
    let rec = PnbsReconstructor::paper_default(band, D).expect("valid delay");
    let points = if cfg.quick { 2_000 } else { 10_000 };
    let times: Vec<f64> = (0..points)
        .map(|i| 1.0e-6 + (i % 192) as f64 * 7.7e-9)
        .collect();

    let reference = median_ns_per_op(cfg.reps, points, || {
        for &t in &times {
            black_box(rec.reconstruct_at_reference(&cap, black_box(t)));
        }
    });
    let planned = median_ns_per_op(cfg.reps, points, || {
        for &t in &times {
            black_box(rec.reconstruct_at(&cap, black_box(t)));
        }
    });
    (reference, planned)
}

struct CostGridResult {
    reference_ns: f64,
    planned_ns: f64,
    parallel_ns: f64,
    nrmse: f64,
    workers: usize,
}

fn bench_cost_grid(cfg: &Config) -> CostGridResult {
    let cost = paper_cost(Frontend::Paper, cfg.probes, 42);
    let candidates = cost.sweep_candidates(cfg.candidates);

    let mut reference_grid = Vec::new();
    let reference_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        reference_grid = candidates
            .iter()
            .map(|&d| cost.evaluate_reference(d))
            .collect();
        black_box(&reference_grid);
    });

    // Single-threaded planned grid: the same threading as the
    // reference, so the asserted speedup measures the planned engine
    // (rotors + prepared window + scratch reuse), not the core count.
    let mut planned_grid = Vec::new();
    let planned_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        planned_grid = cost.eval_grid(&candidates);
        black_box(&planned_grid);
    });

    // Parallel wall clock, reported informationally (machine-dependent).
    let mut parallel_grid = Vec::new();
    let parallel_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        parallel_grid = par::map_with(&candidates, || cost.evaluator(), |ev, &d| ev.eval(d));
        black_box(&parallel_grid);
    });
    assert_eq!(parallel_grid, planned_grid, "parallel grid diverged");

    CostGridResult {
        reference_ns,
        planned_ns,
        parallel_ns,
        nrmse: nrmse(&planned_grid, &reference_grid),
        workers: par::worker_count(candidates.len()),
    }
}

fn main() {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_recon.json".to_string(),
        reps: 0,
        probes: 0,
        candidates: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => cfg.out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if cfg.quick {
        cfg.reps = 3;
        cfg.probes = 80;
        cfg.candidates = 12;
    } else {
        cfg.reps = 5;
        cfg.probes = 300;
        cfg.candidates = 32;
    }

    println!(
        "perf_report ({} mode): {} reps/kernel, {} probes, {} grid candidates",
        if cfg.quick { "quick" } else { "full" },
        cfg.reps,
        cfg.probes,
        cfg.candidates
    );

    let (kern_ref, kern_plan) = bench_kernel_eval(&cfg);
    println!(
        "kernel_eval        {kern_ref:>10.1} ns/op reference  {kern_plan:>10.1} ns/op planned  ({:.2}x)",
        kern_ref / kern_plan
    );
    let (pt_ref, pt_plan) = bench_point_reconstruct(&cfg);
    println!(
        "point_reconstruct  {pt_ref:>10.1} ns/op reference  {pt_plan:>10.1} ns/op planned  ({:.2}x)",
        pt_ref / pt_plan
    );
    let grid = bench_cost_grid(&cfg);
    println!(
        "cost_grid          {:>10.1} us/cand reference  {:>10.1} us/cand planned  ({:.2}x, nrmse {:.3e})",
        grid.reference_ns / 1e3,
        grid.planned_ns / 1e3,
        grid.reference_ns / grid.planned_ns,
        grid.nrmse,
    );
    println!(
        "cost_grid parallel {:>10.1} us/cand across {} worker(s) ({:.2}x vs reference)",
        grid.parallel_ns / 1e3,
        grid.workers,
        grid.reference_ns / grid.parallel_ns,
    );

    let json = format!(
        r#"{{
  "generator": "perf_report",
  "mode": "{mode}",
  "reps": {reps},
  "kernel_eval": {{
    "reference_median_ns_per_op": {kern_ref:.2},
    "planned_median_ns_per_op": {kern_plan:.2},
    "speedup": {kern_speedup:.3}
  }},
  "point_reconstruct": {{
    "reference_median_ns_per_op": {pt_ref:.2},
    "planned_median_ns_per_op": {pt_plan:.2},
    "speedup": {pt_speedup:.3}
  }},
  "cost_grid_sweep": {{
    "probes": {probes},
    "candidates": {candidates},
    "reference_median_ns_per_candidate": {grid_ref:.2},
    "planned_median_ns_per_candidate": {grid_plan:.2},
    "speedup": {grid_speedup:.3},
    "parallel_workers": {workers},
    "parallel_median_ns_per_candidate": {grid_par:.2},
    "parallel_speedup": {grid_par_speedup:.3},
    "planned_vs_reference_nrmse": {nrmse:.3e}
  }}
}}
"#,
        mode = if cfg.quick { "quick" } else { "full" },
        reps = cfg.reps,
        kern_ref = kern_ref,
        kern_plan = kern_plan,
        kern_speedup = kern_ref / kern_plan,
        pt_ref = pt_ref,
        pt_plan = pt_plan,
        pt_speedup = pt_ref / pt_plan,
        probes = cfg.probes,
        candidates = cfg.candidates,
        workers = grid.workers,
        grid_ref = grid.reference_ns,
        grid_plan = grid.planned_ns,
        grid_speedup = grid.reference_ns / grid.planned_ns,
        grid_par = grid.parallel_ns,
        grid_par_speedup = grid.reference_ns / grid.parallel_ns,
        nrmse = grid.nrmse,
    );
    std::fs::write(&cfg.out, json).expect("write bench report");
    println!("wrote {}", cfg.out);

    // The harness enforces its own contracts so CI fails loudly when
    // either regresses.
    assert!(
        grid.nrmse <= 1e-9,
        "planned cost grid diverged from the scalar baseline: nrmse {}",
        grid.nrmse
    );
    // Asserted on the single-threaded ratio so the gate pins the
    // planned engine itself — thread parallelism cannot mask an
    // algorithmic regression, and core count cannot fail a healthy one.
    // Quick mode (3-rep medians on shared CI runners) gets a softer
    // floor: a real regression collapses the ratio toward 1x, while
    // scheduler noise on the small workload can shave a couple of x off
    // the ~6.5x a quiet machine measures.
    let floor = if cfg.quick { 3.0 } else { 5.0 };
    assert!(
        grid.reference_ns / grid.planned_ns >= floor,
        "cost-grid speedup below the {floor}x floor: {:.2}x",
        grid.reference_ns / grid.planned_ns
    );
}
