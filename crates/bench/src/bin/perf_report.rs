//! Headless perf-trajectory harness: times the PNBS reconstruction
//! kernels (planned engine vs the preserved scalar baseline, measured
//! in the same run) and writes `BENCH_recon.json`.
//!
//! ```sh
//! cargo run --release -p rfbist-bench --bin perf_report            # full
//! cargo run --release -p rfbist-bench --bin perf_report -- --quick # CI smoke
//! cargo run --release -p rfbist-bench --bin perf_report -- --out some.json
//! ```
//!
//! Three kernels, mirroring the criterion benches but with medians a
//! machine can diff across commits:
//!
//! 1. **kernel_eval** — Kohlenberg `s(t)` over a 61-tap row:
//!    `KohlenbergInterpolant::eval` per tap vs `PnbsPlan::kernel_row`.
//! 2. **point_reconstruct** — one eq. 6 evaluation (61 taps, Kaiser
//!    β = 8): `reconstruct_at_reference` vs the planned
//!    `reconstruct_at`.
//! 3. **cost_grid** — the Fig. 5 sweep: `evaluate_reference` per
//!    candidate vs the batched+planned grid. The asserted ≥ 5×
//!    speedup is measured single-threaded (`eval_grid`, scratch
//!    reuse) so it pins the engine rather than the core count; the
//!    chunked `std::thread::scope` parallel wall clock
//!    (`CostEvaluator` per worker) is reported alongside. The same
//!    run also reports the NRMSE between the planned and reference
//!    grids — the ≤ 1e-9 equivalence contract.
//! 4. **grid_reconstruct** — the analysis-grid workload of
//!    `BistEngine::run` (~12288 uniform points at 4 GHz): the
//!    per-point planned batch vs the grid-aware plan
//!    (`PnbsGridPlan::reconstruct_grid`, cross-point rotor reuse and
//!    the runtime-dispatched SIMD walk kernels). Asserted ≥ 2× (full)
//!    / ≥ 1.5× (quick) at ≤ 1e-9 NRMSE everywhere — the rotor-reuse
//!    win the scalar walk already banks — and ≥ 5.5× (full) / ≥ 4×
//!    (quick) where the AVX2/AVX-512+FMA walk kernels can dispatch
//!    (the mask_scan-style feature gate; the ratio is reported either
//!    way on scalar hardware or under `RFBIST_FORCE_SCALAR`).
//! 5. **mask_scan** — one spectral-mask verdict, FFT-Welch vs the
//!    banked Goertzel scan. The speedup floor is asserted only when
//!    the AVX2+FMA kernels can dispatch (on plain SSE2/NEON the bank
//!    loses to the FFT by design); agreement is asserted everywhere.
//! 6. **stream_bist** — the end-to-end verdict pipeline
//!    (reconstruction → scan), full-grid batch (the pre-streaming
//!    engine: materialize the grid, construct the scanner, scan) vs
//!    the streaming single pass (block feed → push-style scan with
//!    engine-held scratch), plus the parallel-producer feed and the
//!    early-exit case on a grossly failing unit. Verdict agreement is
//!    asserted everywhere (the paths are bit-identical by
//!    construction); the sequential stream must no longer regress
//!    below the batch (floor 0.9× quick / 0.95× full — with the Welch
//!    window folded inside the banked pass the streamed verdict sits
//!    at ~0.95–1.0× of a batch that additionally pays per-verdict
//!    allocation and scanner construction),
//!    the early exit must beat the batch outright (SIMD-free and
//!    core-count-free — reconstruction stops at the first completed
//!    segment), and the parallel feed must beat it ≥ 1.2× wherever ≥ 2
//!    producer workers exist (the core-gated analogue of the
//!    mask_scan AVX2 gate; single-core machines report the ratio
//!    without asserting).
//! 7. **service** — the sharded verdict service: a batch of identical
//!    calibrated-skew jobs through the persistent worker pool at 1, 2
//!    and 4 workers vs the direct `try_run_with` loop on one reused
//!    scratch. Every outcome is asserted bit-identical to the direct
//!    verdict. The core-count-free gates are the 1-worker throughput
//!    floor (verdicts/s) and `overhead_1w` ≥ 0.7 (the pool's queue,
//!    clone and channel overhead must stay a small fraction of a
//!    verdict); the `scaling_2w` > 1.3× gate is asserted only where
//!    ≥ 2 cores exist to express it.

use rfbist_bench::{paper_cost, paper_stimulus, par, Frontend};
use rfbist_core::bist::welch_segmentation;
use rfbist_core::mask::SpectralMask;
use rfbist_core::scan::{EarlyVerdict, MaskScanEngine, ScanFeed, StreamScratch};
use rfbist_dsp::psd::welch;
use rfbist_dsp::window::Window;
use rfbist_math::stats::nrmse;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::gridplan::GridScratch;
use rfbist_sampling::kohlenberg::KohlenbergInterpolant;
use rfbist_sampling::plan::{PnbsPlan, PnbsScratch};
use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
use rfbist_signal::tone::{MultiTone, Tone};
use rfbist_signal::traits::ContinuousSignal;
use std::hint::black_box;
use std::time::Instant;

const FC: f64 = 1e9;
const B: f64 = 90e6;
const D: f64 = 180e-12;
const TAPS: usize = 61;

struct Config {
    quick: bool,
    out: String,
    /// timing samples per kernel; the reported figure is their median
    reps: usize,
    probes: usize,
    candidates: usize,
}

/// Runs `work` (a closure performing `ops` operations) `reps` times and
/// returns the median ns/op.
fn median_ns_per_op<F: FnMut()>(reps: usize, ops: usize, mut work: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_kernel_eval(cfg: &Config) -> (f64, f64) {
    let band = BandSpec::centered(FC, B);
    let kern = KohlenbergInterpolant::new(band, D).expect("valid delay");
    let plan = PnbsPlan::new(band, D, TAPS, Window::Kaiser(8.0));
    let t_s = 1.0 / B;
    let rows = if cfg.quick { 2_000 } else { 20_000 };
    let mut buf = vec![0.0f64; TAPS];

    let reference = median_ns_per_op(cfg.reps, rows * TAPS, || {
        for r in 0..rows {
            let t0 = 3.4e-7 + r as f64 * 1.3e-11;
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = kern.eval(t0 - i as f64 * t_s);
            }
            black_box(&buf);
        }
    });
    let planned = median_ns_per_op(cfg.reps, rows * TAPS, || {
        for r in 0..rows {
            let t0 = 3.4e-7 + r as f64 * 1.3e-11;
            plan.kernel_row(t0, -t_s, &mut buf);
            black_box(&buf);
        }
    });
    (reference, planned)
}

fn bench_point_reconstruct(cfg: &Config) -> (f64, f64) {
    let band = BandSpec::centered(FC, B);
    let tone = Tone::unit(0.987e9);
    let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -60, 400);
    let rec = PnbsReconstructor::paper_default(band, D).expect("valid delay");
    let points = if cfg.quick { 2_000 } else { 10_000 };
    let times: Vec<f64> = (0..points)
        .map(|i| 1.0e-6 + (i % 192) as f64 * 7.7e-9)
        .collect();

    let reference = median_ns_per_op(cfg.reps, points, || {
        for &t in &times {
            black_box(rec.reconstruct_at_reference(&cap, black_box(t)));
        }
    });
    let planned = median_ns_per_op(cfg.reps, points, || {
        for &t in &times {
            black_box(rec.reconstruct_at(&cap, black_box(t)));
        }
    });
    (reference, planned)
}

struct CostGridResult {
    reference_ns: f64,
    planned_ns: f64,
    parallel_ns: f64,
    nrmse: f64,
    workers: usize,
}

fn bench_cost_grid(cfg: &Config) -> CostGridResult {
    let cost = paper_cost(Frontend::Paper, cfg.probes, 42);
    let candidates = cost.sweep_candidates(cfg.candidates);

    let mut reference_grid = Vec::new();
    let reference_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        reference_grid = candidates
            .iter()
            .map(|&d| cost.evaluate_reference(d))
            .collect();
        black_box(&reference_grid);
    });

    // Single-threaded planned grid: the same threading as the
    // reference, so the asserted speedup measures the planned engine
    // (rotors + prepared window + scratch reuse), not the core count.
    let mut planned_grid = Vec::new();
    let planned_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        planned_grid = cost.eval_grid(&candidates);
        black_box(&planned_grid);
    });

    // Parallel wall clock, reported informationally (machine-dependent).
    let mut parallel_grid = Vec::new();
    let parallel_ns = median_ns_per_op(cfg.reps, candidates.len(), || {
        parallel_grid = par::map_with(&candidates, || cost.evaluator(), |ev, &d| ev.eval(d));
        black_box(&parallel_grid);
    });
    assert_eq!(parallel_grid, planned_grid, "parallel grid diverged");

    CostGridResult {
        reference_ns,
        planned_ns,
        parallel_ns,
        nrmse: nrmse(&planned_grid, &reference_grid),
        workers: par::worker_count(candidates.len()),
    }
}

struct GridReconResult {
    per_point_ns: f64,
    grid_ns: f64,
    nrmse: f64,
    points: usize,
}

/// The analysis-grid workload: `BistEngine::run` step 4 reconstructs
/// the RF waveform on a dense uniform grid (~12288 points at 4 GHz)
/// before every mask verdict. Per-point planned path
/// (`reconstruct_batch`, six rotor re-seeds + two Kaiser Horner
/// evaluations per tap per point) vs the grid-aware plan
/// (`reconstruct_grid`, cross-point rotors + factored per-sample
/// tables + tabulated window). Both paths reuse their scratch across
/// repetitions, exactly as the engine does across verdicts.
fn bench_grid_reconstruct(cfg: &Config) -> GridReconResult {
    const FS_GRID: f64 = 4e9;
    let band = BandSpec::centered(FC, B);
    let stim = paper_stimulus(96, 0xACE1);
    let cap = NonuniformCapture::from_signal(&stim, 1.0 / B, D, 80, 380);
    let rec = PnbsReconstructor::paper_default(band, D).expect("valid delay");
    let (lo, hi) = rec.coverage(&cap).expect("capture too short");
    let dt = 1.0 / FS_GRID;
    let points = if cfg.quick { 4096 } else { 12288 }.min(((hi - lo) / dt) as usize);
    let times: Vec<f64> = (0..points).map(|i| lo + i as f64 * dt).collect();

    let mut pp_scratch = PnbsScratch::new();
    let per_point_ns = median_ns_per_op(cfg.reps, points, || {
        black_box(rec.reconstruct_batch(&cap, &times, &mut pp_scratch));
    });
    let per_point_wave = pp_scratch.values().to_vec();

    let mut grid_scratch = GridScratch::new();
    let grid_ns = median_ns_per_op(cfg.reps, points, || {
        black_box(rec.reconstruct_grid(&cap, lo, dt, points, &mut grid_scratch));
    });
    let grid_wave = grid_scratch.values();

    GridReconResult {
        per_point_ns,
        grid_ns,
        nrmse: nrmse(grid_wave, &per_point_wave),
        points,
    }
}

struct MaskScanResult {
    fft_welch_ns: f64,
    banked_ns: f64,
    probed_bins: usize,
    total_bins: usize,
    margin_delta_db: f64,
    verdicts_agree: bool,
}

/// The mask-bin workload: one Section V reconstruction-grid waveform →
/// one spectral-mask verdict, FFT-Welch (full PSD + check) vs the
/// banked-Goertzel scan (mask bins only). Both paths share the
/// engine's `welch_segmentation` and window, and both timed regions
/// include their per-verdict setup exactly as `BistEngine::run` pays
/// it — `welch` regenerates its window per call, and the banked side
/// rebuilds the `MaskScanEngine` (window, bin table, coefficient
/// bank) per verdict — so the recorded speedup is what the engine
/// actually gains.
fn bench_mask_scan(cfg: &Config) -> MaskScanResult {
    const FS_GRID: f64 = 4e9;
    let n = 12288; // the BistConfig::paper_default analysis grid
    let wave = paper_stimulus(96, 0xACE1).sample_uniform(1.0e-6, 1.0 / FS_GRID, n);
    let mask = SpectralMask::qpsk_10msym();
    let (seg, overlap) = welch_segmentation(n);

    let verdicts = if cfg.quick { 2 } else { 6 };
    let mut fft_report = None;
    let fft_welch_ns = median_ns_per_op(cfg.reps, verdicts, || {
        for _ in 0..verdicts {
            let psd = welch(&wave, FS_GRID, seg, overlap, Window::BlackmanHarris);
            fft_report = Some(black_box(
                mask.try_check(&psd, FC)
                    .expect("benchmark PSD is well-formed"),
            ));
        }
    });
    let mut banked_report = None;
    let banked_ns = median_ns_per_op(cfg.reps, verdicts, || {
        for _ in 0..verdicts {
            let scan =
                MaskScanEngine::new(&mask, FC, FS_GRID, seg, overlap, Window::BlackmanHarris);
            banked_report = Some(black_box(
                scan.try_scan(&wave)
                    .expect("benchmark wave spans a segment"),
            ));
        }
    });
    let scan = MaskScanEngine::new(&mask, FC, FS_GRID, seg, overlap, Window::BlackmanHarris);

    let fft_report = fft_report.expect("fft verdict");
    let banked_report = banked_report.expect("banked verdict");
    MaskScanResult {
        fft_welch_ns,
        banked_ns,
        probed_bins: scan.probed_bins(),
        total_bins: seg / 2 + 1,
        margin_delta_db: (fft_report.worst_margin_db - banked_report.worst_margin_db).abs(),
        verdicts_agree: fft_report.passed == banked_report.passed,
    }
}

struct StreamBistResult {
    points: usize,
    batch_ns: f64,
    stream_ns: f64,
    stream_par_ns: f64,
    early_ns: f64,
    workers: usize,
    margin_delta_db: f64,
    verdicts_agree: bool,
    early_fired: bool,
    early_points: usize,
}

/// The end-to-end verdict pipeline on the Section V capture:
/// full-grid batch (fresh grid scratch, wave materialized, scanner
/// constructed per verdict — exactly what `BistEngine::run` paid
/// before the streaming refactor) vs the streaming single pass (block
/// feed pushed straight into the scan, everything reused — the
/// `run_with` steady state). The early-exit case times a grossly
/// violating unit under the default guard: the feed stops at the
/// first completed Welch segment, skipping a third of the
/// reconstruction — the hottest loop of the whole pipeline.
fn bench_stream_bist(cfg: &Config) -> StreamBistResult {
    const FS_GRID: f64 = 4e9;
    let band = BandSpec::centered(FC, B);
    let stim = paper_stimulus(96, 0xACE1);
    let cap = NonuniformCapture::from_signal(&stim, 1.0 / B, D, 80, 380);
    let rec = PnbsReconstructor::paper_default(band, D).expect("valid delay");
    let (lo, hi) = rec.coverage(&cap).expect("capture too short");
    let dt = 1.0 / FS_GRID;
    let points = 12288usize.min(((hi - lo) / dt) as usize);
    let mask = SpectralMask::qpsk_10msym();
    let (seg, overlap) = welch_segmentation(points);
    let verdicts = if cfg.quick { 2 } else { 4 };

    // The four configurations are timed inside the *same* rep loop,
    // interleaved, so slow drift on a shared machine (the dominant
    // noise source at ~10 ms per verdict) hits every configuration
    // equally and cancels out of the ratios.
    let scan = MaskScanEngine::new(&mask, FC, FS_GRID, seg, overlap, Window::BlackmanHarris);
    let mut grid = GridScratch::new();
    let mut stream_scratch = StreamScratch::new();
    // The engine's own auto resolution, so the parallel case measures
    // what `BistEngine::run_with` actually does by default.
    let workers = rfbist_core::bist::BistConfig::paper_default().resolved_stream_workers();
    // Early-exit fixture: a gross in-mask spur (−10 dBc at 15 MHz
    // offset) stops the feed at the first completed segment.
    let spur = MultiTone::new(vec![
        Tone::unit(FC),
        Tone::new(FC + 15e6, 10f64.powf(-10.0 / 20.0), 0.3),
    ]);
    let spur_cap = NonuniformCapture::from_signal(&spur, 1.0 / B, D, 80, 380);
    let (spur_lo, _) = rec.coverage(&spur_cap).expect("capture too short");

    let mut batch_report = None;
    let mut stream_report = None;
    let mut early_fired = false;
    let mut early_points = 0usize;
    let mut samples: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..cfg.reps {
        // Full-grid batch: per-verdict allocation and construction
        // included, exactly as the engine paid it before streaming.
        let start = Instant::now();
        for _ in 0..verdicts {
            let mut batch_grid = GridScratch::new();
            rec.reconstruct_grid(&cap, lo, dt, points, &mut batch_grid);
            let wave = batch_grid.into_values();
            let batch_scan =
                MaskScanEngine::new(&mask, FC, FS_GRID, seg, overlap, Window::BlackmanHarris);
            batch_report = Some(black_box(
                batch_scan
                    .try_scan(&wave)
                    .expect("benchmark wave spans a segment"),
            ));
        }
        samples[0].push(start.elapsed().as_nanos() as f64 / verdicts as f64);

        // Streaming single pass, scratch and scanner held across
        // verdicts (the `run_with` steady state).
        let start = Instant::now();
        for _ in 0..verdicts {
            let mut stream = scan.stream(&mut stream_scratch, None);
            let mut blocks = rec.reconstruct_blocks(&cap, lo, dt, points, &mut grid);
            while let Some(block) = blocks.next_block() {
                if stream.push(block) == ScanFeed::EarlyStop {
                    break;
                }
            }
            stream_report = Some(black_box(
                stream
                    .try_finish()
                    .expect("stream fed at least one segment"),
            ));
        }
        samples[1].push(start.elapsed().as_nanos() as f64 / verdicts as f64);

        // Parallel producers feeding the same in-order consumer.
        let start = Instant::now();
        for _ in 0..verdicts {
            let mut stream = scan.stream(&mut stream_scratch, None);
            rec.grid_plan()
                .stream_blocks_parallel(&cap, lo, dt, points, workers, |_, block| {
                    stream.push(block) == ScanFeed::Continue
                })
                .expect("grid inside coverage");
            black_box(
                stream
                    .try_finish()
                    .expect("stream fed at least one segment"),
            );
        }
        samples[2].push(start.elapsed().as_nanos() as f64 / verdicts as f64);

        // Early exit on the gross-violation fixture.
        let start = Instant::now();
        for _ in 0..verdicts {
            let mut stream = scan.stream(&mut stream_scratch, Some(EarlyVerdict::paper_default()));
            let mut blocks = rec.reconstruct_blocks(&spur_cap, spur_lo, dt, points, &mut grid);
            let mut produced = 0usize;
            while let Some(block) = blocks.next_block() {
                produced += block.len();
                if stream.push(block) == ScanFeed::EarlyStop {
                    break;
                }
            }
            early_fired = stream.early_stopped();
            early_points = produced;
            black_box(
                stream
                    .try_finish()
                    .expect("stream fed at least one segment"),
            );
        }
        samples[3].push(start.elapsed().as_nanos() as f64 / verdicts as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let [mut s0, mut s1, mut s2, mut s3] = samples;
    let (batch_ns, stream_ns, stream_par_ns, early_ns) = (
        median(&mut s0),
        median(&mut s1),
        median(&mut s2),
        median(&mut s3),
    );

    let batch_report = batch_report.expect("batch verdict");
    let stream_report = stream_report.expect("streamed verdict");
    StreamBistResult {
        points,
        batch_ns,
        stream_ns,
        stream_par_ns,
        early_ns,
        workers,
        margin_delta_db: (batch_report.worst_margin_db - stream_report.worst_margin_db).abs(),
        verdicts_agree: batch_report.passed == stream_report.passed,
        early_fired,
        early_points,
    }
}

struct ServiceResult {
    available_workers: usize,
    jobs_per_batch: usize,
    direct_ns: f64,
    /// `(workers, median ns/verdict through the service)`.
    saturation: Vec<(usize, f64)>,
}

/// The verdict-service workload: a batch of identical calibrated-skew
/// jobs (short 2048-point analysis grid, `stream_workers = 1` — the
/// service's job-level sharding) through the persistent pool at 1, 2
/// and 4 workers, against the direct `try_run_with` loop on one
/// reused scratch. Each pool is warmed with one untimed batch (thread
/// start + scratch growth), then timed over whole submit-all/collect-
/// all batches; every outcome is asserted bit-identical to the direct
/// verdict before any number is reported.
fn bench_service(cfg: &Config) -> ServiceResult {
    use rfbist_core::bist::{BistConfig, BistEngine, BistScratch};
    use rfbist_core::service::{ServiceConfig, SharedSignal, VerdictJob, VerdictService};
    use std::sync::Arc;

    let mut bist = BistConfig::paper_default().with_calibrated_skew(D);
    bist.grid_len = 2048;
    bist.stream_workers = 1;
    let mask = SpectralMask::qpsk_10msym();
    let stimulus: SharedSignal = Arc::new(
        rfbist_bench::paper_tx(
            rfbist_rfchain::impairments::TxImpairments::typical(),
            160,
            0xACE1,
        )
        .rf_output(),
    );
    let jobs_per_batch = if cfg.quick { 4 } else { 8 };
    let make_jobs = |n: usize| -> Vec<VerdictJob> {
        (0..n as u64)
            .map(|job_id| VerdictJob {
                job_id,
                dut: job_id as u32,
                standard: "qpsk-10msym-srrc0.5".into(),
                config: bist.clone(),
                mask: mask.clone(),
                stimulus: Arc::clone(&stimulus),
                reference: None,
            })
            .collect()
    };

    // Direct single-shot loop on one warm scratch — what the service's
    // workers do minus the queue, clones and channels.
    let mut scratch = BistScratch::new();
    let template = make_jobs(1).remove(0);
    let mut direct_report = None;
    let direct_ns = median_ns_per_op(cfg.reps, jobs_per_batch, || {
        for _ in 0..jobs_per_batch {
            direct_report = Some(black_box(
                BistEngine::new(template.config.clone())
                    .try_run_with(
                        &template.stimulus,
                        &template.mask,
                        template.reference.as_ref(),
                        &mut scratch,
                    )
                    .expect("clean direct verdict"),
            ));
        }
    });
    let direct_report = direct_report.expect("direct verdict");

    let mut saturation = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut svc =
            VerdictService::try_start(ServiceConfig::paper_default().with_workers(workers))
                .expect("verdict service starts");
        // warm batch: thread start, per-worker scratch growth — and the
        // equivalence assertion, once per worker count
        let outcomes = svc
            .try_run_all(make_jobs(jobs_per_batch))
            .expect("pool alive");
        for outcome in &outcomes {
            let report = outcome.result.as_ref().expect("clean service verdict");
            assert_eq!(
                report, &direct_report,
                "service verdict diverged from the direct run at {workers} worker(s)"
            );
        }
        let ns = median_ns_per_op(cfg.reps, jobs_per_batch, || {
            let outcomes = svc
                .try_run_all(make_jobs(jobs_per_batch))
                .expect("pool alive");
            black_box(&outcomes);
        });
        svc.shutdown();
        saturation.push((workers, ns));
    }

    ServiceResult {
        available_workers: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        jobs_per_batch,
        direct_ns,
        saturation,
    }
}

fn main() {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_recon.json".to_string(),
        reps: 0,
        probes: 0,
        candidates: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => cfg.out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if cfg.quick {
        cfg.reps = 3;
        cfg.probes = 80;
        cfg.candidates = 12;
    } else {
        cfg.reps = 5;
        cfg.probes = 300;
        cfg.candidates = 32;
    }

    println!(
        "perf_report ({} mode): {} reps/kernel, {} probes, {} grid candidates",
        if cfg.quick { "quick" } else { "full" },
        cfg.reps,
        cfg.probes,
        cfg.candidates
    );

    let (kern_ref, kern_plan) = bench_kernel_eval(&cfg);
    println!(
        "kernel_eval        {kern_ref:>10.1} ns/op reference  {kern_plan:>10.1} ns/op planned  ({:.2}x)",
        kern_ref / kern_plan
    );
    let (pt_ref, pt_plan) = bench_point_reconstruct(&cfg);
    println!(
        "point_reconstruct  {pt_ref:>10.1} ns/op reference  {pt_plan:>10.1} ns/op planned  ({:.2}x)",
        pt_ref / pt_plan
    );
    let grid = bench_cost_grid(&cfg);
    println!(
        "cost_grid          {:>10.1} us/cand reference  {:>10.1} us/cand planned  ({:.2}x, nrmse {:.3e})",
        grid.reference_ns / 1e3,
        grid.planned_ns / 1e3,
        grid.reference_ns / grid.planned_ns,
        grid.nrmse,
    );
    println!(
        "cost_grid parallel {:>10.1} us/cand across {} worker(s) ({:.2}x vs reference)",
        grid.parallel_ns / 1e3,
        grid.workers,
        grid.reference_ns / grid.parallel_ns,
    );
    let grid_recon = bench_grid_reconstruct(&cfg);
    println!(
        "grid_reconstruct   {:>10.1} ns/pt per-point plan {:>10.1} ns/pt grid plan  ({:.2}x over {} points, nrmse {:.3e})",
        grid_recon.per_point_ns,
        grid_recon.grid_ns,
        grid_recon.per_point_ns / grid_recon.grid_ns,
        grid_recon.points,
        grid_recon.nrmse,
    );
    let mask_scan = bench_mask_scan(&cfg);
    println!(
        "mask_scan          {:>10.1} us/verdict fft-welch  {:>10.1} us/verdict banked  ({:.2}x, {} of {} bins, margin delta {:.3e} dB)",
        mask_scan.fft_welch_ns / 1e3,
        mask_scan.banked_ns / 1e3,
        mask_scan.fft_welch_ns / mask_scan.banked_ns,
        mask_scan.probed_bins,
        mask_scan.total_bins,
        mask_scan.margin_delta_db,
    );

    let stream = bench_stream_bist(&cfg);
    println!(
        "stream_bist        {:>10.1} us/verdict batch      {:>10.1} us/verdict streamed  ({:.2}x over {} points)",
        stream.batch_ns / 1e3,
        stream.stream_ns / 1e3,
        stream.batch_ns / stream.stream_ns,
        stream.points,
    );
    println!(
        "stream_bist par    {:>10.1} us/verdict across {} worker(s) ({:.2}x vs batch)",
        stream.stream_par_ns / 1e3,
        stream.workers,
        stream.batch_ns / stream.stream_par_ns,
    );
    println!(
        "stream_bist early  {:>10.1} us/verdict early-exit ({:.2}x vs batch, stopped after {} of {} points)",
        stream.early_ns / 1e3,
        stream.batch_ns / stream.early_ns,
        stream.early_points,
        stream.points,
    );

    let service = bench_service(&cfg);
    let service_1w_ns = service.saturation[0].1;
    println!(
        "service            {:>10.1} us/verdict direct     {:>10.1} us/verdict 1 worker ({:.2}x overhead ratio, {:.0} verdicts/s)",
        service.direct_ns / 1e3,
        service_1w_ns / 1e3,
        service.direct_ns / service_1w_ns,
        1e9 / service_1w_ns,
    );
    for &(workers, ns) in &service.saturation[1..] {
        println!(
            "service {workers}w         {:>10.1} us/verdict across {workers} worker(s) ({:.2}x vs 1 worker, {:.0} verdicts/s)",
            ns / 1e3,
            service_1w_ns / ns,
            1e9 / ns,
        );
    }

    let saturation_json = service
        .saturation
        .iter()
        .map(|&(workers, ns)| {
            format!(
                r#"      {{ "workers": {workers}, "median_ns_per_verdict": {ns:.2}, "verdicts_per_sec": {vps:.2}, "speedup_vs_1w": {speedup:.3} }}"#,
                vps = 1e9 / ns,
                speedup = service_1w_ns / ns,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        r#"{{
  "generator": "perf_report",
  "mode": "{mode}",
  "reps": {reps},
  "kernel_eval": {{
    "reference_median_ns_per_op": {kern_ref:.2},
    "planned_median_ns_per_op": {kern_plan:.2},
    "speedup": {kern_speedup:.3}
  }},
  "point_reconstruct": {{
    "reference_median_ns_per_op": {pt_ref:.2},
    "planned_median_ns_per_op": {pt_plan:.2},
    "speedup": {pt_speedup:.3}
  }},
  "cost_grid_sweep": {{
    "probes": {probes},
    "candidates": {candidates},
    "reference_median_ns_per_candidate": {grid_ref:.2},
    "planned_median_ns_per_candidate": {grid_plan:.2},
    "speedup": {grid_speedup:.3},
    "parallel_workers": {workers},
    "parallel_median_ns_per_candidate": {grid_par:.2},
    "parallel_speedup": {grid_par_speedup:.3},
    "planned_vs_reference_nrmse": {nrmse:.3e}
  }},
  "grid_reconstruct": {{
    "points": {grid_recon_points},
    "per_point_median_ns_per_point": {grid_recon_pp:.2},
    "grid_plan_median_ns_per_point": {grid_recon_grid:.2},
    "speedup": {grid_recon_speedup:.3},
    "grid_vs_per_point_nrmse": {grid_recon_nrmse:.3e}
  }},
  "mask_scan": {{
    "probed_bins": {scan_bins},
    "total_bins": {scan_total},
    "fft_welch_median_ns_per_verdict": {scan_fft:.2},
    "banked_median_ns_per_verdict": {scan_banked:.2},
    "speedup": {scan_speedup:.3},
    "worst_margin_delta_db": {scan_delta:.3e}
  }},
  "stream_bist": {{
    "points": {stream_points},
    "batch_median_ns_per_verdict": {stream_batch:.2},
    "stream_median_ns_per_verdict": {stream_seq:.2},
    "stream_speedup": {stream_seq_speedup:.3},
    "parallel_workers": {stream_workers},
    "stream_parallel_median_ns_per_verdict": {stream_par:.2},
    "stream_parallel_speedup": {stream_par_speedup:.3},
    "early_exit_median_ns_per_verdict": {stream_early:.2},
    "early_exit_speedup": {stream_early_speedup:.3},
    "early_exit_points": {stream_early_points},
    "worst_margin_delta_db": {stream_delta:.3e}
  }},
  "service": {{
    "available_workers": {svc_workers},
    "jobs_per_batch": {svc_jobs},
    "direct_median_ns_per_verdict": {svc_direct:.2},
    "service_1w_median_ns_per_verdict": {svc_1w:.2},
    "verdicts_per_sec_1w": {svc_vps:.2},
    "overhead_1w": {svc_overhead:.3},
    "scaling_2w": {svc_scaling:.3},
    "saturation": [
{saturation_json}
    ]
  }}
}}
"#,
        mode = if cfg.quick { "quick" } else { "full" },
        reps = cfg.reps,
        kern_ref = kern_ref,
        kern_plan = kern_plan,
        kern_speedup = kern_ref / kern_plan,
        pt_ref = pt_ref,
        pt_plan = pt_plan,
        pt_speedup = pt_ref / pt_plan,
        probes = cfg.probes,
        candidates = cfg.candidates,
        workers = grid.workers,
        grid_ref = grid.reference_ns,
        grid_plan = grid.planned_ns,
        grid_speedup = grid.reference_ns / grid.planned_ns,
        grid_par = grid.parallel_ns,
        grid_par_speedup = grid.reference_ns / grid.parallel_ns,
        nrmse = grid.nrmse,
        grid_recon_points = grid_recon.points,
        grid_recon_pp = grid_recon.per_point_ns,
        grid_recon_grid = grid_recon.grid_ns,
        grid_recon_speedup = grid_recon.per_point_ns / grid_recon.grid_ns,
        grid_recon_nrmse = grid_recon.nrmse,
        scan_bins = mask_scan.probed_bins,
        scan_total = mask_scan.total_bins,
        scan_fft = mask_scan.fft_welch_ns,
        scan_banked = mask_scan.banked_ns,
        scan_speedup = mask_scan.fft_welch_ns / mask_scan.banked_ns,
        scan_delta = mask_scan.margin_delta_db,
        stream_points = stream.points,
        stream_batch = stream.batch_ns,
        stream_seq = stream.stream_ns,
        stream_seq_speedup = stream.batch_ns / stream.stream_ns,
        stream_workers = stream.workers,
        stream_par = stream.stream_par_ns,
        stream_par_speedup = stream.batch_ns / stream.stream_par_ns,
        stream_early = stream.early_ns,
        stream_early_speedup = stream.batch_ns / stream.early_ns,
        stream_early_points = stream.early_points,
        stream_delta = stream.margin_delta_db,
        svc_workers = service.available_workers,
        svc_jobs = service.jobs_per_batch,
        svc_direct = service.direct_ns,
        svc_1w = service_1w_ns,
        svc_vps = 1e9 / service_1w_ns,
        svc_overhead = service.direct_ns / service_1w_ns,
        svc_scaling = service_1w_ns / service.saturation[1].1,
    );
    std::fs::write(&cfg.out, json).expect("write bench report");
    println!("wrote {}", cfg.out);

    // The harness enforces its own contracts so CI fails loudly when
    // either regresses.
    assert!(
        grid.nrmse <= 1e-9,
        "planned cost grid diverged from the scalar baseline: nrmse {}",
        grid.nrmse
    );
    // Asserted on the single-threaded ratio so the gate pins the
    // planned engine itself — thread parallelism cannot mask an
    // algorithmic regression, and core count cannot fail a healthy one.
    // Quick mode (3-rep medians on shared CI runners) gets a softer
    // floor: a real regression collapses the ratio toward 1x, while
    // scheduler noise on the small workload can shave a couple of x off
    // the ~6.5x a quiet machine measures.
    let floor = if cfg.quick { 3.0 } else { 5.0 };
    assert!(
        grid.reference_ns / grid.planned_ns >= floor,
        "cost-grid speedup below the {floor}x floor: {:.2}x",
        grid.reference_ns / grid.planned_ns
    );
    // Grid-reconstruct contracts: the grid-aware plan must agree with
    // the per-point plan on the analysis-grid workload, and two floors
    // pin its cost. The scalar floor (rotor reuse + factored tables,
    // no vector width needed) holds unconditionally; the SIMD floor
    // pins the runtime-dispatched walk kernels and is asserted only
    // where they can engage — the mask_scan gate applied to the walk —
    // with the ratio reported either way on scalar hardware or under
    // RFBIST_FORCE_SCALAR. A quiet AVX-512 box measures ~8.5–12.5x;
    // the 5.5x floor leaves room for shared-runner noise while still
    // catching a kernel that silently falls back to scalar.
    assert!(
        grid_recon.nrmse <= 1e-9,
        "grid plan diverged from the per-point plan: nrmse {}",
        grid_recon.nrmse
    );
    let grid_floor = if cfg.quick { 1.5 } else { 2.0 };
    assert!(
        grid_recon.per_point_ns / grid_recon.grid_ns >= grid_floor,
        "grid-reconstruct speedup below the {grid_floor}x floor: {:.2}x",
        grid_recon.per_point_ns / grid_recon.grid_ns
    );
    let grid_simd_floor = if cfg.quick { 4.0 } else { 5.5 };
    if scan_simd_available() {
        assert!(
            grid_recon.per_point_ns / grid_recon.grid_ns >= grid_simd_floor,
            "SIMD grid-reconstruct speedup below the {grid_simd_floor}x floor: {:.2}x",
            grid_recon.per_point_ns / grid_recon.grid_ns
        );
    } else {
        println!(
            "grid_reconstruct SIMD floor (>= {grid_simd_floor}x) not asserted: no AVX2+FMA \
             dispatch on this CPU (measured {:.2}x)",
            grid_recon.per_point_ns / grid_recon.grid_ns
        );
    }
    // Mask-scan contracts: the banked Goertzel path must agree with the
    // FFT-Welch reference on the Section V fixture (they probe the same
    // bins, so the budgeted 0.5 dB is ~9 orders of magnitude of
    // headroom) and must beat it on wall clock — the whole point of
    // evaluating only the bins the mask constrains.
    assert!(
        mask_scan.verdicts_agree && mask_scan.margin_delta_db <= 0.5,
        "mask-scan verdict diverged from FFT-Welch: agree {}, |Δmargin| {} dB",
        mask_scan.verdicts_agree,
        mask_scan.margin_delta_db
    );
    // Floors sit well under the ~1.5x a quiet x86 machine measures:
    // the FFT side's large allocations make single runs noisy, and the
    // banked side's FMA kernel needs the runtime-dispatched SIMD path
    // (any AVX2+FMA-era core) to win at all. On plain SSE2/NEON
    // hardware the Goertzel bank genuinely loses to the FFT (it trades
    // O(N log N) for O(bins·N) and needs vector width to come out
    // ahead), so the speedup floor is asserted only where the AVX2+FMA
    // kernels can dispatch; the measured ratio is reported either way.
    let scan_floor = if cfg.quick { 1.0 } else { 1.25 };
    if scan_simd_available() {
        assert!(
            mask_scan.fft_welch_ns / mask_scan.banked_ns > scan_floor,
            "banked mask scan must beat FFT-Welch (>{scan_floor}x): {:.2}x",
            mask_scan.fft_welch_ns / mask_scan.banked_ns
        );
    } else {
        println!(
            "mask_scan speedup floor (> {scan_floor}x) not asserted: no AVX2+FMA on this CPU \
             (measured {:.2}x)",
            mask_scan.fft_welch_ns / mask_scan.banked_ns
        );
    }
    // Stream-BIST contracts. Agreement is structural — the block feed
    // reproduces the batch wave bit for bit and the streamed scan the
    // batched scan — so the margin delta must sit at exactly zero
    // (budgeted 1e-9, the acceptance contract). The stream floors are
    // SIMD-*independent*: both pipelines run the same runtime-
    // dispatched walk and scan kernels (whichever arm the CPU
    // selects), so vector width cancels out of every ratio.
    assert!(
        stream.verdicts_agree && stream.margin_delta_db <= 1e-9,
        "streamed verdict diverged from batch: agree {}, |Δmargin| {} dB",
        stream.verdicts_agree,
        stream.margin_delta_db
    );
    // The sequential single pass does the same arithmetic as the batch
    // minus the per-verdict allocation, wave materialization and
    // scanner construction; with the Welch window folded inside the
    // banked pass (no per-chunk staging copy) the streamed verdict no
    // longer regresses below batch (measured ~0.95–1.0x on a single
    // shared core). The floor guards against real regressions (a
    // quadratic carry, a per-block table rebuild, a reintroduced
    // staging pass), not noise.
    let seq_floor = if cfg.quick { 0.9 } else { 0.95 };
    assert!(
        stream.batch_ns / stream.stream_ns >= seq_floor,
        "sequential streaming regressed below batch (>{seq_floor}x): {:.2}x",
        stream.batch_ns / stream.stream_ns
    );
    // Early exit skips a third of the reconstruction — the dominant
    // cost — so it must beat the batch outright on any core count.
    let early_floor = if cfg.quick { 1.1 } else { 1.2 };
    assert!(
        stream.early_fired,
        "early-verdict policy failed to fire on the gross-violation fixture"
    );
    assert!(
        stream.early_points < stream.points,
        "early exit must stop before the full grid ({} of {})",
        stream.early_points,
        stream.points
    );
    assert!(
        stream.batch_ns / stream.early_ns >= early_floor,
        "early-exit verdict below the {early_floor}x floor: {:.2}x",
        stream.batch_ns / stream.early_ns
    );
    // The parallel feed divides the reconstruction across producers;
    // the ≥ 1.2x floor needs at least two of them, so (mirroring the
    // mask_scan AVX2 gate) it is asserted only where the machine can
    // express it — GitHub's runners can; the ratio is reported either
    // way.
    let par_floor = if cfg.quick { 1.1 } else { 1.2 };
    if stream.workers >= 2 {
        assert!(
            stream.batch_ns / stream.stream_par_ns >= par_floor,
            "parallel streaming below the {par_floor}x floor: {:.2}x",
            stream.batch_ns / stream.stream_par_ns
        );
    } else {
        println!(
            "stream_bist parallel floor (>= {par_floor}x) not asserted: single producer \
             worker on this machine (measured {:.2}x)",
            stream.batch_ns / stream.stream_par_ns
        );
    }
    // Verdict-service contracts. Equivalence was asserted inside the
    // bench (every pool outcome bit-identical to the direct verdict);
    // the gates here are throughput-shaped. The 1-worker floors are
    // core-count-free: the absolute verdicts/s floor sits an order of
    // magnitude under what one slow shared core measures (a real
    // regression — a per-job reallocation storm, a serialized queue —
    // collapses it by that much), and overhead_1w pins the pool's
    // per-job queue/clone/channel cost to ≤ 30 % of a verdict.
    let vps_floor = if cfg.quick { 25.0 } else { 50.0 };
    assert!(
        1e9 / service_1w_ns >= vps_floor,
        "1-worker service throughput below the {vps_floor} verdicts/s floor: {:.1}/s",
        1e9 / service_1w_ns
    );
    assert!(
        service.direct_ns / service_1w_ns >= 0.7,
        "verdict service overhead at 1 worker exceeds 30% of a verdict: {:.2}x",
        service.direct_ns / service_1w_ns
    );
    // Scaling needs at least two cores to express; mirroring the other
    // core-gated floors, single-core machines report without asserting.
    let scaling_2w = service_1w_ns / service.saturation[1].1;
    if service.available_workers >= 2 {
        assert!(
            scaling_2w > 1.3,
            "2-worker service scaling below the 1.3x floor: {scaling_2w:.2}x"
        );
    } else {
        println!(
            "service scaling floor (> 1.3x at 2 workers) not asserted: single core \
             (measured {scaling_2w:.2}x)"
        );
    }
}

/// Whether the runtime-dispatched AVX2+FMA kernels — the banked
/// Goertzel scan (`rfbist_dsp::goertzel`) and the grid-walk kernels
/// (`rfbist_sampling::gridplan`) share the dispatch predicate — can
/// engage in this process: the precondition for the scan and SIMD
/// grid-reconstruct speedup floors. False under `RFBIST_FORCE_SCALAR`
/// regardless of hardware.
fn scan_simd_available() -> bool {
    if rfbist_dsp::simd::force_scalar() {
        // RFBIST_FORCE_SCALAR pins every runtime dispatch to the
        // portable kernels, so the SIMD floors cannot be expressed
        // even on capable hardware.
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}
