//! **Extension experiment**: fixed-point precision of the
//! reconstruction filter — the paper's stated future work ("an
//! efficient mapping to hardware of our nonuniform sampler").
//!
//! Sweeps the fractional bit-width of the (pre-windowed) Kohlenberg
//! kernel coefficients and measures the reconstruction error of the
//! paper's QPSK stimulus, against the floating-point and front-end
//! error floors. The knee of this curve is the coefficient ROM width a
//! hardware implementation actually needs.

use rfbist_bench::{paper_stimulus, print_header, print_row};
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
use rfbist_dsp::window::Window;
use rfbist_math::rng::Randomizer;
use rfbist_math::stats::nrmse;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::fixedpoint::FixedPointReconstructor;
use rfbist_sampling::reconstruct::PnbsReconstructor;
use rfbist_signal::traits::ContinuousSignal;

fn main() {
    let band = BandSpec::centered(1e9, 90e6);
    let d = 180e-12;
    let stimulus = paper_stimulus(96, 0xACE1);
    let mut adc = BpTiadc::new(BpTiadcConfig::paper_section_v(d));
    let cap = adc.capture(&stimulus, 80, 260);
    let float_rec =
        PnbsReconstructor::new(band, d, 61, Window::Kaiser(8.0)).expect("paper delay is valid");

    let mut rng = Randomizer::from_seed(23);
    let (lo, hi) = float_rec.coverage(&cap).expect("capture long enough");
    let times: Vec<f64> = (0..250).map(|_| rng.uniform(lo, hi)).collect();
    let truth = stimulus.sample(&times);

    let float_err = nrmse(&float_rec.reconstruct(&cap, &times), &truth);

    println!("# Extension — fixed-point reconstruction-filter precision");
    println!(
        "floating-point error floor (10-bit front-end): {:.3} %",
        float_err * 100.0
    );
    println!();
    print_header(&[
        "coeff fractional bits",
        "delta_eps [%]",
        "penalty vs float [dB]",
    ]);
    for bits in [4u32, 6, 8, 10, 12, 14, 16, 20, 24] {
        let fxp = FixedPointReconstructor::new(float_rec.clone(), bits);
        let got: Vec<f64> = times.iter().map(|&t| fxp.reconstruct_at(&cap, t)).collect();
        let err = nrmse(&got, &truth);
        let penalty_db = 20.0 * (err / float_err).log10();
        print_row(&[
            bits.to_string(),
            format!("{:.3}", err * 100.0),
            format!("{penalty_db:+.2}"),
        ]);
    }
    println!();
    println!("Reading: beyond the knee, coefficient width no longer matters — the");
    println!("front-end (10-bit, 3 ps jitter) dominates, sizing the hardware ROM.");
}
