//! Regenerates paper **Fig. 5**: the dual-rate cost function
//! `ε^{T,D̂}_{T1,D̂}(t)` versus the skew candidate `D̂`.
//!
//! Setup (paper Section V): QPSK 10 Msym/s SRRC α = 0.5 at 1 GHz,
//! B = 90 MHz, B1 = 45 MHz, true D = 180 ps, N = 300 random probe
//! times, 61-tap Kaiser-windowed reconstruction, 10-bit converters with
//! 3 ps rms skew jitter.
//!
//! The paper's figure sweeps D̂ over ~120–260 ps and shows a single
//! sharp minimum at D̂ = D = 180 ps; this binary prints the same series
//! (plus a full-interval sweep to exhibit uniqueness over ]0, m[).
//!
//! Both grids run through the planned batch engine
//! (`DualRateCost::eval_grid` semantics), chunked across cores with
//! one `CostEvaluator` per worker.

use rfbist_bench::{paper_cost, par, print_header, print_row, Frontend};

fn main() {
    let cost = paper_cost(Frontend::Paper, 300, 42);
    println!(
        "# Fig. 5 — cost function vs D̂ (true D = 180 ps, m = {:.1} ps)",
        cost.config().m_bound() * 1e12
    );
    println!();
    print_header(&["D_hat [ps]", "cost"]);
    // paper's plotted range: 120..260 ps
    let n = 71;
    let plotted: Vec<f64> = (0..n)
        .map(|i| (120.0 + 140.0 * i as f64 / (n - 1) as f64) * 1e-12)
        .collect();
    let values = par::map_with(&plotted, || cost.evaluator(), |ev, &d| ev.eval(d));
    let mut min_d = 0.0;
    let mut min_c = f64::INFINITY;
    for (&d, &c) in plotted.iter().zip(&values) {
        if c < min_c {
            min_c = c;
            min_d = d;
        }
        print_row(&[format!("{:.2}", d * 1e12), format!("{c:.6}")]);
    }
    println!();
    println!(
        "Minimum of the plotted range: D̂ = {:.2} ps (cost {:.3e})",
        min_d * 1e12,
        min_c
    );
    println!();

    // uniqueness over the full admissible interval
    let candidates = cost.sweep_candidates(96);
    let grid = par::map_with(&candidates, || cost.evaluator(), |ev, &d| ev.eval(d));
    let sweep: Vec<(f64, f64)> = candidates.iter().copied().zip(grid).collect();
    let mut minima = 0;
    for w in sweep.windows(3) {
        if w[1].1 < w[0].1 && w[1].1 < w[2].1 {
            minima += 1;
        }
    }
    let (global_d, global_c) = sweep
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("non-empty sweep");
    println!(
        "Full-interval sweep ]0, m[: {} strict local minimum(s); global at {:.2} ps (cost {:.3e})",
        minima,
        global_d * 1e12,
        global_c
    );
    println!("({} sweep workers)", par::worker_count(candidates.len()));
    println!("Paper: \"the cost function has only one minimum that appears when D̂ = D\".");
}
