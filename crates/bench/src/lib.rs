//! Shared scaffolding for the experiment-regeneration binaries.
//!
//! Every figure and table of the paper's evaluation has a dedicated
//! binary in `src/bin/`; the helpers here build the common Section V
//! scenario (QPSK 10 Msym/s, SRRC α = 0.5, f_c = 1 GHz, B = 90 MHz,
//! B1 = 45 MHz, D = 180 ps) so all experiments share one ground truth.

use rfbist::fixtures::{paper_stimulus_seeded, paper_tx_seeded};
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig, JitterPlacement};
use rfbist_core::cost::DualRateCost;
use rfbist_rfchain::impairments::TxImpairments;
use rfbist_rfchain::txchain::HomodyneTx;
use rfbist_sampling::dualrate::DualRateConfig;
use rfbist_signal::bandpass::BandpassSignal;
use rfbist_signal::baseband::ShapedBaseband;

/// Paper Section V stimulus: QPSK 10 Msym/s, SRRC α = 0.5 over 12
/// symbols, 1 GHz carrier, PRBS-driven payload.
pub fn paper_stimulus(symbols: usize, seed: u64) -> BandpassSignal<ShapedBaseband> {
    paper_stimulus_seeded(symbols, seed)
}

/// Paper Section V transmitter with the given impairments.
pub fn paper_tx(imp: TxImpairments, symbols: usize, seed: u64) -> HomodyneTx<ShapedBaseband> {
    paper_tx_seeded(imp, symbols, seed)
}

/// Whether an experiment should model the paper's noisy front-end
/// (10 bits, 3 ps rms skew jitter) or an ideal one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frontend {
    /// Paper Section V front-end, jitter on the DCDE (the skew itself
    /// wanders — the paper's "time-skew jitter" wording).
    Paper,
    /// Paper Section V front-end, jitter on the shared clock generator
    /// (skew exact, absolute instants wander).
    PaperCommonMode,
    /// Ideal clocks and effectively unquantized converters.
    Ideal,
}

/// Builds the dual-rate cost function of paper Section V:
/// both-rate captures of the stimulus plus `n_probes` random probe
/// times.
pub fn paper_cost(frontend: Frontend, n_probes: usize, seed: u64) -> DualRateCost {
    let cfg = DualRateConfig::paper_section_v();
    let (fast_cfg, slow_cfg) = match frontend {
        // The ideal arm is the canonical fixture shared with the
        // integration tests — one definition, so benches and the
        // plan-equivalence suite always measure the same object.
        Frontend::Ideal => return rfbist::fixtures::paper_cost_fixture(n_probes, seed),
        Frontend::Paper | Frontend::PaperCommonMode => {
            let placement = if frontend == Frontend::Paper {
                JitterPlacement::DcdeOnly
            } else {
                JitterPlacement::CommonMode
            };
            (
                BpTiadcConfig::paper_section_v(cfg.delay())
                    .with_seed(0x5EED ^ seed.rotate_left(17))
                    .with_jitter_placement(placement),
                BpTiadcConfig::paper_section_v(cfg.delay())
                    .with_sample_rate(cfg.slow_rate())
                    .with_seed(0x51DE ^ seed)
                    .with_jitter_placement(placement),
            )
        }
    };
    let tx = paper_stimulus(96, 0xACE1);
    let mut fast = BpTiadc::new(fast_cfg);
    let mut slow = BpTiadc::new(slow_cfg);
    DualRateCost::paper_probes(
        fast.capture(&tx, 80, 260),
        slow.capture(&tx, 40, 160),
        cfg,
        n_probes,
        seed,
    )
}

/// Chunked `std::thread::scope` parallelism for the experiment
/// binaries' embarrassingly parallel sweeps (cost grids, per-standard
/// configurations).
///
/// Deliberately minimal — no work stealing, no thread pool — because
/// every sweep in this workspace is a static grid whose per-item cost
/// is uniform: splitting the grid into one contiguous chunk per
/// available core is within a few percent of optimal and keeps the
/// binaries dependency-free.
pub mod par {
    /// Number of worker threads a sweep over `n` items should use.
    pub fn worker_count(n: usize) -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
            .max(1)
    }

    /// Maps `f` over `items` in parallel, preserving order, with one
    /// worker-local state built by `init` per thread — the hook that
    /// lets cost sweeps reuse a `CostEvaluator` (plan + scratch
    /// buffers) across all candidates a worker owns.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`/`init`.
    pub fn map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let workers = worker_count(items.len());
        if workers <= 1 {
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(|| {
                        let mut state = init();
                        chunk
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    }

    /// Stateless order-preserving parallel map.
    pub fn map_chunked<T, R, F>(items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        map_with(items, || (), |(), item| f(item))
    }
}

/// Prints a Markdown-ish table row with `|`-separated cells.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a table header and separator.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimulus_matches_paper_parameters() {
        let tx = paper_stimulus(64, 1);
        assert_eq!(tx.carrier_hz(), 1e9);
        let (lo, hi) = tx.occupied_band();
        assert!((lo - 992.5e6).abs() < 1.0);
        assert!((hi - 1007.5e6).abs() < 1.0);
    }

    #[test]
    fn cost_builder_produces_probes() {
        let cost = paper_cost(Frontend::Ideal, 25, 3);
        assert_eq!(cost.times().len(), 25);
        let at_truth = cost.evaluate(180e-12);
        let away = cost.evaluate(100e-12);
        assert!(at_truth < away);
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..101).collect();
        let squares = par::map_chunked(&items, |&x| x * x);
        assert_eq!(squares.len(), items.len());
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn par_map_with_worker_state() {
        // worker-local counters must never be shared between items of
        // different workers; here each item adds its index to a local
        // accumulator and returns the running value — order within a
        // chunk is sequential, so the result is deterministic per chunk.
        let items: Vec<usize> = (0..16).collect();
        let out = par::map_with(
            &items,
            || 0usize,
            |acc, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out.len(), 16);
        // first item of the first chunk is always 0
        assert_eq!(out[0], 0);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par::map_chunked(&empty, |&x| x).is_empty());
        assert_eq!(par::map_chunked(&[7], |&x| x + 1), vec![8]);
    }
}
