//! Criterion benches for the PNBS reconstruction kernel — the hot path
//! of every experiment (Fig. 5 sweeps, LMS iterations, PSD grids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfbist_dsp::window::Window;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::kohlenberg::KohlenbergInterpolant;
use rfbist_sampling::plan::{PnbsPlan, PnbsScratch};
use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
use rfbist_signal::tone::Tone;
use std::hint::black_box;

fn bench_kernel_eval(c: &mut Criterion) {
    let band = BandSpec::centered(1e9, 90e6);
    let kern = KohlenbergInterpolant::new(band, 180e-12).expect("valid delay");
    c.bench_function("kohlenberg_kernel_eval", |b| {
        let mut t = 1.0e-9;
        b.iter(|| {
            t += 1.3e-11;
            black_box(kern.eval(black_box(t)))
        })
    });

    // the planned rotor row amortizes its sincos setup over 61 taps
    let plan = PnbsPlan::new(band, 180e-12, 61, Window::Kaiser(8.0));
    let mut row = vec![0.0f64; 61];
    let t_s = 1.0 / 90e6;
    c.bench_function("pnbs_plan_kernel_row_61", |b| {
        let mut t0 = 1.0e-9;
        b.iter(|| {
            t0 += 1.3e-11;
            plan.kernel_row(black_box(t0), -t_s, &mut row);
            black_box(row[60])
        })
    });
}

fn bench_reconstruct_point(c: &mut Criterion) {
    let band = BandSpec::centered(1e9, 90e6);
    let tone = Tone::unit(0.987e9);
    let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, 180e-12, -60, 400);
    let mut group = c.benchmark_group("pnbs_reconstruct_point");
    for taps in [21usize, 61, 121] {
        let rec =
            PnbsReconstructor::new(band, 180e-12, taps, Window::Kaiser(8.0)).expect("valid delay");
        group.bench_with_input(BenchmarkId::from_parameter(taps), &taps, |b, _| {
            let mut t = 1.0e-6;
            b.iter(|| {
                t += 7.7e-9;
                if t > 2.5e-6 {
                    t = 1.0e-6;
                }
                black_box(rec.reconstruct_at(&cap, black_box(t)))
            })
        });
        // the preserved pre-plan baseline, for the perf trajectory
        group.bench_with_input(BenchmarkId::new("reference", taps), &taps, |b, _| {
            let mut t = 1.0e-6;
            b.iter(|| {
                t += 7.7e-9;
                if t > 2.5e-6 {
                    t = 1.0e-6;
                }
                black_box(rec.reconstruct_at_reference(&cap, black_box(t)))
            })
        });
    }
    group.finish();
}

fn bench_reconstruct_grid(c: &mut Criterion) {
    // the PSD path: 4096 grid points through the 61-tap reconstructor
    let band = BandSpec::centered(1e9, 90e6);
    let tone = Tone::unit(0.987e9);
    let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, 180e-12, -60, 400);
    let rec = PnbsReconstructor::paper_default(band, 180e-12).expect("valid delay");
    let grid: Vec<f64> = (0..4096).map(|i| 1.0e-6 + i as f64 * 0.25e-9).collect();
    c.bench_function("pnbs_reconstruct_grid_4096", |b| {
        b.iter(|| black_box(rec.reconstruct(&cap, black_box(&grid))))
    });
    // allocation-free batch form with a reused scratch buffer
    let mut scratch = PnbsScratch::new();
    c.bench_function("pnbs_reconstruct_batch_4096", |b| {
        b.iter(|| {
            let out = rec.reconstruct_batch(&cap, black_box(&grid), &mut scratch);
            black_box(out[out.len() - 1])
        })
    });
}

criterion_group!(
    benches,
    bench_kernel_eval,
    bench_reconstruct_point,
    bench_reconstruct_grid
);
criterion_main!(benches);
