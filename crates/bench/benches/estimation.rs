//! Criterion benches for the skew estimators: one dual-rate cost
//! evaluation (the LMS inner loop), a full LMS run (Fig. 6 unit), and
//! the sine-fit baseline (Table I rows 1–2).

use criterion::{criterion_group, criterion_main, Criterion};
use rfbist_bench::{paper_cost, Frontend};
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
use rfbist_core::jamal::{estimate_skew_jamal, test_tone_for_ratio};
use rfbist_core::lms::{estimate_skew_lms, LmsConfig};
use rfbist_signal::tone::Tone;
use std::hint::black_box;

fn bench_cost_evaluation(c: &mut Criterion) {
    let cost = paper_cost(Frontend::Paper, 300, 42);
    c.bench_function("dual_rate_cost_eval_300probes", |b| {
        let mut d = 150e-12;
        b.iter(|| {
            d += 1e-12;
            if d > 250e-12 {
                d = 150e-12;
            }
            black_box(cost.evaluate(black_box(d)))
        })
    });
}

fn bench_full_lms(c: &mut Criterion) {
    let cost = paper_cost(Frontend::Paper, 300, 42);
    c.bench_function("lms_full_run_from_50ps", |b| {
        b.iter(|| {
            black_box(estimate_skew_lms(
                &cost,
                LmsConfig::paper_default(black_box(50e-12)),
            ))
        })
    });
}

fn bench_jamal(c: &mut Criterion) {
    let f_rf = test_tone_for_ratio(1e9, 90e6, 0.46);
    let mut adc = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
    let cap = adc.capture(&Tone::new(f_rf, 0.9, 0.37), 0, 300);
    c.bench_function("jamal_sine_fit_300pairs", |b| {
        b.iter(|| black_box(estimate_skew_jamal(black_box(&cap), f_rf)))
    });
}

criterion_group!(benches, bench_cost_evaluation, bench_full_lms, bench_jamal);
criterion_main!(benches);
