//! Criterion benches for the DSP substrate: FFT sizes used by the PSD
//! path, Welch estimation, and FIR filtering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfbist_dsp::fir::FirFilter;
use rfbist_dsp::psd::welch;
use rfbist_dsp::window::Window;
use rfbist_math::complex::Complex64;
use rfbist_math::fft::fft;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [1024usize, 4096, 8192] {
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| black_box(fft(black_box(&x))))
        });
    }
    // non-power-of-two goes through Bluestein
    let x: Vec<Complex64> = (0..4095)
        .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
        .collect();
    group.bench_function("bluestein_4095", |b| {
        b.iter(|| black_box(fft(black_box(&x))))
    });
    group.finish();
}

fn bench_welch(c: &mut Criterion) {
    let x: Vec<f64> = (0..16384)
        .map(|i| (2.0 * std::f64::consts::PI * 0.01 * i as f64).sin())
        .collect();
    c.bench_function("welch_16k_seg4096", |b| {
        b.iter(|| {
            black_box(welch(
                black_box(&x),
                4e9,
                4096,
                2048,
                Window::BlackmanHarris,
            ))
        })
    });
}

fn bench_fir(c: &mut Criterion) {
    let fir = FirFilter::lowpass(127, 0.1, Window::Kaiser(8.0));
    let x: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.3).sin()).collect();
    c.bench_function("fir_127tap_filter_8192", |b| {
        b.iter(|| black_box(fir.filter_same(black_box(&x))))
    });
}

criterion_group!(benches, bench_fft, bench_welch, bench_fir);
criterion_main!(benches);
