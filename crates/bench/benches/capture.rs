//! Criterion benches for the signal-model + converter capture path:
//! evaluating the analytic QPSK passband and taking BP-TIADC captures.

use criterion::{criterion_group, criterion_main, Criterion};
use rfbist_bench::paper_stimulus;
use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
use rfbist_signal::traits::ContinuousSignal;
use std::hint::black_box;

fn bench_signal_eval(c: &mut Criterion) {
    let tx = paper_stimulus(96, 0xACE1);
    c.bench_function("qpsk_passband_eval", |b| {
        let mut t = 1.3e-6;
        b.iter(|| {
            t += 1.1e-10;
            if t > 8e-6 {
                t = 1.3e-6;
            }
            black_box(tx.eval(black_box(t)))
        })
    });
}

fn bench_capture(c: &mut Criterion) {
    let tx = paper_stimulus(96, 0xACE1);
    c.bench_function("bptiadc_capture_300pairs", |b| {
        b.iter(|| {
            let mut adc = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
            black_box(adc.capture(black_box(&tx), 80, 300))
        })
    });
}

criterion_group!(benches, bench_signal_eval, bench_capture);
criterion_main!(benches);
