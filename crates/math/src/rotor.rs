//! Incremental phase rotation.
//!
//! Evaluating `cos(φ₀ + n·Δ)` for a run of consecutive `n` — the shape
//! of every windowed-interpolant tap loop in this workspace — does not
//! need a trigonometric call per step. A unit phasor `e^{jφ}` advanced
//! by a fixed rotation `e^{jΔ}` produces the whole run from two `sincos`
//! evaluations, at the cost of one complex multiply per step.
//!
//! The naive recurrence drifts in magnitude by O(n·ε); [`PhaseRotor`]
//! renormalizes its phasor with a Newton step every
//! [`RENORM_INTERVAL`] advances, keeping the magnitude error bounded
//! (≈ 32·ε ≈ 7e-15) independent of run length. Phase error still grows
//! as O(n·ε) relative to a direct evaluation, which over the ≤ few
//! hundred taps used here stays far below the 1e-9 equivalence budget
//! enforced by the reconstruction tests.

/// Simultaneous sine and cosine of `x`, as `(sin x, cos x)`.
///
/// A single call site for platforms/libms that fuse the two; also the
/// idiomatic spelling for "I need both" in the planned kernels.
#[inline]
pub fn sincos(x: f64) -> (f64, f64) {
    x.sin_cos()
}

/// Advances between magnitude renormalizations. 32 keeps the Newton
/// correction's input within ~1e-13 of 1, where one step is exact to
/// double precision.
const RENORM_INTERVAL: u32 = 32;

/// A unit phasor `e^{j(φ₀ + n·Δ)}` advanced incrementally.
///
/// # Example
///
/// ```
/// use rfbist_math::rotor::PhaseRotor;
///
/// let mut r = PhaseRotor::new(0.3, 0.01);
/// for n in 0..100 {
///     let phase = 0.3 + n as f64 * 0.01;
///     assert!((r.cos() - phase.cos()).abs() < 1e-12);
///     assert!((r.sin() - phase.sin()).abs() < 1e-12);
///     r.advance();
/// }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PhaseRotor {
    c: f64,
    s: f64,
    dc: f64,
    ds: f64,
    since_renorm: u32,
}

impl PhaseRotor {
    /// A rotor starting at `phase` and advancing by `step` radians per
    /// [`advance`](Self::advance).
    #[inline]
    pub fn new(phase: f64, step: f64) -> Self {
        let (s, c) = sincos(phase);
        let (ds, dc) = sincos(step);
        PhaseRotor {
            c,
            s,
            dc,
            ds,
            since_renorm: 0,
        }
    }

    /// A rotor starting at `phase` whose step rotation `(cos Δ, sin Δ)`
    /// was precomputed — lets batch callers hoist the step `sincos` out
    /// of a per-point loop when the step is shared.
    #[inline]
    pub fn with_step_parts(phase: f64, step_cos: f64, step_sin: f64) -> Self {
        let (s, c) = sincos(phase);
        PhaseRotor {
            c,
            s,
            dc: step_cos,
            ds: step_sin,
            since_renorm: 0,
        }
    }

    /// `cos` of the current phase.
    #[inline]
    pub fn cos(&self) -> f64 {
        self.c
    }

    /// `sin` of the current phase.
    #[inline]
    pub fn sin(&self) -> f64 {
        self.s
    }

    /// Rotates one step forward.
    #[inline]
    pub fn advance(&mut self) {
        let c = self.c * self.dc - self.s * self.ds;
        let s = self.c * self.ds + self.s * self.dc;
        self.c = c;
        self.s = s;
        self.since_renorm += 1;
        if self.since_renorm >= RENORM_INTERVAL {
            self.renormalize();
        }
    }

    /// One Newton step toward unit magnitude:
    /// `g = (3 − |z|²)/2` satisfies `|g·z| = 1 + O((|z|²−1)²)`.
    #[inline]
    fn renormalize(&mut self) {
        let g = 0.5 * (3.0 - (self.c * self.c + self.s * self.s));
        self.c *= g;
        self.s *= g;
        self.since_renorm = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn sincos_matches_separate_calls() {
        for x in [-7.3, -0.1, 0.0, 0.5, 3.9, 6500.0] {
            let (s, c) = sincos(x);
            assert_eq!(s, x.sin());
            assert_eq!(c, x.cos());
        }
    }

    #[test]
    fn rotor_tracks_direct_evaluation() {
        let mut r = PhaseRotor::new(1.234, -0.71);
        for n in 0..500 {
            let phase = 1.234 - 0.71 * n as f64;
            assert!(
                (r.cos() - phase.cos()).abs() < 1e-11,
                "cos drift at step {n}"
            );
            assert!(
                (r.sin() - phase.sin()).abs() < 1e-11,
                "sin drift at step {n}"
            );
            r.advance();
        }
    }

    #[test]
    fn rotor_magnitude_stays_unit_over_long_runs() {
        // The tap loops run ≤ a few hundred steps; push far beyond that
        // to show the renormalization holds the magnitude regardless.
        let mut r = PhaseRotor::new(0.0, 2.0 * PI / 1000.0 * 3.7);
        for _ in 0..100_000 {
            r.advance();
        }
        let mag = (r.cos() * r.cos() + r.sin() * r.sin()).sqrt();
        assert!((mag - 1.0).abs() < 1e-12, "magnitude {mag}");
    }

    #[test]
    fn with_step_parts_matches_new() {
        let (ds, dc) = sincos(0.37);
        let mut a = PhaseRotor::new(2.1, 0.37);
        let mut b = PhaseRotor::with_step_parts(2.1, dc, ds);
        for _ in 0..100 {
            assert_eq!(a.cos(), b.cos());
            assert_eq!(a.sin(), b.sin());
            a.advance();
            b.advance();
        }
    }

    #[test]
    fn large_phase_large_step() {
        // RF-scale arguments: ω ≈ 2π·10⁹, t ≈ µs ⇒ phases in the
        // thousands of radians, steps of tens of radians.
        let phase0 = 2.0 * PI * 1e9 * 1.37e-6;
        let step = 2.0 * PI * 1e9 * 1.11e-8;
        let mut r = PhaseRotor::new(phase0, step);
        for n in 0..200 {
            let direct = (phase0 + step * n as f64).cos();
            assert!((r.cos() - direct).abs() < 5e-10, "step {n}");
            r.advance();
        }
    }
}
