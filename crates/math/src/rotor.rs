//! Incremental phase rotation.
//!
//! Evaluating `cos(φ₀ + n·Δ)` for a run of consecutive `n` — the shape
//! of every windowed-interpolant tap loop in this workspace — does not
//! need a trigonometric call per step. A unit phasor `e^{jφ}` advanced
//! by a fixed rotation `e^{jΔ}` produces the whole run from two `sincos`
//! evaluations, at the cost of one complex multiply per step.
//!
//! The naive recurrence drifts in magnitude by O(n·ε); [`PhaseRotor`]
//! renormalizes its phasor with a Newton step every
//! [`RENORM_INTERVAL`] advances, keeping the magnitude error bounded
//! (≈ 32·ε ≈ 7e-15) independent of run length. Phase error still grows
//! as O(n·ε) relative to a direct evaluation, which over the ≤ few
//! hundred taps used here stays far below the 1e-9 equivalence budget
//! enforced by the reconstruction tests.

/// Simultaneous sine and cosine of `x`, as `(sin x, cos x)`.
///
/// A single call site for platforms/libms that fuse the two; also the
/// idiomatic spelling for "I need both" in the planned kernels.
#[inline]
pub fn sincos(x: f64) -> (f64, f64) {
    x.sin_cos()
}

/// Advances between magnitude renormalizations. 32 keeps the Newton
/// correction's input within ~1e-13 of 1, where one step is exact to
/// double precision.
const RENORM_INTERVAL: u32 = 32;

/// A unit phasor `e^{j(φ₀ + n·Δ)}` advanced incrementally.
///
/// # Example
///
/// ```
/// use rfbist_math::rotor::PhaseRotor;
///
/// let mut r = PhaseRotor::new(0.3, 0.01);
/// for n in 0..100 {
///     let phase = 0.3 + n as f64 * 0.01;
///     assert!((r.cos() - phase.cos()).abs() < 1e-12);
///     assert!((r.sin() - phase.sin()).abs() < 1e-12);
///     r.advance();
/// }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PhaseRotor {
    c: f64,
    s: f64,
    dc: f64,
    ds: f64,
    since_renorm: u32,
}

impl PhaseRotor {
    /// A rotor starting at `phase` and advancing by `step` radians per
    /// [`advance`](Self::advance).
    #[inline]
    pub fn new(phase: f64, step: f64) -> Self {
        let (s, c) = sincos(phase);
        let (ds, dc) = sincos(step);
        PhaseRotor {
            c,
            s,
            dc,
            ds,
            since_renorm: 0,
        }
    }

    /// A rotor starting at `phase` whose step rotation `(cos Δ, sin Δ)`
    /// was precomputed — lets batch callers hoist the step `sincos` out
    /// of a per-point loop when the step is shared.
    #[inline]
    pub fn with_step_parts(phase: f64, step_cos: f64, step_sin: f64) -> Self {
        let (s, c) = sincos(phase);
        PhaseRotor {
            c,
            s,
            dc: step_cos,
            ds: step_sin,
            since_renorm: 0,
        }
    }

    /// `cos` of the current phase.
    #[inline]
    pub fn cos(&self) -> f64 {
        self.c
    }

    /// `sin` of the current phase.
    #[inline]
    pub fn sin(&self) -> f64 {
        self.s
    }

    /// Rotates one step forward.
    #[inline]
    pub fn advance(&mut self) {
        let c = self.c * self.dc - self.s * self.ds;
        let s = self.c * self.ds + self.s * self.dc;
        self.c = c;
        self.s = s;
        self.since_renorm += 1;
        if self.since_renorm >= RENORM_INTERVAL {
            self.renormalize();
        }
    }

    /// One Newton step toward unit magnitude:
    /// `g = (3 − |z|²)/2` satisfies `|g·z| = 1 + O((|z|²−1)²)`.
    #[inline]
    fn renormalize(&mut self) {
        let g = 0.5 * (3.0 - (self.c * self.c + self.s * self.s));
        self.c *= g;
        self.s *= g;
        self.since_renorm = 0;
    }
}

/// Advances between *exact* re-seedings in [`fill_phasor_table`]. The
/// Newton renormalization bounds magnitude error but not phase error,
/// which still accumulates O(n·ε); re-seeding from a direct `sincos`
/// every 256 entries caps the accumulated phase drift at
/// ≈ 256·ε ≈ 6e-14 rad regardless of table length, while keeping the
/// amortized trigonometric cost at one `sincos` per 256 entries.
const RESEED_INTERVAL: usize = 256;

/// Fills `cos_out`/`sin_out` with `cos/sin(phase0 + n·step)` for
/// `n = 0, 1, …` by phase-rotor recurrence, re-seeding exactly every
/// [`RESEED_INTERVAL`] entries so the tables stay within a bounded
/// phase error of a direct per-entry `sincos` for arbitrarily long
/// runs — the builder behind the grid-aware reconstruction plan's
/// per-sample phasor tables.
///
/// # Example
///
/// ```
/// use rfbist_math::rotor::fill_phasor_table;
///
/// let mut c = vec![0.0; 1000];
/// let mut s = vec![0.0; 1000];
/// fill_phasor_table(0.3, 0.017, &mut c, &mut s);
/// for n in (0..1000).step_by(97) {
///     let phase = 0.3 + n as f64 * 0.017;
///     assert!((c[n] - phase.cos()).abs() < 1e-12);
///     assert!((s[n] - phase.sin()).abs() < 1e-12);
/// }
/// ```
///
/// # Panics
///
/// Panics if the output slices differ in length.
pub fn fill_phasor_table(phase0: f64, step: f64, cos_out: &mut [f64], sin_out: &mut [f64]) {
    assert_eq!(
        cos_out.len(),
        sin_out.len(),
        "phasor table slices must have equal length"
    );
    let (ds, dc) = sincos(step);
    let mut rot = PhaseRotor::with_step_parts(phase0, dc, ds);
    for (i, (c, s)) in cos_out.iter_mut().zip(sin_out.iter_mut()).enumerate() {
        if i > 0 && i % RESEED_INTERVAL == 0 {
            rot = PhaseRotor::with_step_parts(phase0 + i as f64 * step, dc, ds);
        }
        *c = rot.cos();
        *s = rot.sin();
        rot.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn sincos_matches_separate_calls() {
        for x in [-7.3, -0.1, 0.0, 0.5, 3.9, 6500.0] {
            let (s, c) = sincos(x);
            assert_eq!(s, x.sin());
            assert_eq!(c, x.cos());
        }
    }

    #[test]
    fn rotor_tracks_direct_evaluation() {
        let mut r = PhaseRotor::new(1.234, -0.71);
        for n in 0..500 {
            let phase = 1.234 - 0.71 * n as f64;
            assert!(
                (r.cos() - phase.cos()).abs() < 1e-11,
                "cos drift at step {n}"
            );
            assert!(
                (r.sin() - phase.sin()).abs() < 1e-11,
                "sin drift at step {n}"
            );
            r.advance();
        }
    }

    #[test]
    fn rotor_magnitude_stays_unit_over_long_runs() {
        // The tap loops run ≤ a few hundred steps; push far beyond that
        // to show the renormalization holds the magnitude regardless.
        let mut r = PhaseRotor::new(0.0, 2.0 * PI / 1000.0 * 3.7);
        for _ in 0..100_000 {
            r.advance();
        }
        let mag = (r.cos() * r.cos() + r.sin() * r.sin()).sqrt();
        assert!((mag - 1.0).abs() < 1e-12, "magnitude {mag}");
    }

    #[test]
    fn with_step_parts_matches_new() {
        let (ds, dc) = sincos(0.37);
        let mut a = PhaseRotor::new(2.1, 0.37);
        let mut b = PhaseRotor::with_step_parts(2.1, dc, ds);
        for _ in 0..100 {
            assert_eq!(a.cos(), b.cos());
            assert_eq!(a.sin(), b.sin());
            a.advance();
            b.advance();
        }
    }

    #[test]
    fn fill_phasor_table_tracks_direct_evaluation() {
        // Long enough to cross many reseed boundaries, RF-scale phases.
        let phase0 = 2.0 * PI * 1.045e9 * -1.7e-6;
        let step = 2.0 * PI * 1.045e9 / 90e6;
        let n = 5000;
        let mut c = vec![0.0; n];
        let mut s = vec![0.0; n];
        fill_phasor_table(phase0, step, &mut c, &mut s);
        for i in 0..n {
            let phase = phase0 + i as f64 * step;
            assert!(
                (c[i] - phase.cos()).abs() < 5e-10,
                "cos drift at entry {i}: {} vs {}",
                c[i],
                phase.cos()
            );
            assert!((s[i] - phase.sin()).abs() < 5e-10, "sin drift at entry {i}");
        }
    }

    #[test]
    fn fill_phasor_table_is_exact_at_reseed_points() {
        let mut c = vec![0.0; 600];
        let mut s = vec![0.0; 600];
        fill_phasor_table(1.1, 0.37, &mut c, &mut s);
        for i in [0usize, 256, 512] {
            let (ds, dc) = sincos(1.1 + i as f64 * 0.37);
            assert_eq!(c[i], dc, "reseed entry {i} must equal direct sincos");
            assert_eq!(s[i], ds);
        }
    }

    #[test]
    fn fill_phasor_table_empty_and_short() {
        let mut c: Vec<f64> = vec![];
        let mut s: Vec<f64> = vec![];
        fill_phasor_table(0.5, 0.1, &mut c, &mut s);
        let mut c1 = [0.0];
        let mut s1 = [0.0];
        fill_phasor_table(0.5, 0.1, &mut c1, &mut s1);
        assert_eq!(c1[0], 0.5f64.cos());
        assert_eq!(s1[0], 0.5f64.sin());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn fill_phasor_table_length_mismatch_panics() {
        let mut c = [0.0; 3];
        let mut s = [0.0; 4];
        fill_phasor_table(0.0, 0.1, &mut c, &mut s);
    }

    #[test]
    fn large_phase_large_step() {
        // RF-scale arguments: ω ≈ 2π·10⁹, t ≈ µs ⇒ phases in the
        // thousands of radians, steps of tens of radians.
        let phase0 = 2.0 * PI * 1e9 * 1.37e-6;
        let step = 2.0 * PI * 1e9 * 1.11e-8;
        let mut r = PhaseRotor::new(phase0, step);
        for n in 0..200 {
            let direct = (phase0 + step * n as f64).cos();
            assert!((r.cos() - direct).abs() < 5e-10, "step {n}");
            r.advance();
        }
    }
}
