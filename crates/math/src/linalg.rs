//! Small dense linear algebra.
//!
//! Row-major [`Matrix`] with Gaussian elimination (partial pivoting) for
//! square solves and normal-equation least squares — enough for polynomial
//! fitting, sine fitting and calibration routines. Not intended for large
//! systems.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from linear-algebra routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot column where elimination failed.
        pivot: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::ShapeMismatch => write!(f, "operand shapes are incompatible"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use rfbist_math::linalg::Matrix;
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when inner dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves `A·x = b` for square `A` by Gaussian elimination with partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `A` is not square or `b` has the
    /// wrong length; [`LinalgError::Singular`] if a pivot collapses below
    /// `1e-300` in magnitude.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch);
        }
        let n = self.rows;
        // augmented copy
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();

        for col in 0..n {
            // partial pivot
            let mut best = col;
            let mut best_abs = a[col * n + col].abs();
            for row in col + 1..n {
                let v = a[row * n + col].abs();
                if v > best_abs {
                    best = row;
                    best_abs = v;
                }
            }
            if best_abs < 1e-300 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if best != col {
                for j in 0..n {
                    a.swap(col * n + j, best * n + j);
                }
                rhs.swap(col, best);
            }
            let pivot = a[col * n + col];
            for row in col + 1..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                rhs[row] -= factor * rhs[col];
            }
        }
        // back substitution
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = rhs[i];
            for j in i + 1..n {
                sum -= a[i * n + j] * x[j];
            }
            x[i] = sum / a[i * n + i];
        }
        Ok(x)
    }

    /// Least-squares solution of the (possibly overdetermined) system
    /// `A·x ≈ b` via the normal equations `AᵀA x = Aᵀb`.
    ///
    /// Adequate for the small, well-conditioned design matrices used in
    /// this workspace (polynomial/sine fits of modest order).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b.len() != self.rows()`;
    /// [`LinalgError::Singular`] if `AᵀA` is singular (rank-deficient fit).
    pub fn lstsq(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch);
        }
        let at = self.transpose();
        let ata = at.mul(self)?;
        let atb = at.mul_vec(b);
        ata.solve(&atb)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero forces a row swap
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn solve_3x3_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(a.solve(&[1.0]), Err(LinalgError::ShapeMismatch));
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(a.mul(&b).unwrap().rows(), 1); // 1x2 · 2x1 ok
        assert_eq!(b.mul(&b), Err(LinalgError::ShapeMismatch));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matrix_product_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn lstsq_exact_when_square() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let x = a.lstsq(&[4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_line_fit() {
        // y = 2x + 1 with noise-free samples; design matrix [x, 1]
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let beta = a.lstsq(&y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        // inconsistent system: best fit of constant to [1, 2, 3] is 2
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let beta = a.lstsq(&[1.0, 2.0, 3.0]).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = LinalgError::Singular { pivot: 2 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 2");
        assert_eq!(
            LinalgError::ShapeMismatch.to_string(),
            "operand shapes are incompatible"
        );
    }

    #[test]
    #[should_panic(expected = "all rows must have equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
