//! Physical-unit newtypes.
//!
//! RF test code mixes quantities spanning twelve orders of magnitude
//! (picosecond skews against gigahertz carriers). These newtypes keep the
//! units straight at API boundaries ([`Hertz`], [`Seconds`], [`Db`]) while
//! staying zero-cost: each wraps a single `f64` and converts explicitly.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A frequency in hertz.
///
/// # Example
///
/// ```
/// use rfbist_math::units::Hertz;
/// let fc = Hertz::from_ghz(1.0);
/// assert_eq!(fc.as_mhz(), 1000.0);
/// assert_eq!(fc.period().as_ns(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Hertz(pub f64);

impl Hertz {
    /// Creates a frequency from a raw hertz value.
    pub const fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from kilohertz.
    pub fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// The raw value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The value in kilohertz.
    pub fn as_khz(self) -> f64 {
        self.0 / 1e3
    }

    /// The value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// The period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "period of zero frequency");
        Seconds(1.0 / self.0)
    }

    /// Angular frequency `2πf` in rad/s.
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0.abs();
        if v >= 1e9 {
            write!(f, "{:.6} GHz", self.0 / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.6} MHz", self.0 / 1e6)
        } else if v >= 1e3 {
            write!(f, "{:.6} kHz", self.0 / 1e3)
        } else {
            write!(f, "{:.6} Hz", self.0)
        }
    }
}

impl Add for Hertz {
    type Output = Hertz;
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}

impl Sub for Hertz {
    type Output = Hertz;
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<f64> for Hertz {
    type Output = Hertz;
    fn div(self, rhs: f64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl Div for Hertz {
    /// Ratio of two frequencies is dimensionless.
    type Output = f64;
    fn div(self, rhs: Hertz) -> f64 {
        self.0 / rhs.0
    }
}

/// A time value in seconds.
///
/// # Example
///
/// ```
/// use rfbist_math::units::Seconds;
/// let skew = Seconds::from_ps(180.0);
/// assert!((skew.as_ns() - 0.18).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Seconds(pub f64);

impl Seconds {
    /// Creates a time from a raw seconds value.
    pub const fn new(s: f64) -> Self {
        Seconds(s)
    }

    /// Creates a time from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    pub fn from_us(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Creates a time from picoseconds.
    pub fn from_ps(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// The raw value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// The value in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 * 1e12
    }

    /// The reciprocal `1/t` as a frequency.
    ///
    /// # Panics
    ///
    /// Panics if the time is zero.
    pub fn frequency(self) -> Hertz {
        assert!(self.0 != 0.0, "frequency of zero period");
        Hertz(1.0 / self.0)
    }

    /// Absolute value.
    pub fn abs(self) -> Seconds {
        Seconds(self.0.abs())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0.abs();
        if v == 0.0 {
            write!(f, "0 s")
        } else if v >= 1.0 {
            write!(f, "{:.6} s", self.0)
        } else if v >= 1e-3 {
            write!(f, "{:.6} ms", self.0 * 1e3)
        } else if v >= 1e-6 {
            write!(f, "{:.6} µs", self.0 * 1e6)
        } else if v >= 1e-9 {
            write!(f, "{:.6} ns", self.0 * 1e9)
        } else {
            write!(f, "{:.6} ps", self.0 * 1e12)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div for Seconds {
    /// Ratio of two times is dimensionless.
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Seconds {
    type Output = Seconds;
    fn neg(self) -> Seconds {
        Seconds(-self.0)
    }
}

/// A power or amplitude ratio expressed in decibels.
///
/// # Example
///
/// ```
/// use rfbist_math::units::Db;
/// let g = Db::new(20.0);
/// assert!((g.as_power_ratio() - 100.0).abs() < 1e-9);
/// assert!((g.as_amplitude_ratio() - 10.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Db(pub f64);

impl Db {
    /// Wraps a decibel value.
    pub const fn new(db: f64) -> Self {
        Db(db)
    }

    /// Converts a (positive) power ratio to decibels: `10·log₁₀(r)`.
    pub fn from_power_ratio(ratio: f64) -> Self {
        Db(10.0 * ratio.log10())
    }

    /// Converts a (positive) amplitude ratio to decibels: `20·log₁₀(r)`.
    pub fn from_amplitude_ratio(ratio: f64) -> Self {
        Db(20.0 * ratio.log10())
    }

    /// The raw decibel value.
    pub fn as_db(self) -> f64 {
        self.0
    }

    /// The equivalent power ratio `10^{dB/10}`.
    pub fn as_power_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// The equivalent amplitude ratio `10^{dB/20}`.
    pub fn as_amplitude_ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} dB", self.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

/// Converts watts to dBm.
pub fn watts_to_dbm(w: f64) -> f64 {
    10.0 * (w / 1e-3).log10()
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

/// RMS voltage across a load `r_ohm` corresponding to a power in dBm.
pub fn dbm_to_vrms(dbm: f64, r_ohm: f64) -> f64 {
    (dbm_to_watts(dbm) * r_ohm).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_ghz(2.03);
        assert!((f.as_hz() - 2.03e9).abs() < 1.0);
        assert!((f.as_mhz() - 2030.0).abs() < 1e-6);
        assert!((f.as_khz() - 2.03e6).abs() < 1e-3);
        assert_eq!(Hertz::from_khz(1.0).as_hz(), 1000.0);
        assert_eq!(Hertz::from_mhz(90.0).as_hz(), 90e6);
    }

    #[test]
    fn hertz_period_round_trip() {
        let f = Hertz::from_mhz(90.0);
        let t = f.period();
        assert!((t.as_ns() - 11.111111111).abs() < 1e-6);
        assert!((t.frequency().as_hz() - f.as_hz()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "period of zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    fn hertz_arithmetic_and_ratio() {
        let a = Hertz::from_mhz(90.0);
        let b = Hertz::from_mhz(45.0);
        assert_eq!((a + b).as_mhz(), 135.0);
        assert_eq!((a - b).as_mhz(), 45.0);
        assert_eq!(a / b, 2.0);
        assert_eq!((a * 2.0).as_mhz(), 180.0);
        assert_eq!((a / 3.0).as_mhz(), 30.0);
    }

    #[test]
    fn angular_frequency() {
        let f = Hertz::new(1.0);
        assert!((f.angular() - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn seconds_conversions() {
        let d = Seconds::from_ps(180.0);
        assert!((d.as_secs() - 180e-12).abs() < 1e-22);
        assert!((d.as_ns() - 0.18).abs() < 1e-12);
        assert!((Seconds::from_ns(1.0).as_ps() - 1000.0).abs() < 1e-9);
        assert!((Seconds::from_us(1.0).as_ns() - 1000.0).abs() < 1e-9);
        assert!((Seconds::from_ms(1.0).as_us() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::from_ps(500.0);
        let b = Seconds::from_ps(200.0);
        assert!(((a - b).as_ps() - 300.0).abs() < 1e-9);
        assert!(((a + b).as_ps() - 700.0).abs() < 1e-9);
        assert!(((-b).as_ps() + 200.0).abs() < 1e-9);
        assert!((a / b - 2.5).abs() < 1e-12);
        assert!((b.abs().as_ps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn db_power_amplitude() {
        let g = Db::from_power_ratio(100.0);
        assert!((g.as_db() - 20.0).abs() < 1e-12);
        let h = Db::from_amplitude_ratio(10.0);
        assert!((h.as_db() - 20.0).abs() < 1e-12);
        assert!((Db::new(3.0).as_power_ratio() - 1.9952623).abs() < 1e-6);
        assert!((Db::new(-6.0).as_amplitude_ratio() - 0.5011872).abs() < 1e-6);
    }

    #[test]
    fn db_arithmetic() {
        assert_eq!((Db::new(3.0) + Db::new(4.0)).as_db(), 7.0);
        assert_eq!((Db::new(3.0) - Db::new(4.0)).as_db(), -1.0);
        assert_eq!((-Db::new(3.0)).as_db(), -3.0);
    }

    #[test]
    fn dbm_conversions() {
        assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-12);
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        // 0 dBm into 50 Ω is 223.6 mV rms
        assert!((dbm_to_vrms(0.0, 50.0) - 0.2236068).abs() < 1e-6);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Hertz::from_ghz(1.0)), "1.000000 GHz");
        assert_eq!(format!("{}", Hertz::from_mhz(90.0)), "90.000000 MHz");
        assert_eq!(format!("{}", Seconds::from_ps(180.0)), "180.000000 ps");
        assert_eq!(format!("{}", Seconds::from_ns(11.0)), "11.000000 ns");
        assert_eq!(format!("{}", Db::new(1.5)), "1.500 dB");
    }
}
