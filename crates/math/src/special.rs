//! Special functions used by window design and statistics.
//!
//! All implementations are classic, well-conditioned series/rational
//! approximations with accuracy documented per function — sufficient for
//! filter design (Kaiser windows need `I0` to ~1e-8) and noise statistics.

use std::f64::consts::PI;

/// Modified Bessel function of the first kind, order zero, `I₀(x)`.
///
/// Uses the power series `Σ ((x/2)^{2k} / (k!)²)` for `|x| ≤ 15` and the
/// asymptotic-free continued series beyond (the power series converges for
/// all `x`; terms are accumulated until relative convergence below 1e-16).
/// Relative accuracy is better than 1e-12 across the range used by Kaiser
/// windows (`x ≲ 30`).
///
/// # Example
///
/// ```
/// use rfbist_math::special::bessel_i0;
/// assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
/// ```
pub fn bessel_i0(x: f64) -> f64 {
    let x = x.abs();
    let half = x / 2.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut k = 1.0;
    loop {
        term *= (half / k) * (half / k);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
        k += 1.0;
        if k > 1000.0 {
            break;
        }
    }
    sum
}

/// Modified Bessel function of the first kind, order one, `I₁(x)`.
pub fn bessel_i1(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let half = x / 2.0;
    let mut term = half;
    let mut sum = term;
    let mut k = 1.0;
    loop {
        term *= (half * half) / (k * (k + 1.0));
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
        k += 1.0;
        if k > 1000.0 {
            break;
        }
    }
    sign * sum
}

/// Error function `erf(x)`, via the Abramowitz & Stegun 7.1.26 rational
/// approximation refined with one Newton step against the series for small
/// `x`. Absolute error below 1.5e-7 everywhere, below 1e-12 for `|x| < 1`
/// (series path).
pub fn erf(x: f64) -> f64 {
    if x.abs() < 1.0 {
        // Maclaurin series: erf(x) = 2/√π Σ (-1)^n x^{2n+1}/(n!(2n+1))
        let mut term = x;
        let mut sum = x;
        let mut n = 1.0;
        while term.abs() > 1e-17 * sum.abs().max(1e-300) {
            term *= -x * x / n;
            sum += term / (2.0 * n + 1.0);
            n += 1.0;
            if n > 200.0 {
                break;
            }
        }
        (2.0 / PI.sqrt()) * sum
    } else {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        // A&S 7.1.26
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Normalized sinc: `sinc(x) = sin(πx)/(πx)`, with `sinc(0) = 1`.
///
/// The zero neighbourhood uses a Taylor expansion to avoid catastrophic
/// cancellation.
#[inline]
pub fn sinc(x: f64) -> f64 {
    let px = PI * x;
    if px.abs() < 1e-6 {
        1.0 - px * px / 6.0
    } else {
        px.sin() / px
    }
}

/// Unnormalized sinc: `sin(x)/x`, with value 1 at `x = 0`.
#[inline]
pub fn sinc_unnormalized(x: f64) -> f64 {
    if x.abs() < 1e-6 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

/// Natural-log factorial `ln(n!)` via Stirling/lgamma-free summation for
/// small `n` and Stirling series for large `n` (< 1e-10 relative error).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        (2..=n).map(|k| (k as f64).ln()).sum()
    } else {
        let x = n as f64;
        // Stirling series with three correction terms
        x * x.ln() - x + 0.5 * (2.0 * PI * x).ln() + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_i0_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 1.0634833707413236),
            (1.0, 1.2660658777520082),
            (2.0, 2.2795853023360673),
            (5.0, 27.239871823604442),
            (10.0, 2815.716628466254),
        ];
        for (x, expected) in cases {
            let got = bessel_i0(x);
            assert!(
                ((got - expected) / expected).abs() < 1e-10,
                "I0({x}) = {got}, want {expected}"
            );
        }
    }

    #[test]
    fn bessel_i0_is_even() {
        for x in [0.3, 1.7, 9.2] {
            assert_eq!(bessel_i0(x), bessel_i0(-x));
        }
    }

    #[test]
    fn bessel_i1_reference_values() {
        let cases: [(f64, f64); 4] = [
            (0.0, 0.0),
            (1.0, 0.5651591039924851),
            (2.0, 1.590636854637329),
            (5.0, 24.33564214245053),
        ];
        for (x, expected) in cases {
            let got = bessel_i1(x);
            let tol = if expected == 0.0 {
                1e-12
            } else {
                expected.abs() * 1e-10
            };
            assert!(
                (got - expected).abs() < tol,
                "I1({x}) = {got}, want {expected}"
            );
        }
    }

    #[test]
    fn bessel_i1_is_odd() {
        for x in [0.4, 2.5] {
            assert_eq!(bessel_i1(-x), -bessel_i1(x));
        }
    }

    #[test]
    fn bessel_derivative_identity() {
        // d/dx I0(x) = I1(x); check with central differences.
        for x in [0.5, 1.5, 4.0] {
            let h = 1e-6;
            let num = (bessel_i0(x + h) - bessel_i0(x - h)) / (2.0 * h);
            assert!((num - bessel_i1(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, expected) in cases {
            assert!((erf(x) - expected).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd_and_saturates() {
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
        assert!(erf(6.0) > 0.999999999);
        assert!(erf(-6.0) < -0.999999999);
    }

    #[test]
    fn erfc_complements() {
        for x in [-2.0, -0.3, 0.0, 0.7, 2.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-6);
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        for n in 1..6 {
            assert!(sinc(n as f64).abs() < 1e-15, "sinc({n}) should be 0");
        }
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-12);
    }

    #[test]
    fn sinc_near_zero_is_smooth() {
        // Tiny arguments should not blow up or lose precision.
        let v = sinc(1e-9);
        assert!((v - 1.0).abs() < 1e-12);
        let v2 = sinc_unnormalized(1e-9);
        assert!((v2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sinc_unnormalized_zero_crossings() {
        assert!(sinc_unnormalized(PI).abs() < 1e-12);
        assert!(sinc_unnormalized(2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_small_and_large() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-10);
        // Stirling path vs direct sum continuity at the boundary
        let direct: f64 = (2..=300u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() / direct < 1e-10);
    }
}
