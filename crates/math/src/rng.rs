//! Deterministic random sampling helpers.
//!
//! Wraps `rand` with the distributions this workspace needs (Gaussian via
//! Box–Muller, so no extra dependency on `rand_distr`) and standardizes on
//! explicit seeding for reproducible experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable source of the random variates used across the workspace.
///
/// All experiment harnesses construct this from an explicit seed so every
/// table/figure in `EXPERIMENTS.md` is exactly reproducible.
///
/// # Example
///
/// ```
/// use rfbist_math::rng::Randomizer;
/// let mut a = Randomizer::from_seed(42);
/// let mut b = Randomizer::from_seed(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct Randomizer {
    rng: StdRng,
    /// Cached second Box–Muller variate.
    spare_gaussian: Option<f64>,
}

impl Randomizer {
    /// Creates a randomizer from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Randomizer {
            rng: StdRng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "uniform range must be non-empty");
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller, with the spare cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Box–Muller transform
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Uniformly-random boolean.
    pub fn coin(&mut self) -> bool {
        self.rng.gen()
    }

    /// Uniformly-random index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.rng.gen_range(0..n)
    }

    /// Fills a vector with `n` uniform samples in `[lo, hi)`.
    pub fn uniform_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform(lo, hi)).collect()
    }

    /// Fills a vector with `n` normal samples.
    pub fn normal_vec(&mut self, n: usize, mean: f64, std_dev: f64) -> Vec<f64> {
        (0..n).map(|_| self.normal(mean, std_dev)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Randomizer::from_seed(7);
        let mut b = Randomizer::from_seed(7);
        for _ in 0..10 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Randomizer::from_seed(1);
        let mut b = Randomizer::from_seed(2);
        let va: Vec<f64> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Randomizer::from_seed(3);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_empty_range_panics() {
        let mut r = Randomizer::from_seed(0);
        let _ = r.uniform(1.0, 1.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Randomizer::from_seed(11);
        let v = r.normal_vec(100_000, 2.0, 3.0);
        assert!((mean(&v) - 2.0).abs() < 0.05, "mean {}", mean(&v));
        assert!((std_dev(&v) - 3.0).abs() < 0.05, "std {}", std_dev(&v));
    }

    #[test]
    fn gaussian_tail_fraction() {
        // ~4.55% of samples should fall beyond 2 sigma
        let mut r = Randomizer::from_seed(13);
        let v = r.normal_vec(100_000, 0.0, 1.0);
        let beyond = v.iter().filter(|&&x| x.abs() > 2.0).count() as f64 / v.len() as f64;
        assert!((beyond - 0.0455).abs() < 0.01, "tail fraction {beyond}");
    }

    #[test]
    fn index_and_coin_cover_range() {
        let mut r = Randomizer::from_seed(5);
        let mut seen = [false; 4];
        let mut heads = 0;
        for _ in 0..1000 {
            seen[r.index(4)] = true;
            if r.coin() {
                heads += 1;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(heads > 300 && heads < 700);
    }

    #[test]
    fn uniform_vec_length() {
        let mut r = Randomizer::from_seed(9);
        assert_eq!(r.uniform_vec(17, 0.0, 1.0).len(), 17);
        assert_eq!(r.normal_vec(0, 0.0, 1.0).len(), 0);
    }
}
