//! Polynomial evaluation, fitting and differentiation.
//!
//! Coefficients are stored in ascending order: `p(x) = Σ c[k]·x^k`.
//! Fitting uses the least-squares machinery from [`crate::linalg`].

use crate::linalg::{LinalgError, Matrix};

/// Evaluates `p(x) = Σ c[k]·x^k` with Horner's scheme.
///
/// Empty coefficient slices evaluate to zero.
#[inline]
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Evaluates the derivative `p'(x)`.
pub fn polyval_deriv(coeffs: &[f64], x: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .rev()
        .fold(0.0, |acc, (k, &c)| acc * x + c * k as f64)
}

/// Returns the coefficients of the derivative polynomial.
pub fn polyder(coeffs: &[f64]) -> Vec<f64> {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, &c)| c * k as f64)
        .collect()
}

/// Least-squares polynomial fit of the given `degree` through points
/// `(xs[i], ys[i])`, returning ascending coefficients.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] if `xs.len() != ys.len()` or there are
/// fewer points than `degree + 1`; [`LinalgError::Singular`] for degenerate
/// abscissae (e.g. all identical).
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>, LinalgError> {
    if xs.len() != ys.len() || xs.len() < degree + 1 {
        return Err(LinalgError::ShapeMismatch);
    }
    let rows: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| {
            let mut row = Vec::with_capacity(degree + 1);
            let mut p = 1.0;
            for _ in 0..=degree {
                row.push(p);
                p *= x;
            }
            row
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&row_refs).lstsq(ys)
}

/// Finds a root of `p` near `x0` by Newton iteration with bisection-free
/// damping; returns `None` if it fails to converge in 100 iterations.
pub fn polyroot_near(coeffs: &[f64], x0: f64) -> Option<f64> {
    let mut x = x0;
    for _ in 0..100 {
        let f = polyval(coeffs, x);
        if f.abs() < 1e-13 * (1.0 + x.abs()) {
            return Some(x);
        }
        let df = polyval_deriv(coeffs, x);
        if df.abs() < 1e-300 {
            return None;
        }
        let step = f / df;
        x -= step;
        if !x.is_finite() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polyval_basic() {
        // p(x) = 1 + 2x + 3x²
        let c = [1.0, 2.0, 3.0];
        assert_eq!(polyval(&c, 0.0), 1.0);
        assert_eq!(polyval(&c, 1.0), 6.0);
        assert_eq!(polyval(&c, 2.0), 17.0);
        assert_eq!(polyval(&[], 5.0), 0.0);
    }

    #[test]
    fn polyval_deriv_matches_analytic() {
        // p'(x) = 2 + 6x
        let c = [1.0, 2.0, 3.0];
        assert_eq!(polyval_deriv(&c, 0.0), 2.0);
        assert_eq!(polyval_deriv(&c, 2.0), 14.0);
        assert_eq!(polyval_deriv(&[7.0], 3.0), 0.0);
    }

    #[test]
    fn polyder_coefficients() {
        assert_eq!(polyder(&[1.0, 2.0, 3.0]), vec![2.0, 6.0]);
        assert!(polyder(&[5.0]).is_empty());
    }

    #[test]
    fn polyfit_recovers_exact_polynomial() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.5 - 2.0).collect();
        let truth = [0.5, -1.5, 2.0, 0.25];
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&truth, x)).collect();
        let fit = polyfit(&xs, &ys, 3).unwrap();
        for (f, t) in fit.iter().zip(truth.iter()) {
            assert!((f - t).abs() < 1e-9, "fit {fit:?}");
        }
    }

    #[test]
    fn polyfit_underdetermined_errors() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
        assert!(polyfit(&[1.0], &[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn polyfit_degenerate_abscissae_errors() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert!(polyfit(&xs, &ys, 1).is_err());
    }

    #[test]
    fn newton_finds_sqrt2() {
        // x² − 2 = 0
        let r = polyroot_near(&[-2.0, 0.0, 1.0], 1.0).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn newton_fails_on_flat_polynomial() {
        // constant polynomial has no root
        assert!(polyroot_near(&[1.0], 0.0).is_none());
    }
}
