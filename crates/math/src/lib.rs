//! Numeric kernel for the `rfbist` workspace.
//!
//! This crate provides the minimal, self-contained numeric substrate needed
//! by the DSP, signal-modeling and sampling-theory crates:
//!
//! - [`complex`]: a `Complex64` value type with full arithmetic,
//! - [`fft`]: radix-2 and Bluestein FFTs (any length), plus helpers,
//! - [`special`]: special functions (modified Bessel `I0`, `erf`, `sinc`),
//! - [`linalg`]: small dense matrices, linear solves, least squares,
//! - [`poly`]: polynomial evaluation and fitting,
//! - [`stats`]: descriptive statistics used by measurement code,
//! - [`interp`]: pointwise interpolation kernels,
//! - [`rotor`]: incremental phase rotation (`sincos`, [`rotor::PhaseRotor`]),
//! - [`units`]: newtypes for frequencies, times and decibel quantities,
//! - [`rng`]: deterministic Gaussian/uniform sampling helpers.
//!
//! The workspace deliberately avoids external numeric crates so the entire
//! reproduction is auditable from first principles.
//!
//! # Example
//!
//! ```
//! use rfbist_math::complex::Complex64;
//! use rfbist_math::fft::fft;
//!
//! let mut x = vec![Complex64::ZERO; 8];
//! x[1] = Complex64::ONE; // a unit impulse at n = 1
//! let spectrum = fft(&x);
//! // An impulse has a flat magnitude spectrum.
//! for bin in &spectrum {
//!     assert!((bin.abs() - 1.0).abs() < 1e-12);
//! }
//! ```

pub mod complex;
pub mod fft;
pub mod interp;
pub mod linalg;
pub mod poly;
pub mod rng;
pub mod rotor;
pub mod special;
pub mod stats;
pub mod units;

pub use complex::Complex64;
pub use units::{Db, Hertz, Seconds};
