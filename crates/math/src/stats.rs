//! Descriptive statistics for measurement post-processing.
//!
//! These helpers operate on raw `f64` slices; empty-input behaviour is
//! documented per function (most return `None` or `NaN`-free defaults
//! rather than panicking, since they sit in measurement hot paths).

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (`1/N` normalization); 0.0 for fewer than 2 samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square value; 0.0 for an empty slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Mean-squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Normalized RMS error `‖a − b‖ / ‖b‖` (relative to the reference `b`).
///
/// Returns 0.0 when both are empty or the reference has zero energy and the
/// signals are identical; returns `f64::INFINITY` when the reference has
/// zero energy but the signals differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "nrmse requires equal lengths");
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|&y| y * y).sum();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Maximum value; `None` for an empty slice (NaNs are ignored).
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter().copied().filter(|v| !v.is_nan()).reduce(f64::max)
}

/// Minimum value; `None` for an empty slice (NaNs are ignored).
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter().copied().filter(|v| !v.is_nan()).reduce(f64::min)
}

/// Peak absolute value; 0.0 for an empty slice.
pub fn peak_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
}

/// Linearly-interpolated percentile (`p` in `[0, 100]`); `None` if empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if x.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile); `None` if empty.
pub fn median(x: &[f64]) -> Option<f64> {
    percentile(x, 50.0)
}

/// Biased autocorrelation `r[k] = (1/N) Σ x[n]·x[n+k]` for `k = 0..lags`.
pub fn autocorrelation(x: &[f64], lags: usize) -> Vec<f64> {
    let n = x.len();
    (0..=lags)
        .map(|k| {
            if k >= n {
                0.0
            } else {
                x[..n - k]
                    .iter()
                    .zip(&x[k..])
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    / n as f64
            }
        })
        .collect()
}

/// Histogram with `bins` equal-width bins spanning `[lo, hi)`; values
/// outside the range are clamped into the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(x: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in x {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let n = 10_000;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        assert!((rms(&x) - 1.0 / 2f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn mse_and_nrmse() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 4.0];
        assert!((mse(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        let expected = (1.0f64 / (1.0 + 4.0 + 16.0)).sqrt();
        assert!((nrmse(&a, &b) - expected).abs() < 1e-12);
        assert_eq!(nrmse(&a, &a), 0.0);
    }

    #[test]
    fn nrmse_zero_reference() {
        assert_eq!(nrmse(&[0.0], &[0.0]), 0.0);
        assert_eq!(nrmse(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn min_max_peak() {
        let x = [-3.0, 1.0, 2.0];
        assert_eq!(max(&x), Some(2.0));
        assert_eq!(min(&x), Some(-3.0));
        assert_eq!(peak_abs(&x), 3.0);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(peak_abs(&[]), 0.0);
    }

    #[test]
    fn nan_values_are_skipped_by_minmax() {
        let x = [f64::NAN, 1.0, -2.0];
        assert_eq!(max(&x), Some(1.0));
        assert_eq!(min(&x), Some(-2.0));
    }

    #[test]
    fn percentile_and_median() {
        let x = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&x, 0.0), Some(1.0));
        assert_eq!(percentile(&x, 100.0), Some(4.0));
        assert_eq!(median(&x), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn autocorrelation_of_constant() {
        let x = [1.0; 8];
        let r = autocorrelation(&x, 3);
        assert!((r[0] - 1.0).abs() < 1e-12);
        // biased estimate decays linearly with lag
        assert!((r[1] - 7.0 / 8.0).abs() < 1e-12);
        assert!((r[3] - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_lag_beyond_length() {
        let r = autocorrelation(&[1.0, 2.0], 5);
        assert_eq!(r.len(), 6);
        assert_eq!(r[3], 0.0);
    }

    #[test]
    fn histogram_counts() {
        let x = [0.1, 0.2, 0.6, 0.9, -1.0, 2.0];
        let h = histogram(&x, 0.0, 1.0, 2);
        // -1.0 clamps into bin 0, 2.0 clamps into bin 1
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
