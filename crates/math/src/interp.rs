//! Pointwise interpolation kernels.
//!
//! Used for cross-validating the analytic signal models against
//! oversampled-grid simulations, and for fractional-delay evaluation.

use crate::special::sinc;

/// Linear interpolation of uniformly-sampled data `y[k] = f(k·dt + t0)` at
/// time `t`; clamps outside the support.
pub fn lerp_uniform(y: &[f64], t0: f64, dt: f64, t: f64) -> f64 {
    assert!(!y.is_empty(), "lerp over empty data");
    assert!(dt > 0.0, "non-positive sample spacing");
    let pos = (t - t0) / dt;
    if pos <= 0.0 {
        return y[0];
    }
    let last = (y.len() - 1) as f64;
    if pos >= last {
        return y[y.len() - 1];
    }
    let k = pos.floor() as usize;
    let frac = pos - k as f64;
    y[k] * (1.0 - frac) + y[k + 1] * frac
}

/// Catmull–Rom cubic interpolation of uniformly-sampled data at time `t`;
/// clamps outside the support, falls back to linear at the edges.
pub fn cubic_uniform(y: &[f64], t0: f64, dt: f64, t: f64) -> f64 {
    assert!(dt > 0.0, "non-positive sample spacing");
    if y.len() < 4 {
        return lerp_uniform(y, t0, dt, t);
    }
    let pos = (t - t0) / dt;
    if pos <= 1.0 || pos >= (y.len() - 2) as f64 {
        return lerp_uniform(y, t0, dt, t);
    }
    let k = pos.floor() as usize;
    let s = pos - k as f64;
    let (p0, p1, p2, p3) = (y[k - 1], y[k], y[k + 1], y[k + 2]);
    // Catmull–Rom basis
    0.5 * ((2.0 * p1)
        + (-p0 + p2) * s
        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * s * s
        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * s * s * s)
}

/// Truncated-sinc (Whittaker–Shannon) interpolation of uniformly-sampled
/// data at time `t`, using `2·half_width` taps around the target.
///
/// Exact (up to truncation) for signals bandlimited below the Nyquist rate
/// of the grid.
pub fn sinc_uniform(y: &[f64], t0: f64, dt: f64, t: f64, half_width: usize) -> f64 {
    assert!(dt > 0.0, "non-positive sample spacing");
    assert!(half_width > 0, "sinc interpolation needs at least one tap");
    let pos = (t - t0) / dt;
    let center = pos.round() as isize;
    let lo = (center - half_width as isize).max(0) as usize;
    let hi = ((center + half_width as isize) as usize).min(y.len().saturating_sub(1));
    let mut acc = 0.0;
    for (k, &yk) in y.iter().enumerate().take(hi + 1).skip(lo) {
        acc += yk * sinc(pos - k as f64);
    }
    acc
}

/// Lagrange interpolation through arbitrary (distinct) abscissae —
/// O(n²) barycentric-free form, for small n.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or are empty.
pub fn lagrange(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "lagrange needs matching lengths");
    assert!(!xs.is_empty(), "lagrange over empty data");
    let n = xs.len();
    let mut acc = 0.0;
    for i in 0..n {
        let mut w = ys[i];
        for j in 0..n {
            if j != i {
                w *= (x - xs[j]) / (xs[i] - xs[j]);
            }
        }
        acc += w;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn lerp_hits_samples_and_midpoints() {
        let y = [0.0, 1.0, 4.0];
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, 0.0), 0.0);
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, 1.0), 1.0);
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, 0.5), 0.5);
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, 1.5), 2.5);
    }

    #[test]
    fn lerp_clamps_outside() {
        let y = [2.0, 3.0];
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, -5.0), 2.0);
        assert_eq!(lerp_uniform(&y, 0.0, 1.0, 9.0), 3.0);
    }

    #[test]
    fn lerp_with_offset_origin() {
        let y = [0.0, 10.0];
        assert_eq!(lerp_uniform(&y, 5.0, 2.0, 6.0), 5.0);
    }

    #[test]
    fn cubic_reproduces_cubic_polynomials() {
        // Catmull-Rom is exact for quadratics; check error is tiny on a cubic-ish smooth fn
        let f = |t: f64| t * t;
        let y: Vec<f64> = (0..20).map(|k| f(k as f64)).collect();
        for &t in &[3.3, 7.7, 12.5] {
            let got = cubic_uniform(&y, 0.0, 1.0, t);
            assert!((got - f(t)).abs() < 1e-9, "t={t}: {got} vs {}", f(t));
        }
    }

    #[test]
    fn cubic_falls_back_to_linear_at_edges() {
        let y = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(cubic_uniform(&y, 0.0, 1.0, 0.5), 0.5);
    }

    #[test]
    fn sinc_interp_recovers_bandlimited_tone() {
        // tone at 0.1 cycles/sample, well below Nyquist (0.5)
        let f0 = 0.1;
        let y: Vec<f64> = (0..256).map(|k| (2.0 * PI * f0 * k as f64).sin()).collect();
        for &t in &[100.25, 128.7, 130.5] {
            let got = sinc_uniform(&y, 0.0, 1.0, t, 64);
            let want = (2.0 * PI * f0 * t).sin();
            assert!((got - want).abs() < 2e-3, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn sinc_interp_exact_on_grid() {
        let y: Vec<f64> = (0..32).map(|k| (k as f64 * 0.2).sin()).collect();
        let got = sinc_uniform(&y, 0.0, 1.0, 10.0, 8);
        assert!((got - y[10]).abs() < 1e-12);
    }

    #[test]
    fn lagrange_through_quadratic() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 2.0, 5.0]; // y = x² + 1
        assert!((lagrange(&xs, &ys, 1.5) - 3.25).abs() < 1e-12);
        assert!((lagrange(&xs, &ys, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matching lengths")]
    fn lagrange_mismatched_lengths_panic() {
        let _ = lagrange(&[0.0], &[1.0, 2.0], 0.5);
    }
}
