//! Double-precision complex numbers.
//!
//! A small, dependency-free replacement for `num_complex::Complex<f64>`
//! covering everything the DSP stack needs: arithmetic (including scalar
//! mixing), polar/rectangular conversion, exponentials and conjugation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` stored as two `f64` values.
///
/// # Example
///
/// ```
/// use rfbist_math::complex::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// let c = a * b;
/// assert!((c.re - (-4.0)).abs() < 1e-12);
/// assert!((c.im - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{jθ}`, a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Magnitude (modulus) `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`; cheaper than [`abs`](Self::abs) when only
    /// relative comparisons or powers are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate `re − j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z = e^{re}·(cos im + j sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Converts to polar form `(r, θ)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Square root on the principal branch.
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Raises to a real power on the principal branch.
    pub fn powf(self, n: f64) -> Self {
        let (r, theta) = self.to_polar();
        Complex64::from_polar(r.powf(n), theta * n)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // division by a complex IS multiplication by its reciprocal
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self + rhs.re, rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I, Complex64::new(0.0, 1.0));
        assert_eq!(Complex64::from(3.5), Complex64::new(3.5, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        let (r, theta) = z.to_polar();
        assert!((r - 2.0).abs() < EPS);
        assert!((theta - PI / 3.0).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_phasor() {
        let z = Complex64::cis(0.7);
        assert!((z.abs() - 1.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn multiplication_adds_angles() {
        let a = Complex64::from_polar(2.0, 0.3);
        let b = Complex64::from_polar(3.0, 0.4);
        let c = a * b;
        assert!((c.abs() - 6.0).abs() < 1e-11);
        assert!((c.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let z = Complex64::I * Complex64::I;
        assert!((z.re + 1.0).abs() < EPS);
        assert!(z.im.abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(-3.0, 0.5);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conjugation_properties() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.conj().conj(), z);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn inverse_times_self_is_one() {
        let z = Complex64::new(0.3, 0.9);
        let w = z * z.inv();
        assert!((w - Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn exp_of_imaginary_is_euler() {
        let z = Complex64::new(0.0, FRAC_PI_2).exp();
        assert!(z.re.abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
    }

    #[test]
    fn exp_of_real_matches_f64() {
        let z = Complex64::new(1.25, 0.0).exp();
        assert!((z.re - 1.25_f64.exp()).abs() < 1e-10);
        assert!(z.im.abs() < EPS);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!((s * s - z).abs() < 1e-10);
        // principal branch: non-negative real part
        assert!(s.re >= 0.0);
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = Complex64::new(1.2, -0.7);
        let p = z.powf(3.0);
        assert!((p - z * z * z).abs() < 1e-10);
    }

    #[test]
    fn scalar_ops_mix() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, 2.0));
        assert_eq!(z + 1.0, Complex64::new(2.0, 1.0));
        assert_eq!(1.0 + z, Complex64::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex64::new(0.0, 1.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 0.5));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 2.0);
        z += Complex64::new(0.5, -0.5);
        assert_eq!(z, Complex64::new(1.5, 1.5));
        z -= Complex64::new(0.5, 0.5);
        assert_eq!(z, Complex64::new(1.0, 1.0));
        z *= Complex64::I;
        assert!((z - Complex64::new(-1.0, 1.0)).abs() < EPS);
        z /= Complex64::I;
        assert!((z - Complex64::new(1.0, 1.0)).abs() < EPS);
        z *= 3.0;
        assert!((z - Complex64::new(3.0, 3.0)).abs() < EPS);
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(-1.0, 2.0),
        ];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(0.0, 3.0));
        let s2: Complex64 = v.into_iter().sum();
        assert_eq!(s2, Complex64::new(0.0, 3.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn finite_check() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn abs_uses_hypot_for_large_values() {
        // naive sqrt(re²+im²) would overflow
        let z = Complex64::new(1e200, 1e200);
        assert!(z.abs().is_finite());
    }
}
