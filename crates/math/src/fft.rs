//! Fast Fourier transforms.
//!
//! Provides an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths
//! and a Bluestein (chirp-z) FFT for arbitrary lengths, so callers never
//! need to zero-pad to a power of two unless they want to. Inverse
//! transforms, real-input helpers and `fftshift`/frequency-axis utilities
//! round out the module.
//!
//! Conventions: the forward transform is **not** normalized
//! (`X[k] = Σ x[n] e^{-j2πnk/N}`); the inverse divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::rc::Rc;

thread_local! {
    /// Most-recently-used twiddle table, keyed by FFT size. Repeated
    /// same-size transforms — Welch's per-segment FFTs, Bluestein's
    /// three padded convolutions per call — reuse the table instead of
    /// paying n/2 `cis` calls each time. One entry is enough: the
    /// workspace's FFT traffic is runs of a single size.
    static TWIDDLE_CACHE: RefCell<Option<(usize, Rc<[Complex64]>)>> = const { RefCell::new(None) };
}

/// The table `w[i] = e^{-j2πi/n}` for `i < n/2`, served from the
/// thread-local cache when the size matches.
fn twiddle_table(n: usize) -> Rc<[Complex64]> {
    TWIDDLE_CACHE.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some((size, table)) = slot.as_ref() {
            if *size == n {
                return Rc::clone(table);
            }
        }
        let table: Rc<[Complex64]> = (0..n / 2)
            .map(|i| Complex64::cis(-2.0 * PI * i as f64 / n as f64))
            .collect();
        *slot = Some((n, Rc::clone(&table)));
        table
    })
}

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Returns the smallest power of two `>= n`.
///
/// # Panics
///
/// Panics if the result would overflow `usize`.
pub fn next_power_of_two(n: usize) -> usize {
    n.checked_next_power_of_two()
        .expect("next power of two overflows usize")
}

/// In-place radix-2 FFT.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two. Use [`fft`] for arbitrary
/// lengths.
pub fn fft_radix2_in_place(x: &mut [Complex64]) {
    let n = x.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Precomputed twiddle table: w[i] = e^{-j2πi/n} for i < n/2. Every
    // stage of length `len` reads its factors at stride n/len, so one
    // table serves all stages. Compared with the classic `w *= wlen`
    // butterfly recurrence this removes the O(len) error accumulation
    // per chunk (each entry is a direct `cis`, exact to ~1 ulp) and the
    // repeated complex multiplies that maintained the running factor.
    let twiddles = twiddle_table(n);

    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        for chunk in x.chunks_mut(len) {
            let half = len / 2;
            for i in 0..half {
                let w = twiddles[i * stride];
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths go through
/// Bluestein's algorithm (exact, O(N log N)).
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    if is_power_of_two(x.len().max(1)) && !x.is_empty() {
        let mut buf = x.to_vec();
        fft_radix2_in_place(&mut buf);
        buf
    } else {
        bluestein(x, false)
    }
}

/// Inverse FFT of arbitrary length; normalized so `ifft(fft(x)) == x`.
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if is_power_of_two(n) {
        let mut buf: Vec<Complex64> = x.iter().map(|z| z.conj()).collect();
        fft_radix2_in_place(&mut buf);
        buf.iter_mut().for_each(|z| *z = z.conj());
        buf
    } else {
        bluestein(x, true)
    };
    let scale = 1.0 / n as f64;
    out.iter_mut().for_each(|z| *z *= scale);
    out
}

/// Bluestein chirp-z transform: computes the length-`N` DFT (or inverse
/// DFT kernel when `inverse` is true, *without* 1/N scaling) for any `N`.
fn bluestein(x: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![x[0]];
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    // chirp[k] = exp(sign * jπ k² / n)
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            // k² mod 2n computed in u128 to avoid overflow for large n
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(sign * PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = next_power_of_two(2 * n - 1);
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_radix2_in_place(&mut a);
    fft_radix2_in_place(&mut b);
    for k in 0..m {
        a[k] *= b[k];
    }
    // inverse FFT of the product (radix-2 path, manual conj trick)
    a.iter_mut().for_each(|z| *z = z.conj());
    fft_radix2_in_place(&mut a);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].conj() * scale * chirp[k]).collect()
}

/// FFT of a real-valued signal; returns the full complex spectrum.
pub fn fft_real(x: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    fft(&buf)
}

/// Swaps the two halves of a spectrum so DC sits at the center.
///
/// For odd lengths the extra element goes to the first half after the
/// shift, matching NumPy's `fftshift`.
pub fn fftshift<T: Clone>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Frequency axis (Hz) for an `n`-point FFT at sample rate `fs`,
/// in natural (unshifted) bin order: `0, fs/n, …, -fs/n`.
pub fn fft_freqs(n: usize, fs: f64) -> Vec<f64> {
    let df = fs / n as f64;
    (0..n)
        .map(|k| {
            if k <= (n - 1) / 2 {
                k as f64 * df
            } else {
                (k as f64 - n as f64) * df
            }
        })
        .collect()
}

/// Magnitude of each spectrum bin.
pub fn magnitude(x: &[Complex64]) -> Vec<f64> {
    x.iter().map(|z| z.abs()).collect()
}

/// Power (`|X|²`) of each spectrum bin.
pub fn power(x: &[Complex64]) -> Vec<f64> {
    x.iter().map(|z| z.norm_sqr()).collect()
}

/// Direct (slow) DFT — O(N²). Retained as a reference implementation for
/// tests and as a fallback for very small N where it is competitive.
pub fn dft_reference(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| x[j] * Complex64::cis(-2.0 * PI * (j * k % n) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn assert_spectra_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(close(*x, *y, tol), "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1000));
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spec = fft(&x);
        for bin in spec {
            assert!(close(bin, Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let x = vec![Complex64::ONE; 8];
        let spec = fft(&x);
        assert!(close(spec[0], Complex64::new(8.0, 0.0), 1e-12));
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, bin) in spec.iter().enumerate() {
            if k == k0 {
                assert!(close(*bin, Complex64::new(n as f64, 0.0), 1e-9));
            } else {
                assert!(bin.abs() < 1e-9, "leak at {k}: {bin}");
            }
        }
    }

    #[test]
    fn matches_reference_dft_pow2() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        assert_spectra_close(&fft(&x), &dft_reference(&x), 1e-9);
    }

    #[test]
    fn matches_reference_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 30, 100, 300] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            assert_spectra_close(&fft(&x), &dft_reference(&x), 1e-8);
        }
    }

    #[test]
    fn ifft_round_trip_pow2() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let back = ifft(&fft(&x));
        assert_spectra_close(&back, &x, 1e-10);
    }

    #[test]
    fn ifft_round_trip_odd_length() {
        let x: Vec<Complex64> = (0..45)
            .map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let back = ifft(&fft(&x));
        assert_spectra_close(&back, &x, 1e-9);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft(&x);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn real_signal_has_hermitian_spectrum() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 0.2).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n {
            assert!(close(spec[k], spec[n - k].conj(), 1e-9));
        }
    }

    #[test]
    fn fftshift_even_and_odd() {
        let even = vec![0, 1, 2, 3];
        assert_eq!(fftshift(&even), vec![2, 3, 0, 1]);
        let odd = vec![0, 1, 2, 3, 4];
        assert_eq!(fftshift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn fft_freqs_layout() {
        let f = fft_freqs(4, 4.0);
        assert_eq!(f, vec![0.0, 1.0, -2.0, -1.0]);
        let f5 = fft_freqs(5, 5.0);
        assert_eq!(f5, vec![0.0, 1.0, 2.0, -2.0, -1.0]);
    }

    #[test]
    fn empty_and_single() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        let one = vec![Complex64::new(2.0, 3.0)];
        assert_eq!(fft(&one), one);
        assert_eq!(ifft(&one), one);
    }

    #[test]
    fn linearity() {
        let n = 48; // non power of two
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i % 7) as f64))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for k in 0..n {
            assert!(close(fsum[k], fa[k] + fb[k], 1e-8));
        }
    }

    #[test]
    fn magnitude_and_power_helpers() {
        let spec = vec![Complex64::new(3.0, 4.0), Complex64::ZERO];
        assert_eq!(magnitude(&spec), vec![5.0, 0.0]);
        assert_eq!(power(&spec), vec![25.0, 0.0]);
    }

    #[test]
    fn large_fft_tone_leakage_stays_at_machine_level() {
        // With per-stage table twiddles the leakage floor of a pure
        // on-bin tone scales like ε·√N·log N, not the ε·N drift of the
        // old accumulating-recurrence butterflies.
        let n = 1 << 14;
        let k0 = 4999;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * ((k0 * i) % n) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, bin) in spec.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-7);
            } else {
                assert!(bin.abs() < 1e-7, "leak at {k}: {}", bin.abs());
            }
        }
    }

    #[test]
    fn bluestein_large_prime_round_trip() {
        let n = 257; // prime
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.013).cos(), (i as f64 * 0.029).sin()))
            .collect();
        let back = ifft(&fft(&x));
        assert_spectra_close(&back, &x, 1e-8);
    }
}
