//! Continuous-time signal framework.
//!
//! Periodically nonuniform bandpass sampling needs signal values at
//! *arbitrary* time instants — nominal grids `nT`, skewed grids `nT + D`,
//! jittered instants, and random probe times. Fixed-rate sample vectors
//! cannot provide that without interpolation error, so this crate models
//! signals as **analytically evaluable functions of time**:
//!
//! - [`traits::ContinuousSignal`]: real passband/baseband signal `f(t)`,
//! - [`traits::ComplexEnvelope`]: complex baseband envelope `a(t)`,
//! - [`tone`]: sinusoids and multitones,
//! - [`prbs`]: LFSR pseudo-random bit sequences,
//! - [`symbols`]: PSK/QAM constellations with Gray mapping,
//! - [`pulse`]: continuous SRRC/RC pulse-shaping kernels,
//! - [`baseband`]: pulse-shaped symbol streams `I(t) + jQ(t)`,
//! - [`bandpass`]: upconversion of an envelope to a carrier,
//! - [`noise`]: band-limited Gaussian-like noise with pointwise evaluation.
//!
//! # Example: the paper's test stimulus
//!
//! ```
//! use rfbist_signal::prelude::*;
//!
//! // 10 MHz QPSK symbols, SRRC α = 0.5, carrier 1 GHz (paper Section V).
//! let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 256, 0xACE1);
//! let tx = BandpassSignal::new(bb, 1e9);
//! let (t0, t1) = tx.steady_time_range();
//! assert!(t1 > t0);
//! let mid = 0.5 * (t0 + t1);
//! let v = tx.eval(mid);
//! assert!(v.is_finite());
//! ```

pub mod bandpass;
pub mod baseband;
pub mod noise;
pub mod prbs;
pub mod pulse;
pub mod symbols;
pub mod tone;
pub mod traits;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use crate::bandpass::BandpassSignal;
    pub use crate::baseband::ShapedBaseband;
    pub use crate::noise::BandlimitedNoise;
    pub use crate::pulse::PulseShape;
    pub use crate::symbols::Constellation;
    pub use crate::tone::{MultiTone, Tone};
    pub use crate::traits::{ComplexEnvelope, ContinuousSignal, Delayed, Gain, Sum};
}
