//! Band-limited noise with pointwise evaluation.
//!
//! True white noise cannot be evaluated pointwise reproducibly, so this
//! models noise as a dense comb of random-phase tones across a band — the
//! standard "sum of sinusoids" noise synthesis. For ≥ 100 tones the
//! amplitude distribution is Gaussian to a very good approximation
//! (central limit theorem), and the process is wide-sense stationary with
//! a flat spectrum over the band.

use crate::traits::ContinuousSignal;
use rfbist_math::rng::Randomizer;
use std::f64::consts::PI;

/// Band-limited noise as a random-phase multitone.
///
/// # Example
///
/// ```
/// use rfbist_signal::noise::BandlimitedNoise;
/// use rfbist_signal::traits::ContinuousSignal;
///
/// let n = BandlimitedNoise::new(0.9e9, 1.1e9, 256, 0.01, 42);
/// let v = n.eval(1.0e-6);
/// assert!(v.is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct BandlimitedNoise {
    freqs: Vec<f64>,
    phases: Vec<f64>,
    amplitude_per_tone: f64,
}

impl BandlimitedNoise {
    /// Creates noise spanning `[f_lo, f_hi]` Hz with `n_tones` components
    /// and total RMS `rms`, deterministically from `seed`.
    ///
    /// Tone frequencies are jittered off the uniform grid so the waveform
    /// is aperiodic over any practical capture length.
    ///
    /// # Panics
    ///
    /// Panics if `n_tones == 0`, the band is empty/negative, or
    /// `rms < 0`.
    pub fn new(f_lo: f64, f_hi: f64, n_tones: usize, rms: f64, seed: u64) -> Self {
        assert!(n_tones > 0, "noise needs at least one tone");
        assert!(f_hi > f_lo && f_lo >= 0.0, "invalid band");
        assert!(rms >= 0.0, "rms must be non-negative");
        let mut rng = Randomizer::from_seed(seed);
        let df = (f_hi - f_lo) / n_tones as f64;
        let freqs: Vec<f64> = (0..n_tones)
            .map(|k| f_lo + (k as f64 + rng.uniform(0.25, 0.75)) * df)
            .collect();
        let phases: Vec<f64> = (0..n_tones).map(|_| rng.uniform(0.0, 2.0 * PI)).collect();
        // each tone contributes A²/2 power; total = n·A²/2 = rms²
        let amplitude_per_tone = rms * (2.0 / n_tones as f64).sqrt();
        BandlimitedNoise {
            freqs,
            phases,
            amplitude_per_tone,
        }
    }

    /// Number of tones in the synthesis.
    pub fn tone_count(&self) -> usize {
        self.freqs.len()
    }

    /// Configured RMS level.
    pub fn rms(&self) -> f64 {
        self.amplitude_per_tone * (self.freqs.len() as f64 / 2.0).sqrt()
    }
}

impl ContinuousSignal for BandlimitedNoise {
    fn eval(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for (f, p) in self.freqs.iter().zip(&self.phases) {
            acc += (2.0 * PI * f * t + p).cos();
        }
        acc * self.amplitude_per_tone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::stats;

    #[test]
    fn rms_matches_configuration() {
        let noise = BandlimitedNoise::new(1e6, 2e6, 200, 0.5, 7);
        assert!((noise.rms() - 0.5).abs() < 1e-12);
        // empirical RMS over a long window
        let samples: Vec<f64> = (0..20000).map(|i| noise.eval(i as f64 * 1.7e-8)).collect();
        let emp = stats::rms(&samples);
        assert!((emp - 0.5).abs() < 0.05, "empirical rms {emp}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = BandlimitedNoise::new(1e6, 2e6, 64, 1.0, 3);
        let b = BandlimitedNoise::new(1e6, 2e6, 64, 1.0, 3);
        assert_eq!(a.eval(1e-6), b.eval(1e-6));
        let c = BandlimitedNoise::new(1e6, 2e6, 64, 1.0, 4);
        assert_ne!(a.eval(1e-6), c.eval(1e-6));
    }

    #[test]
    fn amplitude_distribution_is_gaussianish() {
        // kurtosis of a Gaussian is 3; sum of many tones approaches it
        let noise = BandlimitedNoise::new(1e6, 5e6, 500, 1.0, 11);
        let x: Vec<f64> = (0..50000).map(|i| noise.eval(i as f64 * 3.1e-8)).collect();
        let m = stats::mean(&x);
        let s = stats::std_dev(&x);
        let kurt = x.iter().map(|&v| ((v - m) / s).powi(4)).sum::<f64>() / x.len() as f64;
        assert!((kurt - 3.0).abs() < 0.4, "kurtosis {kurt}");
    }

    #[test]
    fn zero_rms_gives_silence() {
        let noise = BandlimitedNoise::new(1e6, 2e6, 16, 0.0, 1);
        assert_eq!(noise.eval(0.5e-6), 0.0);
    }

    #[test]
    fn tone_count_reported() {
        let noise = BandlimitedNoise::new(1e6, 2e6, 33, 1.0, 1);
        assert_eq!(noise.tone_count(), 33);
    }

    #[test]
    #[should_panic(expected = "invalid band")]
    fn inverted_band_panics() {
        let _ = BandlimitedNoise::new(2e6, 1e6, 16, 1.0, 1);
    }
}
