//! Core signal traits and combinators.

use rfbist_math::Complex64;

/// A real-valued signal defined for all time (seconds).
///
/// Implementations must be pure: repeated evaluation at the same `t`
/// returns the same value. This is what lets converters sample at
/// arbitrary (jittered, skewed) instants without interpolation error.
pub trait ContinuousSignal {
    /// Evaluates the signal at time `t` (seconds).
    fn eval(&self, t: f64) -> f64;

    /// Samples the signal at each instant in `times`.
    fn sample(&self, times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.eval(t)).collect()
    }

    /// Samples uniformly: `n` samples starting at `t0` with period `dt`.
    fn sample_uniform(&self, t0: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n).map(|k| self.eval(t0 + k as f64 * dt)).collect()
    }
}

impl<S: ContinuousSignal + ?Sized> ContinuousSignal for &S {
    fn eval(&self, t: f64) -> f64 {
        (**self).eval(t)
    }
}

impl<S: ContinuousSignal + ?Sized> ContinuousSignal for Box<S> {
    fn eval(&self, t: f64) -> f64 {
        (**self).eval(t)
    }
}

impl<S: ContinuousSignal + ?Sized> ContinuousSignal for std::sync::Arc<S> {
    fn eval(&self, t: f64) -> f64 {
        (**self).eval(t)
    }
}

/// A complex baseband envelope `a(t) = I(t) + jQ(t)` defined for all time.
pub trait ComplexEnvelope {
    /// Evaluates the envelope at time `t` (seconds).
    fn eval_iq(&self, t: f64) -> Complex64;

    /// In-phase component at `t`.
    fn eval_i(&self, t: f64) -> f64 {
        self.eval_iq(t).re
    }

    /// Quadrature component at `t`.
    fn eval_q(&self, t: f64) -> f64 {
        self.eval_iq(t).im
    }
}

impl<E: ComplexEnvelope + ?Sized> ComplexEnvelope for &E {
    fn eval_iq(&self, t: f64) -> Complex64 {
        (**self).eval_iq(t)
    }
}

impl<E: ComplexEnvelope + ?Sized> ComplexEnvelope for Box<E> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        (**self).eval_iq(t)
    }
}

/// Scales a signal by a constant gain.
#[derive(Clone, Copy, Debug)]
pub struct Gain<S> {
    inner: S,
    gain: f64,
}

impl<S> Gain<S> {
    /// Wraps `inner` with a multiplicative `gain`.
    pub fn new(inner: S, gain: f64) -> Self {
        Gain { inner, gain }
    }

    /// The wrapped signal.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ContinuousSignal> ContinuousSignal for Gain<S> {
    fn eval(&self, t: f64) -> f64 {
        self.gain * self.inner.eval(t)
    }
}

impl<E: ComplexEnvelope> ComplexEnvelope for Gain<E> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        self.inner.eval_iq(t) * self.gain
    }
}

/// Sum of two signals.
#[derive(Clone, Copy, Debug)]
pub struct Sum<A, B> {
    a: A,
    b: B,
}

impl<A, B> Sum<A, B> {
    /// Adds signals `a` and `b` pointwise.
    pub fn new(a: A, b: B) -> Self {
        Sum { a, b }
    }
}

impl<A: ContinuousSignal, B: ContinuousSignal> ContinuousSignal for Sum<A, B> {
    fn eval(&self, t: f64) -> f64 {
        self.a.eval(t) + self.b.eval(t)
    }
}

impl<A: ComplexEnvelope, B: ComplexEnvelope> ComplexEnvelope for Sum<A, B> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        self.a.eval_iq(t) + self.b.eval_iq(t)
    }
}

/// Delays a signal: `y(t) = x(t − delay)`.
#[derive(Clone, Copy, Debug)]
pub struct Delayed<S> {
    inner: S,
    delay: f64,
}

impl<S> Delayed<S> {
    /// Delays `inner` by `delay` seconds (positive delays shift right).
    pub fn new(inner: S, delay: f64) -> Self {
        Delayed { inner, delay }
    }
}

impl<S: ContinuousSignal> ContinuousSignal for Delayed<S> {
    fn eval(&self, t: f64) -> f64 {
        self.inner.eval(t - self.delay)
    }
}

impl<E: ComplexEnvelope> ComplexEnvelope for Delayed<E> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        self.inner.eval_iq(t - self.delay)
    }
}

/// A signal defined by an arbitrary closure — handy in tests.
#[derive(Clone, Copy, Debug)]
pub struct FnSignal<F>(pub F);

impl<F: Fn(f64) -> f64> ContinuousSignal for FnSignal<F> {
    fn eval(&self, t: f64) -> f64 {
        (self.0)(t)
    }
}

/// An envelope defined by an arbitrary closure.
#[derive(Clone, Copy, Debug)]
pub struct FnEnvelope<F>(pub F);

impl<F: Fn(f64) -> Complex64> ComplexEnvelope for FnEnvelope<F> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        (self.0)(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_signal_evaluates_closure() {
        let s = FnSignal(|t: f64| 2.0 * t);
        assert_eq!(s.eval(3.0), 6.0);
    }

    #[test]
    fn sample_and_sample_uniform() {
        let s = FnSignal(|t: f64| t * t);
        assert_eq!(s.sample(&[1.0, 2.0, 3.0]), vec![1.0, 4.0, 9.0]);
        assert_eq!(s.sample_uniform(0.0, 0.5, 3), vec![0.0, 0.25, 1.0]);
    }

    #[test]
    fn gain_scales() {
        let s = Gain::new(FnSignal(|_| 2.0), 3.0);
        assert_eq!(s.eval(0.0), 6.0);
    }

    #[test]
    fn sum_adds() {
        let s = Sum::new(FnSignal(|t: f64| t), FnSignal(|_| 1.0));
        assert_eq!(s.eval(2.0), 3.0);
    }

    #[test]
    fn delayed_shifts_right() {
        let s = Delayed::new(FnSignal(|t: f64| t), 1.5);
        assert_eq!(s.eval(2.0), 0.5);
    }

    #[test]
    fn references_and_boxes_are_signals() {
        let s = FnSignal(|t: f64| t + 1.0);
        let r = &s;
        assert_eq!(r.eval(1.0), 2.0);
        let b: Box<dyn ContinuousSignal> = Box::new(FnSignal(|t: f64| t - 1.0));
        assert_eq!(b.eval(1.0), 0.0);
    }

    #[test]
    fn envelope_components() {
        let e = FnEnvelope(|t: f64| Complex64::new(t, -t));
        assert_eq!(e.eval_i(2.0), 2.0);
        assert_eq!(e.eval_q(2.0), -2.0);
    }

    #[test]
    fn envelope_combinators() {
        let e = Gain::new(FnEnvelope(|_| Complex64::new(1.0, 2.0)), 2.0);
        assert_eq!(e.eval_iq(0.0), Complex64::new(2.0, 4.0));
        let d = Delayed::new(FnEnvelope(|t: f64| Complex64::new(t, 0.0)), 1.0);
        assert_eq!(d.eval_iq(3.0), Complex64::new(2.0, 0.0));
        let s = Sum::new(
            FnEnvelope(|_| Complex64::new(1.0, 0.0)),
            FnEnvelope(|_| Complex64::new(0.0, 1.0)),
        );
        assert_eq!(s.eval_iq(0.0), Complex64::new(1.0, 1.0));
    }
}
