//! Sinusoidal test signals.

use crate::traits::{ComplexEnvelope, ContinuousSignal};
use rfbist_math::Complex64;
use std::f64::consts::PI;

/// A single real sinusoid `A·cos(2πft + φ)`.
///
/// # Example
///
/// ```
/// use rfbist_signal::tone::Tone;
/// use rfbist_signal::traits::ContinuousSignal;
///
/// let t = Tone::new(1e6, 2.0, 0.0);
/// assert!((t.eval(0.0) - 2.0).abs() < 1e-12);
/// assert!((t.eval(0.25e-6) - 0.0).abs() < 1e-9); // quarter period
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub frequency: f64,
    /// Peak amplitude.
    pub amplitude: f64,
    /// Phase in radians at `t = 0`.
    pub phase: f64,
}

impl Tone {
    /// Creates a tone with the given frequency (Hz), amplitude and phase.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is negative.
    pub fn new(frequency: f64, amplitude: f64, phase: f64) -> Self {
        assert!(frequency >= 0.0, "tone frequency must be non-negative");
        Tone {
            frequency,
            amplitude,
            phase,
        }
    }

    /// A unit-amplitude, zero-phase tone.
    pub fn unit(frequency: f64) -> Self {
        Tone::new(frequency, 1.0, 0.0)
    }

    /// RMS level of the tone.
    pub fn rms(&self) -> f64 {
        self.amplitude / 2f64.sqrt()
    }
}

impl ContinuousSignal for Tone {
    fn eval(&self, t: f64) -> f64 {
        self.amplitude * (2.0 * PI * self.frequency * t + self.phase).cos()
    }
}

impl ComplexEnvelope for Tone {
    /// Interprets the tone as a complex baseband exponential
    /// `A·e^{j(2πft+φ)}` — a frequency-offset carrier.
    fn eval_iq(&self, t: f64) -> Complex64 {
        Complex64::from_polar(self.amplitude, 2.0 * PI * self.frequency * t + self.phase)
    }
}

/// A sum of tones.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiTone {
    tones: Vec<Tone>,
}

impl MultiTone {
    /// Creates a multitone from explicit components.
    pub fn new(tones: Vec<Tone>) -> Self {
        MultiTone { tones }
    }

    /// `n` equal-amplitude tones spanning `[f_lo, f_hi]` (inclusive,
    /// uniformly spaced), each with the given phase sequence generator.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `f_hi < f_lo`.
    pub fn comb(f_lo: f64, f_hi: f64, n: usize, amplitude: f64) -> Self {
        assert!(n > 0, "multitone needs at least one tone");
        assert!(f_hi >= f_lo, "band must be ordered");
        let step = if n == 1 {
            0.0
        } else {
            (f_hi - f_lo) / (n - 1) as f64
        };
        let tones = (0..n)
            .map(|k| Tone::new(f_lo + k as f64 * step, amplitude, 0.0))
            .collect();
        MultiTone { tones }
    }

    /// The component tones.
    pub fn tones(&self) -> &[Tone] {
        &self.tones
    }

    /// Adds a tone.
    pub fn push(&mut self, tone: Tone) {
        self.tones.push(tone);
    }

    /// Total RMS assuming incommensurate frequencies (power sum).
    pub fn rms(&self) -> f64 {
        self.tones
            .iter()
            .map(|t| t.rms() * t.rms())
            .sum::<f64>()
            .sqrt()
    }
}

impl ContinuousSignal for MultiTone {
    fn eval(&self, t: f64) -> f64 {
        self.tones.iter().map(|tone| tone.eval(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_peak_and_period() {
        let t = Tone::new(100.0, 3.0, 0.0);
        assert!((t.eval(0.0) - 3.0).abs() < 1e-12);
        assert!((t.eval(0.01) - 3.0).abs() < 1e-9); // one period later
        assert!((t.eval(0.005) + 3.0).abs() < 1e-9); // half period
    }

    #[test]
    fn tone_phase_shift() {
        let t = Tone::new(50.0, 1.0, PI / 2.0);
        // cos(x + π/2) = −sin(x); at t=0 → 0
        assert!(t.eval(0.0).abs() < 1e-12);
    }

    #[test]
    fn tone_rms() {
        assert!((Tone::new(1.0, 2.0, 0.0).rms() - 2.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tone_as_envelope_is_rotating_phasor() {
        let t = Tone::unit(1000.0);
        let z = t.eval_iq(0.25e-3); // quarter period: phase π/2
        assert!(z.re.abs() < 1e-9);
        assert!((z.im - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multitone_sums_components() {
        let mt = MultiTone::new(vec![Tone::unit(10.0), Tone::unit(20.0)]);
        let v = mt.eval(0.0);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comb_spacing() {
        let mt = MultiTone::comb(100.0, 200.0, 5, 0.5);
        let freqs: Vec<f64> = mt.tones().iter().map(|t| t.frequency).collect();
        assert_eq!(freqs, vec![100.0, 125.0, 150.0, 175.0, 200.0]);
        let single = MultiTone::comb(100.0, 200.0, 1, 1.0);
        assert_eq!(single.tones()[0].frequency, 100.0);
    }

    #[test]
    fn multitone_rms_power_sum() {
        let mt = MultiTone::new(vec![Tone::new(10.0, 1.0, 0.0), Tone::new(23.0, 1.0, 0.0)]);
        // two unit tones: total power 0.5 + 0.5 = 1 → rms 1
        assert!((mt.rms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn push_appends() {
        let mut mt = MultiTone::default();
        assert_eq!(mt.tones().len(), 0);
        mt.push(Tone::unit(5.0));
        assert_eq!(mt.tones().len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_frequency_panics() {
        let _ = Tone::new(-1.0, 1.0, 0.0);
    }
}
