//! Digital modulation constellations.
//!
//! PSK and square-QAM alphabets with Gray bit mapping, normalized to unit
//! average power — the symbol sources feeding the pulse-shaped baseband.

use crate::prbs::{Prbs, PrbsOrder};
use rfbist_math::rng::Randomizer;
use rfbist_math::Complex64;
use std::f64::consts::PI;

/// Supported constellations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Constellation {
    /// Binary PSK (±1).
    Bpsk,
    /// Quadrature PSK (the paper's test modulation).
    Qpsk,
    /// 8-ary PSK.
    Psk8,
    /// 16-QAM (square, Gray-mapped).
    Qam16,
    /// 64-QAM (square, Gray-mapped).
    Qam64,
}

impl Constellation {
    /// Bits per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Constellation::Bpsk => 1,
            Constellation::Qpsk => 2,
            Constellation::Psk8 => 3,
            Constellation::Qam16 => 4,
            Constellation::Qam64 => 6,
        }
    }

    /// Number of constellation points.
    pub fn size(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// The constellation points, unit average power, indexed by symbol
    /// number (Gray-mapped for PSK phases and QAM axes).
    pub fn points(self) -> Vec<Complex64> {
        match self {
            Constellation::Bpsk => {
                vec![Complex64::new(1.0, 0.0), Complex64::new(-1.0, 0.0)]
            }
            Constellation::Qpsk => {
                // Gray: 00→45°, 01→135°, 11→225°, 10→315°
                let s = std::f64::consts::FRAC_1_SQRT_2;
                vec![
                    Complex64::new(s, s),
                    Complex64::new(-s, s),
                    Complex64::new(s, -s),
                    Complex64::new(-s, -s),
                ]
            }
            Constellation::Psk8 => {
                // Phase position p carries the symbol whose index is the
                // Gray code of p, so phase-adjacent symbols differ in one
                // bit.
                let mut pts = vec![Complex64::ZERO; 8];
                for p in 0..8usize {
                    let idx = p ^ (p >> 1);
                    pts[idx] = Complex64::cis(2.0 * PI * p as f64 / 8.0 + PI / 8.0);
                }
                pts
            }
            Constellation::Qam16 => square_qam(4),
            Constellation::Qam64 => square_qam(8),
        }
    }

    /// Maps a bit group (LSB-first, `bits_per_symbol` entries) to a symbol
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != bits_per_symbol()`.
    pub fn map_bits(self, bits: &[bool]) -> usize {
        assert_eq!(bits.len(), self.bits_per_symbol(), "wrong bit-group size");
        bits.iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i))
    }

    /// Generates `n` random symbols using `rng`.
    pub fn random_symbols(self, rng: &mut Randomizer, n: usize) -> Vec<Complex64> {
        let pts = self.points();
        (0..n).map(|_| pts[rng.index(pts.len())]).collect()
    }

    /// Generates `n` symbols from a PRBS bit stream with the given seed —
    /// the deterministic payload used by the experiment harnesses.
    pub fn prbs_symbols(self, seed: u64, n: usize) -> Vec<Complex64> {
        let pts = self.points();
        let bps = self.bits_per_symbol();
        let mut gen = Prbs::new(PrbsOrder::Prbs23, seed);
        (0..n)
            .map(|_| {
                let bits = gen.bits(bps);
                pts[self.map_bits(&bits)]
            })
            .collect()
    }

    /// Average symbol power (should be 1 by construction).
    pub fn average_power(self) -> f64 {
        let pts = self.points();
        pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64
    }

    /// Peak-to-average power ratio (linear).
    pub fn papr(self) -> f64 {
        let pts = self.points();
        let peak = pts.iter().map(|p| p.norm_sqr()).fold(0.0, f64::max);
        peak / self.average_power()
    }
}

/// Square `m×m` QAM with Gray-coded axes, normalized to unit average
/// power.
fn square_qam(m: usize) -> Vec<Complex64> {
    // PAM levels ±1, ±3, … ±(m−1), Gray ordered
    let levels: Vec<f64> = (0..m)
        .map(|i| (2.0 * i as f64) - (m as f64 - 1.0))
        .collect();
    // average power of square QAM with these levels: 2(m²−1)/3 · (1/2)? —
    // compute it numerically for robustness.
    let mut pts = Vec::with_capacity(m * m);
    for qi in 0..m {
        for ii in 0..m {
            // Gray decode axis indices
            let gi = ii ^ (ii >> 1);
            let gq = qi ^ (qi >> 1);
            pts.push(Complex64::new(levels[gi], levels[gq]));
        }
    }
    let avg: f64 = pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64;
    let norm = avg.sqrt();
    pts.iter().map(|p| *p / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_bits() {
        assert_eq!(Constellation::Bpsk.size(), 2);
        assert_eq!(Constellation::Qpsk.size(), 4);
        assert_eq!(Constellation::Psk8.size(), 8);
        assert_eq!(Constellation::Qam16.size(), 16);
        assert_eq!(Constellation::Qam64.size(), 64);
        assert_eq!(Constellation::Qam64.bits_per_symbol(), 6);
    }

    #[test]
    fn all_constellations_unit_average_power() {
        for c in [
            Constellation::Bpsk,
            Constellation::Qpsk,
            Constellation::Psk8,
            Constellation::Qam16,
            Constellation::Qam64,
        ] {
            assert!(
                (c.average_power() - 1.0).abs() < 1e-12,
                "{c:?}: {}",
                c.average_power()
            );
        }
    }

    #[test]
    fn psk_has_unit_papr_qam_does_not() {
        assert!((Constellation::Qpsk.papr() - 1.0).abs() < 1e-12);
        assert!((Constellation::Psk8.papr() - 1.0).abs() < 1e-12);
        assert!(Constellation::Qam16.papr() > 1.5);
        assert!(Constellation::Qam64.papr() > Constellation::Qam16.papr());
    }

    #[test]
    fn qpsk_points_on_diagonals() {
        for p in Constellation::Qpsk.points() {
            assert!((p.re.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
            assert!((p.im.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn psk8_gray_neighbors_differ_by_one_bit() {
        // Adjacent phase points must have Gray-adjacent indices; verify by
        // sorting points by angle and checking Hamming distance 1.
        let pts = Constellation::Psk8.points();
        let mut order: Vec<usize> = (0..8).collect();
        order.sort_by(|&a, &b| pts[a].arg().partial_cmp(&pts[b].arg()).unwrap());
        for w in 0..8 {
            let i = order[w];
            let j = order[(w + 1) % 8];
            let ham = (i ^ j).count_ones();
            assert_eq!(ham, 1, "neighbors {i} and {j}");
        }
    }

    #[test]
    fn map_bits_lsb_first() {
        let c = Constellation::Qpsk;
        assert_eq!(c.map_bits(&[false, false]), 0);
        assert_eq!(c.map_bits(&[true, false]), 1);
        assert_eq!(c.map_bits(&[false, true]), 2);
        assert_eq!(c.map_bits(&[true, true]), 3);
    }

    #[test]
    fn random_symbols_cover_alphabet() {
        let mut rng = Randomizer::from_seed(3);
        let syms = Constellation::Qam16.random_symbols(&mut rng, 2000);
        let pts = Constellation::Qam16.points();
        for p in &pts {
            assert!(
                syms.iter().any(|s| (*s - *p).abs() < 1e-12),
                "point {p} never drawn"
            );
        }
    }

    #[test]
    fn prbs_symbols_are_deterministic() {
        let a = Constellation::Qpsk.prbs_symbols(0xACE1, 64);
        let b = Constellation::Qpsk.prbs_symbols(0xACE1, 64);
        assert_eq!(a, b);
        let c = Constellation::Qpsk.prbs_symbols(0xBEEF, 64);
        assert_ne!(a, c);
    }

    #[test]
    fn qam16_has_four_amplitude_rings_worth_of_levels() {
        let pts = Constellation::Qam16.points();
        let mut res: Vec<i64> = pts.iter().map(|p| (p.re * 1e9).round() as i64).collect();
        res.sort_unstable();
        res.dedup();
        assert_eq!(res.len(), 4, "expected 4 distinct I levels");
    }

    #[test]
    #[should_panic(expected = "wrong bit-group size")]
    fn wrong_bit_count_panics() {
        let _ = Constellation::Qpsk.map_bits(&[true]);
    }
}
