//! Bandpass (passband) signals: complex envelopes on a carrier.
//!
//! `x(t) = I(t)·cos(2πf_c t) − Q(t)·sin(2πf_c t) = Re{a(t)·e^{j2πf_c t}}` —
//! the explicit carrier-cycle evaluation the paper notes PNBS requires.

use crate::baseband::ShapedBaseband;
use crate::traits::{ComplexEnvelope, ContinuousSignal};
use std::f64::consts::PI;

/// A real passband signal formed by quadrature-modulating an envelope
/// onto a carrier.
///
/// # Example
///
/// ```
/// use rfbist_signal::prelude::*;
///
/// let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 1);
/// let tx = BandpassSignal::new(bb, 1e9);
/// assert_eq!(tx.carrier_hz(), 1e9);
/// let v = tx.eval(1.0e-6);
/// assert!(v.is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct BandpassSignal<E> {
    envelope: E,
    carrier_hz: f64,
    carrier_phase: f64,
}

impl<E: ComplexEnvelope> BandpassSignal<E> {
    /// Modulates `envelope` onto a carrier at `carrier_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `carrier_hz <= 0`.
    pub fn new(envelope: E, carrier_hz: f64) -> Self {
        assert!(carrier_hz > 0.0, "carrier frequency must be positive");
        BandpassSignal {
            envelope,
            carrier_hz,
            carrier_phase: 0.0,
        }
    }

    /// Sets an initial carrier phase (radians).
    pub fn with_carrier_phase(mut self, phase: f64) -> Self {
        self.carrier_phase = phase;
        self
    }

    /// Carrier frequency in Hz.
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// Borrow the underlying envelope.
    pub fn envelope(&self) -> &E {
        &self.envelope
    }

    /// Consumes the signal, returning the envelope.
    pub fn into_envelope(self) -> E {
        self.envelope
    }
}

impl BandpassSignal<ShapedBaseband> {
    /// The steady (edge-effect-free) time range of the underlying shaped
    /// baseband.
    pub fn steady_time_range(&self) -> (f64, f64) {
        self.envelope.steady_time_range()
    }

    /// Band edges `(f_lo, f_hi)` in Hz of the occupied spectrum.
    pub fn occupied_band(&self) -> (f64, f64) {
        let half = self.envelope.occupied_bandwidth() / 2.0;
        (self.carrier_hz - half, self.carrier_hz + half)
    }
}

impl<E: ComplexEnvelope> ContinuousSignal for BandpassSignal<E> {
    fn eval(&self, t: f64) -> f64 {
        let iq = self.envelope.eval_iq(t);
        let w = 2.0 * PI * self.carrier_hz * t + self.carrier_phase;
        iq.re * w.cos() - iq.im * w.sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnEnvelope;
    use rfbist_math::Complex64;

    #[test]
    fn constant_envelope_gives_pure_carrier() {
        let sig = BandpassSignal::new(FnEnvelope(|_| Complex64::new(1.0, 0.0)), 1e6);
        assert!((sig.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((sig.eval(1e-6) - 1.0).abs() < 1e-9); // one carrier period
        assert!((sig.eval(0.5e-6) + 1.0).abs() < 1e-9); // half period
    }

    #[test]
    fn quadrature_envelope_shifts_carrier_phase() {
        // a(t) = j ⇒ x(t) = −sin(2πfc t)
        let sig = BandpassSignal::new(FnEnvelope(|_| Complex64::new(0.0, 1.0)), 1e6);
        assert!(sig.eval(0.0).abs() < 1e-12);
        assert!((sig.eval(0.25e-6) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn carrier_phase_offset() {
        let sig = BandpassSignal::new(FnEnvelope(|_| Complex64::ONE), 1e6).with_carrier_phase(PI);
        assert!((sig.eval(0.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_envelope_produces_shifted_tone() {
        // envelope e^{j2πf_m t} on carrier f_c is a tone at f_c + f_m
        let fm = 1e5;
        let fc = 1e6;
        let sig = BandpassSignal::new(
            FnEnvelope(move |t: f64| Complex64::cis(2.0 * PI * fm * t)),
            fc,
        );
        let f_sum = fc + fm;
        for k in 0..10 {
            let t = k as f64 / f_sum; // periods of the sum frequency
            assert!((sig.eval(t) - 1.0).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn occupied_band_centered_on_carrier() {
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 1);
        let tx = BandpassSignal::new(bb, 1e9);
        let (lo, hi) = tx.occupied_band();
        assert!((lo - 992.5e6).abs() < 1.0);
        assert!((hi - 1007.5e6).abs() < 1.0);
    }

    #[test]
    fn envelope_accessors() {
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 1);
        let tx = BandpassSignal::new(bb, 1e9);
        assert_eq!(tx.envelope().symbols().len(), 64);
        let bb2 = tx.into_envelope();
        assert_eq!(bb2.symbols().len(), 64);
    }

    #[test]
    #[should_panic(expected = "carrier frequency must be positive")]
    fn zero_carrier_panics() {
        let _ = BandpassSignal::new(FnEnvelope(|_| Complex64::ONE), 0.0);
    }
}
