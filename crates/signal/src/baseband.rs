//! Pulse-shaped complex baseband from a symbol stream.
//!
//! `a(t) = Σₖ sₖ · g(t/Ts − k)` evaluated analytically: the continuous
//! I/Q waveform the paper's homodyne transmitter modulates onto the
//! carrier. The truncated pulse span bounds each evaluation to
//! `2·span + 1` symbol contributions.

use crate::pulse::PulseShape;
use crate::symbols::Constellation;
use crate::traits::ComplexEnvelope;
use rfbist_math::rng::Randomizer;
use rfbist_math::Complex64;

/// A pulse-shaped symbol stream evaluated in continuous time.
///
/// Symbols occupy indices `0..num_symbols`; outside that range the
/// waveform decays to zero over one pulse span (ramp-up/ramp-down). Use
/// [`steady_time_range`](Self::steady_time_range) to stay in the fully-
/// populated region.
///
/// # Example
///
/// ```
/// use rfbist_signal::baseband::ShapedBaseband;
/// use rfbist_signal::traits::ComplexEnvelope;
///
/// let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 128, 1);
/// let (t0, t1) = bb.steady_time_range();
/// let z = bb.eval_iq(0.5 * (t0 + t1));
/// assert!(z.is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct ShapedBaseband {
    symbols: Vec<Complex64>,
    pulse: PulseShape,
    symbol_period: f64,
}

impl ShapedBaseband {
    /// Builds a baseband from explicit symbols, a pulse shape and the
    /// symbol rate (symbols/second).
    ///
    /// # Panics
    ///
    /// Panics if `symbol_rate <= 0` or `symbols` is empty.
    pub fn new(symbols: Vec<Complex64>, pulse: PulseShape, symbol_rate: f64) -> Self {
        assert!(symbol_rate > 0.0, "symbol rate must be positive");
        assert!(!symbols.is_empty(), "at least one symbol required");
        ShapedBaseband {
            symbols,
            pulse,
            symbol_period: 1.0 / symbol_rate,
        }
    }

    /// The paper's stimulus: QPSK at `symbol_rate`, SRRC roll-off
    /// `alpha`, pulse half-span `span` symbols, `n` PRBS-driven symbols.
    pub fn qpsk_prbs(symbol_rate: f64, alpha: f64, span: usize, n: usize, seed: u64) -> Self {
        let symbols = Constellation::Qpsk.prbs_symbols(seed, n);
        ShapedBaseband::new(symbols, PulseShape::Srrc { alpha, span }, symbol_rate)
    }

    /// Random-symbol variant for Monte-Carlo runs.
    pub fn random(
        constellation: Constellation,
        symbol_rate: f64,
        pulse: PulseShape,
        n: usize,
        rng: &mut Randomizer,
    ) -> Self {
        let symbols = constellation.random_symbols(rng, n);
        ShapedBaseband::new(symbols, pulse, symbol_rate)
    }

    /// The symbol sequence.
    pub fn symbols(&self) -> &[Complex64] {
        &self.symbols
    }

    /// The pulse shape.
    pub fn pulse(&self) -> PulseShape {
        self.pulse
    }

    /// Symbol period in seconds.
    pub fn symbol_period(&self) -> f64 {
        self.symbol_period
    }

    /// Symbol rate in Hz.
    pub fn symbol_rate(&self) -> f64 {
        1.0 / self.symbol_period
    }

    /// Two-sided occupied RF bandwidth in Hz: `(1+α)·symbol_rate` for
    /// SRRC/RC shaping.
    pub fn occupied_bandwidth(&self) -> f64 {
        self.pulse.occupied_bandwidth_symbols() * self.symbol_rate()
    }

    /// The time interval over which every pulse contributing to the
    /// waveform has its full complement of neighbours (no ramp-up /
    /// ramp-down edge effects): `[span·Ts, (N − 1 − span)·Ts]`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol count is too small to have a steady region.
    pub fn steady_time_range(&self) -> (f64, f64) {
        let span = self.pulse.span();
        let n = self.symbols.len();
        assert!(
            n > 2 * span + 1,
            "need more than {} symbols for a steady region, have {n}",
            2 * span + 1
        );
        (
            span as f64 * self.symbol_period,
            (n - 1 - span) as f64 * self.symbol_period,
        )
    }
}

impl ComplexEnvelope for ShapedBaseband {
    fn eval_iq(&self, t: f64) -> Complex64 {
        let tn = t / self.symbol_period; // time in symbol periods
        let span = self.pulse.span() as isize;
        let center = tn.floor() as isize;
        let lo = (center - span).max(0);
        let hi = (center + span + 1).min(self.symbols.len() as isize - 1);
        let mut acc = Complex64::ZERO;
        let mut k = lo;
        while k <= hi {
            let g = self.pulse.eval(tn - k as f64);
            if g != 0.0 {
                acc += self.symbols[k as usize] * g;
            }
            k += 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ComplexEnvelope;

    fn test_bb(n: usize) -> ShapedBaseband {
        ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, n, 0xACE1)
    }

    #[test]
    fn waveform_passes_through_symbols_for_rc_pulse() {
        // With a zero-ISI RC pulse, a(k·Ts) == s_k exactly.
        let symbols = Constellation::Qpsk.prbs_symbols(7, 64);
        let bb = ShapedBaseband::new(
            symbols.clone(),
            PulseShape::Rc {
                alpha: 0.35,
                span: 10,
            },
            1e6,
        );
        let ts = bb.symbol_period();
        for (k, &sym) in symbols.iter().enumerate().take(50).skip(15) {
            let z = bb.eval_iq(k as f64 * ts);
            assert!((z - sym).abs() < 1e-9, "symbol {k}: {z} vs {sym}");
        }
    }

    #[test]
    fn srrc_waveform_has_isi_at_symbol_instants() {
        // SRRC alone (no matched filter) is NOT zero-ISI: values at symbol
        // instants differ from the symbols.
        let bb = test_bb(128);
        let ts = bb.symbol_period();
        let mut any_isi = false;
        for k in 20..60 {
            let z = bb.eval_iq(k as f64 * ts);
            if (z - bb.symbols()[k]).abs() > 1e-3 {
                any_isi = true;
            }
        }
        assert!(any_isi, "SRRC should exhibit ISI before matched filtering");
    }

    #[test]
    fn steady_range_excludes_edges() {
        let bb = test_bb(128);
        let (t0, t1) = bb.steady_time_range();
        assert!((t0 - 12.0 * 1e-7).abs() < 1e-15);
        assert!((t1 - 115.0 * 1e-7).abs() < 1e-15);
        assert!(t1 > t0);
    }

    #[test]
    fn paper_window_fits_in_steady_range() {
        // Paper cost function uses a 1230 ns probe window ([470, 1700] ns);
        // the absolute origin is arbitrary, so check the steady region is
        // long enough to host it.
        let bb = test_bb(64);
        let (t0, t1) = bb.steady_time_range();
        assert!(t1 - t0 >= 1230e-9, "steady span {}", t1 - t0);
    }

    #[test]
    fn waveform_is_zero_far_outside_support() {
        let bb = test_bb(32);
        assert_eq!(bb.eval_iq(-1.0), Complex64::ZERO);
        assert_eq!(bb.eval_iq(1.0), Complex64::ZERO); // 1 s >> 32 symbols · 0.1 µs
    }

    #[test]
    fn occupied_bandwidth_matches_paper() {
        // 10 MHz symbols, α = 0.5 → 15 MHz
        let bb = test_bb(64);
        assert!((bb.occupied_bandwidth() - 15e6).abs() < 1.0);
    }

    #[test]
    fn rms_level_is_near_unit_for_qpsk() {
        // Unit-power constellation with SRRC shaping keeps ~unit RMS.
        let bb = test_bb(256);
        let (t0, t1) = bb.steady_time_range();
        let n = 4000;
        let mut acc = 0.0;
        for i in 0..n {
            let t = t0 + (t1 - t0) * i as f64 / n as f64;
            acc += bb.eval_iq(t).norm_sqr();
        }
        let rms = (acc / n as f64).sqrt();
        assert!((rms - 1.0).abs() < 0.15, "rms {rms}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = test_bb(64);
        let b = test_bb(64);
        assert_eq!(a.eval_iq(1e-6), b.eval_iq(1e-6));
    }

    #[test]
    fn random_constructor_uses_rng() {
        let mut rng = Randomizer::from_seed(5);
        let bb = ShapedBaseband::random(
            Constellation::Qam16,
            1e6,
            PulseShape::paper_default(),
            64,
            &mut rng,
        );
        assert_eq!(bb.symbols().len(), 64);
    }

    #[test]
    #[should_panic(expected = "steady region")]
    fn too_few_symbols_panics_steady_range() {
        let bb = test_bb(20); // span 12 needs > 25
        let _ = bb.steady_time_range();
    }

    #[test]
    #[should_panic(expected = "symbol rate must be positive")]
    fn bad_rate_panics() {
        let _ = ShapedBaseband::new(vec![Complex64::ONE], PulseShape::Rect, 0.0);
    }
}
