//! Pseudo-random binary sequences via linear-feedback shift registers.
//!
//! Standard maximal-length PRBS polynomials (PRBS7 through PRBS31) for
//! deterministic, standards-style test payloads.

/// Standard PRBS polynomial selections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrbsOrder {
    /// x⁷ + x⁶ + 1 (period 127).
    Prbs7,
    /// x⁹ + x⁵ + 1 (period 511).
    Prbs9,
    /// x¹⁵ + x¹⁴ + 1 (period 32767).
    Prbs15,
    /// x²³ + x¹⁸ + 1 (period 8388607).
    Prbs23,
    /// x³¹ + x²⁸ + 1 (period 2147483647).
    Prbs31,
}

impl PrbsOrder {
    /// Register length in bits.
    pub fn order(self) -> u32 {
        match self {
            PrbsOrder::Prbs7 => 7,
            PrbsOrder::Prbs9 => 9,
            PrbsOrder::Prbs15 => 15,
            PrbsOrder::Prbs23 => 23,
            PrbsOrder::Prbs31 => 31,
        }
    }

    /// Feedback tap positions (1-based bit indices).
    fn taps(self) -> (u32, u32) {
        match self {
            PrbsOrder::Prbs7 => (7, 6),
            PrbsOrder::Prbs9 => (9, 5),
            PrbsOrder::Prbs15 => (15, 14),
            PrbsOrder::Prbs23 => (23, 18),
            PrbsOrder::Prbs31 => (31, 28),
        }
    }

    /// Sequence period `2^order − 1`.
    pub fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }
}

/// A running LFSR-based PRBS generator.
///
/// # Example
///
/// ```
/// use rfbist_signal::prbs::{Prbs, PrbsOrder};
/// let mut gen = Prbs::new(PrbsOrder::Prbs7, 0x5A);
/// let bits = gen.bits(16);
/// assert_eq!(bits.len(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct Prbs {
    order: PrbsOrder,
    state: u64,
}

impl Prbs {
    /// Creates a generator with the given nonzero seed (masked to the
    /// register width; a zero-masked seed is replaced with 1 to avoid the
    /// LFSR's all-zero lockup state).
    pub fn new(order: PrbsOrder, seed: u64) -> Self {
        let mask = (1u64 << order.order()) - 1;
        let state = if seed & mask == 0 { 1 } else { seed & mask };
        Prbs { order, state }
    }

    /// Produces the next bit.
    pub fn next_bit(&mut self) -> bool {
        let (a, b) = self.order.taps();
        let bit = ((self.state >> (a - 1)) ^ (self.state >> (b - 1))) & 1;
        self.state = ((self.state << 1) | bit) & ((1u64 << self.order.order()) - 1);
        bit != 0
    }

    /// Produces `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Produces `n` bipolar symbols (`true → +1.0`, `false → −1.0`).
    pub fn bipolar(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| if self.next_bit() { 1.0 } else { -1.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_match_maximal_length() {
        // For each order, the state sequence must return to the seed after
        // exactly 2^n − 1 steps (maximal-length property).
        for order in [PrbsOrder::Prbs7, PrbsOrder::Prbs9, PrbsOrder::Prbs15] {
            let mut gen = Prbs::new(order, 1);
            let initial = gen.state;
            let mut count = 0u64;
            loop {
                gen.next_bit();
                count += 1;
                if gen.state == initial {
                    break;
                }
                assert!(count <= order.period(), "{order:?} exceeded period");
            }
            assert_eq!(count, order.period(), "{order:?}");
        }
    }

    #[test]
    fn balanced_ones_and_zeros() {
        // Maximal-length sequences have 2^(n-1) ones and 2^(n-1)−1 zeros.
        let order = PrbsOrder::Prbs9;
        let mut gen = Prbs::new(order, 0x1FF);
        let bits = gen.bits(order.period() as usize);
        let ones = bits.iter().filter(|&&b| b).count() as u64;
        assert_eq!(ones, 1 << (order.order() - 1));
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut gen = Prbs::new(PrbsOrder::Prbs7, 0);
        // must not lock up producing all zeros
        let bits = gen.bits(127);
        assert!(bits.iter().any(|&b| b));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prbs::new(PrbsOrder::Prbs15, 0x1234);
        let mut b = Prbs::new(PrbsOrder::Prbs15, 0x1234);
        assert_eq!(a.bits(100), b.bits(100));
    }

    #[test]
    fn different_seeds_are_shifted_sequences() {
        let mut a = Prbs::new(PrbsOrder::Prbs7, 1);
        let mut b = Prbs::new(PrbsOrder::Prbs7, 2);
        assert_ne!(a.bits(32), b.bits(32));
    }

    #[test]
    fn bipolar_maps_correctly() {
        let mut gen = Prbs::new(PrbsOrder::Prbs7, 0x5A);
        let mut gen2 = Prbs::new(PrbsOrder::Prbs7, 0x5A);
        let bits = gen.bits(50);
        let sym = gen2.bipolar(50);
        for (b, s) in bits.iter().zip(&sym) {
            assert_eq!(*s, if *b { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn autocorrelation_is_thumbtack() {
        // PRBS autocorrelation: N at lag 0, −1 at other lags (bipolar,
        // over a full period).
        let order = PrbsOrder::Prbs7;
        let n = order.period() as usize;
        let mut gen = Prbs::new(order, 1);
        let s = gen.bipolar(n);
        let corr = |lag: usize| -> f64 { (0..n).map(|i| s[i] * s[(i + lag) % n]).sum() };
        assert_eq!(corr(0), n as f64);
        for lag in [1usize, 5, 50] {
            assert_eq!(corr(lag), -1.0, "lag {lag}");
        }
    }
}
