//! Continuous pulse-shaping kernels.
//!
//! A [`PulseShape`] evaluates the shaping pulse `g(t)` at arbitrary time
//! offsets (in symbol periods), truncated to a finite span — the kernel
//! behind [`crate::baseband::ShapedBaseband`].

use rfbist_dsp::srrc::{rc_pulse, srrc_pulse};
use rfbist_math::special::sinc;

/// Pulse-shaping filter selection, evaluated in continuous time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PulseShape {
    /// Square-root raised cosine with roll-off `alpha`, truncated at
    /// `±span` symbol periods.
    Srrc {
        /// Roll-off factor in `[0, 1]`.
        alpha: f64,
        /// Truncation half-width in symbol periods.
        span: usize,
    },
    /// Raised cosine (zero-ISI end-to-end pulse).
    Rc {
        /// Roll-off factor in `[0, 1]`.
        alpha: f64,
        /// Truncation half-width in symbol periods.
        span: usize,
    },
    /// Ideal sinc (brick-wall), truncated at `±span` symbol periods.
    Sinc {
        /// Truncation half-width in symbol periods.
        span: usize,
    },
    /// Rectangular NRZ pulse (one symbol period wide).
    Rect,
}

impl PulseShape {
    /// The paper's shaping: SRRC with α = 0.5, 12-symbol half-span.
    pub fn paper_default() -> Self {
        PulseShape::Srrc {
            alpha: 0.5,
            span: 12,
        }
    }

    /// Evaluates the pulse at offset `t` in symbol periods.
    pub fn eval(self, t: f64) -> f64 {
        match self {
            PulseShape::Srrc { alpha, span } => {
                if t.abs() > span as f64 {
                    0.0
                } else {
                    srrc_pulse(t, alpha)
                }
            }
            PulseShape::Rc { alpha, span } => {
                if t.abs() > span as f64 {
                    0.0
                } else {
                    rc_pulse(t, alpha)
                }
            }
            PulseShape::Sinc { span } => {
                if t.abs() > span as f64 {
                    0.0
                } else {
                    sinc(t)
                }
            }
            PulseShape::Rect => {
                if (-0.5..0.5).contains(&t) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Truncation half-width in symbol periods.
    pub fn span(self) -> usize {
        match self {
            PulseShape::Srrc { span, .. }
            | PulseShape::Rc { span, .. }
            | PulseShape::Sinc { span } => span,
            PulseShape::Rect => 1,
        }
    }

    /// Two-sided occupied bandwidth in units of the symbol rate
    /// (`(1+α)` for RC/SRRC, 1 for sinc, ∞-ish 2.0 budget for rect).
    pub fn occupied_bandwidth_symbols(self) -> f64 {
        match self {
            PulseShape::Srrc { alpha, .. } | PulseShape::Rc { alpha, .. } => 1.0 + alpha,
            PulseShape::Sinc { .. } => 1.0,
            PulseShape::Rect => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_parameters() {
        let p = PulseShape::paper_default();
        assert_eq!(
            p,
            PulseShape::Srrc {
                alpha: 0.5,
                span: 12
            }
        );
        assert!((p.occupied_bandwidth_symbols() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn srrc_truncates_outside_span() {
        let p = PulseShape::Srrc {
            alpha: 0.5,
            span: 4,
        };
        assert_eq!(p.eval(4.5), 0.0);
        assert_eq!(p.eval(-10.0), 0.0);
        assert!(p.eval(0.0) > 1.0); // SRRC peak is 1−α+4α/π > 1 for α=0.5
    }

    #[test]
    fn rc_zero_isi_within_span() {
        let p = PulseShape::Rc {
            alpha: 0.35,
            span: 6,
        };
        assert!((p.eval(0.0) - 1.0).abs() < 1e-12);
        for k in 1..=5 {
            assert!(p.eval(k as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn sinc_pulse_values() {
        let p = PulseShape::Sinc { span: 8 };
        assert_eq!(p.eval(0.0), 1.0);
        assert!(p.eval(1.0).abs() < 1e-12);
        assert_eq!(p.eval(9.0), 0.0);
    }

    #[test]
    fn rect_pulse_support() {
        let p = PulseShape::Rect;
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(-0.49), 1.0);
        assert_eq!(p.eval(0.5), 0.0);
        assert_eq!(p.eval(-0.51), 0.0);
        assert_eq!(p.span(), 1);
    }

    #[test]
    fn spans_reported() {
        assert_eq!(
            PulseShape::Srrc {
                alpha: 0.2,
                span: 9
            }
            .span(),
            9
        );
        assert_eq!(PulseShape::Sinc { span: 3 }.span(), 3);
    }
}
