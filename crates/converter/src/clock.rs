//! Sampling clocks with jitter, and the digitally controlled delay
//! element (DCDE).
//!
//! Jitter is generated *per edge index* from a seeded hash, so edge
//! times are deterministic and order-independent — a capture can be
//! replayed exactly, which the experiment harnesses rely on.

use rfbist_math::rng::Randomizer;

/// Clock-jitter model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JitterModel {
    /// Ideal clock.
    None,
    /// White Gaussian edge jitter with the given RMS (seconds) — the
    /// paper's "gaussian distributed time-skew jitter of 3 ps rms".
    Gaussian {
        /// RMS jitter in seconds.
        rms: f64,
    },
}

impl JitterModel {
    /// The paper's Section V jitter: 3 ps rms.
    pub fn paper_default() -> Self {
        JitterModel::Gaussian { rms: 3e-12 }
    }
}

/// A sampling clock: nominal period plus per-edge jitter.
///
/// # Example
///
/// ```
/// use rfbist_converter::clock::{ClockGenerator, JitterModel};
///
/// let clk = ClockGenerator::new(1.0 / 90e6, JitterModel::None, 1);
/// assert_eq!(clk.edge(0), 0.0);
/// assert!((clk.edge(9) - 0.1e-6).abs() < 1e-15);
/// ```
#[derive(Clone, Debug)]
pub struct ClockGenerator {
    period: f64,
    jitter: JitterModel,
    seed: u64,
    phase_offset: f64,
}

impl ClockGenerator {
    /// Creates a clock with the given nominal period, jitter model and
    /// jitter seed.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn new(period: f64, jitter: JitterModel, seed: u64) -> Self {
        assert!(period > 0.0, "clock period must be positive");
        ClockGenerator {
            period,
            jitter,
            seed,
            phase_offset: 0.0,
        }
    }

    /// Adds a constant phase offset (seconds) to every edge — how the
    /// DCDE's delay is injected into the second channel's clock.
    pub fn with_phase_offset(mut self, offset: f64) -> Self {
        self.phase_offset = offset;
        self
    }

    /// Nominal period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The configured jitter model.
    pub fn jitter(&self) -> JitterModel {
        self.jitter
    }

    /// The time of edge `n`: `n·T + offset + jitter(n)`.
    pub fn edge(&self, n: i64) -> f64 {
        let nominal = n as f64 * self.period + self.phase_offset;
        match self.jitter {
            JitterModel::None => nominal,
            JitterModel::Gaussian { rms } => nominal + rms * self.unit_jitter(n),
        }
    }

    /// The times of `count` consecutive edges starting at `n_start` —
    /// the batched form of [`edge`](Self::edge), producing identical
    /// values (jitter is a pure per-index hash).
    pub fn edges(&self, n_start: i64, count: usize) -> Vec<f64> {
        (0..count).map(|i| self.edge(n_start + i as i64)).collect()
    }

    /// Deterministic per-index standard-normal variate (seeded hash).
    fn unit_jitter(&self, n: i64) -> f64 {
        // SplitMix-style avalanche of (seed, n) so neighbouring indices
        // decorrelate, then one Box–Muller draw.
        let mut z = self.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Randomizer::from_seed(z).standard_normal()
    }
}

/// Digitally controlled delay element (the red block of paper Fig. 4).
///
/// Holds an integer code; the produced delay is `code · resolution`,
/// clamped to the programmable range. Real DCDEs have ps-class
/// resolution (the paper cites hardware achieving "a granularity of few
/// ps").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dcde {
    resolution: f64,
    max_code: u32,
    code: u32,
}

impl Dcde {
    /// Creates a DCDE with the given step `resolution` (seconds) and
    /// `max_code` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `resolution <= 0` or `max_code == 0`.
    pub fn new(resolution: f64, max_code: u32) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        assert!(max_code > 0, "max code must be positive");
        Dcde {
            resolution,
            max_code,
            code: 0,
        }
    }

    /// A 1 ps / 10-bit DCDE — comfortably covering the paper's
    /// 0–483 ps usable delay interval.
    pub fn fine_ps() -> Self {
        Dcde::new(1e-12, 1023)
    }

    /// Step resolution in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Current code.
    pub fn code(&self) -> u32 {
        self.code
    }

    /// Sets the raw code (clamped to the range).
    pub fn set_code(&mut self, code: u32) {
        self.code = code.min(self.max_code);
    }

    /// Programs the closest achievable delay to `target` seconds and
    /// returns the actually produced delay.
    pub fn set_delay(&mut self, target: f64) -> f64 {
        let code = (target / self.resolution)
            .round()
            .clamp(0.0, self.max_code as f64);
        self.code = code as u32;
        self.delay()
    }

    /// The delay currently produced.
    pub fn delay(&self) -> f64 {
        self.code as f64 * self.resolution
    }

    /// Largest programmable delay.
    pub fn max_delay(&self) -> f64 {
        self.max_code as f64 * self.resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::stats;

    #[test]
    fn ideal_clock_edges_are_exact() {
        let clk = ClockGenerator::new(1e-8, JitterModel::None, 0);
        for n in [-5i64, 0, 1, 100] {
            assert_eq!(clk.edge(n), n as f64 * 1e-8);
        }
    }

    #[test]
    fn phase_offset_shifts_all_edges() {
        let clk = ClockGenerator::new(1e-8, JitterModel::None, 0).with_phase_offset(180e-12);
        assert!((clk.edge(0) - 180e-12).abs() < 1e-20);
        assert!((clk.edge(10) - (1e-7 + 180e-12)).abs() < 1e-18);
    }

    #[test]
    fn jitter_is_deterministic_and_order_independent() {
        let clk = ClockGenerator::new(1e-8, JitterModel::paper_default(), 42);
        let a = clk.edge(17);
        let _ = clk.edge(3);
        let b = clk.edge(17);
        assert_eq!(a, b);
        let clk2 = ClockGenerator::new(1e-8, JitterModel::paper_default(), 42);
        assert_eq!(clk2.edge(17), a);
    }

    #[test]
    fn jitter_rms_matches_configuration() {
        let rms = 3e-12;
        let clk = ClockGenerator::new(1e-8, JitterModel::Gaussian { rms }, 7);
        let deviations: Vec<f64> = (0..20000).map(|n| clk.edge(n) - n as f64 * 1e-8).collect();
        let measured = stats::rms(&deviations);
        assert!((measured - rms).abs() / rms < 0.05, "rms {measured}");
        // zero mean
        assert!(stats::mean(&deviations).abs() < 0.1e-12);
    }

    #[test]
    fn batched_edges_match_scalar_edges() {
        for jitter in [JitterModel::None, JitterModel::paper_default()] {
            let clk = ClockGenerator::new(1e-8, jitter, 42).with_phase_offset(180e-12);
            let batch = clk.edges(-5, 40);
            assert_eq!(batch.len(), 40);
            for (i, &t) in batch.iter().enumerate() {
                assert_eq!(t, clk.edge(-5 + i as i64), "{jitter:?} edge {i}");
            }
        }
        assert!(ClockGenerator::new(1e-8, JitterModel::None, 0)
            .edges(3, 0)
            .is_empty());
    }

    #[test]
    fn different_seeds_produce_different_jitter() {
        let a = ClockGenerator::new(1e-8, JitterModel::paper_default(), 1);
        let b = ClockGenerator::new(1e-8, JitterModel::paper_default(), 2);
        assert_ne!(a.edge(5), b.edge(5));
    }

    #[test]
    fn neighbouring_edges_are_uncorrelated() {
        let clk = ClockGenerator::new(1e-8, JitterModel::Gaussian { rms: 1e-12 }, 11);
        let dev: Vec<f64> = (0..10000).map(|n| clk.edge(n) - n as f64 * 1e-8).collect();
        let r = stats::autocorrelation(&dev, 1);
        assert!(
            r[1].abs() / r[0] < 0.05,
            "lag-1 correlation {}",
            r[1] / r[0]
        );
    }

    #[test]
    fn dcde_quantizes_target_delay() {
        let mut dcde = Dcde::fine_ps();
        let got = dcde.set_delay(180.4e-12);
        assert!((got - 180e-12).abs() < 1e-18);
        assert_eq!(dcde.code(), 180);
        let got2 = dcde.set_delay(180.6e-12);
        assert!((got2 - 181e-12).abs() < 1e-18);
    }

    #[test]
    fn dcde_clamps_to_range() {
        let mut dcde = Dcde::new(1e-12, 100);
        assert_eq!(dcde.set_delay(1.0), 100e-12);
        assert_eq!(dcde.set_delay(-5.0), 0.0);
        dcde.set_code(500);
        assert_eq!(dcde.code(), 100);
        assert_eq!(dcde.max_delay(), 100e-12);
    }

    #[test]
    fn paper_usable_range_is_covered() {
        let dcde = Dcde::fine_ps();
        assert!(dcde.max_delay() > 483e-12);
        assert!(
            dcde.resolution() <= 2e-12,
            "needs ps-class resolution (eq. 5)"
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn bad_period_panics() {
        let _ = ClockGenerator::new(0.0, JitterModel::None, 0);
    }
}
