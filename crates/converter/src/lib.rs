//! Data-converter behavioral models (paper Fig. 4).
//!
//! The receive-side ADCs an SDR reuses for BIST are modeled here at the
//! same level of abstraction the paper simulates: sampling clocks with
//! Gaussian jitter, a digitally controlled delay element (DCDE), 10-bit
//! quantization, and per-channel offset/gain/skew mismatches.
//!
//! - [`clock`]: jittered sampling clocks and the DCDE,
//! - [`quantizer`]: uniform mid-tread quantization with clipping,
//! - [`adc`]: a single ADC channel (S/H + mismatches + quantizer),
//! - [`tiadc`]: a classic interleaved two-channel TIADC (for mismatch
//!   spur demonstrations),
//! - [`bptiadc`]: the paper's nonuniform **BP-TIADC** that produces
//!   [`rfbist_sampling::NonuniformCapture`]s,
//! - [`calibration`]: offset/gain background calibration.
//!
//! # Example: the paper's capture front-end
//!
//! ```
//! use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
//! use rfbist_signal::tone::Tone;
//!
//! let cfg = BpTiadcConfig::paper_section_v(180e-12);
//! let mut adc = BpTiadc::new(cfg);
//! let cap = adc.capture(&Tone::unit(0.99e9), -40, 300);
//! assert_eq!(cap.len(), 300);
//! ```

pub mod adc;
pub mod bptiadc;
pub mod calibration;
pub mod clock;
pub mod quantizer;
pub mod tiadc;

pub use bptiadc::{BpTiadc, BpTiadcConfig};
pub use clock::{ClockGenerator, Dcde, JitterModel};
pub use quantizer::Quantizer;
