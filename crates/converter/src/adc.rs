//! A single ADC channel: sample-and-hold on a jittered clock, channel
//! offset/gain mismatch, then quantization.

use crate::clock::ClockGenerator;
use crate::quantizer::Quantizer;
use rfbist_signal::traits::ContinuousSignal;

/// One ADC channel of the (BP-)TIADC.
///
/// The conversion of a sample instant `t` is
/// `quantize((f(t + jitter) + offset)·(1 + gain_error))`.
///
/// # Example
///
/// ```
/// use rfbist_converter::adc::AdcChannel;
/// use rfbist_converter::clock::{ClockGenerator, JitterModel};
/// use rfbist_converter::quantizer::Quantizer;
/// use rfbist_signal::tone::Tone;
///
/// let clk = ClockGenerator::new(1.0 / 90e6, JitterModel::None, 0);
/// let adc = AdcChannel::new(clk, Quantizer::new(10, 2.0));
/// let samples = adc.capture(&Tone::unit(1e6), 0, 8);
/// assert_eq!(samples.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct AdcChannel {
    clock: ClockGenerator,
    quantizer: Quantizer,
    offset: f64,
    gain_error: f64,
}

impl AdcChannel {
    /// Creates an ideal-mismatch channel on the given clock and
    /// quantizer.
    pub fn new(clock: ClockGenerator, quantizer: Quantizer) -> Self {
        AdcChannel {
            clock,
            quantizer,
            offset: 0.0,
            gain_error: 0.0,
        }
    }

    /// Adds an input-referred DC offset (same units as the signal).
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Adds a relative gain error (e.g. `0.01` for +1 %).
    pub fn with_gain_error(mut self, gain_error: f64) -> Self {
        assert!(gain_error > -1.0, "gain error must keep the gain positive");
        self.gain_error = gain_error;
        self
    }

    /// The channel clock.
    pub fn clock(&self) -> &ClockGenerator {
        &self.clock
    }

    /// The channel quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Configured offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Configured relative gain error.
    pub fn gain_error(&self) -> f64 {
        self.gain_error
    }

    /// Converts the sample at clock edge `n`.
    pub fn convert_at_edge<S: ContinuousSignal>(&self, signal: &S, n: i64) -> f64 {
        let v = signal.eval(self.clock.edge(n));
        self.quantizer
            .quantize((v + self.offset) * (1.0 + self.gain_error))
    }

    /// Captures `count` consecutive samples starting at edge `n_start`.
    ///
    /// Batched: the clock edges are generated in one
    /// [`ClockGenerator::edges`] call, the signal is sampled through
    /// its (overridable) [`ContinuousSignal::sample`] batch entry
    /// point, and the mismatch/quantization stage runs as one pass
    /// over the buffer — so many-seed sweeps pay per-capture, not
    /// per-point, setup. Values are identical to evaluating
    /// [`convert_at_edge`](Self::convert_at_edge) per index.
    pub fn capture<S: ContinuousSignal>(&self, signal: &S, n_start: i64, count: usize) -> Vec<f64> {
        let times = self.clock.edges(n_start, count);
        let mut samples = signal.sample(&times);
        let gain = 1.0 + self.gain_error;
        for v in &mut samples {
            *v = self.quantizer.quantize((*v + self.offset) * gain);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::JitterModel;
    use rfbist_signal::tone::Tone;
    use rfbist_signal::traits::FnSignal;

    fn ideal_clock() -> ClockGenerator {
        ClockGenerator::new(1.0 / 90e6, JitterModel::None, 0)
    }

    #[test]
    fn ideal_channel_quantizes_only() {
        let adc = AdcChannel::new(ideal_clock(), Quantizer::new(16, 2.0));
        let sig = FnSignal(|t: f64| (t * 1e9).sin() * 0.5);
        let got = adc.convert_at_edge(&sig, 3);
        let t = 3.0 / 90e6;
        assert!((got - sig.eval(t)).abs() < 2.0 * 2.0 / 65536.0);
    }

    #[test]
    fn offset_shifts_samples() {
        let adc = AdcChannel::new(ideal_clock(), Quantizer::new(16, 2.0)).with_offset(0.25);
        let sig = FnSignal(|_| 0.0);
        let got = adc.convert_at_edge(&sig, 0);
        assert!((got - 0.25).abs() < 1e-4);
        assert_eq!(adc.offset(), 0.25);
    }

    #[test]
    fn gain_error_scales_samples() {
        let adc = AdcChannel::new(ideal_clock(), Quantizer::new(16, 2.0)).with_gain_error(0.02);
        let sig = FnSignal(|_| 1.0);
        let got = adc.convert_at_edge(&sig, 0);
        assert!((got - 1.02).abs() < 1e-4);
        assert_eq!(adc.gain_error(), 0.02);
    }

    #[test]
    fn capture_produces_consecutive_edges() {
        let adc = AdcChannel::new(ideal_clock(), Quantizer::new(16, 2.0));
        let tone = Tone::unit(1e6);
        let samples = adc.capture(&tone, 5, 10);
        for (i, s) in samples.iter().enumerate() {
            let t = (5 + i as i64) as f64 / 90e6;
            assert!((s - tone.eval(t)).abs() < 1e-4, "sample {i}");
        }
    }

    #[test]
    fn jittered_clock_perturbs_fast_signal() {
        let jittery = ClockGenerator::new(1.0 / 90e6, JitterModel::Gaussian { rms: 50e-12 }, 3);
        let adc_j = AdcChannel::new(jittery, Quantizer::new(16, 2.0));
        let adc_i = AdcChannel::new(ideal_clock(), Quantizer::new(16, 2.0));
        // 1 GHz tone: 50 ps rms jitter is ~0.3 rad phase noise
        let tone = Tone::unit(1e9);
        let sj = adc_j.capture(&tone, 0, 500);
        let si = adc_i.capture(&tone, 0, 500);
        let diff: f64 = sj.iter().zip(&si).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff / 500.0 > 0.01, "jitter had no visible effect");
    }

    #[test]
    #[should_panic(expected = "gain positive")]
    fn absurd_gain_error_panics() {
        let _ = AdcChannel::new(ideal_clock(), Quantizer::new(8, 1.0)).with_gain_error(-1.5);
    }
}
