//! Uniform quantization.

/// A uniform mid-tread quantizer with symmetric clipping.
///
/// # Example
///
/// ```
/// use rfbist_converter::quantizer::Quantizer;
///
/// let q = Quantizer::new(10, 1.0); // 10 bits over ±1 V
/// let lsb = q.lsb();
/// assert!((lsb - 2.0 / 1024.0).abs() < 1e-12);
/// assert_eq!(q.quantize(0.0), 0.0);
/// assert_eq!(q.quantize(10.0), q.quantize(2.0)); // clips
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantizer {
    bits: u32,
    full_scale: f64,
}

impl Quantizer {
    /// Creates a `bits`-bit quantizer spanning `±full_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 32, or `full_scale <= 0`.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((1..=32).contains(&bits), "bits must be 1..=32");
        assert!(full_scale > 0.0, "full scale must be positive");
        Quantizer { bits, full_scale }
    }

    /// The paper's converters: 10 bits.
    pub fn paper_default(full_scale: f64) -> Self {
        Quantizer::new(10, full_scale)
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale amplitude (the quantizer spans `±full_scale`).
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// One least-significant-bit step: `2·FS / 2^bits`.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantizes a sample (round to nearest level, clip to range).
    pub fn quantize(&self, v: f64) -> f64 {
        let lsb = self.lsb();
        let max_code = ((1u64 << self.bits) / 2 - 1) as f64;
        let code = (v / lsb).round().clamp(-(max_code + 1.0), max_code);
        code * lsb
    }

    /// `true` when `v` exceeds the clipping range.
    pub fn clips(&self, v: f64) -> bool {
        let lsb = self.lsb();
        let max_code = ((1u64 << self.bits) / 2 - 1) as f64;
        (v / lsb).round() > max_code || (v / lsb).round() < -(max_code + 1.0)
    }

    /// Ideal full-scale sine SNR: `6.02·bits + 1.76` dB.
    pub fn ideal_snr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::stats;

    #[test]
    fn lsb_and_levels() {
        let q = Quantizer::new(10, 1.0);
        assert!((q.lsb() - 2.0 / 1024.0).abs() < 1e-15);
        assert_eq!(q.bits(), 10);
        assert_eq!(q.full_scale(), 1.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(8, 2.0);
        for v in [-1.9, -0.3, 0.0, 0.7, 1.99] {
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn error_is_bounded_by_half_lsb() {
        let q = Quantizer::new(10, 1.0);
        for i in 0..1000 {
            let v = -0.99 + i as f64 * 0.00198;
            let e = (q.quantize(v) - v).abs();
            assert!(e <= q.lsb() / 2.0 + 1e-15, "error {e} at {v}");
        }
    }

    #[test]
    fn clipping_at_extremes() {
        let q = Quantizer::new(10, 1.0);
        assert!(q.clips(1.5));
        assert!(q.clips(-1.5));
        assert!(!q.clips(0.5));
        let top = q.quantize(10.0);
        let max_code = 511.0;
        assert!((top - max_code * q.lsb()).abs() < 1e-15);
        let bottom = q.quantize(-10.0);
        assert!((bottom + 512.0 * q.lsb()).abs() < 1e-15);
    }

    #[test]
    fn quantization_noise_power_matches_lsb_squared_over_12() {
        // quantize a uniform ramp; error variance ≈ Δ²/12
        let q = Quantizer::new(10, 1.0);
        let errors: Vec<f64> = (0..100000)
            .map(|i| {
                let v = -0.9 + 1.8 * (i as f64 * 0.6180339887498949).fract();
                q.quantize(v) - v
            })
            .collect();
        let var = stats::variance(&errors);
        let expected = q.lsb() * q.lsb() / 12.0;
        assert!(
            (var - expected).abs() / expected < 0.05,
            "{var} vs {expected}"
        );
    }

    #[test]
    fn measured_snr_matches_ideal_formula() {
        use rfbist_dsp::specmetrics::analyze_tone;
        use rfbist_dsp::window::Window;
        let q = Quantizer::paper_default(1.0);
        let fs = 90e6;
        let n = 1 << 14;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                q.quantize(0.999 * (2.0 * std::f64::consts::PI * 10.123e6 * t).sin())
            })
            .collect();
        let m = analyze_tone(&x, fs, Window::BlackmanHarris);
        assert!(
            (m.sinad_db - q.ideal_snr_db()).abs() < 2.0,
            "sinad {} vs ideal {}",
            m.sinad_db,
            q.ideal_snr_db()
        );
    }

    #[test]
    fn one_bit_quantizer_is_a_comparator() {
        let q = Quantizer::new(1, 1.0);
        assert_eq!(q.lsb(), 1.0);
        assert_eq!(q.quantize(0.7), 0.0 * 1.0_f64.max(0.0)); // rounds 0.7 -> code 1? clamp to max_code = 0
                                                             // max positive code for 1 bit is 0, min is −1
        assert_eq!(q.quantize(5.0), 0.0);
        assert_eq!(q.quantize(-5.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_panics() {
        let _ = Quantizer::new(0, 1.0);
    }
}
