//! The nonuniform bandpass time-interleaved ADC (paper Fig. 4).
//!
//! Two ADC channels driven by the same clock generator; the second
//! channel's sampling instants are shifted by the DCDE-programmed delay
//! `D`. Captures come back as [`NonuniformCapture`]s ready for PNBS
//! reconstruction. The capture records the *true* physical delay
//! (including DCDE quantization), which the estimation algorithms must
//! recover — they never read it.

use crate::adc::AdcChannel;
use crate::clock::{ClockGenerator, Dcde, JitterModel};
use crate::quantizer::Quantizer;
use rfbist_sampling::NonuniformCapture;
use rfbist_signal::traits::ContinuousSignal;

/// Where the clock jitter physically originates (paper Fig. 4 shows one
/// clock generator feeding both sample-and-holds, the second through
/// the DCDE — either element can dominate the jitter budget).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JitterPlacement {
    /// The DCDE's delay jitters: only the delayed channel's edges
    /// wander relative to the clean reference channel ("time-skew
    /// jitter", the paper's wording). The inter-channel skew itself is
    /// noisy.
    #[default]
    DcdeOnly,
    /// The shared clock generator jitters: each edge pair moves
    /// together, so the skew stays exact while absolute sampling
    /// instants wander.
    CommonMode,
}

/// Configuration of a BP-TIADC.
#[derive(Clone, Copy, Debug)]
pub struct BpTiadcConfig {
    /// Per-channel sample rate in Hz (the reconstruction bandwidth `B`).
    pub sample_rate: f64,
    /// Target DCDE delay in seconds.
    pub delay_target: f64,
    /// DCDE step resolution in seconds.
    pub dcde_resolution: f64,
    /// Clock jitter model.
    pub jitter: JitterModel,
    /// Which element the jitter originates from.
    pub jitter_placement: JitterPlacement,
    /// Converter resolution in bits.
    pub bits: u32,
    /// Full-scale amplitude.
    pub full_scale: f64,
    /// Channel-0 DC offset.
    pub offset_even: f64,
    /// Channel-1 DC offset.
    pub offset_odd: f64,
    /// Channel-0 relative gain error.
    pub gain_error_even: f64,
    /// Channel-1 relative gain error.
    pub gain_error_odd: f64,
    /// Jitter seed (captures are deterministic given the seed).
    pub seed: u64,
}

impl BpTiadcConfig {
    /// The paper's Section V configuration: two 10-bit ADCs at
    /// `B = 90 MHz`, 3 ps rms clock jitter, no offset/gain mismatch,
    /// and the given DCDE delay target.
    pub fn paper_section_v(delay_target: f64) -> Self {
        BpTiadcConfig {
            sample_rate: 90e6,
            delay_target,
            dcde_resolution: 1e-12,
            jitter: JitterModel::paper_default(),
            jitter_placement: JitterPlacement::DcdeOnly,
            bits: 10,
            full_scale: 2.0,
            offset_even: 0.0,
            offset_odd: 0.0,
            gain_error_even: 0.0,
            gain_error_odd: 0.0,
            seed: 0x5EED,
        }
    }

    /// Same as [`paper_section_v`](Self::paper_section_v) but with ideal
    /// clocks and effectively unquantized converters — for isolating
    /// algorithmic error from front-end error.
    pub fn ideal(sample_rate: f64, delay_target: f64) -> Self {
        BpTiadcConfig {
            sample_rate,
            delay_target,
            dcde_resolution: 1e-15,
            jitter: JitterModel::None,
            jitter_placement: JitterPlacement::DcdeOnly,
            bits: 24,
            full_scale: 8.0,
            offset_even: 0.0,
            offset_odd: 0.0,
            gain_error_even: 0.0,
            gain_error_odd: 0.0,
            seed: 0,
        }
    }

    /// Builder-style: set the per-channel sample rate.
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Builder-style: set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the jitter placement.
    pub fn with_jitter_placement(mut self, placement: JitterPlacement) -> Self {
        self.jitter_placement = placement;
        self
    }

    /// Builder-style: set channel mismatches.
    pub fn with_mismatch(
        mut self,
        offset_even: f64,
        offset_odd: f64,
        gain_error_even: f64,
        gain_error_odd: f64,
    ) -> Self {
        self.offset_even = offset_even;
        self.offset_odd = offset_odd;
        self.gain_error_even = gain_error_even;
        self.gain_error_odd = gain_error_odd;
        self
    }
}

/// The assembled two-channel nonuniform sampler.
#[derive(Clone, Debug)]
pub struct BpTiadc {
    config: BpTiadcConfig,
    dcde: Dcde,
    even: AdcChannel,
    odd: AdcChannel,
}

impl BpTiadc {
    /// Builds the converter from a configuration.
    ///
    /// The DCDE is sized to cover one clock period at the configured
    /// step resolution. Its code register is 32-bit, so for slow-rate /
    /// fine-resolution configurations where `period / resolution`
    /// exceeds `u32::MAX` (≈ 4.3e9 steps — e.g. rates below ~233 Hz at
    /// 1 ps resolution, where the period tops 4.3 ms)
    /// the range saturates: the largest programmable delay clamps at
    /// `u32::MAX · resolution` instead of the full period. Every
    /// realistic converter clock sits many orders of magnitude inside
    /// the bound; `dcde_range_saturates_for_slow_fine_configs` pins the
    /// clamping behavior.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0` or the delay target is negative.
    pub fn new(config: BpTiadcConfig) -> Self {
        assert!(config.sample_rate > 0.0, "sample rate must be positive");
        assert!(
            config.delay_target >= 0.0,
            "delay target must be non-negative"
        );
        let period = 1.0 / config.sample_rate;
        // float→u32 `as` saturates, bounding the range documented above
        let mut dcde = Dcde::new(
            config.dcde_resolution,
            ((1.0 / config.sample_rate) / config.dcde_resolution).ceil() as u32,
        );
        let actual_delay = dcde.set_delay(config.delay_target);
        let quant = Quantizer::new(config.bits, config.full_scale);
        let (clk_even, clk_odd) = Self::clocks(&config, period, actual_delay);
        BpTiadc {
            config,
            dcde,
            even: AdcChannel::new(clk_even, quant)
                .with_offset(config.offset_even)
                .with_gain_error(config.gain_error_even),
            odd: AdcChannel::new(clk_odd, quant)
                .with_offset(config.offset_odd)
                .with_gain_error(config.gain_error_odd),
        }
    }

    /// The configuration this converter was built from.
    pub fn config(&self) -> &BpTiadcConfig {
        &self.config
    }

    /// Builds the channel clocks for the configured jitter placement.
    ///
    /// `DcdeOnly`: the reference channel is clean and the delayed
    /// channel carries the skew jitter. `CommonMode`: both channels use
    /// the *same* seed, so each edge pair shares one jitter draw and
    /// the skew stays exact.
    fn clocks(
        config: &BpTiadcConfig,
        period: f64,
        actual_delay: f64,
    ) -> (ClockGenerator, ClockGenerator) {
        match config.jitter_placement {
            JitterPlacement::DcdeOnly => (
                ClockGenerator::new(period, JitterModel::None, config.seed),
                ClockGenerator::new(period, config.jitter, config.seed ^ 0xABCD_EF01)
                    .with_phase_offset(actual_delay),
            ),
            JitterPlacement::CommonMode => (
                ClockGenerator::new(period, config.jitter, config.seed),
                ClockGenerator::new(period, config.jitter, config.seed)
                    .with_phase_offset(actual_delay),
            ),
        }
    }

    /// The true physical delay produced by the DCDE (test code may read
    /// this as ground truth; BIST algorithms must not).
    pub fn true_delay(&self) -> f64 {
        self.dcde.delay()
    }

    /// Reprograms the DCDE, returning the new physical delay.
    pub fn set_delay(&mut self, target: f64) -> f64 {
        let d = self.dcde.set_delay(target);
        let period = 1.0 / self.config.sample_rate;
        let (_, clk_odd) = Self::clocks(&self.config, period, d);
        self.odd = AdcChannel::new(clk_odd, *self.odd.quantizer())
            .with_offset(self.config.offset_odd)
            .with_gain_error(self.config.gain_error_odd);
        d
    }

    /// Captures `count` sample pairs starting at edge `n_start`.
    pub fn capture<S: ContinuousSignal>(
        &mut self,
        signal: &S,
        n_start: i64,
        count: usize,
    ) -> NonuniformCapture {
        let even = self.even.capture(signal, n_start, count);
        let odd = self.odd.capture(signal, n_start, count);
        NonuniformCapture::from_streams(
            1.0 / self.config.sample_rate,
            self.true_delay(),
            n_start,
            even,
            odd,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::rng::Randomizer;
    use rfbist_math::stats::nrmse;
    use rfbist_sampling::band::BandSpec;
    use rfbist_sampling::reconstruct::PnbsReconstructor;
    use rfbist_signal::tone::Tone;

    #[test]
    fn paper_config_values() {
        let cfg = BpTiadcConfig::paper_section_v(180e-12);
        assert_eq!(cfg.sample_rate, 90e6);
        assert_eq!(cfg.bits, 10);
        assert!(matches!(cfg.jitter, JitterModel::Gaussian { rms } if rms == 3e-12));
    }

    #[test]
    fn dcde_sets_true_delay() {
        let adc = BpTiadc::new(BpTiadcConfig::paper_section_v(180.4e-12));
        assert!((adc.true_delay() - 180e-12).abs() < 1e-18);
    }

    #[test]
    fn capture_is_deterministic() {
        let tone = Tone::unit(0.99e9);
        let mut a = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
        let mut b = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
        assert_eq!(a.capture(&tone, 0, 50), b.capture(&tone, 0, 50));
        // different seed differs
        let mut c = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12).with_seed(99));
        assert_ne!(a.capture(&tone, 0, 50), c.capture(&tone, 0, 50));
    }

    #[test]
    fn ideal_capture_matches_analytic_sampling() {
        let tone = Tone::unit(0.99e9);
        let mut adc = BpTiadc::new(BpTiadcConfig::ideal(90e6, 180e-12));
        let cap = adc.capture(&tone, -5, 20);
        let t_s = 1.0 / 90e6;
        for i in 0..20 {
            let n = -5 + i as i64;
            let te = n as f64 * t_s;
            assert!((cap.even()[i] - tone.eval(te)).abs() < 1e-6, "even {i}");
            assert!(
                (cap.odd()[i] - tone.eval(te + 180e-12)).abs() < 1e-6,
                "odd {i}"
            );
        }
    }

    #[test]
    fn paper_frontend_reconstruction_error_is_subpercent() {
        // With 10 bits + 3 ps jitter, reconstruction error should land
        // near the paper's Δε ≈ 0.84 % (Table I), certainly < 3 %.
        let tone = Tone::new(0.99e9, 0.9, 0.2);
        let mut adc = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
        let cap = adc.capture(&tone, -60, 400);
        let band = BandSpec::centered(1e9, 90e6);
        let rec = PnbsReconstructor::paper_default(band, adc.true_delay()).unwrap();
        let mut rng = Randomizer::from_seed(4);
        let times: Vec<f64> = (0..300).map(|_| rng.uniform(0.5e-6, 2.5e-6)).collect();
        let err = nrmse(&rec.reconstruct(&cap, &times), &tone.sample(&times));
        assert!(err < 0.03, "nrmse {err}");
        assert!(
            err > 0.001,
            "suspiciously clean for a 10-bit jittery front-end: {err}"
        );
    }

    #[test]
    fn channel_mismatch_is_applied() {
        // 987.1 MHz is deliberately incoherent with the 90 MHz clock so
        // the per-channel means converge to the offsets.
        let tone = Tone::unit(0.9871e9);
        let cfg = BpTiadcConfig::ideal(90e6, 180e-12).with_mismatch(0.1, -0.1, 0.01, -0.01);
        let mut adc = BpTiadc::new(cfg);
        let cap = adc.capture(&tone, 0, 2000);
        let mean_even: f64 = cap.even().iter().sum::<f64>() / 2000.0;
        let mean_odd: f64 = cap.odd().iter().sum::<f64>() / 2000.0;
        assert!((mean_even - 0.1).abs() < 0.05, "even offset {mean_even}");
        assert!((mean_odd + 0.1).abs() < 0.05, "odd offset {mean_odd}");
    }

    #[test]
    fn set_delay_reprograms_odd_channel() {
        let tone = Tone::unit(0.99e9);
        let mut adc = BpTiadc::new(BpTiadcConfig::ideal(90e6, 100e-12));
        let cap_before = adc.capture(&tone, 0, 10);
        let new_d = adc.set_delay(300e-12);
        assert!((new_d - 300e-12).abs() < 1e-15);
        let cap_after = adc.capture(&tone, 0, 10);
        assert_eq!(
            cap_before.even(),
            cap_after.even(),
            "even channel unchanged"
        );
        assert_ne!(cap_before.odd(), cap_after.odd(), "odd channel must move");
        assert_eq!(cap_after.delay(), new_d);
    }

    #[test]
    fn common_mode_jitter_preserves_skew_exactly() {
        // Under CommonMode, each pair shares one jitter draw, so
        // odd_time − even_time is exactly D even though both wander.
        // Probe via a linear "signal" whose value IS the sample time.
        use rfbist_signal::traits::FnSignal;
        // steep ramp: 0.1 ps of timing resolves to one 24-bit LSB
        let ramp = FnSignal(|t: f64| t * 1e7);
        let mut cfg = BpTiadcConfig::paper_section_v(180e-12)
            .with_jitter_placement(JitterPlacement::CommonMode);
        cfg.bits = 24;
        cfg.full_scale = 8.0;
        let mut adc = BpTiadc::new(cfg);
        let cap = adc.capture(&ramp, 0, 50);
        for i in 0..50 {
            let dt = (cap.odd()[i] - cap.even()[i]) / 1e7;
            assert!(
                (dt - 180e-12).abs() < 0.5e-12,
                "pair {i}: spacing {} ps",
                dt * 1e12
            );
        }
        // whereas under DcdeOnly the spacing wanders by the jitter
        let mut cfg2 = BpTiadcConfig::paper_section_v(180e-12);
        cfg2.bits = 24;
        cfg2.full_scale = 8.0;
        let mut adc2 = BpTiadc::new(cfg2);
        let cap2 = adc2.capture(&ramp, 0, 50);
        let wander = (0..50)
            .map(|i| ((cap2.odd()[i] - cap2.even()[i]) / 1e7 - 180e-12).abs())
            .fold(0.0f64, f64::max);
        assert!(wander > 3e-12, "DcdeOnly spacing should wander: {wander}");
    }

    #[test]
    fn dcde_range_saturates_for_slow_fine_configs() {
        // period / resolution = 10 s / 1 ps = 1e13 steps overflows the
        // 32-bit code register; the float→u32 cast saturates, so the
        // programmable range clamps at u32::MAX steps (≈ 4.295 ms)
        // instead of covering the full period
        let mut cfg = BpTiadcConfig::ideal(0.1, 0.0);
        cfg.dcde_resolution = 1e-12;
        let mut adc = BpTiadc::new(cfg);
        let got = adc.set_delay(5.0); // ask for half the 10 s period
        let clamp = u32::MAX as f64 * 1e-12;
        assert_eq!(got, clamp, "range must clamp at u32::MAX steps");
        assert!(got < 1.0 / cfg.sample_rate, "clamp is below the period");
        // a fast-clock config is far inside the bound: the full period
        // remains addressable
        let mut paper = BpTiadc::new(BpTiadcConfig::paper_section_v(180e-12));
        let period = 1.0 / 90e6;
        assert!((paper.set_delay(period) - period).abs() <= 1e-12);
    }

    #[test]
    fn capture_matches_per_edge_conversion() {
        // the batched capture path (edges + sample + one-pass
        // mismatch/quantize) must be sample-identical to the scalar
        // per-edge path, jitter and mismatches included
        let tone = Tone::new(0.99e9, 0.9, 0.3);
        let cfg = BpTiadcConfig::paper_section_v(180e-12).with_mismatch(0.05, -0.02, 0.01, -0.03);
        let adc = BpTiadc::new(cfg);
        let batched = adc.even.capture(&tone, -7, 64);
        for (i, &v) in batched.iter().enumerate() {
            assert_eq!(v, adc.even.convert_at_edge(&tone, -7 + i as i64), "i {i}");
        }
        let odd = adc.odd.capture(&tone, -7, 64);
        for (i, &v) in odd.iter().enumerate() {
            assert_eq!(
                v,
                adc.odd.convert_at_edge(&tone, -7 + i as i64),
                "odd i {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let _ = BpTiadc::new(BpTiadcConfig::paper_section_v(-1e-12));
    }
}
