//! Offset and gain background calibration.
//!
//! The paper notes that "the offset and the gain error calibrations are
//! relatively simple to implement [16]" and focuses on time skew. This
//! module supplies that simple machinery: estimate per-channel offset
//! and relative gain from a capture, and return a corrected capture, so
//! the skew estimators can assume offset/gain-clean streams.

use rfbist_sampling::NonuniformCapture;

/// Estimated channel mismatches of a two-channel capture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MismatchEstimate {
    /// Mean of the even stream (offset estimate).
    pub offset_even: f64,
    /// Mean of the odd stream.
    pub offset_odd: f64,
    /// RMS ratio `odd/even` after offset removal (relative gain).
    pub gain_ratio: f64,
}

/// Estimates offsets and relative gain from a capture.
///
/// Assumes the two streams sample the *same* wide-sense-stationary
/// signal, so their long-run means and powers should agree — the
/// standard background-calibration assumption of Fu et al. [16].
pub fn estimate_mismatch(capture: &NonuniformCapture) -> MismatchEstimate {
    let n = capture.len() as f64;
    let offset_even = capture.even().iter().sum::<f64>() / n;
    let offset_odd = capture.odd().iter().sum::<f64>() / n;
    let pow = |s: &[f64], o: f64| s.iter().map(|&v| (v - o) * (v - o)).sum::<f64>() / n;
    let p_even = pow(capture.even(), offset_even);
    let p_odd = pow(capture.odd(), offset_odd);
    let gain_ratio = if p_even > 0.0 {
        (p_odd / p_even).sqrt()
    } else {
        1.0
    };
    MismatchEstimate {
        offset_even,
        offset_odd,
        gain_ratio,
    }
}

/// Returns a capture with the estimated offsets removed and the odd
/// stream rescaled onto the even stream's gain.
pub fn correct(capture: &NonuniformCapture, est: MismatchEstimate) -> NonuniformCapture {
    let even: Vec<f64> = capture
        .even()
        .iter()
        .map(|&v| v - est.offset_even)
        .collect();
    let inv_gain = if est.gain_ratio != 0.0 {
        1.0 / est.gain_ratio
    } else {
        1.0
    };
    let odd: Vec<f64> = capture
        .odd()
        .iter()
        .map(|&v| (v - est.offset_odd) * inv_gain)
        .collect();
    NonuniformCapture::from_streams(
        capture.period(),
        capture.delay(),
        capture.n_start(),
        even,
        odd,
    )
}

/// Convenience: estimate and correct in one call.
pub fn auto_calibrate(capture: &NonuniformCapture) -> (NonuniformCapture, MismatchEstimate) {
    let est = estimate_mismatch(capture);
    (correct(capture, est), est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptiadc::{BpTiadc, BpTiadcConfig};
    use rfbist_signal::tone::Tone;

    fn mismatched_capture() -> NonuniformCapture {
        let cfg = BpTiadcConfig::ideal(90e6, 180e-12).with_mismatch(0.08, -0.05, 0.0, 0.03);
        let mut adc = BpTiadc::new(cfg);
        // long capture over many tone periods for stable statistics
        adc.capture(&Tone::unit(0.9871e9), 0, 4000)
    }

    #[test]
    fn offsets_are_recovered() {
        let cap = mismatched_capture();
        let est = estimate_mismatch(&cap);
        assert!((est.offset_even - 0.08).abs() < 0.02, "{}", est.offset_even);
        assert!((est.offset_odd + 0.05).abs() < 0.02, "{}", est.offset_odd);
    }

    #[test]
    fn gain_ratio_is_recovered() {
        let cap = mismatched_capture();
        let est = estimate_mismatch(&cap);
        // odd gain error +3 % relative to even
        assert!((est.gain_ratio - 1.03).abs() < 0.01, "{}", est.gain_ratio);
    }

    #[test]
    fn correction_flattens_mismatch() {
        let cap = mismatched_capture();
        let (fixed, _) = auto_calibrate(&cap);
        let est2 = estimate_mismatch(&fixed);
        assert!(est2.offset_even.abs() < 1e-12);
        assert!(est2.offset_odd.abs() < 1e-12);
        assert!((est2.gain_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clean_capture_is_left_nearly_untouched() {
        let mut adc = BpTiadc::new(BpTiadcConfig::ideal(90e6, 180e-12));
        let cap = adc.capture(&Tone::unit(0.9871e9), 0, 4000);
        let (fixed, est) = auto_calibrate(&cap);
        assert!(est.offset_even.abs() < 5e-3);
        assert!((est.gain_ratio - 1.0).abs() < 5e-3);
        let max_change = cap
            .even()
            .iter()
            .zip(fixed.even())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_change < 0.01);
    }

    #[test]
    fn metadata_is_preserved() {
        let cap = mismatched_capture();
        let (fixed, _) = auto_calibrate(&cap);
        assert_eq!(fixed.period(), cap.period());
        assert_eq!(fixed.delay(), cap.delay());
        assert_eq!(fixed.n_start(), cap.n_start());
        assert_eq!(fixed.len(), cap.len());
    }
}
