//! Classic two-channel time-interleaved ADC.
//!
//! The conventional TIADC interleaves two half-rate channels onto one
//! uniform output grid. Channel mismatches (offset, gain, time skew)
//! create the well-known image spurs at `f_s/2 ± f_in` — the problem
//! domain the paper's references [13], [14], [16] address, and the
//! baseline architecture against which the nonuniform BP-TIADC is
//! contrasted (there, skew need only be *known*, not nulled).

use crate::adc::AdcChannel;
use crate::clock::{ClockGenerator, JitterModel};
use crate::quantizer::Quantizer;
use rfbist_signal::traits::ContinuousSignal;

/// A standard two-way interleaved converter with per-channel mismatch.
#[derive(Clone, Debug)]
pub struct Tiadc {
    /// Channel sampling the even output indices.
    even: AdcChannel,
    /// Channel sampling the odd output indices.
    odd: AdcChannel,
    /// Aggregate output rate (each channel runs at half this).
    output_rate: f64,
}

impl Tiadc {
    /// Creates a TIADC with the given aggregate `output_rate`, converter
    /// resolution, and channel-1 mismatches relative to an ideal
    /// channel 0.
    ///
    /// # Panics
    ///
    /// Panics if `output_rate <= 0`.
    pub fn new(
        output_rate: f64,
        bits: u32,
        full_scale: f64,
        offset_mismatch: f64,
        gain_mismatch: f64,
        skew: f64,
    ) -> Self {
        assert!(output_rate > 0.0, "output rate must be positive");
        let ch_period = 2.0 / output_rate;
        let quant = Quantizer::new(bits, full_scale);
        let even = AdcChannel::new(ClockGenerator::new(ch_period, JitterModel::None, 0), quant);
        let odd = AdcChannel::new(
            ClockGenerator::new(ch_period, JitterModel::None, 1)
                .with_phase_offset(ch_period / 2.0 + skew),
            quant,
        )
        .with_offset(offset_mismatch)
        .with_gain_error(gain_mismatch);
        Tiadc {
            even,
            odd,
            output_rate,
        }
    }

    /// Aggregate output sample rate in Hz.
    pub fn output_rate(&self) -> f64 {
        self.output_rate
    }

    /// Captures `count` interleaved output samples starting at output
    /// index 0.
    pub fn capture<S: ContinuousSignal>(&self, signal: &S, count: usize) -> Vec<f64> {
        (0..count)
            .map(|k| {
                let n = (k / 2) as i64;
                if k % 2 == 0 {
                    self.even.convert_at_edge(signal, n)
                } else {
                    self.odd.convert_at_edge(signal, n)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_dsp::psd::periodogram;
    use rfbist_dsp::window::Window;
    use rfbist_signal::tone::Tone;

    const FS: f64 = 200e6;

    fn image_and_signal_power(samples: &[f64], f0: f64) -> (f64, f64) {
        let est = periodogram(samples, FS, Window::BlackmanHarris);
        let sig = est.band_power(f0 - 2e6, f0 + 2e6);
        let image_f = FS / 2.0 - f0;
        let img = est.band_power(image_f - 2e6, image_f + 2e6);
        (img, sig)
    }

    #[test]
    fn ideal_tiadc_has_no_interleaving_spur() {
        let adc = Tiadc::new(FS, 14, 2.0, 0.0, 0.0, 0.0);
        let tone = Tone::new(30e6, 0.9, 0.3);
        let y = adc.capture(&tone, 1 << 14);
        let (img, sig) = image_and_signal_power(&y, 30e6);
        assert!(img / sig < 1e-6, "image/signal {}", img / sig);
    }

    #[test]
    fn gain_mismatch_creates_image_at_fs2_minus_f() {
        let adc = Tiadc::new(FS, 14, 2.0, 0.0, 0.02, 0.0);
        let tone = Tone::new(30e6, 0.9, 0.3);
        let y = adc.capture(&tone, 1 << 14);
        let (img, sig) = image_and_signal_power(&y, 30e6);
        // gain mismatch g splits the signal as x·(1 + g/2 + (g/2)(−1)ⁿ):
        // image-to-signal ratio (g/2)² = (0.01)² → −40 dB
        let rel_db = 10.0 * (img / sig).log10();
        assert!((rel_db + 40.0).abs() < 1.0, "image at {rel_db} dB");
    }

    #[test]
    fn skew_creates_image_proportional_to_frequency() {
        let skew = 20e-12;
        let adc = Tiadc::new(FS, 14, 2.0, 0.0, 0.0, skew);
        let t_low = Tone::new(20e6, 0.9, 0.0);
        let t_high = Tone::new(60e6, 0.9, 0.0);
        let (img_lo, sig_lo) = image_and_signal_power(&adc.capture(&t_low, 1 << 14), 20e6);
        let (img_hi, sig_hi) = image_and_signal_power(&adc.capture(&t_high, 1 << 14), 60e6);
        let rel_lo = img_lo / sig_lo;
        let rel_hi = img_hi / sig_hi;
        // image power scales as (π·f·skew)² → 3× frequency = ~9.5 dB more
        let ratio_db = 10.0 * (rel_hi / rel_lo).log10();
        assert!((ratio_db - 9.5).abs() < 2.0, "scaling {ratio_db} dB");
    }

    #[test]
    fn offset_mismatch_creates_fs2_spur() {
        let adc = Tiadc::new(FS, 14, 2.0, 0.05, 0.0, 0.0);
        let tone = Tone::new(30e6, 0.5, 0.0);
        let y = adc.capture(&tone, 1 << 14);
        let est = periodogram(&y, FS, Window::BlackmanHarris);
        let spur = est.band_power(FS / 2.0 - 2e6, FS / 2.0);
        // offset mismatch o appears as (o/2)·(−1)ⁿ — a tone exactly at
        // Nyquist, whose power is its amplitude squared: (o/2)² = 6.25e-4
        assert!((spur - 6.25e-4).abs() < 1e-4, "fs/2 spur power {spur}");
    }

    #[test]
    fn output_rate_is_reported() {
        let adc = Tiadc::new(FS, 10, 1.0, 0.0, 0.0, 0.0);
        assert_eq!(adc.output_rate(), FS);
    }
}
