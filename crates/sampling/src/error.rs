//! Reconstruction-sensitivity bounds (paper eqs. 4 and 5).
//!
//! With only an estimate `D̂ = D + ΔD` available, the relative spectral
//! error of the PNBS reconstruction is approximately
//!
//! ```text
//! ΔF = |(F̂(ν) − F(ν)) / F(ν)| ≈ π·B·(k+1)·ΔD        (eq. 4)
//! ```
//!
//! which, inverted, gives the skew-knowledge budget that motivates the
//! whole estimation machinery: ps-level accuracy for GHz carriers
//! (eq. 5).

use crate::band::BandSpec;

/// Predicted relative spectral error for a skew-knowledge error
/// `delta_d` seconds (paper eq. 4): `π·B·(k+1)·ΔD`.
pub fn spectral_error_bound(band: BandSpec, delta_d: f64) -> f64 {
    std::f64::consts::PI * band.bandwidth() * (band.k() as f64 + 1.0) * delta_d.abs()
}

/// Maximum tolerable skew error (seconds) for a target relative spectral
/// error `delta_f` (paper eq. 5): `ΔD ≤ ΔF / (π·B·(k+1))`.
///
/// # Panics
///
/// Panics if `delta_f` is not positive.
pub fn skew_budget(band: BandSpec, delta_f: f64) -> f64 {
    assert!(delta_f > 0.0, "target error must be positive");
    delta_f / (std::f64::consts::PI * band.bandwidth() * (band.k() as f64 + 1.0))
}

/// The paper's worked example (eq. 5): a 1 GHz carrier sampled at
/// `B = 80 MHz` with a 1 % spectral-error target needs `ΔD ≲ 2 ps`.
pub fn paper_eq5_example() -> f64 {
    skew_budget(BandSpec::centered(1e9, 80e6), 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_example_is_about_2ps() {
        let budget = paper_eq5_example();
        // ΔD = 0.01 / (π·80e6·25) = 1.59 ps — the paper rounds to "≈ 2 ps"
        assert!(
            (budget * 1e12 - 1.5915).abs() < 0.01,
            "{} ps",
            budget * 1e12
        );
        assert!(budget < 2.1e-12);
    }

    #[test]
    fn bound_is_linear_in_delta_d() {
        let band = BandSpec::centered(1e9, 90e6);
        let e1 = spectral_error_bound(band, 1e-12);
        let e2 = spectral_error_bound(band, 2e-12);
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
        // symmetric in sign
        assert_eq!(spectral_error_bound(band, -1e-12), e1);
    }

    #[test]
    fn bound_grows_with_band_position() {
        // same bandwidth, higher carrier → larger k → tighter requirement
        let low = BandSpec::centered(0.5e9, 90e6);
        let high = BandSpec::centered(2.0e9, 90e6);
        assert!(spectral_error_bound(high, 1e-12) > spectral_error_bound(low, 1e-12));
    }

    #[test]
    fn budget_inverts_bound() {
        let band = BandSpec::centered(1e9, 90e6);
        let target = 0.005;
        let budget = skew_budget(band, target);
        let achieved = spectral_error_bound(band, budget);
        assert!((achieved - target).abs() < 1e-12);
    }

    #[test]
    fn paper_section_v_skew_scale() {
        // For the experiment band (B = 90 MHz, k+1 = 23), 1 ps of skew
        // error costs ≈ 0.65 % spectral error — why sub-ps estimation
        // (paper Table I) matters.
        let band = BandSpec::centered(1e9, 90e6);
        let e = spectral_error_bound(band, 1e-12);
        assert!((e - 0.0065).abs() < 0.0005, "{e}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_target_panics() {
        let _ = skew_budget(BandSpec::centered(1e9, 80e6), 0.0);
    }
}
