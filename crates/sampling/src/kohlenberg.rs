//! Kohlenberg second-order interpolants (paper eq. 2) and the delay
//! constraints (eq. 3).
//!
//! For a band `(f_l, f_l + B)` sampled by two uniform streams `f(nT)`
//! and `f(nT + D)` with `T = 1/B`, the exact interpolation kernel is
//! `s(t) = s₀(t) + s₁(t)` with
//!
//! ```text
//! s₀(t) = [cos(2π(kB−f_l)t − kπBD) − cos(2πf_l·t − kπBD)] / (2πBt·sin(kπBD))
//! s₁(t) = [cos(2π(f_l+B)t − k⁺πBD) − cos(2π(kB−f_l)t − k⁺πBD)] / (2πBt·sin(k⁺πBD))
//! k = ⌈2f_l/B⌉,  k⁺ = k + 1
//! ```
//!
//! The kernel satisfies `s(0) = 1` and `s(nT) = 0` for `n ≠ 0` (verified
//! in the tests), which is what makes eq. (1)/(6) an interpolation
//! formula. It degenerates when `sin(kπBD) = 0` or `sin(k⁺πBD) = 0`,
//! i.e. at the forbidden delays `D = nT/k` and `D = nT/k⁺` — except that
//! for *integer-positioned* bands (`2f_l/B ∈ ℕ`) the first term vanishes
//! identically and constraint (3a) disappears, exactly as the paper
//! remarks.

use crate::band::BandSpec;
use std::f64::consts::PI;
use std::fmt;

/// Violations of the delay constraints (paper eq. 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayConstraintError {
    /// `D` must be strictly positive (equal sampling instants carry no
    /// second-order information).
    NonPositive,
    /// `D` is too close to a forbidden value `nT/k` or `nT/k⁺`, making
    /// the reconstruction filter unstable.
    NearSingular {
        /// The forbidden delay that was approached, in seconds.
        forbidden: f64,
        /// The divisor involved (`k` or `k⁺`).
        divisor: u32,
    },
}

impl fmt::Display for DelayConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayConstraintError::NonPositive => {
                write!(f, "delay must be strictly positive")
            }
            DelayConstraintError::NearSingular { forbidden, divisor } => write!(
                f,
                "delay is too close to the forbidden value {:.3} ps (= nT/{divisor})",
                forbidden * 1e12
            ),
        }
    }
}

impl std::error::Error for DelayConstraintError {}

/// Relative margin below which a delay counts as "too close" to a
/// forbidden value (the filter coefficients scale as `1/sin`, so a 1e-4
/// relative margin still yields usable, if large, coefficients).
const SINGULARITY_MARGIN: f64 = 1e-6;

/// Checks paper eq. (3): `D ≠ nT/k` and `D ≠ nT/k⁺` (the former waived
/// for integer-positioned bands), plus `D > 0`.
///
/// # Errors
///
/// Returns the specific constraint violated.
pub fn check_delay(band: BandSpec, delay: f64) -> Result<(), DelayConstraintError> {
    if delay <= 0.0 {
        return Err(DelayConstraintError::NonPositive);
    }
    let t = 1.0 / band.bandwidth();
    let mut divisors = vec![band.k_plus()];
    if !band.is_integer_positioned() {
        divisors.push(band.k());
    }
    for divisor in divisors {
        let step = t / divisor as f64;
        let n = (delay / step).round();
        if n >= 1.0 {
            let forbidden = n * step;
            if (delay - forbidden).abs() < SINGULARITY_MARGIN * step {
                return Err(DelayConstraintError::NearSingular { forbidden, divisor });
            }
        } else {
            // delay below the first forbidden multiple: fine unless ~0
            if delay < SINGULARITY_MARGIN * step {
                return Err(DelayConstraintError::NonPositive);
            }
        }
    }
    Ok(())
}

/// All forbidden delays `nT/k` and `nT/k⁺` in `(0, max_delay]`, sorted
/// ascending (deduplicated when the two families coincide).
pub fn forbidden_delays(band: BandSpec, max_delay: f64) -> Vec<f64> {
    let t = 1.0 / band.bandwidth();
    let mut out = Vec::new();
    let mut divisors = vec![band.k_plus()];
    if !band.is_integer_positioned() {
        divisors.push(band.k());
    }
    for divisor in divisors {
        let step = t / divisor as f64;
        // Integer counter: the product n·step is computed fresh either
        // way (exact in f64 for n < 2⁵³), but `n += 1.0` silently stops
        // incrementing at 2⁵³ and would spin forever; a u64 cannot.
        for n in 1u64.. {
            let d = n as f64 * step;
            if d > max_delay {
                break;
            }
            out.push(d);
        }
    }
    out.sort_by(|a, b| a.total_cmp(b));
    out.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
    out
}

/// The magnitude-optimal delay `D = 1/(4·f_c)` (Vaughan et al.): the
/// choice that minimizes the reconstruction-filter coefficients.
pub fn optimal_delay(band: BandSpec) -> f64 {
    1.0 / (4.0 * band.center())
}

/// A configured Kohlenberg interpolation kernel.
///
/// # Example
///
/// ```
/// use rfbist_sampling::band::BandSpec;
/// use rfbist_sampling::kohlenberg::KohlenbergInterpolant;
///
/// let band = BandSpec::centered(1e9, 90e6);
/// let s = KohlenbergInterpolant::new(band, 180e-12).unwrap();
/// assert!((s.eval(0.0) - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KohlenbergInterpolant {
    f_lo: f64,
    bandwidth: f64,
    delay: f64,
    k: f64,
    /// `sin(kπBD)`; `None` when the s₀ term vanishes identically
    /// (integer-positioned band).
    sin_k: Option<f64>,
    /// `sin(k⁺πBD)`.
    sin_k_plus: f64,
}

impl KohlenbergInterpolant {
    /// Builds the kernel for `band` and inter-channel delay `delay`,
    /// enforcing the eq. (3) constraints.
    ///
    /// # Errors
    ///
    /// Returns [`DelayConstraintError`] when the delay is non-positive or
    /// near-singular.
    pub fn new(band: BandSpec, delay: f64) -> Result<Self, DelayConstraintError> {
        check_delay(band, delay)?;
        Ok(Self::new_unchecked(band, delay))
    }

    /// Builds the kernel without constraint checks — used by experiments
    /// that deliberately probe near-singular delays.
    pub fn new_unchecked(band: BandSpec, delay: f64) -> Self {
        let b = band.bandwidth();
        let k = band.k() as f64;
        let k_plus = band.k_plus() as f64;
        let sin_k = if band.is_integer_positioned() {
            None
        } else {
            Some((k * PI * b * delay).sin())
        };
        let sin_k_plus = (k_plus * PI * b * delay).sin();
        KohlenbergInterpolant {
            f_lo: band.f_lo(),
            bandwidth: b,
            delay,
            k,
            sin_k,
            sin_k_plus,
        }
    }

    /// The configured delay `D` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The first kernel term `s₀(t)`; identically zero for
    /// integer-positioned bands.
    pub fn s0(&self, t: f64) -> f64 {
        let sin_k = match self.sin_k {
            None => return 0.0,
            Some(s) => s,
        };
        let b = self.bandwidth;
        let phi = self.k * PI * b * self.delay;
        // limit value at t = 0: k − 2·f_l/B
        if t.abs() < 1e-18 {
            return self.k - 2.0 * self.f_lo / b;
        }
        let a1 = 2.0 * PI * (self.k * b - self.f_lo);
        let a2 = 2.0 * PI * self.f_lo;
        ((a1 * t - phi).cos() - (a2 * t - phi).cos()) / (2.0 * PI * b * t * sin_k)
    }

    /// The second kernel term `s₁(t)`.
    pub fn s1(&self, t: f64) -> f64 {
        let b = self.bandwidth;
        let phi = (self.k + 1.0) * PI * b * self.delay;
        if t.abs() < 1e-18 {
            return 1.0 + 2.0 * self.f_lo / b - self.k;
        }
        let a1 = 2.0 * PI * (self.f_lo + b);
        let a2 = 2.0 * PI * (self.k * b - self.f_lo);
        ((a1 * t - phi).cos() - (a2 * t - phi).cos()) / (2.0 * PI * b * t * self.sin_k_plus)
    }

    /// The full kernel `s(t) = s₀(t) + s₁(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        self.s0(t) + self.s1(t)
    }

    /// Worst-case kernel magnitude over one sample period, a proxy for
    /// coefficient growth near forbidden delays (probed at 64 points).
    pub fn peak_magnitude(&self) -> f64 {
        let t_step = 1.0 / self.bandwidth / 64.0;
        (1..64)
            .map(|i| self.eval(i as f64 * t_step).abs())
            .fold(self.eval(0.0).abs(), f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_band() -> BandSpec {
        BandSpec::centered(1e9, 90e6)
    }

    #[test]
    fn kernel_is_one_at_origin() {
        let s = KohlenbergInterpolant::new(paper_band(), 180e-12).unwrap();
        assert!((s.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_vanishes_at_nonzero_sample_instants() {
        let band = paper_band();
        let t_s = 1.0 / band.bandwidth();
        let s = KohlenbergInterpolant::new(band, 180e-12).unwrap();
        for n in [-5i32, -2, -1, 1, 2, 5, 17] {
            let v = s.eval(n as f64 * t_s);
            assert!(v.abs() < 1e-9, "s({n}T) = {v}");
        }
    }

    #[test]
    fn origin_limit_is_continuous() {
        // The kernel's slope near 0 is O(B·k) ≈ 5e9 /s, so pick eps small
        // enough that the linear term stays below the tolerance.
        let s = KohlenbergInterpolant::new(paper_band(), 180e-12).unwrap();
        let eps = 1e-16;
        assert!((s.eval(eps) - s.eval(0.0)).abs() < 1e-5);
        assert!((s.eval(-eps) - s.eval(0.0)).abs() < 1e-5);
        // s0/s1 individual limits too
        assert!((s.s0(eps) - s.s0(0.0)).abs() < 1e-5);
        assert!((s.s1(eps) - s.s1(0.0)).abs() < 1e-5);
    }

    #[test]
    fn integer_positioned_band_kills_s0() {
        // fl = 960 MHz, B = 80 MHz: 2fl/B = 24 exactly
        let band = BandSpec::centered(1e9, 80e6);
        assert!(band.is_integer_positioned());
        let s = KohlenbergInterpolant::new(band, 200e-12).unwrap();
        for t in [0.0, 1e-9, 3.7e-9, -2.2e-9] {
            assert_eq!(s.s0(t), 0.0, "s0({t}) must vanish");
        }
        // kernel still interpolates
        assert!((s.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forbidden_delays_match_paper_m() {
        // Paper: for B = 90 MHz (k⁺ = 23), T/k⁺ = 483 ps is the first
        // forbidden value of the k⁺ family.
        let band = paper_band();
        let t_s = 1.0 / band.bandwidth();
        let f = forbidden_delays(band, 600e-12);
        let first_kplus = t_s / 23.0;
        assert!((first_kplus - 483.09e-12).abs() < 0.1e-12);
        assert!(f.iter().any(|&d| (d - first_kplus).abs() < 1e-15));
        // k = 22 family first value: T/22 = 505 ps
        let first_k = t_s / 22.0;
        assert!(f.iter().any(|&d| (d - first_k).abs() < 1e-15));
        // sorted ascending
        for w in f.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn check_delay_accepts_paper_value() {
        assert!(check_delay(paper_band(), 180e-12).is_ok());
    }

    #[test]
    fn check_delay_rejects_forbidden() {
        let band = paper_band();
        let t_s = 1.0 / band.bandwidth();
        let bad = t_s / 23.0; // 483 ps
        match check_delay(band, bad) {
            Err(DelayConstraintError::NearSingular { divisor, .. }) => {
                assert_eq!(divisor, 23)
            }
            other => panic!("expected NearSingular, got {other:?}"),
        }
    }

    #[test]
    fn check_delay_rejects_nonpositive() {
        assert_eq!(
            check_delay(paper_band(), 0.0),
            Err(DelayConstraintError::NonPositive)
        );
        assert_eq!(
            check_delay(paper_band(), -1e-12),
            Err(DelayConstraintError::NonPositive)
        );
    }

    #[test]
    fn integer_positioned_band_waives_constraint_3a() {
        // B = 80 MHz, k = 24: D = T/24 would violate (3a), but the band is
        // integer positioned so only k⁺ = 25 applies.
        let band = BandSpec::centered(1e9, 80e6);
        let t_s = 1.0 / band.bandwidth();
        let d_k = t_s / 24.0;
        assert!(
            check_delay(band, d_k).is_ok(),
            "constraint (3a) should be waived"
        );
        let d_kplus = t_s / 25.0;
        assert!(check_delay(band, d_kplus).is_err());
    }

    #[test]
    fn coefficients_blow_up_near_forbidden_delay() {
        let band = paper_band();
        let t_s = 1.0 / band.bandwidth();
        let good = KohlenbergInterpolant::new(band, 180e-12).unwrap();
        let near = KohlenbergInterpolant::new_unchecked(band, t_s / 23.0 + 1e-15);
        assert!(
            near.peak_magnitude() > 100.0 * good.peak_magnitude(),
            "near-singular magnitude {} vs good {}",
            near.peak_magnitude(),
            good.peak_magnitude()
        );
    }

    #[test]
    fn optimal_delay_is_quarter_carrier_period() {
        let d = optimal_delay(paper_band());
        assert!((d - 250e-12).abs() < 1e-15);
    }

    #[test]
    fn optimal_delay_gives_small_coefficients() {
        let band = paper_band();
        let opt = KohlenbergInterpolant::new(band, optimal_delay(band)).unwrap();
        // compare against a few arbitrary valid delays
        for d in [100e-12, 180e-12, 400e-12] {
            let other = KohlenbergInterpolant::new(band, d).unwrap();
            assert!(
                opt.peak_magnitude() <= other.peak_magnitude() * 1.05,
                "optimal {} vs D={d}: {}",
                opt.peak_magnitude(),
                other.peak_magnitude()
            );
        }
    }

    #[test]
    fn forbidden_delays_empty_below_first_singularity() {
        // max_delay strictly below T/k⁺ (the smallest forbidden value)
        // must yield no singularities at all — this is the interval the
        // m-bound guarantees the LMS search stays inside.
        let band = paper_band();
        let first = 1.0 / band.bandwidth() / band.k_plus() as f64;
        assert!(forbidden_delays(band, 0.999 * first).is_empty());
        // and the boundary itself is inclusive
        let at = forbidden_delays(band, first);
        assert_eq!(at.len(), 1);
        assert!((at[0] - first).abs() < 1e-18);
    }

    #[test]
    fn forbidden_delays_dedup_family_coincidence() {
        // The k and k⁺ families coincide at D = n·T (n·T/k · k = n·T);
        // the list must carry one entry, not two.
        let band = paper_band();
        let t_s = 1.0 / band.bandwidth();
        let f = forbidden_delays(band, t_s * 1.0001);
        let at_t: Vec<_> = f.iter().filter(|&&d| (d - t_s).abs() < 1e-15).collect();
        assert_eq!(at_t.len(), 1, "D = T duplicated: {f:?}");
    }

    #[test]
    fn forbidden_delays_integer_positioned_has_single_family() {
        // B = 80 MHz at 1 GHz: 2·f_lo/B = 24 exactly, so the k family
        // disappears and all singular delays are multiples of T/25.
        let band = BandSpec::centered(1e9, 80e6);
        let t_s = 1.0 / band.bandwidth();
        let f = forbidden_delays(band, 5.0 * t_s / 25.0 + 1e-15);
        assert_eq!(f.len(), 5);
        for (i, d) in f.iter().enumerate() {
            assert!(
                (d - (i + 1) as f64 * t_s / 25.0).abs() < 1e-18,
                "entry {i}: {d}"
            );
        }
    }

    #[test]
    fn check_delay_margin_boundary() {
        // Just inside the relative singularity margin: rejected; a few
        // margins away: accepted.
        let band = paper_band();
        let step = 1.0 / band.bandwidth() / band.k_plus() as f64;
        assert!(check_delay(band, step * (1.0 + 5e-7)).is_err());
        assert!(check_delay(band, step * (1.0 - 5e-7)).is_err());
        assert!(check_delay(band, step * (1.0 + 5e-6)).is_ok());
        // halfway between the first two k⁺ singularities is safe
        assert!(check_delay(band, 1.5 * step).is_ok());
    }

    #[test]
    fn check_delay_vanishing_delay_counts_as_nonpositive() {
        // A positive delay far below every singularity spacing carries
        // no usable second-order information either.
        let band = paper_band();
        let step = 1.0 / band.bandwidth() / band.k_plus() as f64;
        assert_eq!(
            check_delay(band, 1e-8 * step),
            Err(DelayConstraintError::NonPositive)
        );
        assert!(check_delay(band, 1e-4 * step).is_ok());
    }

    #[test]
    fn baseband_degenerate_band_keeps_only_k_plus_family() {
        // f_lo = 0 ⇒ k = 0 and the band is trivially integer positioned:
        // only the k⁺ = 1 family applies, i.e. D ≠ n·T.
        let band = BandSpec::new(0.0, 90e6);
        assert_eq!(band.k(), 0);
        assert!(band.is_integer_positioned());
        let t_s = 1.0 / band.bandwidth();
        assert!(check_delay(band, 0.5 * t_s).is_ok());
        assert!(check_delay(band, t_s).is_err());
        let f = forbidden_delays(band, 3.5 * t_s);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn narrow_band_forbidden_delays_scale_with_position() {
        // A 1 kHz sliver at 1 GHz: k ≈ 2·10⁶, so singular delays pack
        // every T/k ≈ 0.5 µs/10⁶ — the sub-ps regime. The arithmetic
        // must not overflow or lose the ordering.
        let band = BandSpec::centered(1e9, 1e3);
        let t_s = 1.0 / band.bandwidth();
        let step = t_s / band.k_plus() as f64;
        let f = forbidden_delays(band, 3.0 * step + step * 1e-9);
        assert!(f.len() >= 3);
        for w in f.windows(2) {
            assert!(w[0] < w[1], "not sorted: {f:?}");
        }
        assert!(check_delay(band, 0.5 * step).is_ok());
    }

    #[test]
    fn optimal_delay_is_admissible_across_carriers() {
        // 1/(4·f_c) must satisfy eq. (3) for any reasonably positioned
        // band — the property that makes it a usable DCDE default.
        for fc in [0.3e9, 0.5e9, 1e9, 1.8e9, 2.4e9] {
            let band = BandSpec::centered(fc, 90e6);
            let d = optimal_delay(band);
            assert!(
                check_delay(band, d).is_ok(),
                "optimal delay {d} rejected for fc = {fc}"
            );
        }
    }

    #[test]
    fn error_display_strings() {
        let e = DelayConstraintError::NonPositive;
        assert_eq!(e.to_string(), "delay must be strictly positive");
        let e2 = DelayConstraintError::NearSingular {
            forbidden: 483e-12,
            divisor: 23,
        };
        assert!(e2.to_string().contains("483.000 ps"));
        assert!(e2.to_string().contains("nT/23"));
    }
}
