//! Planned, batched PNBS reconstruction — the workspace's hottest loop.
//!
//! [`super::reconstruct::PnbsReconstructor::try_reconstruct_at`]'s
//! direct form pays, per tap and per probe instant, four cosine
//! evaluations of the Kohlenberg kernel (paper eq. 2) and two
//! Bessel-`I0` Kaiser-window series. Every cost-grid point (Fig. 5),
//! LMS iteration (Fig. 6) and time-skew sweep (Table 1) multiplies that
//! by hundreds of probe times and dozens of delay candidates.
//!
//! [`PnbsPlan`] precomputes everything that does not depend on the
//! probe instant:
//!
//! - the eq. 2 constants — phase offsets `kπBD̂`, `k⁺πBD̂` (stored as
//!   their cosine/sine) and the `1/sin(kπBD̂)`, `1/sin(k⁺πBD̂)` scale
//!   factors,
//! - the window as a prepared [`WindowSampler`] (for Kaiser: a Horner
//!   polynomial with the `1/I0(β)` normalization hoisted),
//!
//! and replaces the per-tap trigonometry with incremental
//! [`PhaseRotor`] recurrences: the kernel's three cosine families are
//! advanced from tap to tap by a fixed complex rotation, so a whole
//! 61-tap row costs six `sincos` calls total instead of four cosines
//! and two Bessel series *per tap*.
//!
//! The planned path is numerically equivalent to the direct form to
//! ≪ 1e-9 (enforced by `tests/plan_equivalence.rs`); the direct form is
//! preserved as `*_reference` on the reconstructor as the measured
//! baseline for `BENCH_recon.json`.

use crate::band::BandSpec;
use crate::reconstruct::NonuniformCapture;
use rfbist_dsp::window::{Window, WindowSampler};
use rfbist_math::rotor::{sincos, PhaseRotor};
use std::f64::consts::PI;

/// Constants of one kernel term: `cos φ`, `sin φ` of the phase offset
/// and the reciprocal of its `sin(·πBD̂)` denominator.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TermConsts {
    pub(crate) cos_phi: f64,
    pub(crate) sin_phi: f64,
    pub(crate) inv_sin: f64,
}

/// Reusable buffers for batch reconstruction; create once and pass to
/// every [`PnbsPlan::reconstruct_batch`] /
/// [`super::reconstruct::PnbsReconstructor::reconstruct_batch`] call so
/// grid sweeps allocate nothing per delay candidate.
#[derive(Clone, Debug, Default)]
pub struct PnbsScratch {
    out: Vec<f64>,
}

impl PnbsScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The values written by the most recent batch call.
    pub fn values(&self) -> &[f64] {
        &self.out
    }

    /// Consumes the scratch, yielding the most recent batch's values
    /// without a copy.
    pub fn into_values(self) -> Vec<f64> {
        self.out
    }
}

/// Per-tap step rotations shared by every probe instant of a capture:
/// `cos(ωⱼT)`, `sin(ωⱼT)` for the three kernel frequencies.
#[derive(Clone, Copy, Debug)]
struct StepParts {
    cos: [f64; 3],
    sin: [f64; 3],
}

/// A fully precomputed reconstruction plan for one band / delay
/// estimate / tap count / window configuration (paper eq. 6).
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// use rfbist_sampling::band::BandSpec;
/// use rfbist_sampling::plan::{PnbsPlan, PnbsScratch};
/// use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
/// use rfbist_signal::tone::Tone;
///
/// let band = BandSpec::centered(1e9, 90e6);
/// let d = 180e-12;
/// let tone = Tone::unit(0.98e9);
/// let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -40, 300);
/// let plan = PnbsPlan::new(band, d, 61, Window::Kaiser(8.0));
/// let mut scratch = PnbsScratch::new();
/// let got = plan.reconstruct_batch(&cap, &[1.0e-6, 1.1e-6], &mut scratch);
/// // identical (to ≪ 1e-9) to the reconstructor's scalar path
/// let rec = PnbsReconstructor::paper_default(band, d).unwrap();
/// assert!((got[0] - rec.reconstruct_at(&cap, 1.0e-6)).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct PnbsPlan {
    /// Angular frequencies of the three cosine families (rad/s):
    /// `ω₀ = 2πf_l`, `ω₁ = 2π(kB − f_l)`, `ω₂ = 2π(f_l + B)`.
    pub(crate) w: [f64; 3],
    /// `s₀` term constants; `None` for integer-positioned bands where
    /// the term vanishes identically.
    pub(crate) s0: Option<TermConsts>,
    /// `s₁` term constants.
    pub(crate) s1: TermConsts,
    /// `1/(2πB)` — the kernel's shared denominator scale.
    pub(crate) inv_two_pi_b: f64,
    /// Kernel limit `s(0) = s₀(0) + s₁(0)`.
    pub(crate) origin: f64,
    /// The delay estimate `D̂` in seconds.
    pub(crate) delay: f64,
    pub(crate) half_taps: usize,
    pub(crate) sampler: WindowSampler,
}

impl PnbsPlan {
    /// Builds a plan for `band` at delay estimate `delay` with
    /// `num_taps` kernel taps per stream tapered by `window`.
    ///
    /// Delay constraints (eq. 3) are *not* checked here — the plan
    /// mirrors `PnbsReconstructor::new_unchecked` so cost functions can
    /// probe arbitrary candidates; validated entry points perform the
    /// check before planning.
    ///
    /// # Panics
    ///
    /// Panics if `num_taps` is even or zero.
    pub fn new(band: BandSpec, delay: f64, num_taps: usize, window: Window) -> Self {
        assert!(num_taps % 2 == 1, "tap count must be odd (nw + 1)");
        let b = band.bandwidth();
        let f_lo = band.f_lo();
        let k = band.k() as f64;
        let k_plus = band.k_plus() as f64;

        let s0 = if band.is_integer_positioned() {
            None
        } else {
            let phi = k * PI * b * delay;
            let (sin_phi, cos_phi) = sincos(phi);
            Some(TermConsts {
                cos_phi,
                sin_phi,
                inv_sin: 1.0 / sin_phi,
            })
        };
        let phi_plus = k_plus * PI * b * delay;
        let (sin_phi_plus, cos_phi_plus) = sincos(phi_plus);
        let s1 = TermConsts {
            cos_phi: cos_phi_plus,
            sin_phi: sin_phi_plus,
            inv_sin: 1.0 / sin_phi_plus,
        };

        let s0_origin = if s0.is_some() {
            k - 2.0 * f_lo / b
        } else {
            0.0
        };
        let s1_origin = 1.0 + 2.0 * f_lo / b - k;

        PnbsPlan {
            w: [
                2.0 * PI * f_lo,
                2.0 * PI * (k * b - f_lo),
                2.0 * PI * (f_lo + b),
            ],
            s0,
            s1,
            inv_two_pi_b: 1.0 / (2.0 * PI * b),
            origin: s0_origin + s1_origin,
            delay,
            half_taps: num_taps / 2,
            sampler: window.sampler(),
        }
    }

    /// The delay estimate `D̂` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Taps per stream (`nw + 1`).
    pub fn num_taps(&self) -> usize {
        2 * self.half_taps + 1
    }

    /// Evaluates the kernel `s(t)` on the uniform grid
    /// `t0, t0 + step, …` via the phase-rotor recurrences, filling
    /// `out` — equivalent to `KohlenbergInterpolant::eval` per point
    /// (to ≪ 1e-9) at a small fraction of the trigonometric cost.
    pub fn kernel_row(&self, t0: f64, step: f64, out: &mut [f64]) {
        let mut rot = [
            PhaseRotor::new(self.w[0] * t0, self.w[0] * step),
            PhaseRotor::new(self.w[1] * t0, self.w[1] * step),
            PhaseRotor::new(self.w[2] * t0, self.w[2] * step),
        ];
        for (i, slot) in out.iter_mut().enumerate() {
            let t = t0 + i as f64 * step;
            *slot = self.kernel_from_rotors(t, &rot);
            for r in &mut rot {
                r.advance();
            }
        }
    }

    /// Kernel value at `t` given rotor states currently holding
    /// `cos/sin(ωⱼt)`.
    #[inline]
    fn kernel_from_rotors(&self, t: f64, rot: &[PhaseRotor; 3]) -> f64 {
        if t.abs() < 1e-18 {
            return self.origin;
        }
        // cos(ωt − φ) = cos ωt·cos φ + sin ωt·sin φ, with the cos/sin
        // pairs advanced incrementally and φ folded in at plan time.
        let (c0, s0) = (rot[0].cos(), rot[0].sin());
        let (c1, s1) = (rot[1].cos(), rot[1].sin());
        let (c2, s2) = (rot[2].cos(), rot[2].sin());
        let mut num = ((c2 - c1) * self.s1.cos_phi + (s2 - s1) * self.s1.sin_phi) * self.s1.inv_sin;
        if let Some(a) = self.s0 {
            num += ((c1 - c0) * a.cos_phi + (s1 - s0) * a.sin_phi) * a.inv_sin;
        }
        num * self.inv_two_pi_b / t
    }

    /// Step rotations for a capture period `T` — shared by every probe
    /// instant of a batch, so the per-point trigonometry is six
    /// `sincos` calls regardless of tap count.
    fn step_parts(&self, period: f64) -> StepParts {
        let mut cos = [0.0; 3];
        let mut sin = [0.0; 3];
        for j in 0..3 {
            let (s, c) = sincos(self.w[j] * period);
            cos[j] = c;
            sin[j] = s;
        }
        StepParts { cos, sin }
    }

    /// The time interval over which `capture` fully covers the filter
    /// support: `[(n₀ + h)·T, (n₀ + len − 1 − h)·T]` with `h = nw/2`;
    /// `None` when the capture is too short for even one evaluation.
    /// The single definition `PnbsReconstructor::coverage` delegates to.
    pub fn coverage(&self, capture: &NonuniformCapture) -> Option<(f64, f64)> {
        let h = self.half_taps as i64;
        let lo = capture.n_start() + h;
        let hi = capture.n_start() + capture.len() as i64 - 1 - h;
        (hi >= lo).then(|| (lo as f64 * capture.period(), hi as f64 * capture.period()))
    }

    /// One planned eq. 6 evaluation. Mirrors the direct form tap for
    /// tap; only the per-tap trigonometry is replaced by recurrences.
    #[inline]
    fn point(&self, capture: &NonuniformCapture, t: f64, steps: &StepParts) -> Option<f64> {
        let period = capture.period();
        let t_idx = t / period;
        let nc = t_idx.round() as i64;
        let h = self.half_taps as i64;
        let first = nc - h;
        let last = nc + h;
        if first < capture.n_start() || last >= capture.n_start() + capture.len() as i64 {
            return None;
        }
        let hw = self.half_taps as f64 + 1.0;
        let inv_2hw = 1.0 / (2.0 * hw);
        // odd-stream window offset (D̂/T)/(2·hw), pre-divided once
        let d_shift = self.delay / period * inv_2hw;

        // Kernel arguments: even stream walks t − nT (descending by T),
        // odd stream walks nT + D̂ − t (ascending by T).
        let te0 = t - first as f64 * period;
        let to0 = first as f64 * period + self.delay - t;
        let x0 = 0.5 + (first as f64 - t_idx) * inv_2hw;

        let mut rot_e = [
            PhaseRotor::with_step_parts(self.w[0] * te0, steps.cos[0], -steps.sin[0]),
            PhaseRotor::with_step_parts(self.w[1] * te0, steps.cos[1], -steps.sin[1]),
            PhaseRotor::with_step_parts(self.w[2] * te0, steps.cos[2], -steps.sin[2]),
        ];
        let mut rot_o = [
            PhaseRotor::with_step_parts(self.w[0] * to0, steps.cos[0], steps.sin[0]),
            PhaseRotor::with_step_parts(self.w[1] * to0, steps.cos[1], steps.sin[1]),
            PhaseRotor::with_step_parts(self.w[2] * to0, steps.cos[2], steps.sin[2]),
        ];

        let base = (first - capture.n_start()) as usize;
        let even = capture.even();
        let odd = capture.odd();
        let mut acc = 0.0;
        for i in 0..self.num_taps() {
            let fi = i as f64;
            let x_e = x0 + fi * inv_2hw;
            let w_e = self.sampler.at(x_e);
            if w_e != 0.0 {
                acc += even[base + i] * self.kernel_from_rotors(te0 - fi * period, &rot_e) * w_e;
            }
            let w_o = self.sampler.at(x_e + d_shift);
            if w_o != 0.0 {
                acc += odd[base + i] * self.kernel_from_rotors(to0 + fi * period, &rot_o) * w_o;
            }
            for r in &mut rot_e {
                r.advance();
            }
            for r in &mut rot_o {
                r.advance();
            }
        }
        Some(acc)
    }

    /// Planned reconstruction of `f(t)`, `None` outside coverage.
    pub fn try_reconstruct_at(&self, capture: &NonuniformCapture, t: f64) -> Option<f64> {
        let steps = self.step_parts(capture.period());
        self.point(capture, t, &steps)
    }

    /// Reconstructs every instant of `times` into `scratch`, reusing
    /// its buffer across calls, and returns the filled slice.
    ///
    /// # Panics
    ///
    /// Panics (like `PnbsReconstructor::reconstruct_at`) if any probe
    /// time falls outside the capture's coverage.
    pub fn reconstruct_batch<'s>(
        &self,
        capture: &NonuniformCapture,
        times: &[f64],
        scratch: &'s mut PnbsScratch,
    ) -> &'s [f64] {
        let steps = self.step_parts(capture.period());
        scratch.out.clear();
        scratch.out.reserve(times.len());
        for &t in times {
            let v = self.point(capture, t, &steps).unwrap_or_else(|| {
                panic!(
                    "t = {t:.3e} s outside capture coverage {:?}",
                    self.coverage(capture)
                )
            });
            scratch.out.push(v);
        }
        &scratch.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kohlenberg::KohlenbergInterpolant;
    use rfbist_signal::tone::Tone;

    const FC: f64 = 1e9;
    const B: f64 = 90e6;
    const D: f64 = 180e-12;

    fn band() -> BandSpec {
        BandSpec::centered(FC, B)
    }

    #[test]
    fn kernel_row_matches_direct_interpolant() {
        let kern = KohlenbergInterpolant::new(band(), D).unwrap();
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let t_s = 1.0 / B;
        let mut row = vec![0.0; 61];
        // a descending even-stream row and an ascending odd-stream row
        for (t0, step) in [(1.7e-7, -t_s), (-1.7e-7 + D, t_s)] {
            plan.kernel_row(t0, step, &mut row);
            for (i, &got) in row.iter().enumerate() {
                let t = t0 + i as f64 * step;
                let want = kern.eval(t);
                assert!(
                    (got - want).abs() < 1e-10,
                    "row[{i}] at t = {t:e}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn kernel_row_hits_origin_limit() {
        let kern = KohlenbergInterpolant::new(band(), D).unwrap();
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let t_s = 1.0 / B;
        let mut row = vec![0.0; 7];
        // t0 = −3T with step T puts tap 3 exactly at t = 0
        plan.kernel_row(-3.0 * t_s, t_s, &mut row);
        assert!((row[3] - kern.eval(0.0)).abs() < 1e-12);
        assert!((row[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integer_positioned_band_plan_drops_s0() {
        let band80 = BandSpec::centered(FC, 80e6);
        assert!(band80.is_integer_positioned());
        let kern = KohlenbergInterpolant::new(band80, 200e-12).unwrap();
        let plan = PnbsPlan::new(band80, 200e-12, 61, Window::Kaiser(8.0));
        assert!(plan.s0.is_none());
        let mut row = vec![0.0; 32];
        plan.kernel_row(0.9e-7, 1.0 / 80e6 / 3.0, &mut row);
        for (i, &got) in row.iter().enumerate() {
            let t = 0.9e-7 + i as f64 / 80e6 / 3.0;
            assert!((got - kern.eval(t)).abs() < 1e-10, "tap {i}");
        }
    }

    #[test]
    fn planned_point_matches_reference_reconstruction() {
        let tone = Tone::unit(0.98e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let rec = crate::reconstruct::PnbsReconstructor::paper_default(band(), D).unwrap();
        for i in 0..40 {
            let t = 0.6e-6 + i as f64 * 31.7e-9;
            let got = plan.try_reconstruct_at(&cap, t).unwrap();
            let want = rec.try_reconstruct_at_reference(&cap, t).unwrap();
            assert!((got - want).abs() < 1e-10, "t = {t:e}: {got} vs {want}");
        }
    }

    #[test]
    fn batch_reuses_scratch_and_matches_scalar() {
        let tone = Tone::unit(1.01e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let times: Vec<f64> = (0..50).map(|i| 0.7e-6 + i as f64 * 23.3e-9).collect();
        let mut scratch = PnbsScratch::new();
        let first: Vec<f64> = plan.reconstruct_batch(&cap, &times, &mut scratch).to_vec();
        // second call reuses the buffer, same values
        let second = plan.reconstruct_batch(&cap, &times, &mut scratch);
        assert_eq!(first, second);
        for (i, &t) in times.iter().enumerate() {
            let scalar = plan.try_reconstruct_at(&cap, t).unwrap();
            assert_eq!(first[i], scalar, "batch and scalar paths diverge at {t:e}");
        }
        assert_eq!(scratch.values().len(), times.len());
    }

    #[test]
    fn batch_coverage_panic_matches_scalar_contract() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        assert!(plan.try_reconstruct_at(&cap, 0.0).is_none());
        let result = std::panic::catch_unwind(|| {
            let mut scratch = PnbsScratch::new();
            let _ = plan.reconstruct_batch(&cap, &[0.0], &mut scratch);
        });
        assert!(result.is_err(), "out-of-coverage batch must panic");
    }

    #[test]
    fn plan_accessors() {
        let plan = PnbsPlan::new(band(), D, 61, Window::Kaiser(8.0));
        assert_eq!(plan.num_taps(), 61);
        assert_eq!(plan.delay(), D);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_tap_count_panics() {
        let _ = PnbsPlan::new(band(), D, 60, Window::Kaiser(8.0));
    }
}
