//! Grid-aware PNBS reconstruction — cross-point rotor reuse on uniform
//! analysis grids.
//!
//! The per-point plan ([`PnbsPlan`]) already removed the per-tap
//! trigonometry from one eq. 6 evaluation, but it still *re-seeds* six
//! phase rotors (six `sincos` calls) at every probe instant and pays a
//! ~31-term Kaiser Horner polynomial twice per tap. On the workloads
//! that dominate the end-to-end BIST — the dense analysis grid
//! (`BistEngine::run` reconstructs ~12288 uniform points per verdict)
//! and uniform-grid cost probes — the probe instants are consecutive
//! points of a *uniform* grid, so the kernel phases advance by a fixed
//! increment from point to point and nothing needs re-seeding.
//!
//! [`PnbsGridPlan`] exploits that structure twice over:
//!
//! - **Cross-point rotors.** Each cosine family's time phasor
//!   `e^{jωⱼ(t − n_ref·T)}` is advanced once per *grid point* by a
//!   precomputed grid-step rotor `e^{jωⱼ·Δt}` (with a periodic exact
//!   re-seed bounding phase drift on arbitrarily long grids), instead
//!   of six `sincos` re-seeds per point.
//! - **Factored per-sample tables.** The kernel numerator is a fixed
//!   linear combination `Σⱼ αⱼcos(ωⱼτ) + βⱼsin(ωⱼτ)` of the three
//!   families, and `τ = t − nT` splits by the angle-sum identity into
//!   the time phasor times a per-*sample* phasor `e^{jωⱼ(n − n_ref)T}`.
//!   Folding `(αⱼ, βⱼ)` into per-sample tables (built once per grid
//!   call with [`fill_phasor_table`]'s re-seeded recurrences) collapses
//!   the whole per-tap kernel numerator to six fused multiply-adds per
//!   stream.
//! - **Tabulated window.** The Kaiser Horner polynomial is replaced by
//!   the cached cubic [`WindowTable`], built *node-aligned* to the tap
//!   stride `1/(2(h+1))`: every tap of a point's window row then shares
//!   one set of interpolation weights and an integer node stride, so a
//!   row costs four contiguous loads and four fused multiply-adds per
//!   tap (≤ 5e-12 from the exact sampler, with a direct fallback for
//!   shapes the table cannot represent).
//! - **Runtime-dispatched SIMD walk.** On x86-64 hosts with hardware
//!   FMA the cubic-table walk runs as `#[target_feature]` (AVX2 or
//!   AVX-512F) recompilations of a branch-free kernel over unit-stride
//!   per-sample phasor planes — near-origin taps are patched exactly
//!   after the vector pass — behind the same
//!   `is_x86_feature_detected!` / `RFBIST_FORCE_SCALAR` dispatch as
//!   `rfbist_dsp::goertzel`. The portable scalar walk is untouched, so
//!   CI's forced-scalar job exercises exactly the code it always did,
//!   and both paths re-seed identically: streamed blocks remain
//!   bit-identical to the batch walk whichever kernel dispatch picks.
//!
//! Near the kernel origin (|τ| below [`NEAR_ORIGIN_FRACTION`] of a
//! sample period) the `1/τ` pole amplifies the tables' bounded phase
//! error, so those few taps — at most one per stream per point — drop
//! to an exact small-argument evaluation. The result tracks the
//! per-point plan and the direct reference to ≪ 1e-9
//! (`tests/grid_plan_equivalence.rs`), at less than half the per-point
//! plan's cost (`BENCH_recon.json`, `grid_reconstruct`).

use crate::plan::PnbsPlan;
use crate::reconstruct::NonuniformCapture;
use rfbist_dsp::window::{Window, WindowTable};
use rfbist_math::rotor::{fill_phasor_table, sincos};

/// Grid points between exact re-seeds of the three time phasors, and
/// the chunk size of the streaming block producer
/// ([`PnbsGridPlan::reconstruct_blocks`]): each [`GridBlocks`] block is
/// one re-seed interval, so the block feed and the monolithic walk
/// re-seed at the same absolute grid indices. The grid-step rotor's
/// phase error grows O(points·ε); re-seeding every 256 points caps it
/// at ≈ 6e-14 rad — far below the near-origin guard's budget — for
/// arbitrarily long grids.
pub const GRID_BLOCK_LEN: usize = 256;

/// Internal alias documenting the re-seed role of [`GRID_BLOCK_LEN`].
const TIME_RESEED_INTERVAL: usize = GRID_BLOCK_LEN;

/// Taps whose kernel argument is within this fraction of a sample
/// period of the origin are evaluated exactly instead of through the
/// factored tables: at `|τ| ≥ T/16` the `1/τ` amplification of the
/// tables' ~4e-12 rad worst-case phase error stays below ~1e-11 of
/// kernel value, and the exact path costs three `sincos` on at most
/// one tap per stream per point.
const NEAR_ORIGIN_FRACTION: f64 = 1.0 / 16.0;

/// Reusable buffers for grid reconstruction: the output values plus
/// the per-sample factored phasor tables, so repeated grid calls (one
/// per cost candidate, one per BIST verdict) allocate nothing in
/// steady state.
#[derive(Clone, Debug, Default)]
pub struct GridScratch {
    out: Vec<f64>,
    /// Even-stream per-sample constants in plane-major layout: six
    /// `span`-long planes `[A₀ | B₀ | A₁ | B₁ | A₂ | B₂]` — one
    /// `(αⱼ, βⱼ)`-folded pair per cosine family, unit-stride in the
    /// sample index so the walk kernels read each plane contiguously.
    even_tab: Vec<f64>,
    /// Odd-stream per-sample constants, same layout.
    odd_tab: Vec<f64>,
    cos_buf: Vec<f64>,
    sin_buf: Vec<f64>,
    /// Per-point window rows (one value per tap and stream), refilled
    /// for every grid point.
    win_e: Vec<f64>,
    win_o: Vec<f64>,
    /// Per-point branch-free tap contributions, written by the SIMD
    /// walk kernels and reduced after the exact near-origin patch;
    /// untouched on the scalar path.
    contrib_e: Vec<f64>,
    contrib_o: Vec<f64>,
}

impl GridScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The values written by the most recent grid call.
    pub fn values(&self) -> &[f64] {
        &self.out
    }

    /// Consumes the scratch, yielding the most recent grid's values
    /// without a copy.
    pub fn into_values(self) -> Vec<f64> {
        self.out
    }
}

/// A [`PnbsPlan`] extended for uniform-grid reconstruction with
/// cross-point rotor reuse (see the module docs).
///
/// # Example
///
/// ```
/// use rfbist_dsp::window::Window;
/// use rfbist_sampling::band::BandSpec;
/// use rfbist_sampling::gridplan::{GridScratch, PnbsGridPlan};
/// use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
/// use rfbist_signal::tone::Tone;
///
/// let band = BandSpec::centered(1e9, 90e6);
/// let d = 180e-12;
/// let tone = Tone::unit(0.98e9);
/// let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -40, 300);
/// let plan = PnbsGridPlan::new(band, d, 61, Window::Kaiser(8.0));
/// let mut scratch = GridScratch::new();
/// let wave = plan.reconstruct_grid(&cap, 1.0e-6, 2.5e-10, 64, &mut scratch);
/// // identical (to ≪ 1e-9) to the per-point planned path
/// let rec = PnbsReconstructor::paper_default(band, d).unwrap();
/// assert!((wave[5] - rec.reconstruct_at(&cap, 1.0e-6 + 5.0 * 2.5e-10)).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct PnbsGridPlan {
    plan: PnbsPlan,
    window_table: WindowTable,
    /// Cosine weights of the factored kernel numerator
    /// `Σⱼ αⱼ·cos(ωⱼτ) + βⱼ·sin(ωⱼτ)`.
    alpha: [f64; 3],
    /// Sine weights of the factored kernel numerator.
    beta: [f64; 3],
    /// Residue-transposed cubic window table for the SIMD walk
    /// kernels (`None` for shapes without a cubic table): the
    /// node-aligned row fill reads every `stride`-th table node, so
    /// transposing the table by node residue turns the strided
    /// stencil into four unit-stride row reads. See [`WinRows`].
    win_rows: Option<WinRows>,
}

/// The cubic window table of a [`PnbsGridPlan`] transposed by node
/// residue: `data[r · cols + n] = vals[r + n · stride]` (zero-padded
/// past the table end), for residues `r ∈ [0, stride + 3)` and node
/// ranks `n ∈ [0, cols)`. A window row anchored at table position
/// `i₀ = q·stride + r` then reads taps `k` as
/// `data[(r + o) · cols + q + k]` for the four stencil offsets
/// `o ∈ {0,1,2,3}` — four contiguous streams instead of a
/// `stride`-strided gather, which is what lets the row fill vectorize
/// alongside the tap kernel.
#[derive(Clone, Debug)]
struct WinRows {
    /// Table nodes per tap step (the original stencil stride).
    stride: usize,
    /// Row length: one more than the table's node count per support
    /// (`2(h+1) + 1`), covering every node rank a tap can anchor at.
    cols: usize,
    /// `(stride + 3) × cols` row-major residue planes.
    data: Vec<f64>,
}

impl PnbsGridPlan {
    /// Builds a grid plan for `band` at delay estimate `delay` with
    /// `num_taps` kernel taps per stream tapered by `window`. Delay
    /// constraints are not checked, mirroring [`PnbsPlan::new`].
    ///
    /// # Panics
    ///
    /// Panics if `num_taps` is even or zero.
    pub fn new(band: crate::band::BandSpec, delay: f64, num_taps: usize, window: Window) -> Self {
        Self::from_plan(PnbsPlan::new(band, delay, num_taps, window), window)
    }

    /// Wraps an existing per-point plan, adding the grid machinery
    /// (window table, factored numerator weights).
    pub fn from_plan(plan: PnbsPlan, window: Window) -> Self {
        // Regroup the eq. 2 numerator
        //   ((c₂ − c₁)cos φ₁ + (s₂ − s₁)sin φ₁)/sin φ₁
        // + ((c₁ − c₀)cos φ₀ + (s₁ − s₀)sin φ₀)/sin φ₀
        // by cosine family: αⱼ, βⱼ multiply cos(ωⱼτ), sin(ωⱼτ).
        let a1 = plan.s1.cos_phi * plan.s1.inv_sin;
        let b1 = plan.s1.sin_phi * plan.s1.inv_sin;
        let mut alpha = [0.0, -a1, a1];
        let mut beta = [0.0, -b1, b1];
        if let Some(s0) = plan.s0 {
            let a0 = s0.cos_phi * s0.inv_sin;
            let b0 = s0.sin_phi * s0.inv_sin;
            alpha[0] = -a0;
            beta[0] = -b0;
            alpha[1] += a0;
            beta[1] += b0;
        }
        // Node-align the table on the tap stride 1/(2(h+1)) so a whole
        // window row shares one interpolation-weight set per point.
        let alignment = 2 * (plan.half_taps + 1);
        let window_table = window.tabulated_aligned(alignment);
        let win_rows = window_table.cubic_parts().map(|(scale, vals)| {
            let stride = (scale as usize) / alignment;
            let cols = alignment + 1;
            let mut data = vec![0.0; (stride + 3) * cols];
            for (r, row) in data.chunks_exact_mut(cols).enumerate() {
                for (n, slot) in row.iter_mut().enumerate() {
                    if let Some(&v) = vals.get(r + n * stride) {
                        *slot = v;
                    }
                }
            }
            WinRows { stride, cols, data }
        });
        PnbsGridPlan {
            plan,
            window_table,
            alpha,
            beta,
            win_rows,
        }
    }

    /// The wrapped per-point plan.
    pub fn plan(&self) -> &PnbsPlan {
        &self.plan
    }

    /// The delay estimate `D̂` in seconds.
    pub fn delay(&self) -> f64 {
        self.plan.delay()
    }

    /// Taps per stream (`nw + 1`).
    pub fn num_taps(&self) -> usize {
        self.plan.num_taps()
    }

    /// Exact kernel evaluation for taps inside the near-origin guard
    /// ring: the factored-table path's `1/τ` pole would amplify the
    /// tables' bounded phase error there, so these few taps pay three
    /// direct `sincos` instead.
    fn kernel_near_origin(&self, tau: f64) -> f64 {
        if tau.abs() < 1e-18 {
            return self.plan.origin;
        }
        let mut num = 0.0;
        for j in 0..3 {
            let (s, c) = sincos(self.plan.w[j] * tau);
            num += self.alpha[j] * c + self.beta[j] * s;
        }
        num * self.plan.inv_two_pi_b / tau
    }

    /// Fills the per-sample factored phasor tables (six plane-major
    /// planes per stream, see [`GridScratch`]) for samples
    /// `first_n ..= first_n + span − 1`, phased relative to `n_ref` so
    /// the table and time-phasor arguments stay as small as the grid
    /// geometry allows.
    fn fill_sample_tables(
        &self,
        capture: &NonuniformCapture,
        first_n: i64,
        span: usize,
        n_ref: i64,
        scratch: &mut GridScratch,
    ) {
        let period = capture.period();
        scratch.cos_buf.resize(span, 0.0);
        scratch.sin_buf.resize(span, 0.0);
        scratch.even_tab.resize(span * 6, 0.0);
        scratch.odd_tab.resize(span * 6, 0.0);
        let base_offset = (first_n - n_ref) as f64 * period;
        for j in 0..3 {
            let w = self.plan.w[j];
            let (aj, bj) = (self.alpha[j], self.beta[j]);
            let step_phase = w * period;
            // Even stream: phasors of ωⱼ·(n − n_ref)·T.
            fill_phasor_table(
                w * base_offset,
                step_phase,
                &mut scratch.cos_buf,
                &mut scratch.sin_buf,
            );
            {
                let (a_plane, b_plane) =
                    scratch.even_tab[2 * j * span..(2 * j + 2) * span].split_at_mut(span);
                for (((a, b), &cn), &sn) in a_plane
                    .iter_mut()
                    .zip(b_plane.iter_mut())
                    .zip(scratch.cos_buf.iter())
                    .zip(scratch.sin_buf.iter())
                {
                    *a = aj * cn - bj * sn;
                    *b = aj * sn + bj * cn;
                }
            }
            // Odd stream: phasors of ωⱼ·((n − n_ref)·T + D̂).
            fill_phasor_table(
                w * (base_offset + self.plan.delay),
                step_phase,
                &mut scratch.cos_buf,
                &mut scratch.sin_buf,
            );
            {
                let (a_plane, b_plane) =
                    scratch.odd_tab[2 * j * span..(2 * j + 2) * span].split_at_mut(span);
                for (((a, b), &cn), &sn) in a_plane
                    .iter_mut()
                    .zip(b_plane.iter_mut())
                    .zip(scratch.cos_buf.iter())
                    .zip(scratch.sin_buf.iter())
                {
                    *a = aj * cn + bj * sn;
                    *b = aj * sn - bj * cn;
                }
            }
        }
    }

    /// Reconstructs the `n` uniform grid instants `t0, t0 + step, …`
    /// into `scratch`, returning `None` when the grid is not fully
    /// inside the capture's coverage.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn try_reconstruct_grid<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'s mut GridScratch,
    ) -> Option<&'s [f64]> {
        self.try_reconstruct_grid_impl(capture, t0, step, n, true, scratch)
    }

    /// [`try_reconstruct_grid`](Self::try_reconstruct_grid) with the
    /// SIMD dispatch bypassed unconditionally (not just under
    /// `RFBIST_FORCE_SCALAR`): the scalar walk kernel runs regardless
    /// of detected CPU features. A test hook — the equivalence suite
    /// uses it to pin the dispatched walk against the scalar kernel
    /// inside one process, where the latched environment flag cannot
    /// flip between the two runs.
    #[doc(hidden)]
    pub fn try_reconstruct_grid_scalar<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'s mut GridScratch,
    ) -> Option<&'s [f64]> {
        self.try_reconstruct_grid_impl(capture, t0, step, n, false, scratch)
    }

    fn try_reconstruct_grid_impl<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        allow_simd: bool,
        scratch: &'s mut GridScratch,
    ) -> Option<&'s [f64]> {
        assert!(step > 0.0, "grid step must be positive");
        scratch.out.clear();
        if n == 0 {
            return Some(&scratch.out);
        }
        let (first_n, span) = self.grid_sample_span(capture, t0, step, n)?;
        let h = self.plan.half_taps as i64;
        self.fill_sample_tables(capture, first_n, span, first_n + h, scratch);
        self.walk_span_dispatched(capture, t0, step, 0, n, first_n, allow_simd, scratch);
        Some(&scratch.out)
    }

    /// Monomorphizes the walk over the window-row filler and the SIMD
    /// dispatch: the aligned cubic table shares one
    /// interpolation-weight set across a whole row and — on x86-64
    /// hosts with hardware FMA, unless `RFBIST_FORCE_SCALAR` is set —
    /// runs through a `#[target_feature]` recompilation of the
    /// branch-free [`walk_span_cubic`](Self::walk_span_cubic) kernel;
    /// kinked windows fall back to per-tap sampling on the scalar
    /// walk. Shared by the monolithic grid walk (`i_start = 0`,
    /// `len = n`) and the streaming block producer (one re-seed chunk
    /// per call), so batch and streamed reconstruction always pick the
    /// same kernel and stay bit-identical. `allow_simd = false` pins
    /// the scalar kernel unconditionally (the equivalence suite's
    /// in-process scalar reference); production callers pass `true`
    /// and let feature detection and `RFBIST_FORCE_SCALAR` decide.
    #[allow(clippy::too_many_arguments)]
    fn walk_span_dispatched(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        i_start: usize,
        len: usize,
        first_n: i64,
        allow_simd: bool,
        scratch: &mut GridScratch,
    ) {
        // Only the x86-64 dispatch below consults the flag.
        #[cfg(not(target_arch = "x86_64"))]
        let _ = allow_simd;
        let hw = self.plan.half_taps as f64 + 1.0;
        let inv_2hw = 1.0 / (2.0 * hw);
        let d_shift = self.plan.delay / capture.period() * inv_2hw;
        match self.window_table.cubic_parts() {
            Some((scale, vals)) => {
                let stride = (scale as usize) / (2 * (self.plan.half_taps + 1));
                debug_assert_eq!(
                    stride * 2 * (self.plan.half_taps + 1),
                    scale as usize,
                    "window table must be node-aligned on the tap stride"
                );
                #[cfg(target_arch = "x86_64")]
                if let Some(wr) = self.win_rows.as_ref() {
                    if allow_simd
                        && !rfbist_dsp::simd::force_scalar()
                        && std::arch::is_x86_feature_detected!("fma")
                    {
                        if std::arch::is_x86_feature_detected!("avx512f") {
                            // SAFETY: AVX-512F + FMA support was just
                            // verified at runtime by
                            // is_x86_feature_detected!; the kernel body
                            // is ordinary safe Rust, recompiled at wider
                            // vectors with hardware-FMA steps.
                            unsafe {
                                self.walk_span_cubic_avx512(
                                    capture, t0, step, i_start, len, first_n, scale, wr, scratch,
                                )
                            };
                            return;
                        }
                        if std::arch::is_x86_feature_detected!("avx2") {
                            // SAFETY: AVX2 + FMA support was just
                            // verified at runtime by
                            // is_x86_feature_detected!; same safe kernel
                            // body as the scalar path.
                            unsafe {
                                self.walk_span_cubic_avx2(
                                    capture, t0, step, i_start, len, first_n, scale, wr, scratch,
                                )
                            };
                            return;
                        }
                    }
                }
                self.walk_span(
                    capture,
                    t0,
                    step,
                    i_start,
                    len,
                    first_n,
                    scratch,
                    move |x0: f64, we: &mut [f64], wo: &mut [f64]| {
                        fill_window_row(scale, vals, stride, inv_2hw, x0, we);
                        fill_window_row(scale, vals, stride, inv_2hw, x0 + d_shift, wo);
                    },
                )
            }
            None => {
                let table = &self.window_table;
                self.walk_span(
                    capture,
                    t0,
                    step,
                    i_start,
                    len,
                    first_n,
                    scratch,
                    move |x0: f64, we: &mut [f64], wo: &mut [f64]| {
                        for (k, (e, o)) in we.iter_mut().zip(wo.iter_mut()).enumerate() {
                            let x = x0 + k as f64 * inv_2hw;
                            *e = table.at(x);
                            *o = table.at(x + d_shift);
                        }
                    },
                )
            }
        }
    }

    /// The grid walk itself: advances the three time phasors point to
    /// point with the grid-step rotors and accumulates eq. 6 through
    /// the factored per-sample tables, appending grid points
    /// `i_start .. i_start + len` (absolute indices of the
    /// `t0`-anchored grid) to `scratch.out`. `fill_windows(x0, we,
    /// wo)` writes both streams' per-tap window rows for the point
    /// whose first tap sits at normalized window position `x0`.
    /// `scratch.even_tab`/`odd_tab` must already cover `first_n ..`
    /// (see `fill_sample_tables`).
    ///
    /// The phasors re-seed exactly at absolute indices that are
    /// multiples of [`GRID_BLOCK_LEN`], so a span starting on a block
    /// boundary seeds on entry: walking a grid in
    /// [`GRID_BLOCK_LEN`]-sized spans performs bit-identical arithmetic
    /// to one monolithic walk — the property that makes the streamed
    /// block feed (and its parallel producers) exactly reproduce the
    /// batch reconstruction.
    #[allow(clippy::too_many_arguments)]
    fn walk_span<W: Fn(f64, &mut [f64], &mut [f64])>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        i_start: usize,
        len: usize,
        first_n: i64,
        scratch: &mut GridScratch,
        fill_windows: W,
    ) {
        debug_assert!(
            i_start.is_multiple_of(TIME_RESEED_INTERVAL),
            "spans must start on a re-seed boundary"
        );
        let period = capture.period();
        let h = self.plan.half_taps as i64;
        let num_taps = self.plan.num_taps();
        let hw = self.plan.half_taps as f64 + 1.0;
        let inv_2hw = 1.0 / (2.0 * hw);
        let inv_two_pi_b = self.plan.inv_two_pi_b;
        let tau_guard = NEAR_ORIGIN_FRACTION * period;
        let t_ref = (first_n + h) as f64 * period;
        let even = capture.even();
        let odd = capture.odd();

        // Grid-step rotations of the three time phasors.
        let mut step_cos = [0.0; 3];
        let mut step_sin = [0.0; 3];
        for j in 0..3 {
            let (s, c) = sincos(self.plan.w[j] * step);
            step_cos[j] = c;
            step_sin[j] = s;
        }

        // Field-disjoint borrows: the output grows while the factored
        // tables are read and the window rows are refilled.
        let out = &mut scratch.out;
        let even_tab = scratch.even_tab.as_slice();
        let odd_tab = scratch.odd_tab.as_slice();
        let span = even_tab.len() / 6;
        scratch.win_e.resize(num_taps, 0.0);
        scratch.win_o.resize(num_taps, 0.0);
        let win_e = scratch.win_e.as_mut_slice();
        let win_o = scratch.win_o.as_mut_slice();
        out.reserve(len);
        let mut ct = [0.0; 3];
        let mut st = [0.0; 3];
        for i in i_start..i_start + len {
            let t = t0 + i as f64 * step;
            if i % TIME_RESEED_INTERVAL == 0 {
                // exact re-seed: bounds rotor phase drift on long grids
                for j in 0..3 {
                    let (s, c) = sincos(self.plan.w[j] * (t - t_ref));
                    ct[j] = c;
                    st[j] = s;
                }
            }
            let t_idx = t / period;
            let nc = t_idx.round() as i64;
            let first = nc - h;
            let te0 = t - first as f64 * period;
            let to0 = first as f64 * period + self.plan.delay - t;
            let x0 = 0.5 + (first as f64 - t_idx) * inv_2hw;
            let tab_base = (first - first_n) as usize;
            let cap_base = (first - capture.n_start()) as usize;
            fill_windows(x0, win_e, win_o);
            let ev = &even[cap_base..cap_base + num_taps];
            let od = &odd[cap_base..cap_base + num_taps];
            let ea = plane_views(even_tab, span, tab_base, num_taps);
            let oa = plane_views(odd_tab, span, tab_base, num_taps);
            // Two accumulators halve the floating-add dependency chain.
            let mut acc_e = 0.0;
            let mut acc_o = 0.0;
            for (k, (((&fe, &fo), &w_e), &w_o)) in ev
                .iter()
                .zip(od)
                .zip(win_e.iter())
                .zip(win_o.iter())
                .enumerate()
            {
                let fk = k as f64;
                if w_e != 0.0 {
                    let tau_e = te0 - fk * period;
                    let s_e = if tau_e.abs() < tau_guard {
                        self.kernel_near_origin(tau_e)
                    } else {
                        let num = ct[0] * ea[0][k]
                            + st[0] * ea[1][k]
                            + ct[1] * ea[2][k]
                            + st[1] * ea[3][k]
                            + ct[2] * ea[4][k]
                            + st[2] * ea[5][k];
                        num * inv_two_pi_b / tau_e
                    };
                    acc_e += fe * s_e * w_e;
                }
                if w_o != 0.0 {
                    let tau_o = to0 + fk * period;
                    let s_o = if tau_o.abs() < tau_guard {
                        self.kernel_near_origin(tau_o)
                    } else {
                        let num = ct[0] * oa[0][k]
                            + st[0] * oa[1][k]
                            + ct[1] * oa[2][k]
                            + st[1] * oa[3][k]
                            + ct[2] * oa[4][k]
                            + st[2] * oa[5][k];
                        num * inv_two_pi_b / tau_o
                    };
                    acc_o += fo * s_o * w_o;
                }
            }
            out.push(acc_e + acc_o);
            for j in 0..3 {
                let c = ct[j] * step_cos[j] - st[j] * step_sin[j];
                let s = ct[j] * step_sin[j] + st[j] * step_cos[j];
                ct[j] = c;
                st[j] = s;
            }
        }
    }

    /// The cubic-table grid walk restructured for the loop vectorizer,
    /// the body behind the `#[target_feature]` recompilations
    /// ([`walk_span_cubic_avx2`](Self::walk_span_cubic_avx2),
    /// [`walk_span_cubic_avx512`](Self::walk_span_cubic_avx512)):
    ///
    /// - the factored per-sample planes are read at unit stride, so
    ///   the six-FMA kernel numerator vectorizes across taps;
    /// - the per-tap pass is branch-free — every tap goes through the
    ///   table path into a contribution buffer, zero-weight taps
    ///   contribute signed zeros, and the `1/τ` poles land only on
    ///   lanes the exact near-origin patch rewrites afterwards (at
    ///   most one per stream per point, since the guard ring
    ///   [`NEAR_ORIGIN_FRACTION`] is far narrower than the tap
    ///   spacing);
    /// - the contributions are reduced with a four-lane accumulator.
    ///
    /// Arithmetic differs from [`walk_span`](Self::walk_span) by
    /// reassociation and FMA rounding only (≪ 1e-12 of kernel value,
    /// pinned by `tests/grid_plan_equivalence.rs`), and is identical
    /// whatever the span chunking — the rotor re-seed schedule matches
    /// the scalar walk, so streamed blocks stay bit-identical to the
    /// batch walk within either dispatch arm.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    // analysis: allow(naked-panic) — every slice is pre-bounded to num_taps before the branch-free tap loop; the k subscripts cannot leave it
    fn walk_span_cubic(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        i_start: usize,
        len: usize,
        first_n: i64,
        scale: f64,
        wr: &WinRows,
        scratch: &mut GridScratch,
    ) {
        debug_assert!(
            i_start.is_multiple_of(TIME_RESEED_INTERVAL),
            "spans must start on a re-seed boundary"
        );
        let period = capture.period();
        let h = self.plan.half_taps as i64;
        let num_taps = self.plan.num_taps();
        let hw = self.plan.half_taps as f64 + 1.0;
        let inv_2hw = 1.0 / (2.0 * hw);
        let d_shift = self.plan.delay / period * inv_2hw;
        let inv_two_pi_b = self.plan.inv_two_pi_b;
        let tau_guard = NEAR_ORIGIN_FRACTION * period;
        let t_ref = (first_n + h) as f64 * period;
        let even = capture.even();
        let odd = capture.odd();

        // Grid-step rotations of the three time phasors.
        let mut step_cos = [0.0; 3];
        let mut step_sin = [0.0; 3];
        for j in 0..3 {
            let (s, c) = sincos(self.plan.w[j] * step);
            step_cos[j] = c;
            step_sin[j] = s;
        }

        // Field-disjoint borrows, as in the scalar walk.
        let out = &mut scratch.out;
        let even_tab = scratch.even_tab.as_slice();
        let odd_tab = scratch.odd_tab.as_slice();
        let span = even_tab.len() / 6;
        scratch.win_e.resize(num_taps, 0.0);
        scratch.win_o.resize(num_taps, 0.0);
        scratch.contrib_e.resize(num_taps, 0.0);
        scratch.contrib_o.resize(num_taps, 0.0);
        let win_e = scratch.win_e.as_mut_slice();
        let win_o = scratch.win_o.as_mut_slice();
        let contrib_e = scratch.contrib_e.as_mut_slice();
        let contrib_o = scratch.contrib_o.as_mut_slice();
        out.reserve(len);
        let mut ct = [0.0; 3];
        let mut st = [0.0; 3];
        for i in i_start..i_start + len {
            let t = t0 + i as f64 * step;
            if i % TIME_RESEED_INTERVAL == 0 {
                // exact re-seed: bounds rotor phase drift on long grids
                for j in 0..3 {
                    let (s, c) = sincos(self.plan.w[j] * (t - t_ref));
                    ct[j] = c;
                    st[j] = s;
                }
            }
            let t_idx = t / period;
            let nc = t_idx.round() as i64;
            let first = nc - h;
            let te0 = t - first as f64 * period;
            let to0 = first as f64 * period + self.plan.delay - t;
            let x0 = 0.5 + (first as f64 - t_idx) * inv_2hw;
            let tab_base = (first - first_n) as usize;
            let cap_base = (first - capture.n_start()) as usize;
            fill_window_row_planar(wr, scale, inv_2hw, x0, win_e);
            fill_window_row_planar(wr, scale, inv_2hw, x0 + d_shift, win_o);
            let ev = &even[cap_base..cap_base + num_taps];
            let od = &odd[cap_base..cap_base + num_taps];
            let ea = plane_views(even_tab, span, tab_base, num_taps);
            let oa = plane_views(odd_tab, span, tab_base, num_taps);
            // Branch-free vector pass over all taps of both streams.
            // Every slice is pre-bounded to `num_taps`, so the loop
            // carries no bounds checks and vectorizes cleanly.
            for k in 0..num_taps {
                let fk = k as f64;
                let tau_e = te0 - fk * period;
                let num_e = ct[0].mul_add(
                    ea[0][k],
                    st[0].mul_add(
                        ea[1][k],
                        ct[1].mul_add(
                            ea[2][k],
                            st[1].mul_add(ea[3][k], ct[2].mul_add(ea[4][k], st[2] * ea[5][k])),
                        ),
                    ),
                );
                contrib_e[k] = (ev[k] * win_e[k]) * (num_e * inv_two_pi_b / tau_e);
                let tau_o = to0 + fk * period;
                let num_o = ct[0].mul_add(
                    oa[0][k],
                    st[0].mul_add(
                        oa[1][k],
                        ct[1].mul_add(
                            oa[2][k],
                            st[1].mul_add(oa[3][k], ct[2].mul_add(oa[4][k], st[2] * oa[5][k])),
                        ),
                    ),
                );
                contrib_o[k] = (od[k] * win_o[k]) * (num_o * inv_two_pi_b / tau_o);
            }
            // Exact near-origin patches: the only lane per stream whose
            // |τ| can sit inside the guard ring is the one nearest the
            // pole, and rewriting it also repairs any inf/NaN the
            // branch-free division put there (including τ = ±0).
            let kg_e = (te0 / period).round();
            if kg_e >= 0.0 && (kg_e as usize) < num_taps {
                let k = kg_e as usize;
                let tau_e = te0 - kg_e * period;
                if tau_e.abs() < tau_guard {
                    contrib_e[k] = (ev[k] * win_e[k]) * self.kernel_near_origin(tau_e);
                }
            }
            let kg_o = (-to0 / period).round();
            if kg_o >= 0.0 && (kg_o as usize) < num_taps {
                let k = kg_o as usize;
                let tau_o = to0 + kg_o * period;
                if tau_o.abs() < tau_guard {
                    contrib_o[k] = (od[k] * win_o[k]) * self.kernel_near_origin(tau_o);
                }
            }
            // Four-lane reduction over both streams' contributions.
            let mut acc = [0.0f64; 4];
            let mut qe = contrib_e.chunks_exact(4);
            let mut qo = contrib_o.chunks_exact(4);
            for (e4, o4) in (&mut qe).zip(&mut qo) {
                acc[0] += e4[0] + o4[0];
                acc[1] += e4[1] + o4[1];
                acc[2] += e4[2] + o4[2];
                acc[3] += e4[3] + o4[3];
            }
            let mut tail = 0.0;
            for (&e, &o) in qe.remainder().iter().zip(qo.remainder()) {
                tail += e + o;
            }
            out.push((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail);
            for j in 0..3 {
                let c = ct[j] * step_cos[j] - st[j] * step_sin[j];
                let s = ct[j] * step_sin[j] + st[j] * step_cos[j];
                ct[j] = c;
                st[j] = s;
            }
        }
    }

    /// [`walk_span_cubic`](Self::walk_span_cubic) compiled with AVX2 +
    /// FMA enabled. Selected at runtime by
    /// [`walk_span_dispatched`](Self::walk_span_dispatched); agrees
    /// with the scalar walk to FMA/reassociation rounding, far inside
    /// every consumer's tolerance.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling —
    /// `#[target_feature]` recompilation emits those instructions
    /// unconditionally. The body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn walk_span_cubic_avx2(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        i_start: usize,
        len: usize,
        first_n: i64,
        scale: f64,
        wr: &WinRows,
        scratch: &mut GridScratch,
    ) {
        self.walk_span_cubic(capture, t0, step, i_start, len, first_n, scale, wr, scratch)
    }

    /// [`walk_span_cubic`](Self::walk_span_cubic) compiled with
    /// AVX-512F + FMA enabled — the AVX2 variant's contract at twice
    /// the lane count.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512F and FMA support on the
    /// running CPU (`is_x86_feature_detected!`) before calling; the
    /// body itself is safe Rust.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn walk_span_cubic_avx512(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        i_start: usize,
        len: usize,
        first_n: i64,
        scale: f64,
        wr: &WinRows,
        scratch: &mut GridScratch,
    ) {
        self.walk_span_cubic(capture, t0, step, i_start, len, first_n, scale, wr, scratch)
    }

    /// Reconstructs the `n` uniform grid instants `t0, t0 + step, …`
    /// into `scratch`, reusing its buffers across calls, and returns
    /// the filled slice.
    ///
    /// # Panics
    ///
    /// Panics (like the per-point batch path) if any grid instant falls
    /// outside the capture's coverage, or if `step` is not positive.
    pub fn reconstruct_grid<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'s mut GridScratch,
    ) -> &'s [f64] {
        self.try_reconstruct_grid(capture, t0, step, n, scratch)
            .unwrap_or_else(|| {
                panic!(
                    "grid [{t0:.3e}, {:.3e}] s outside capture coverage {:?}",
                    t0 + n.saturating_sub(1) as f64 * step,
                    self.plan.coverage(capture)
                )
            })
    }

    /// The capture-sample span `(first_n, span)` the `n`-point grid
    /// reads, or `None` when the grid leaves the capture's coverage.
    /// `n` must be positive.
    fn grid_sample_span(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
    ) -> Option<(i64, usize)> {
        let period = capture.period();
        let h = self.plan.half_taps as i64;
        // The grid is monotone, so endpoint tap windows bound every
        // point's window.
        let nc_first = (t0 / period).round() as i64;
        let nc_last = ((t0 + (n - 1) as f64 * step) / period).round() as i64;
        let first_n = nc_first - h;
        let last_n = nc_last + h;
        if first_n < capture.n_start() || last_n >= capture.n_start() + capture.len() as i64 {
            return None;
        }
        Some((first_n, (last_n - first_n + 1) as usize))
    }

    /// Streams the `n` uniform grid instants `t0, t0 + step, …` as
    /// [`GRID_BLOCK_LEN`]-point blocks — the re-seed chunks the grid
    /// walk already produces — reconstructed into `scratch` one block
    /// per [`GridBlocks::next_block`] call, with no allocation per
    /// block in steady state. Returns `None` when the grid is not
    /// fully inside the capture's coverage.
    ///
    /// Blocks start on the walk's re-seed boundaries, so the
    /// concatenated blocks are **bit-identical** to one
    /// [`reconstruct_grid`](Self::reconstruct_grid) call over the same
    /// grid (pinned by the gridplan tests and
    /// `tests/stream_scan_equivalence.rs`) — a consumer fed block by
    /// block sees exactly the batch waveform, without the full grid
    /// ever materializing.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn try_reconstruct_blocks<'a>(
        &'a self,
        capture: &'a NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'a mut GridScratch,
    ) -> Option<GridBlocks<'a>> {
        assert!(step > 0.0, "grid step must be positive");
        let mut first_n = 0;
        if n > 0 {
            let (fnn, span) = self.grid_sample_span(capture, t0, step, n)?;
            first_n = fnn;
            let h = self.plan.half_taps as i64;
            self.fill_sample_tables(capture, first_n, span, first_n + h, scratch);
        }
        Some(GridBlocks {
            plan: self,
            capture,
            scratch,
            t0,
            step,
            n,
            first_n,
            produced: 0,
        })
    }

    /// [`try_reconstruct_blocks`](Self::try_reconstruct_blocks),
    /// panicking (like [`reconstruct_grid`](Self::reconstruct_grid))
    /// when the grid leaves the capture's coverage.
    pub fn reconstruct_blocks<'a>(
        &'a self,
        capture: &'a NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'a mut GridScratch,
    ) -> GridBlocks<'a> {
        let coverage = self.plan.coverage(capture);
        self.try_reconstruct_blocks(capture, t0, step, n, scratch)
            .unwrap_or_else(|| {
                panic!(
                    "grid [{t0:.3e}, {:.3e}] s outside capture coverage {coverage:?}",
                    t0 + n.saturating_sub(1) as f64 * step,
                )
            })
    }

    /// Reconstructs every `stride`-th [`GRID_BLOCK_LEN`]-point block
    /// of the `n`-point grid, starting at block `offset`, calling
    /// `emit(block_index, &mut block)` for each. This is the single
    /// producer body shared by the scoped workers of
    /// [`try_stream_blocks_parallel`](Self::try_stream_blocks_parallel)
    /// and the persistent workers of the `rfbist-core` verdict
    /// service: one worker runs `(offset = w, stride = workers)` and
    /// the union over workers covers the grid exactly once.
    ///
    /// `emit` receives the block through `&mut Vec<f64>` so a
    /// consumer can `mem::swap` it against a recycled buffer —
    /// steady state stays allocation-free — and returns `false` to
    /// stop the walk early. Blocks re-seed exactly, so
    /// `(offset = 0, stride = 1)` emits bit-identical blocks to
    /// [`reconstruct_blocks`](Self::reconstruct_blocks).
    ///
    /// Returns the number of blocks emitted, or `None` when the grid
    /// is not fully inside the capture's coverage.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or `stride` is zero — caller
    /// bugs, not runtime faults.
    #[allow(clippy::too_many_arguments)]
    pub fn try_produce_blocks_strided<F: FnMut(usize, &mut Vec<f64>) -> bool>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        offset: usize,
        stride: usize,
        scratch: &mut GridScratch,
        mut emit: F,
    ) -> Option<usize> {
        assert!(step > 0.0, "grid step must be positive");
        assert!(stride > 0, "stride must be positive");
        if n == 0 {
            return Some(0);
        }
        let (first_n, span) = self.grid_sample_span(capture, t0, step, n)?;
        let h = self.plan.half_taps as i64;
        self.fill_sample_tables(capture, first_n, span, first_n + h, scratch);
        let nblocks = n.div_ceil(GRID_BLOCK_LEN);
        let mut produced = 0usize;
        let mut idx = offset;
        while idx < nblocks {
            let i_start = idx * GRID_BLOCK_LEN;
            let len = (n - i_start).min(GRID_BLOCK_LEN);
            scratch.out.clear();
            self.walk_span_dispatched(capture, t0, step, i_start, len, first_n, true, scratch);
            produced += 1;
            if !emit(idx, &mut scratch.out) {
                break;
            }
            idx += stride;
        }
        Some(produced)
    }

    /// Drives `consume(block_index, block)` over every
    /// [`GRID_BLOCK_LEN`]-point block of the grid **in index order**,
    /// reconstructing blocks on `workers` scoped producer threads —
    /// the pipelined form of [`reconstruct_blocks`]
    /// (Self::reconstruct_blocks) for consumers (the streaming mask
    /// scan) that are much cheaper than the reconstruction feeding
    /// them. Because every block re-seeds exactly, the consumer sees
    /// bit-identical blocks regardless of the worker count or
    /// scheduling; only the wall-clock changes.
    ///
    /// `consume` returns `false` to stop the feed early (a streaming
    /// early verdict): producers drain and exit, and the number of
    /// points actually consumed is returned. In-flight memory is
    /// bounded by a few blocks per worker — the full grid never
    /// materializes. Returns `None` when the grid is not fully inside
    /// the capture's coverage.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or `workers` is zero, and
    /// propagates producer panics.
    pub fn stream_blocks_parallel<F: FnMut(usize, &[f64]) -> bool>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        workers: usize,
        consume: F,
    ) -> Option<usize> {
        self.try_stream_blocks_parallel(capture, t0, step, n, workers, consume)
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// [`stream_blocks_parallel`](Self::stream_blocks_parallel) with
    /// supervised producers: each worker body runs under
    /// `catch_unwind`, the buffer pool tolerates poisoned locks
    /// (surviving workers recover the pool with
    /// [`PoisonError::into_inner`](std::sync::PoisonError::into_inner)
    /// — the protected `Vec<Vec<f64>>` of recycled buffers is valid in
    /// any state the panicking worker can leave it in), and the first
    /// worker panic is returned as a typed [`StreamWorkerPanic`]
    /// instead of unwinding through the caller. On a worker fault the
    /// feed stops, the remaining producers drain, and no further
    /// blocks reach `consume` — the caller decides whether to retry
    /// in parallel or fall back to the bit-identical sequential feed.
    ///
    /// # Panics
    ///
    /// Still panics if `step` is not positive or `workers` is zero —
    /// those are caller bugs, not runtime faults.
    pub fn try_stream_blocks_parallel<F: FnMut(usize, &[f64]) -> bool>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        workers: usize,
        mut consume: F,
    ) -> Result<Option<usize>, StreamWorkerPanic> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::mpsc::sync_channel;
        use std::sync::Mutex;

        assert!(step > 0.0, "grid step must be positive");
        assert!(workers > 0, "need at least one producer");
        if n == 0 {
            return Ok(Some(0));
        }
        if self.grid_sample_span(capture, t0, step, n).is_none() {
            return Ok(None);
        }
        let nblocks = n.div_ceil(GRID_BLOCK_LEN);
        let workers = workers.min(nblocks);
        let stop = AtomicBool::new(false);
        // Recycled block buffers: the pool bounds steady-state
        // allocation to the in-flight window.
        let pool: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());
        // First worker panic wins; later ones are redundant (the stop
        // flag is already up by then).
        let fault: Mutex<Option<StreamWorkerPanic>> = Mutex::new(None);
        let (tx, rx) = sync_channel::<(usize, Vec<f64>)>(2 * workers);
        let mut consumed = 0usize;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let (stop, pool, fault) = (&stop, &pool, &fault);
                scope.spawn(move || {
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut scratch = GridScratch::new();
                        // Static round-robin over the shared strided
                        // producer body: uniform per-block cost makes
                        // it within a few percent of optimal (the
                        // rfbist-bench chunked-sweep argument).
                        // Coverage was validated before spawning, so
                        // the walk cannot return `None` here.
                        let _ = self.try_produce_blocks_strided(
                            capture,
                            t0,
                            step,
                            n,
                            w,
                            workers,
                            &mut scratch,
                            |idx, out| {
                                if stop.load(Ordering::Relaxed) {
                                    return false;
                                }
                                let mut guard = lock_unpoisoned(pool);
                                if chaos::take_producer_panic() {
                                    // Deliberately panic while holding
                                    // the pool lock so the
                                    // poison-recovery path is
                                    // exercised, not just catch_unwind.
                                    panic!("chaos: injected producer panic in worker {w}");
                                }
                                let mut buf = guard.pop().unwrap_or_default();
                                drop(guard);
                                std::mem::swap(&mut buf, out);
                                // `false` on send failure: the
                                // consumer hung up after an early stop.
                                tx.send((idx, buf)).is_ok()
                            },
                        );
                    }));
                    if let Err(payload) = body {
                        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_string()
                        };
                        lock_unpoisoned(fault)
                            .get_or_insert(StreamWorkerPanic { worker: w, detail });
                        stop.store(true, Ordering::Relaxed);
                    }
                });
            }
            drop(tx);
            // The consumer runs on the calling thread, re-ordering the
            // workers' blocks so `consume` always sees the grid in
            // order. A dead worker leaves a hole in the round-robin
            // sequence; `next` stalls there, blocks pile into
            // `pending`, and the stop flag drains the survivors — the
            // channel closes when the last sender drops, so this loop
            // always terminates.
            let mut pending: std::collections::BTreeMap<usize, Vec<f64>> =
                std::collections::BTreeMap::new();
            let mut next = 0usize;
            for (idx, buf) in rx {
                pending.insert(idx, buf);
                while let Some(buf) = pending.remove(&next) {
                    if !stop.load(Ordering::Relaxed) {
                        let keep_going = consume(next, &buf);
                        consumed += buf.len();
                        if !keep_going {
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                    lock_unpoisoned(&pool).push(buf);
                    next += 1;
                }
                if stop.load(Ordering::Relaxed) {
                    // keep draining so blocked producers can exit
                    pending.clear();
                }
            }
        });
        match fault.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(panic) => Err(panic),
            None => Ok(Some(consumed)),
        }
    }
}

/// Lock a mutex, recovering from poisoning: every value protected by a
/// pool/fault mutex in this module is valid in any state a panicking
/// holder can leave it in (a `Vec` of owned buffers, an `Option`).
fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A producer thread of
/// [`try_stream_blocks_parallel`](PnbsGridPlan::try_stream_blocks_parallel)
/// panicked; the feed stopped before completing the grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamWorkerPanic {
    /// Zero-based index of the worker that died.
    pub worker: usize,
    /// The panic payload (or a placeholder for non-string payloads).
    pub detail: String,
}

impl core::fmt::Display for StreamWorkerPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "stream producer worker {} panicked: {}",
            self.worker, self.detail
        )
    }
}

impl std::error::Error for StreamWorkerPanic {}

/// Fault-injection hooks for the chaos test suite. Not part of the
/// public API contract; armed panics fire inside the parallel feed's
/// producer loop **while the buffer-pool lock is held**, so a single
/// armed panic exercises both `catch_unwind` supervision and poisoned
/// pool recovery in the surviving workers.
#[doc(hidden)]
pub mod chaos {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static PRODUCER_PANICS: AtomicUsize = AtomicUsize::new(0);

    /// Arm the next `n` producer block productions (across all
    /// workers and calls) to panic. `0` disarms.
    pub fn arm_producer_panics(n: usize) {
        PRODUCER_PANICS.store(n, Ordering::SeqCst);
    }

    /// Consume one armed panic, if any.
    pub(super) fn take_producer_panic() -> bool {
        PRODUCER_PANICS
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// A lending iterator over the grid's [`GRID_BLOCK_LEN`]-point
/// re-seed blocks, produced by
/// [`PnbsGridPlan::reconstruct_blocks`]. Each
/// [`next_block`](Self::next_block) reconstructs the next chunk into
/// the borrowed scratch and yields it; the final block may be shorter.
///
/// This is the producer side of the streaming BIST pipeline: feed each
/// block straight into a consumer (the engine pushes them into
/// `rfbist_core`'s streaming mask scan) and the full analysis grid
/// never materializes.
#[derive(Debug)]
pub struct GridBlocks<'a> {
    plan: &'a PnbsGridPlan,
    capture: &'a NonuniformCapture,
    scratch: &'a mut GridScratch,
    t0: f64,
    step: f64,
    n: usize,
    first_n: i64,
    produced: usize,
}

impl GridBlocks<'_> {
    /// Reconstructs and yields the next block, or `None` when the grid
    /// is exhausted. The yielded slice lives in the scratch buffer and
    /// is overwritten by the next call.
    pub fn next_block(&mut self) -> Option<&[f64]> {
        let remaining = self.n - self.produced;
        if remaining == 0 {
            return None;
        }
        let len = remaining.min(GRID_BLOCK_LEN);
        self.scratch.out.clear();
        self.plan.walk_span_dispatched(
            self.capture,
            self.t0,
            self.step,
            self.produced,
            len,
            self.first_n,
            true,
            self.scratch,
        );
        self.produced += len;
        Some(&self.scratch.out)
    }

    /// Grid points yielded so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Total grid points this feed will yield.
    pub fn grid_len(&self) -> usize {
        self.n
    }
}

/// The six per-sample factored planes of one stream's table (see
/// [`GridScratch`]), each sliced to the `len`-tap window starting at
/// sample offset `base` — pre-bounded so the walk kernels' tap loops
/// carry no bounds checks.
#[inline(always)]
fn plane_views(tab: &[f64], span: usize, base: usize, len: usize) -> [&[f64]; 6] {
    std::array::from_fn(|p| &tab[p * span + base..p * span + base + len])
}

/// [`fill_window_row`] against the residue-transposed table
/// ([`WinRows`]): the four stencil nodes of every tap come from four
/// *contiguous* residue rows, so the whole row fill is four
/// unit-stride streams of fused multiply-adds and vectorizes with the
/// tap kernel. Used only by the `#[target_feature]` walk kernels —
/// same weights, same table nodes, FMA-rounded.
#[inline(always)]
// analysis: allow(naked-panic) — p0..p3 are pre-sliced to n_active; the k subscripts cannot leave them
fn fill_window_row_planar(wr: &WinRows, scale: f64, inv_2hw: f64, x_start: f64, out: &mut [f64]) {
    debug_assert!(x_start > 0.0 && x_start < 1.0);
    let pos = x_start * scale;
    let i0 = pos as usize;
    let s = pos - i0 as f64;
    // Shared cubic-Lagrange weights on the stencil at s ∈ {−1, 0, 1, 2}.
    let sp = s + 1.0;
    let sm = s - 1.0;
    let s2 = s - 2.0;
    let c0 = -(s * sm * s2) / 6.0;
    let c1 = sp * sm * s2 * 0.5;
    let c2 = -(sp * s * s2) * 0.5;
    let c3 = sp * s * sm / 6.0;
    // Taps past the support edge (odd stream, large D̂) are zero.
    let k_hi = if x_start + (out.len() - 1) as f64 * inv_2hw <= 1.0 {
        out.len() - 1
    } else {
        (((1.0 - x_start) / inv_2hw).floor().max(0.0) as usize).min(out.len() - 1)
    };
    let q = i0 / wr.stride;
    let r = i0 - q * wr.stride;
    let cols = wr.cols;
    let n_active = k_hi + 1;
    // Tap k's stencil node `i0 + k·stride + o` is row `r + o` at rank
    // `q + k`; `q + k_hi ≤ cols − 1` because every active tap's
    // position stays inside the table support.
    let base = r * cols + q;
    let p0 = &wr.data[base..base + n_active];
    let p1 = &wr.data[base + cols..base + cols + n_active];
    let p2 = &wr.data[base + 2 * cols..base + 2 * cols + n_active];
    let p3 = &wr.data[base + 3 * cols..base + 3 * cols + n_active];
    let (active, tail) = out.split_at_mut(n_active);
    for (k, w) in active.iter_mut().enumerate() {
        *w = c0.mul_add(p0[k], c1.mul_add(p1[k], c2.mul_add(p2[k], c3 * p3[k])));
    }
    tail.fill(0.0);
}

/// Fills one stream's per-tap window row for a grid point whose first
/// tap sits at normalized position `x_start`, walking the row at
/// stride `inv_2hw` through a node-aligned cubic table
/// ([`Window::tabulated_aligned`]): the stride spans exactly `stride`
/// table nodes, so every tap shares the interpolation weights computed
/// once from the fractional node position, and each value is four
/// contiguous loads and four fused multiply-adds. Taps beyond the
/// window support get exact zeros, matching [`WindowTable::at`].
#[inline(always)]
fn fill_window_row(
    scale: f64,
    vals: &[f64],
    stride: usize,
    inv_2hw: f64,
    x_start: f64,
    out: &mut [f64],
) {
    debug_assert!(x_start > 0.0 && x_start < 1.0);
    let pos = x_start * scale;
    let i0 = pos as usize;
    let s = pos - i0 as f64;
    // Shared cubic-Lagrange weights on the stencil at s ∈ {−1, 0, 1, 2}.
    let sp = s + 1.0;
    let sm = s - 1.0;
    let s2 = s - 2.0;
    let c0 = -(s * sm * s2) / 6.0;
    let c1 = sp * sm * s2 * 0.5;
    let c2 = -(sp * s * s2) * 0.5;
    let c3 = sp * s * sm / 6.0;
    // Taps past the support edge (odd stream, large D̂) are zero.
    let k_hi = if x_start + (out.len() - 1) as f64 * inv_2hw <= 1.0 {
        out.len() - 1
    } else {
        (((1.0 - x_start) / inv_2hw).floor().max(0.0) as usize).min(out.len() - 1)
    };
    for (k, w) in out.iter_mut().enumerate() {
        if k > k_hi {
            *w = 0.0;
            continue;
        }
        // x ≤ 1 keeps the stencil inside the padded table
        let p = &vals[i0 + k * stride..i0 + k * stride + 4];
        *w = c0 * p[0] + c1 * p[1] + c2 * p[2] + c3 * p[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandSpec;
    use crate::plan::PnbsScratch;
    use crate::reconstruct::PnbsReconstructor;
    use rfbist_signal::tone::Tone;

    const FC: f64 = 1e9;
    const B: f64 = 90e6;
    const D: f64 = 180e-12;

    fn band() -> BandSpec {
        BandSpec::centered(FC, B)
    }

    fn grid_times(t0: f64, step: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| t0 + i as f64 * step).collect()
    }

    #[test]
    fn grid_matches_per_point_plan_on_tone() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let got = plan.reconstruct_grid(&cap, t0, step, n, &mut scratch);
        let mut pp = PnbsScratch::new();
        let want = plan
            .plan()
            .reconstruct_batch(&cap, &grid_times(t0, step, n), &mut pp);
        for i in 0..n {
            assert!(
                (got[i] - want[i]).abs() < 1e-10,
                "point {i}: {} vs {} (diff {:e})",
                got[i],
                want[i],
                (got[i] - want[i]).abs()
            );
        }
    }

    #[test]
    fn grid_hits_exact_sample_instants() {
        // t0 an exact multiple of T: some grid points land on sample
        // instants (τ ≈ 0) and must take the origin branch, matching
        // the per-point plan.
        let tone = Tone::unit(1.01e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let t0 = 90.0 * t_s;
        let step = t_s / 4.0;
        let n = 64;
        let mut scratch = GridScratch::new();
        let got = plan
            .reconstruct_grid(&cap, t0, step, n, &mut scratch)
            .to_vec();
        for (i, &g) in got.iter().enumerate() {
            let want = plan.plan().try_reconstruct_at(&cap, t0 + i as f64 * step);
            assert!((g - want.unwrap()).abs() < 1e-10, "point {i}");
        }
    }

    #[test]
    fn integer_positioned_band_grid_matches() {
        let band80 = BandSpec::centered(FC, 80e6);
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / 80e6, 200e-12, -50, 350);
        let plan = PnbsGridPlan::new(band80, 200e-12, 61, Window::Kaiser(8.0));
        assert!(plan.plan().num_taps() == 61);
        let mut scratch = GridScratch::new();
        let got = plan
            .reconstruct_grid(&cap, 0.9e-6, 3.1e-10, 500, &mut scratch)
            .to_vec();
        let rec = PnbsReconstructor::paper_default(band80, 200e-12).unwrap();
        for (i, &g) in got.iter().enumerate() {
            let t = 0.9e-6 + i as f64 * 3.1e-10;
            assert!(
                (g - rec.reconstruct_at_reference(&cap, t)).abs() < 1e-9,
                "point {i}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_idempotent() {
        let tone = Tone::unit(0.97e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        let first = plan
            .reconstruct_grid(&cap, 0.7e-6, 2.5e-10, 300, &mut scratch)
            .to_vec();
        let second = plan.reconstruct_grid(&cap, 0.7e-6, 2.5e-10, 300, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(scratch.values().len(), 300);
    }

    #[test]
    fn empty_grid_yields_empty_slice() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        assert!(plan
            .try_reconstruct_grid(&cap, 0.0, 1e-9, 0, &mut scratch)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn out_of_coverage_grid_is_none_and_panics() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        assert!(plan
            .try_reconstruct_grid(&cap, 0.0, 1e-9, 8, &mut scratch)
            .is_none());
        let result = std::panic::catch_unwind(|| {
            let mut scratch = GridScratch::new();
            let _ = plan.reconstruct_grid(&cap, 0.0, 1e-9, 8, &mut scratch);
        });
        assert!(result.is_err(), "out-of-coverage grid must panic");
    }

    #[test]
    #[should_panic(expected = "grid step must be positive")]
    fn non_positive_step_panics() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        let _ = plan.try_reconstruct_grid(&cap, 1e-6, 0.0, 4, &mut scratch);
    }

    #[test]
    fn block_feed_matches_monolithic_grid() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        // n not a multiple of the block length: final block is partial
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let want = plan
            .reconstruct_grid(&cap, t0, step, n, &mut scratch)
            .to_vec();
        let mut block_scratch = GridScratch::new();
        let mut blocks = plan.reconstruct_blocks(&cap, t0, step, n, &mut block_scratch);
        assert_eq!(blocks.grid_len(), n);
        let mut got = Vec::new();
        let mut sizes = Vec::new();
        while let Some(block) = blocks.next_block() {
            sizes.push(block.len());
            got.extend_from_slice(block);
        }
        assert_eq!(blocks.produced(), n);
        assert_eq!(got.len(), n);
        // all blocks are full re-seed chunks except the final partial
        assert!(sizes[..sizes.len() - 1]
            .iter()
            .all(|&s| s == GRID_BLOCK_LEN));
        assert_eq!(*sizes.last().unwrap(), n % GRID_BLOCK_LEN);
        // blocks start on re-seed boundaries, so the feed is
        // bit-identical to the monolithic walk — not just close
        assert_eq!(got, want);
    }

    #[test]
    fn strided_producer_with_unit_stride_matches_monolithic_grid() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let want = plan
            .reconstruct_grid(&cap, t0, step, n, &mut scratch)
            .to_vec();
        let mut got = Vec::new();
        let mut next_idx = 0usize;
        let mut stride_scratch = GridScratch::new();
        let blocks = plan
            .try_produce_blocks_strided(&cap, t0, step, n, 0, 1, &mut stride_scratch, |idx, out| {
                assert_eq!(idx, next_idx, "unit stride walks blocks in order");
                next_idx += 1;
                got.extend_from_slice(out);
                true
            })
            .expect("grid is inside coverage");
        assert_eq!(blocks, n.div_ceil(GRID_BLOCK_LEN));
        assert_eq!(got, want);
    }

    #[test]
    fn strided_producers_partition_the_grid_exactly_once() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let want = plan
            .reconstruct_grid(&cap, t0, step, n, &mut scratch)
            .to_vec();
        let stride = 3usize;
        let mut got = vec![f64::NAN; n];
        let mut total_blocks = 0usize;
        for offset in 0..stride {
            let mut worker_scratch = GridScratch::new();
            total_blocks += plan
                .try_produce_blocks_strided(
                    &cap,
                    t0,
                    step,
                    n,
                    offset,
                    stride,
                    &mut worker_scratch,
                    |idx, out| {
                        assert_eq!(idx % stride, offset, "block {idx} on wrong worker");
                        let lo = idx * GRID_BLOCK_LEN;
                        for (slot, &v) in got[lo..lo + out.len()].iter_mut().zip(out.iter()) {
                            assert!(slot.is_nan(), "block {idx} emitted twice");
                            *slot = v;
                        }
                        true
                    },
                )
                .expect("grid is inside coverage");
        }
        assert_eq!(total_blocks, n.div_ceil(GRID_BLOCK_LEN));
        // the union of the strided walks is the monolithic grid,
        // bit-identical — every point written exactly once
        assert_eq!(got, want);
    }

    #[test]
    fn strided_producer_early_stop_and_swap_are_supported() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let mut stolen: Vec<Vec<f64>> = Vec::new();
        let blocks = plan
            .try_produce_blocks_strided(&cap, t0, step, n, 0, 1, &mut scratch, |_, out| {
                let mut buf = Vec::new();
                std::mem::swap(&mut buf, out);
                stolen.push(buf);
                stolen.len() < 3
            })
            .expect("grid is inside coverage");
        assert_eq!(blocks, 3, "emit returning false stops the walk");
        assert!(stolen.iter().all(|b| b.len() == GRID_BLOCK_LEN));
        // out-of-coverage grids still surface as None
        assert!(plan
            .try_produce_blocks_strided(&cap, -1.0, 1e-9, 8, 0, 1, &mut scratch, |_, _| true)
            .is_none());
    }

    #[test]
    fn parallel_block_feed_matches_sequential_feed() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut scratch = GridScratch::new();
        let want = plan
            .reconstruct_grid(&cap, t0, step, n, &mut scratch)
            .to_vec();
        for workers in [1usize, 2, 3, 7] {
            let mut got = vec![f64::NAN; n];
            let mut cursor = 0usize;
            let consumed = plan
                .stream_blocks_parallel(&cap, t0, step, n, workers, |idx, block| {
                    assert_eq!(idx * GRID_BLOCK_LEN, cursor, "blocks must arrive in order");
                    got[cursor..cursor + block.len()].copy_from_slice(block);
                    cursor += block.len();
                    true
                })
                .expect("grid inside coverage");
            assert_eq!(consumed, n, "workers = {workers}");
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_block_feed_early_stop_bounds_consumption() {
        let tone = Tone::unit(0.98e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let (t0, step, n) = (0.6e-6, 2.5e-10, 2000);
        let mut seen = 0usize;
        let consumed = plan
            .stream_blocks_parallel(&cap, t0, step, n, 3, |_, block| {
                seen += block.len();
                seen < 600 // stop after the third block
            })
            .expect("grid inside coverage");
        assert_eq!(consumed, seen);
        assert_eq!(consumed, 3 * GRID_BLOCK_LEN);
        // out-of-coverage grids are still rejected up front
        let short = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        assert!(plan
            .stream_blocks_parallel(&short, 0.0, 1e-9, 8, 2, |_, _| true)
            .is_none());
    }

    #[test]
    fn block_feed_handles_origin_branch_and_bartlett_fallback() {
        // exact sample instants exercise the near-origin guard inside
        // the block walk; Bartlett's kinked shape exercises the
        // non-cubic window-row fallback
        let tone = Tone::unit(1.01e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        for window in [Window::Kaiser(8.0), Window::Bartlett] {
            let plan = PnbsGridPlan::new(band(), D, 61, window);
            let (t0, step, n) = (90.0 * t_s, t_s / 4.0, 300);
            let mut scratch = GridScratch::new();
            let want = plan
                .reconstruct_grid(&cap, t0, step, n, &mut scratch)
                .to_vec();
            let mut bs = GridScratch::new();
            let mut blocks = plan.reconstruct_blocks(&cap, t0, step, n, &mut bs);
            let mut got = Vec::new();
            while let Some(block) = blocks.next_block() {
                got.extend_from_slice(block);
            }
            for i in 0..n {
                assert!(
                    (got[i] - want[i]).abs() < 1e-9,
                    "{window:?} point {i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn block_feed_scratch_reuse_is_idempotent() {
        let tone = Tone::unit(0.97e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        let mut first = Vec::new();
        let mut blocks = plan.reconstruct_blocks(&cap, 0.7e-6, 2.5e-10, 600, &mut scratch);
        while let Some(b) = blocks.next_block() {
            first.extend_from_slice(b);
        }
        let mut second = Vec::new();
        let mut blocks = plan.reconstruct_blocks(&cap, 0.7e-6, 2.5e-10, 600, &mut scratch);
        while let Some(b) = blocks.next_block() {
            second.extend_from_slice(b);
        }
        assert_eq!(first, second);
    }

    #[test]
    fn block_feed_coverage_and_empty_grid() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        let mut scratch = GridScratch::new();
        assert!(plan
            .try_reconstruct_blocks(&cap, 0.0, 1e-9, 8, &mut scratch)
            .is_none());
        let mut empty = plan
            .try_reconstruct_blocks(&cap, 0.0, 1e-9, 0, &mut scratch)
            .expect("empty grid needs no coverage");
        assert!(empty.next_block().is_none());
        assert_eq!(empty.produced(), 0);
        let result = std::panic::catch_unwind(|| {
            let mut scratch = GridScratch::new();
            let _ = plan.reconstruct_blocks(&cap, 0.0, 1e-9, 8, &mut scratch);
        });
        assert!(result.is_err(), "out-of-coverage block feed must panic");
    }

    #[test]
    fn accessors_delegate_to_plan() {
        let plan = PnbsGridPlan::new(band(), D, 61, Window::Kaiser(8.0));
        assert_eq!(plan.num_taps(), 61);
        assert_eq!(plan.delay(), D);
        assert_eq!(plan.plan().num_taps(), 61);
    }
}
