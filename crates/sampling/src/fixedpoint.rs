//! Fixed-point reconstruction — the hardware-mapping ablation.
//!
//! The paper's stated future work is "an efficient mapping to hardware of
//! our nonuniform sampler". The dominant cost in such a mapping is the
//! arithmetic width of the reconstruction-filter evaluation. This module
//! quantizes the Kohlenberg kernel values to a signed fixed-point format
//! and measures what precision the reconstruction error actually needs —
//! feeding the `ext_fixedpoint` experiment binary.

use crate::reconstruct::{NonuniformCapture, PnbsReconstructor};

/// Quantizes `x` to a signed fixed-point grid with `frac_bits` fractional
/// bits (round-to-nearest, saturating at ±`max_abs`).
///
/// # Panics
///
/// Panics if `frac_bits` is 0 or > 60, or `max_abs <= 0`.
pub fn quantize(x: f64, frac_bits: u32, max_abs: f64) -> f64 {
    assert!(
        (1..=60).contains(&frac_bits),
        "fractional bits must be 1..=60"
    );
    assert!(max_abs > 0.0, "saturation bound must be positive");
    let scale = (1u64 << frac_bits) as f64;
    let clamped = x.clamp(-max_abs, max_abs);
    (clamped * scale).round() / scale
}

/// A PNBS reconstructor whose kernel evaluations are quantized to fixed
/// point, emulating a hardware datapath of `frac_bits` fractional bits.
#[derive(Clone, Debug)]
pub struct FixedPointReconstructor {
    inner: PnbsReconstructor,
    frac_bits: u32,
    /// Kernel saturation bound (kernel values for well-conditioned delays
    /// stay within a few units; 8.0 leaves margin).
    max_abs: f64,
}

impl FixedPointReconstructor {
    /// Wraps `inner`, quantizing kernel values to `frac_bits` fractional
    /// bits.
    pub fn new(inner: PnbsReconstructor, frac_bits: u32) -> Self {
        FixedPointReconstructor {
            inner,
            frac_bits,
            max_abs: 8.0,
        }
    }

    /// The emulated fractional precision.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Reconstructs `f(t)` with a quantized kernel; `None` outside
    /// coverage.
    ///
    /// Implementation note: quantization is applied to the *windowed
    /// kernel weights*, matching a hardware design that stores
    /// pre-windowed coefficients in a ROM/LUT.
    pub fn try_reconstruct_at(&self, capture: &NonuniformCapture, t: f64) -> Option<f64> {
        // Reuse the floating reconstructor's machinery by quantizing its
        // constituent terms: evaluate with a locally quantized kernel.
        // The PnbsReconstructor API does not expose per-tap weights, so
        // this mirrors its loop using public accessors.
        let period = capture.period();
        let t_idx = t / period;
        let nc = t_idx.round() as i64;
        let h = (self.inner.num_taps() / 2) as i64;
        if nc - h < capture.n_start() || nc + h >= capture.n_start() + capture.len() as i64 {
            return None;
        }
        // Quantize by probing the exact reconstructor twice per tap is
        // wasteful; instead quantize the full-precision result of each
        // single-tap contribution via a capture mask. Simpler and exact:
        // reconstruct with unit-impulse captures is O(taps²). For the
        // ablation we instead quantize even/odd kernel weights through
        // the public kernel below.
        let rec = &self.inner;
        let kernel_band = rec.band();
        let d_hat = rec.delay_estimate();
        let kern = crate::kohlenberg::KohlenbergInterpolant::new_unchecked(kernel_band, d_hat);
        let hw = h as f64 + 1.0;
        let window = rfbist_dsp::window::Window::Kaiser(8.0);
        let d_norm = d_hat / period;
        let mut acc = 0.0;
        for n in (nc - h)..=(nc + h) {
            let idx = (n - capture.n_start()) as usize;
            let offset = n as f64 - t_idx;
            let w_e = window.at(0.5 + offset / (2.0 * hw));
            let w_o = window.at(0.5 + (offset + d_norm) / (2.0 * hw));
            let c_e = quantize(
                kern.eval(t - n as f64 * period) * w_e,
                self.frac_bits,
                self.max_abs,
            );
            let c_o = quantize(
                kern.eval(n as f64 * period + d_hat - t) * w_o,
                self.frac_bits,
                self.max_abs,
            );
            acc += capture.even()[idx] * c_e + capture.odd()[idx] * c_o;
        }
        Some(acc)
    }

    /// Reconstructs `f(t)`.
    ///
    /// # Panics
    ///
    /// Panics outside the capture's coverage.
    pub fn reconstruct_at(&self, capture: &NonuniformCapture, t: f64) -> f64 {
        self.try_reconstruct_at(capture, t)
            .unwrap_or_else(|| panic!("t outside capture coverage"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandSpec;
    use rfbist_dsp::window::Window;
    use rfbist_math::rng::Randomizer;
    use rfbist_math::stats::nrmse;
    use rfbist_signal::tone::Tone;
    use rfbist_signal::traits::ContinuousSignal;

    #[test]
    fn quantize_rounds_to_grid() {
        assert_eq!(quantize(0.3, 2, 8.0), 0.25);
        assert_eq!(quantize(0.4, 2, 8.0), 0.5);
        assert_eq!(quantize(-0.3, 2, 8.0), -0.25);
        assert_eq!(
            quantize(0.3, 20, 8.0),
            (0.3f64 * (1 << 20) as f64).round() / (1 << 20) as f64
        );
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize(100.0, 8, 8.0), 8.0);
        assert_eq!(quantize(-100.0, 8, 8.0), -8.0);
    }

    #[test]
    fn high_precision_matches_float() {
        let band = BandSpec::centered(1e9, 90e6);
        let d = 180e-12;
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -50, 300);
        let float_rec = PnbsReconstructor::paper_default(band, d).unwrap();
        let fxp = FixedPointReconstructor::new(float_rec.clone(), 40);
        let mut rng = Randomizer::from_seed(9);
        for _ in 0..30 {
            let t = rng.uniform(0.5e-6, 2.0e-6);
            let a = float_rec.reconstruct_at(&cap, t);
            let b = fxp.reconstruct_at(&cap, t);
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn error_grows_as_bits_shrink() {
        let band = BandSpec::centered(1e9, 90e6);
        let d = 180e-12;
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -50, 300);
        let float_rec = PnbsReconstructor::new(band, d, 61, Window::Kaiser(8.0)).unwrap();
        let mut rng = Randomizer::from_seed(10);
        let times: Vec<f64> = (0..60).map(|_| rng.uniform(0.5e-6, 2.0e-6)).collect();
        let want = tone.sample(&times);
        let err_at = |bits: u32| {
            let fxp = FixedPointReconstructor::new(float_rec.clone(), bits);
            let got: Vec<f64> = times.iter().map(|&t| fxp.reconstruct_at(&cap, t)).collect();
            nrmse(&got, &want)
        };
        let e6 = err_at(6);
        let e12 = err_at(12);
        let e24 = err_at(24);
        assert!(e6 > e12, "{e6} !> {e12}");
        assert!(e12 > e24 * 0.999, "{e12} vs {e24}");
        // 24-bit coefficients should be visually indistinguishable from float
        assert!(e24 < 0.01, "{e24}");
    }

    #[test]
    fn coverage_respected() {
        let band = BandSpec::centered(1e9, 90e6);
        let d = 180e-12;
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, 0, 80);
        let fxp =
            FixedPointReconstructor::new(PnbsReconstructor::paper_default(band, d).unwrap(), 16);
        assert!(fxp.try_reconstruct_at(&cap, 0.0).is_none());
        assert_eq!(fxp.frac_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "fractional bits")]
    fn zero_bits_panics() {
        let _ = quantize(0.5, 0, 1.0);
    }
}
