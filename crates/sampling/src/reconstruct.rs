//! Finite-tap windowed PNBS reconstruction (paper eq. 6).
//!
//! The exact interpolation (eq. 1) needs infinitely many samples; the
//! practical reconstructor truncates each stream to `nw + 1` taps around
//! the evaluation instant and tapers the kernel with a Kaiser window —
//! exactly the paper's setup ("the reconstruction filter has 61 taps
//! (nw = 60) and is windowed by a Kaiser window").
//!
//! The reconstructor's delay is the *estimate* `D̂`: captures are taken
//! with the true physical `D`, and the whole time-skew estimation problem
//! (paper Section IV) is about making `D̂` match `D`.

use crate::band::BandSpec;
use crate::gridplan::{GridBlocks, GridScratch, PnbsGridPlan};
use crate::kohlenberg::{DelayConstraintError, KohlenbergInterpolant};
use crate::plan::{PnbsPlan, PnbsScratch};
use rfbist_dsp::window::Window;
use rfbist_signal::traits::ContinuousSignal;

/// A two-stream nonuniform capture: `even[i] = f((n₀+i)·T)` and
/// `odd[i] = f((n₀+i)·T + D)`.
///
/// Produced either ideally ([`from_signal`](Self::from_signal)) or by the
/// converter models in `rfbist-converter` (with jitter, quantization and
/// channel mismatches).
#[derive(Clone, Debug, PartialEq)]
pub struct NonuniformCapture {
    period: f64,
    delay: f64,
    n_start: i64,
    even: Vec<f64>,
    odd: Vec<f64>,
}

impl NonuniformCapture {
    /// Wraps pre-sampled streams.
    ///
    /// # Panics
    ///
    /// Panics if the streams differ in length, are empty, or
    /// `period <= 0`.
    pub fn from_streams(
        period: f64,
        delay: f64,
        n_start: i64,
        even: Vec<f64>,
        odd: Vec<f64>,
    ) -> Self {
        assert!(period > 0.0, "sample period must be positive");
        assert_eq!(even.len(), odd.len(), "streams must have equal length");
        assert!(!even.is_empty(), "capture must be non-empty");
        NonuniformCapture {
            period,
            delay,
            n_start,
            even,
            odd,
        }
    }

    /// Samples `signal` ideally (no jitter, no quantization): `count`
    /// pairs starting at index `n_start`.
    pub fn from_signal<S: ContinuousSignal>(
        signal: &S,
        period: f64,
        delay: f64,
        n_start: i64,
        count: usize,
    ) -> Self {
        assert!(period > 0.0, "sample period must be positive");
        assert!(count > 0, "capture must be non-empty");
        let mut even = Vec::with_capacity(count);
        let mut odd = Vec::with_capacity(count);
        for i in 0..count {
            let t = (n_start + i as i64) as f64 * period;
            even.push(signal.eval(t));
            odd.push(signal.eval(t + delay));
        }
        NonuniformCapture {
            period,
            delay,
            n_start,
            even,
            odd,
        }
    }

    /// Nominal sample period `T` in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The physical delay `D` the capture was taken with, in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Index of the first sample pair.
    pub fn n_start(&self) -> i64 {
        self.n_start
    }

    /// Number of sample pairs.
    pub fn len(&self) -> usize {
        self.even.len()
    }

    /// `true` when the capture holds no samples (cannot normally occur).
    pub fn is_empty(&self) -> bool {
        self.even.is_empty()
    }

    /// The `f(nT)` stream.
    pub fn even(&self) -> &[f64] {
        &self.even
    }

    /// The `f(nT + D)` stream.
    pub fn odd(&self) -> &[f64] {
        &self.odd
    }
}

/// Windowed finite-tap PNBS reconstructor.
///
/// # Example
///
/// ```
/// use rfbist_sampling::band::BandSpec;
/// use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
/// use rfbist_signal::tone::Tone;
/// use rfbist_signal::traits::ContinuousSignal;
///
/// let band = BandSpec::centered(1e9, 90e6);
/// let d = 180e-12;
/// let tone = Tone::unit(0.98e9);
/// let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -40, 300);
/// let rec = PnbsReconstructor::paper_default(band, d).unwrap();
/// let t = 1.0e-6;
/// let err = (rec.reconstruct_at(&cap, t) - tone.eval(t)).abs();
/// assert!(err < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct PnbsReconstructor {
    kernel: KohlenbergInterpolant,
    band: BandSpec,
    half_taps: usize,
    window: Window,
    grid_plan: PnbsGridPlan,
}

impl PnbsReconstructor {
    /// Builds a reconstructor for `band` assuming inter-channel delay
    /// `delay_estimate`, with `num_taps` kernel taps per stream
    /// (`num_taps = nw + 1`, odd) tapered by `window`.
    ///
    /// # Errors
    ///
    /// Propagates [`DelayConstraintError`] for invalid delays.
    ///
    /// # Panics
    ///
    /// Panics if `num_taps` is even or zero.
    pub fn new(
        band: BandSpec,
        delay_estimate: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DelayConstraintError> {
        assert!(num_taps % 2 == 1, "tap count must be odd (nw + 1)");
        let kernel = KohlenbergInterpolant::new(band, delay_estimate)?;
        let plan = PnbsPlan::new(band, delay_estimate, num_taps, window);
        Ok(PnbsReconstructor {
            kernel,
            band,
            half_taps: num_taps / 2,
            window,
            grid_plan: PnbsGridPlan::from_plan(plan, window),
        })
    }

    /// The paper's configuration: 61 taps (`nw = 60`), Kaiser window
    /// (β = 8).
    pub fn paper_default(
        band: BandSpec,
        delay_estimate: f64,
    ) -> Result<Self, DelayConstraintError> {
        PnbsReconstructor::new(band, delay_estimate, 61, Window::Kaiser(8.0))
    }

    /// Builds without delay-constraint checks (for instability studies).
    pub fn new_unchecked(
        band: BandSpec,
        delay_estimate: f64,
        num_taps: usize,
        window: Window,
    ) -> Self {
        assert!(num_taps % 2 == 1, "tap count must be odd (nw + 1)");
        let kernel = KohlenbergInterpolant::new_unchecked(band, delay_estimate);
        let plan = PnbsPlan::new(band, delay_estimate, num_taps, window);
        PnbsReconstructor {
            kernel,
            band,
            half_taps: num_taps / 2,
            window,
            grid_plan: PnbsGridPlan::from_plan(plan, window),
        }
    }

    /// The assumed delay estimate `D̂` in seconds.
    pub fn delay_estimate(&self) -> f64 {
        self.kernel.delay()
    }

    /// The reconstruction band.
    pub fn band(&self) -> BandSpec {
        self.band
    }

    /// Taps per stream (`nw + 1`).
    pub fn num_taps(&self) -> usize {
        2 * self.half_taps + 1
    }

    /// The time interval over which `capture` fully covers the filter
    /// support: `[(n₀ + h)·T, (n₀ + len − 1 − h)·T]` with `h = nw/2`.
    ///
    /// Returns `None` when the capture is too short for even one
    /// evaluation.
    pub fn coverage(&self, capture: &NonuniformCapture) -> Option<(f64, f64)> {
        self.plan().coverage(capture)
    }

    /// The precomputed reconstruction plan this reconstructor
    /// evaluates through (kernel constants, phase rotors, prepared
    /// window) — see [`PnbsPlan`].
    pub fn plan(&self) -> &PnbsPlan {
        self.grid_plan.plan()
    }

    /// The grid-aware extension of [`plan`](Self::plan) — cross-point
    /// rotor reuse for uniform analysis grids, see [`PnbsGridPlan`].
    pub fn grid_plan(&self) -> &PnbsGridPlan {
        &self.grid_plan
    }

    /// Reconstructs `f(t)`, returning `None` if the capture does not
    /// cover the filter support at `t`.
    ///
    /// Evaluates through the precomputed [`PnbsPlan`]; equivalent to
    /// [`try_reconstruct_at_reference`](Self::try_reconstruct_at_reference)
    /// to ≪ 1e-9 at roughly an order of magnitude less cost.
    pub fn try_reconstruct_at(&self, capture: &NonuniformCapture, t: f64) -> Option<f64> {
        self.plan().try_reconstruct_at(capture, t)
    }

    /// The direct (unplanned) eq. 6 evaluation: four kernel cosines and
    /// two Kaiser Bessel-`I0` series per tap. Preserved as the measured
    /// baseline for the perf-trajectory harness and as the oracle for
    /// the plan-equivalence tests.
    pub fn try_reconstruct_at_reference(&self, capture: &NonuniformCapture, t: f64) -> Option<f64> {
        let period = capture.period();
        let t_idx = t / period;
        let nc = t_idx.round() as i64;
        let h = self.half_taps as i64;
        let first = nc - h;
        let last = nc + h;
        if first < capture.n_start() || last >= capture.n_start() + capture.len() as i64 {
            return None;
        }
        // Window half-width slightly beyond the tap span so no in-span
        // tap falls outside the window support for any rounding of t.
        let hw = self.half_taps as f64 + 1.0;
        let d_hat = self.kernel.delay();
        let d_norm = d_hat / period;
        let mut acc = 0.0;
        for n in first..=last {
            let idx = (n - capture.n_start()) as usize;
            let offset = n as f64 - t_idx;
            // even stream: f(nT)·s(t − nT)
            let w_e = self.window.at(0.5 + offset / (2.0 * hw));
            if w_e != 0.0 {
                acc += capture.even()[idx] * self.kernel.eval(t - n as f64 * period) * w_e;
            }
            // odd stream: f(nT + D)·s(nT + D̂ − t)
            let w_o = self.window.at(0.5 + (offset + d_norm) / (2.0 * hw));
            if w_o != 0.0 {
                acc += capture.odd()[idx] * self.kernel.eval(n as f64 * period + d_hat - t) * w_o;
            }
        }
        Some(acc)
    }

    /// Reconstructs `f(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` lies outside [`coverage`](Self::coverage) — silent
    /// zero-padding would corrupt the error metrics this workspace is
    /// built to measure.
    pub fn reconstruct_at(&self, capture: &NonuniformCapture, t: f64) -> f64 {
        self.try_reconstruct_at(capture, t).unwrap_or_else(|| {
            panic!(
                "t = {t:.3e} s outside capture coverage {:?}",
                self.coverage(capture)
            )
        })
    }

    /// [`reconstruct_at`](Self::reconstruct_at) through the preserved
    /// direct path — the scalar baseline.
    ///
    /// # Panics
    ///
    /// Panics as [`reconstruct_at`](Self::reconstruct_at) does.
    pub fn reconstruct_at_reference(&self, capture: &NonuniformCapture, t: f64) -> f64 {
        self.try_reconstruct_at_reference(capture, t)
            .unwrap_or_else(|| {
                panic!(
                    "t = {t:.3e} s outside capture coverage {:?}",
                    self.coverage(capture)
                )
            })
    }

    /// Reconstructs at each instant in `times`.
    ///
    /// # Panics
    ///
    /// Panics as [`reconstruct_at`](Self::reconstruct_at) does.
    pub fn reconstruct(&self, capture: &NonuniformCapture, times: &[f64]) -> Vec<f64> {
        let mut scratch = PnbsScratch::new();
        self.reconstruct_batch(capture, times, &mut scratch);
        scratch.into_values()
    }

    /// Reconstructs every instant of `times` through the plan, reusing
    /// `scratch`'s buffer, and returns the filled slice. The
    /// allocation-free form grid sweeps and cost functions should call.
    ///
    /// # Panics
    ///
    /// Panics as [`reconstruct_at`](Self::reconstruct_at) does.
    pub fn reconstruct_batch<'s>(
        &self,
        capture: &NonuniformCapture,
        times: &[f64],
        scratch: &'s mut PnbsScratch,
    ) -> &'s [f64] {
        self.plan().reconstruct_batch(capture, times, scratch)
    }

    /// Reconstructs the `n` uniform grid instants `t0, t0 + step, …`
    /// through the grid-aware plan ([`PnbsGridPlan`]) — the entry
    /// point for dense analysis grids, where cross-point rotor reuse
    /// and the tabulated window more than halve the per-point planned
    /// cost. Equivalent to
    /// [`reconstruct_batch`](Self::reconstruct_batch) over the same
    /// instants to ≪ 1e-9.
    ///
    /// # Panics
    ///
    /// Panics if any grid instant falls outside
    /// [`coverage`](Self::coverage), or if `step` is not positive.
    pub fn reconstruct_grid<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'s mut GridScratch,
    ) -> &'s [f64] {
        self.grid_plan
            .reconstruct_grid(capture, t0, step, n, scratch)
    }

    /// [`reconstruct_grid`](Self::reconstruct_grid), returning `None`
    /// instead of panicking when the grid leaves the capture's
    /// coverage.
    pub fn try_reconstruct_grid<'s>(
        &self,
        capture: &NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'s mut GridScratch,
    ) -> Option<&'s [f64]> {
        self.grid_plan
            .try_reconstruct_grid(capture, t0, step, n, scratch)
    }

    /// Streams the `n` uniform grid instants as
    /// [`GRID_BLOCK_LEN`](crate::gridplan::GRID_BLOCK_LEN)-point
    /// blocks through the grid plan's block kernel
    /// ([`PnbsGridPlan::reconstruct_blocks`]) — the producer side of a
    /// streaming verdict pipeline, where no full-grid buffer ever
    /// materializes. Agrees with
    /// [`reconstruct_grid`](Self::reconstruct_grid) to ≪ 1e-9.
    ///
    /// # Panics
    ///
    /// Panics as [`reconstruct_grid`](Self::reconstruct_grid) does.
    pub fn reconstruct_blocks<'a>(
        &'a self,
        capture: &'a NonuniformCapture,
        t0: f64,
        step: f64,
        n: usize,
        scratch: &'a mut GridScratch,
    ) -> GridBlocks<'a> {
        self.grid_plan
            .reconstruct_blocks(capture, t0, step, n, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::rng::Randomizer;
    use rfbist_math::stats::nrmse;
    use rfbist_signal::bandpass::BandpassSignal;
    use rfbist_signal::baseband::ShapedBaseband;
    use rfbist_signal::tone::{MultiTone, Tone};

    const FC: f64 = 1e9;
    const B: f64 = 90e6;
    const D: f64 = 180e-12;

    fn band() -> BandSpec {
        BandSpec::centered(FC, B)
    }

    fn probe_times(n: usize, t0: f64, t1: f64, seed: u64) -> Vec<f64> {
        let mut rng = Randomizer::from_seed(seed);
        (0..n).map(|_| rng.uniform(t0, t1)).collect()
    }

    #[test]
    fn tone_reconstruction_is_accurate() {
        let tone = Tone::unit(0.98e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let times = probe_times(200, 0.5e-6, 2.0e-6, 1);
        let got = rec.reconstruct(&cap, &times);
        let want = tone.sample(&times);
        let err = nrmse(&got, &want);
        assert!(err < 0.01, "nrmse {err}");
    }

    #[test]
    fn multitone_reconstruction_is_accurate() {
        // several tones spread across the band
        let sig = MultiTone::new(vec![
            Tone::new(0.96e9, 0.5, 0.3),
            Tone::new(0.99e9, 1.0, 1.1),
            Tone::new(1.02e9, 0.7, 2.0),
            Tone::new(1.04e9, 0.4, 0.7),
        ]);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&sig, t_s, D, -50, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let times = probe_times(200, 0.5e-6, 2.0e-6, 2);
        let err = nrmse(&rec.reconstruct(&cap, &times), &sig.sample(&times));
        assert!(err < 0.015, "nrmse {err}");
    }

    #[test]
    fn qpsk_signal_reconstruction_is_accurate() {
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 96, 0xACE1);
        let tx = BandpassSignal::new(bb, FC);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tx, t_s, D, 80, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let (t0, t1) = tx.steady_time_range();
        let (c0, c1) = rec.coverage(&cap).unwrap();
        let times = probe_times(300, t0.max(c0), t1.min(c1), 3);
        let err = nrmse(&rec.reconstruct(&cap, &times), &tx.sample(&times));
        assert!(err < 0.015, "nrmse {err}");
    }

    #[test]
    fn accuracy_improves_with_tap_count() {
        let tone = Tone::unit(1.01e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -120, 600);
        let times = probe_times(100, 1.0e-6, 2.5e-6, 4);
        let want = tone.sample(&times);
        let mut last_err = f64::INFINITY;
        for taps in [21usize, 61, 121, 201] {
            let rec = PnbsReconstructor::new(band(), D, taps, Window::Kaiser(8.0)).unwrap();
            let err = nrmse(&rec.reconstruct(&cap, &times), &want);
            assert!(err < last_err, "taps {taps}: {err} !< {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-3, "201-tap error {last_err}");
    }

    #[test]
    fn planned_and_reference_paths_agree() {
        let tone = Tone::unit(0.97e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        for &t in &probe_times(100, 0.5e-6, 2.0e-6, 11) {
            let planned = rec.reconstruct_at(&cap, t);
            let reference = rec.reconstruct_at_reference(&cap, t);
            assert!(
                (planned - reference).abs() < 1e-10,
                "t = {t:e}: planned {planned} vs reference {reference}"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_path_exactly() {
        use crate::plan::PnbsScratch;
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let times = probe_times(60, 0.5e-6, 2.0e-6, 12);
        let mut scratch = PnbsScratch::new();
        let batch = rec.reconstruct_batch(&cap, &times, &mut scratch);
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(batch[i], rec.reconstruct_at(&cap, t));
        }
    }

    #[test]
    fn grid_path_matches_batch_path() {
        use crate::gridplan::GridScratch;
        let tone = Tone::unit(0.99e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -50, 350);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let (t0, step, n) = (0.8e-6, 2.5e-10, 600);
        let times: Vec<f64> = (0..n).map(|i| t0 + i as f64 * step).collect();
        let mut gs = GridScratch::new();
        let grid = rec.reconstruct_grid(&cap, t0, step, n, &mut gs).to_vec();
        let batch = rec.reconstruct(&cap, &times);
        for i in 0..n {
            assert!(
                (grid[i] - batch[i]).abs() < 1e-10,
                "grid vs batch at point {i}: {} vs {}",
                grid[i],
                batch[i]
            );
        }
        // try_ form mirrors coverage behaviour
        assert!(rec
            .try_reconstruct_grid(&cap, -1.0e-6, step, 4, &mut gs)
            .is_none());
    }

    #[test]
    fn wrong_delay_estimate_degrades_reconstruction() {
        let tone = Tone::unit(0.99e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, -50, 350);
        let times = probe_times(150, 0.5e-6, 2.0e-6, 5);
        let want = tone.sample(&times);

        let good = PnbsReconstructor::paper_default(band(), D).unwrap();
        let err_good = nrmse(&good.reconstruct(&cap, &times), &want);

        let bad = PnbsReconstructor::paper_default(band(), D + 10e-12).unwrap();
        let err_bad = nrmse(&bad.reconstruct(&cap, &times), &want);

        assert!(err_bad > 4.0 * err_good, "good {err_good}, bad {err_bad}");
        // eq. (4) scale check: ΔF ≈ πB(k+1)ΔD = π·90e6·23·10e-12 ≈ 6.5 %
        assert!(err_bad > 0.02 && err_bad < 0.2, "err_bad {err_bad}");
    }

    #[test]
    fn integer_positioned_band_reconstructs() {
        // B = 80 MHz at 1 GHz: s0 ≡ 0 path
        let band80 = BandSpec::centered(FC, 80e6);
        let tone = Tone::unit(0.99e9);
        let t_s = 1.0 / 80e6;
        let cap = NonuniformCapture::from_signal(&tone, t_s, 200e-12, -50, 350);
        let rec = PnbsReconstructor::paper_default(band80, 200e-12).unwrap();
        let times = probe_times(100, 0.5e-6, 2.0e-6, 6);
        let err = nrmse(&rec.reconstruct(&cap, &times), &tone.sample(&times));
        assert!(err < 0.01, "nrmse {err}");
    }

    #[test]
    fn coverage_bounds_are_enforced() {
        let tone = Tone::unit(1.0e9);
        let t_s = 1.0 / B;
        let cap = NonuniformCapture::from_signal(&tone, t_s, D, 0, 100);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let (lo, hi) = rec.coverage(&cap).unwrap();
        assert!((lo - 30.0 * t_s).abs() < 1e-15);
        assert!((hi - 69.0 * t_s).abs() < 1e-15);
        assert!(rec.try_reconstruct_at(&cap, lo).is_some());
        assert!(rec.try_reconstruct_at(&cap, lo - t_s).is_none());
        assert!(rec.try_reconstruct_at(&cap, hi + t_s).is_none());
    }

    #[test]
    fn too_short_capture_has_no_coverage() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 20);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        assert!(rec.coverage(&cap).is_none());
    }

    #[test]
    #[should_panic(expected = "outside capture coverage")]
    fn out_of_coverage_panics() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, 0, 100);
        let rec = PnbsReconstructor::paper_default(band(), D).unwrap();
        let _ = rec.reconstruct_at(&cap, 0.0);
    }

    #[test]
    fn capture_accessors() {
        let tone = Tone::unit(1.0e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / B, D, -5, 42);
        assert_eq!(cap.len(), 42);
        assert!(!cap.is_empty());
        assert_eq!(cap.n_start(), -5);
        assert_eq!(cap.even().len(), 42);
        assert_eq!(cap.odd().len(), 42);
        assert_eq!(cap.delay(), D);
        // even[5] is f(0)
        assert!((cap.even()[5] - tone.eval(0.0)).abs() < 1e-15);
        // odd[5] is f(D)
        assert!((cap.odd()[5] - tone.eval(D)).abs() < 1e-15);
    }

    #[test]
    fn from_streams_round_trip() {
        let cap = NonuniformCapture::from_streams(1e-8, D, 3, vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(cap.even(), &[1.0, 2.0]);
        assert_eq!(cap.odd(), &[3.0, 4.0]);
        assert_eq!(cap.period(), 1e-8);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_streams_panic() {
        let _ = NonuniformCapture::from_streams(1e-8, D, 0, vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_tap_count_panics() {
        let _ = PnbsReconstructor::new(band(), D, 60, Window::Kaiser(8.0));
    }
}
