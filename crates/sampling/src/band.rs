//! Bandpass spectral supports.

use std::fmt;

/// A real bandpass spectral support `f_lo < |ν| < f_hi` (paper Fig. 2).
///
/// Carries the band-positioning integers `k = ⌈2·f_lo/B⌉` and
/// `k⁺ = k + 1` that parameterize the Kohlenberg interpolants.
///
/// # Example
///
/// ```
/// use rfbist_sampling::band::BandSpec;
/// let b = BandSpec::new(955e6, 1045e6);
/// assert_eq!(b.bandwidth(), 90e6);
/// assert_eq!(b.center(), 1e9);
/// assert_eq!(b.k(), 22);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandSpec {
    f_lo: f64,
    f_hi: f64,
}

impl BandSpec {
    /// Creates a band from its edges in Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= f_lo < f_hi`.
    pub fn new(f_lo: f64, f_hi: f64) -> Self {
        assert!(f_lo >= 0.0, "lower edge must be non-negative");
        assert!(f_hi > f_lo, "band must have positive width");
        BandSpec { f_lo, f_hi }
    }

    /// Creates the band centered on `center` with total width
    /// `bandwidth` — the natural spec for PNBS at minimal rate, where
    /// the reconstruction bandwidth equals the per-channel sample rate.
    ///
    /// # Panics
    ///
    /// Panics if the implied lower edge is negative or width is
    /// non-positive.
    pub fn centered(center: f64, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        BandSpec::new(center - bandwidth / 2.0, center + bandwidth / 2.0)
    }

    /// Lower band edge `f_lo` in Hz.
    pub fn f_lo(self) -> f64 {
        self.f_lo
    }

    /// Upper band edge `f_hi` in Hz.
    pub fn f_hi(self) -> f64 {
        self.f_hi
    }

    /// Bandwidth `B = f_hi − f_lo` in Hz.
    pub fn bandwidth(self) -> f64 {
        self.f_hi - self.f_lo
    }

    /// Center frequency `f_c` in Hz.
    pub fn center(self) -> f64 {
        0.5 * (self.f_lo + self.f_hi)
    }

    /// Band-position ratio `f_hi / B` (the Fig. 3a abscissa).
    pub fn position_ratio(self) -> f64 {
        self.f_hi / self.bandwidth()
    }

    /// Kohlenberg integer `k = ⌈2·f_lo / B⌉` (paper eq. 2d).
    pub fn k(self) -> u32 {
        (2.0 * self.f_lo / self.bandwidth()).ceil() as u32
    }

    /// `k⁺ = k + 1`.
    pub fn k_plus(self) -> u32 {
        self.k() + 1
    }

    /// `true` when the band is *integer positioned*: `2·f_lo/B ∈ ℕ`, the
    /// degenerate case where the first interpolant term vanishes and
    /// constraint (3a) does not apply.
    pub fn is_integer_positioned(self) -> bool {
        let r = 2.0 * self.f_lo / self.bandwidth();
        (r - r.round()).abs() < 1e-9
    }

    /// `true` when `f` lies strictly inside the band.
    pub fn contains(self, f: f64) -> bool {
        f > self.f_lo && f < self.f_hi
    }

    /// Returns this band shrunk symmetrically by `guard` Hz on each side
    /// (useful for placing test tones away from the edges).
    ///
    /// # Panics
    ///
    /// Panics if the guard consumes the whole band.
    pub fn shrunk(self, guard: f64) -> BandSpec {
        BandSpec::new(self.f_lo + guard, self.f_hi - guard)
    }
}

impl fmt::Display for BandSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}, {:.3}] MHz (B = {:.3} MHz, k = {})",
            self.f_lo / 1e6,
            self.f_hi / 1e6,
            self.bandwidth() / 1e6,
            self.k()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_v_band() {
        // fc = 1 GHz, B = 90 MHz
        let b = BandSpec::centered(1e9, 90e6);
        assert!((b.f_lo() - 955e6).abs() < 1.0);
        assert!((b.f_hi() - 1045e6).abs() < 1.0);
        assert_eq!(b.k(), 22);
        assert_eq!(b.k_plus(), 23);
        assert!(!b.is_integer_positioned());
    }

    #[test]
    fn paper_dual_rate_band() {
        // B1 = 45 MHz at the same carrier: fl = 977.5 MHz, k1 = 44.
        let b = BandSpec::centered(1e9, 45e6);
        assert_eq!(b.k(), 44);
        assert_eq!(b.k_plus(), 45);
    }

    #[test]
    fn eq5_example_band() {
        // fc = 1 GHz, B = 80 MHz: fl = 960 MHz, k = 24, k+1 = 25
        // (the paper's eq. 5 uses the factor 25 = k+1).
        let b = BandSpec::centered(1e9, 80e6);
        assert_eq!(b.k(), 24);
        assert_eq!(b.k_plus(), 25);
        assert!(b.is_integer_positioned());
    }

    #[test]
    fn geometry_accessors() {
        let b = BandSpec::new(2.0e9, 2.03e9);
        assert!((b.bandwidth() - 30e6).abs() < 1.0);
        assert!((b.center() - 2.015e9).abs() < 1.0);
        assert!((b.position_ratio() - 2.03e9 / 30e6).abs() < 1e-6);
    }

    #[test]
    fn contains_is_strict() {
        let b = BandSpec::new(100.0, 200.0);
        assert!(b.contains(150.0));
        assert!(!b.contains(100.0));
        assert!(!b.contains(200.0));
        assert!(!b.contains(250.0));
    }

    #[test]
    fn shrunk_applies_guards() {
        let b = BandSpec::new(100.0, 200.0).shrunk(10.0);
        assert_eq!(b.f_lo(), 110.0);
        assert_eq!(b.f_hi(), 190.0);
    }

    #[test]
    fn integer_positioning_detection() {
        // fl = B exactly: 2·fl/B = 2
        let b = BandSpec::new(100.0, 200.0);
        assert!(b.is_integer_positioned());
        assert_eq!(b.k(), 2);
        let b2 = BandSpec::new(130.0, 230.0);
        assert!(!b2.is_integer_positioned());
    }

    #[test]
    fn display_formats() {
        let b = BandSpec::centered(1e9, 90e6);
        let s = b.to_string();
        assert!(s.contains("955.000"));
        assert!(s.contains("k = 22"));
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn inverted_band_panics() {
        let _ = BandSpec::new(200.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_edge_panics() {
        let _ = BandSpec::centered(10.0, 40.0);
    }
}
