//! First-order (uniform) bandpass reconstruction — the PBS baseline.
//!
//! When uniform bandpass sampling at rate `fs` is alias-free for a band,
//! the signal is recovered by bandpass-filtering the sample impulse
//! train: `f(t) = Σ f(n/fs)·h(t − n/fs)` with the ideal bandpass kernel
//! `h(τ) = (2B/fs)·sinc(Bτ)·cos(2πf_c τ)`. This module implements the
//! windowed finite-tap version for head-to-head comparisons with PNBS.

use crate::band::BandSpec;
use crate::pbs;
use rfbist_dsp::window::Window;
use rfbist_math::special::sinc;
use rfbist_signal::traits::ContinuousSignal;
use std::f64::consts::PI;

/// A uniform bandpass capture: `samples[i] = f((n₀+i)/fs)`.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformCapture {
    period: f64,
    n_start: i64,
    samples: Vec<f64>,
}

impl UniformCapture {
    /// Samples `signal` ideally at rate `1/period`.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `count == 0`.
    pub fn from_signal<S: ContinuousSignal>(
        signal: &S,
        period: f64,
        n_start: i64,
        count: usize,
    ) -> Self {
        assert!(period > 0.0, "sample period must be positive");
        assert!(count > 0, "capture must be non-empty");
        let samples = (0..count)
            .map(|i| signal.eval((n_start + i as i64) as f64 * period))
            .collect();
        UniformCapture {
            period,
            n_start,
            samples,
        }
    }

    /// Sample period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Index of the first sample.
    pub fn n_start(&self) -> i64 {
        self.n_start
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty (cannot normally occur).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Windowed finite-tap first-order bandpass reconstructor.
#[derive(Clone, Debug)]
pub struct PbsReconstructor {
    band: BandSpec,
    rate: f64,
    half_taps: usize,
    window: Window,
}

impl PbsReconstructor {
    /// Builds a reconstructor for `band` sampled uniformly at `rate` Hz
    /// with `num_taps` (odd) kernel taps.
    ///
    /// # Errors
    ///
    /// Returns `Err(rate)` if uniform sampling at `rate` aliases the
    /// band (use [`pbs::valid_rate_ranges`] to pick a valid rate).
    ///
    /// # Panics
    ///
    /// Panics if `num_taps` is even.
    pub fn new(band: BandSpec, rate: f64, num_taps: usize, window: Window) -> Result<Self, f64> {
        assert!(num_taps % 2 == 1, "tap count must be odd");
        if !pbs::is_alias_free(band, rate) {
            return Err(rate);
        }
        Ok(PbsReconstructor {
            band,
            rate,
            half_taps: num_taps / 2,
            window,
        })
    }

    /// The sampling rate in Hz.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Usable reconstruction interval for `capture`.
    pub fn coverage(&self, capture: &UniformCapture) -> Option<(f64, f64)> {
        let h = self.half_taps as i64;
        let lo = capture.n_start() + h;
        let hi = capture.n_start() + capture.len() as i64 - 1 - h;
        (hi >= lo).then(|| (lo as f64 * capture.period(), hi as f64 * capture.period()))
    }

    /// Reconstructs `f(t)`; `None` outside coverage.
    pub fn try_reconstruct_at(&self, capture: &UniformCapture, t: f64) -> Option<f64> {
        let period = capture.period();
        let t_idx = t / period;
        let nc = t_idx.round() as i64;
        let h = self.half_taps as i64;
        if nc - h < capture.n_start() || nc + h >= capture.n_start() + capture.len() as i64 {
            return None;
        }
        let b = self.band.bandwidth();
        let fc = self.band.center();
        let gain = 2.0 * b / self.rate;
        let hw = self.half_taps as f64 + 1.0;
        let mut acc = 0.0;
        for n in (nc - h)..=(nc + h) {
            let idx = (n - capture.n_start()) as usize;
            let tau = t - n as f64 * period;
            let w = self.window.at(0.5 + (n as f64 - t_idx) / (2.0 * hw));
            acc += capture.samples()[idx] * gain * sinc(b * tau) * (2.0 * PI * fc * tau).cos() * w;
        }
        Some(acc)
    }

    /// Reconstructs `f(t)`.
    ///
    /// # Panics
    ///
    /// Panics outside [`coverage`](Self::coverage).
    pub fn reconstruct_at(&self, capture: &UniformCapture, t: f64) -> f64 {
        self.try_reconstruct_at(capture, t)
            .unwrap_or_else(|| panic!("t = {t:.3e} s outside capture coverage"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::rng::Randomizer;
    use rfbist_math::stats::nrmse;
    use rfbist_signal::tone::Tone;

    #[test]
    fn integer_positioned_band_reconstructs_tone() {
        // band (2B, 3B): fs = 2B is valid (integer positioning)
        let b = 50e6;
        let band = BandSpec::new(2.0 * b, 3.0 * b);
        let fs = 2.0 * b;
        let tone = Tone::unit(band.center());
        let cap = UniformCapture::from_signal(&tone, 1.0 / fs, -200, 900);
        let rec = PbsReconstructor::new(band, fs, 129, Window::Kaiser(8.0)).unwrap();
        let mut rng = Randomizer::from_seed(1);
        let times: Vec<f64> = (0..150).map(|_| rng.uniform(1e-6, 3e-6)).collect();
        let err = nrmse(
            &times
                .iter()
                .map(|&t| rec.reconstruct_at(&cap, t))
                .collect::<Vec<_>>(),
            &tone.sample(&times),
        );
        assert!(err < 0.02, "nrmse {err}");
    }

    #[test]
    fn aliasing_rate_is_rejected() {
        let band = BandSpec::new(2.3e9, 2.33e9);
        // pick a rate strictly inside a gray region: just above 2B
        let bad_rate = 2.0 * band.bandwidth() + 1e5;
        if !pbs::is_alias_free(band, bad_rate) {
            assert!(PbsReconstructor::new(band, bad_rate, 65, Window::Hann).is_err());
        }
        // and a valid rate is accepted
        let good = pbs::valid_rate_ranges(band)[0].fs_min * 1.0000001;
        assert!(PbsReconstructor::new(band, good, 65, Window::Hann).is_ok());
    }

    #[test]
    fn higher_rate_with_margin_reconstructs() {
        // generous oversampling in the n=1 wedge
        let band = BandSpec::new(10e6, 40e6);
        let fs = 100e6; // > 2·f_hi
        let tone = Tone::unit(25e6);
        let cap = UniformCapture::from_signal(&tone, 1.0 / fs, -100, 800);
        let rec = PbsReconstructor::new(band, fs, 129, Window::Kaiser(8.0)).unwrap();
        let mut rng = Randomizer::from_seed(2);
        let times: Vec<f64> = (0..100).map(|_| rng.uniform(1e-6, 4e-6)).collect();
        let err = nrmse(
            &times
                .iter()
                .map(|&t| rec.reconstruct_at(&cap, t))
                .collect::<Vec<_>>(),
            &tone.sample(&times),
        );
        assert!(err < 0.02, "nrmse {err}");
    }

    #[test]
    fn coverage_is_reported() {
        let tone = Tone::unit(25e6);
        let cap = UniformCapture::from_signal(&tone, 1e-8, 0, 100);
        let rec =
            PbsReconstructor::new(BandSpec::new(10e6, 40e6), 100e6, 41, Window::Hann).unwrap();
        let (lo, hi) = rec.coverage(&cap).unwrap();
        assert_eq!(lo, 20.0 * 1e-8);
        assert_eq!(hi, 79.0 * 1e-8);
        assert!(rec.try_reconstruct_at(&cap, 0.0).is_none());
    }

    #[test]
    fn capture_accessors() {
        let tone = Tone::unit(1e6);
        let cap = UniformCapture::from_signal(&tone, 1e-7, 2, 10);
        assert_eq!(cap.len(), 10);
        assert!(!cap.is_empty());
        assert_eq!(cap.n_start(), 2);
        assert_eq!(cap.period(), 1e-7);
        assert!((cap.samples()[0] - tone.eval(2e-7)).abs() < 1e-15);
    }
}
