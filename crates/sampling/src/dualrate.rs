//! Dual-rate identifiability conditions (paper eq. 9).
//!
//! The LMS time-skew estimator reconstructs the same capture from two
//! rates `B` (fast) and `B1` (slow, `T1 > T`) and minimizes their
//! disagreement. The cost has a *unique* minimum at `D̂ = D` on `]0, m[`
//! provided (paper eq. 9):
//!
//! ```text
//! k⁺·B ≠ k₁·B₁         (9a)
//! k⁺·B ≠ k₁⁺·B₁        (9b)
//! D ∈ ]0, m[,  m = min{ 1/(k⁺B), 1/(k₁⁺B₁) }   (9c)
//! ```

use crate::band::BandSpec;
use std::fmt;

/// Violations of the dual-rate conditions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DualRateError {
    /// The slow rate must be strictly slower than the fast rate.
    RatesNotOrdered,
    /// Condition (9a) violated: `k⁺·B == k₁·B₁`.
    DegenerateKPlusK1,
    /// Condition (9b) violated: `k⁺·B == k₁⁺·B₁`.
    DegenerateKPlusK1Plus,
    /// The physical delay lies outside `]0, m[`.
    DelayOutOfRange {
        /// The bound `m` in seconds.
        m: f64,
    },
}

impl fmt::Display for DualRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DualRateError::RatesNotOrdered => {
                write!(
                    f,
                    "slow-rate bandwidth must be smaller than fast-rate bandwidth"
                )
            }
            DualRateError::DegenerateKPlusK1 => {
                write!(f, "degenerate configuration: k+·B equals k1·B1 (eq. 9a)")
            }
            DualRateError::DegenerateKPlusK1Plus => {
                write!(f, "degenerate configuration: k+·B equals k1+·B1 (eq. 9b)")
            }
            DualRateError::DelayOutOfRange { m } => {
                write!(f, "delay must lie in ]0, {:.1} ps[ (eq. 9c)", m * 1e12)
            }
        }
    }
}

impl std::error::Error for DualRateError {}

/// A validated dual-rate configuration around a common carrier.
///
/// # Example: paper Section V
///
/// ```
/// use rfbist_sampling::dualrate::DualRateConfig;
///
/// // B = 90 MHz, B1 = 45 MHz at fc = 1 GHz, D = 180 ps.
/// let cfg = DualRateConfig::new(1e9, 90e6, 45e6, 180e-12).unwrap();
/// assert!((cfg.m_bound() * 1e12 - 483.09).abs() < 0.1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DualRateConfig {
    fast: BandSpec,
    slow: BandSpec,
    delay: f64,
}

impl DualRateConfig {
    /// Validates and builds a configuration: carrier `fc`, fast rate `b`
    /// (Hz), slow rate `b1` (Hz), physical delay `delay` (s). Both
    /// reconstruction bands are centered on `fc` with width equal to the
    /// respective rate.
    ///
    /// # Errors
    ///
    /// Returns the violated [`DualRateError`] condition.
    pub fn new(fc: f64, b: f64, b1: f64, delay: f64) -> Result<Self, DualRateError> {
        if b1 >= b {
            return Err(DualRateError::RatesNotOrdered);
        }
        let fast = BandSpec::centered(fc, b);
        let slow = BandSpec::centered(fc, b1);
        let kp_b = fast.k_plus() as f64 * b;
        let k1_b1 = slow.k() as f64 * b1;
        let k1p_b1 = slow.k_plus() as f64 * b1;
        if (kp_b - k1_b1).abs() < 1e-6 {
            return Err(DualRateError::DegenerateKPlusK1);
        }
        if (kp_b - k1p_b1).abs() < 1e-6 {
            return Err(DualRateError::DegenerateKPlusK1Plus);
        }
        let cfg = DualRateConfig { fast, slow, delay };
        let m = cfg.m_bound();
        if delay <= 0.0 || delay >= m {
            return Err(DualRateError::DelayOutOfRange { m });
        }
        Ok(cfg)
    }

    /// The paper's configuration: `fc = 1 GHz`, `B = 90 MHz`,
    /// `B1 = 45 MHz`, `D = 180 ps`.
    pub fn paper_section_v() -> Self {
        match DualRateConfig::new(1e9, 90e6, 45e6, 180e-12) {
            Ok(cfg) => cfg,
            Err(e) => panic!("paper configuration is valid: {e}"),
        }
    }

    /// Fast-rate reconstruction band (width `B`).
    pub fn fast_band(&self) -> BandSpec {
        self.fast
    }

    /// Slow-rate reconstruction band (width `B1`).
    pub fn slow_band(&self) -> BandSpec {
        self.slow
    }

    /// Fast per-channel sample rate `B` in Hz.
    pub fn fast_rate(&self) -> f64 {
        self.fast.bandwidth()
    }

    /// Slow per-channel sample rate `B1` in Hz.
    pub fn slow_rate(&self) -> f64 {
        self.slow.bandwidth()
    }

    /// The physical delay `D` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The search bound `m = min{1/(k⁺B), 1/(k₁⁺B₁)}` (eq. 9c).
    pub fn m_bound(&self) -> f64 {
        let m_fast = 1.0 / (self.fast.k_plus() as f64 * self.fast.bandwidth());
        let m_slow = 1.0 / (self.slow.k_plus() as f64 * self.slow.bandwidth());
        m_fast.min(m_slow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_valid_and_m_is_483ps() {
        let cfg = DualRateConfig::paper_section_v();
        assert!(
            (cfg.m_bound() * 1e12 - 483.09).abs() < 0.1,
            "m = {}",
            cfg.m_bound()
        );
        assert_eq!(cfg.fast_band().k_plus(), 23);
        assert_eq!(cfg.slow_band().k(), 44);
        assert_eq!(cfg.slow_band().k_plus(), 45);
        assert_eq!(cfg.delay(), 180e-12);
    }

    #[test]
    fn paper_conditions_9a_9b_hold() {
        let cfg = DualRateConfig::paper_section_v();
        let kp_b = cfg.fast_band().k_plus() as f64 * cfg.fast_rate();
        let k1_b1 = cfg.slow_band().k() as f64 * cfg.slow_rate();
        let k1p_b1 = cfg.slow_band().k_plus() as f64 * cfg.slow_rate();
        assert!((kp_b - 2070e6).abs() < 1.0);
        assert!((kp_b - k1_b1).abs() > 1e6);
        assert!((kp_b - k1p_b1).abs() > 1e6);
    }

    #[test]
    fn rates_must_be_ordered() {
        assert_eq!(
            DualRateConfig::new(1e9, 45e6, 90e6, 100e-12).unwrap_err(),
            DualRateError::RatesNotOrdered
        );
        assert_eq!(
            DualRateConfig::new(1e9, 90e6, 90e6, 100e-12).unwrap_err(),
            DualRateError::RatesNotOrdered
        );
    }

    #[test]
    fn delay_out_of_range_is_rejected() {
        match DualRateConfig::new(1e9, 90e6, 45e6, 500e-12) {
            Err(DualRateError::DelayOutOfRange { m }) => {
                assert!((m * 1e12 - 483.09).abs() < 0.1);
            }
            other => panic!("expected DelayOutOfRange, got {other:?}"),
        }
        assert!(matches!(
            DualRateConfig::new(1e9, 90e6, 45e6, 0.0),
            Err(DualRateError::DelayOutOfRange { .. })
        ));
    }

    #[test]
    fn degenerate_9b_is_detected() {
        // Construct k⁺·B == k₁⁺·B₁: with B1 = B/2 and bands centered on
        // fc, k₁⁺·B₁ == k⁺·B requires k₁+1 == 2(k+1)... search numerically
        // for a carrier where the clash occurs.
        let b = 90e6;
        let b1 = 45e6;
        let mut found = false;
        for fc_mhz in 900..1100 {
            let fc = fc_mhz as f64 * 1e6;
            let fast = BandSpec::centered(fc, b);
            let slow = BandSpec::centered(fc, b1);
            let kp_b = fast.k_plus() as f64 * b;
            if (kp_b - slow.k_plus() as f64 * b1).abs() < 1e-6 {
                assert_eq!(
                    DualRateConfig::new(fc, b, b1, 100e-12).unwrap_err(),
                    DualRateError::DegenerateKPlusK1Plus
                );
                found = true;
                break;
            }
        }
        assert!(found, "no degenerate carrier found in the scan range");
    }

    #[test]
    fn error_display() {
        assert!(DualRateError::RatesNotOrdered
            .to_string()
            .contains("smaller"));
        assert!(DualRateError::DegenerateKPlusK1.to_string().contains("9a"));
        assert!(DualRateError::DegenerateKPlusK1Plus
            .to_string()
            .contains("9b"));
        let e = DualRateError::DelayOutOfRange { m: 483e-12 };
        assert!(e.to_string().contains("483.0 ps"));
    }

    #[test]
    fn accessors() {
        let cfg = DualRateConfig::paper_section_v();
        assert_eq!(cfg.fast_rate(), 90e6);
        assert_eq!(cfg.slow_rate(), 45e6);
        assert_eq!(cfg.fast_band().center(), 1e9);
        assert_eq!(cfg.slow_band().center(), 1e9);
    }
}
