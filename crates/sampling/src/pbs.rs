//! Periodic (uniform, first-order) bandpass sampling feasibility.
//!
//! Implements the classic Vaughan–Scott–White constraints the paper's
//! Fig. 3 visualizes: a band `(f_lo, f_hi)` can be sampled at `f_s`
//! without aliasing iff there is an integer `n ≥ 1` ("wedge" index) with
//!
//! ```text
//!   2·f_hi / n  ≤  f_s  ≤  2·f_lo / (n − 1)
//! ```
//!
//! (the right-hand constraint is vacuous for `n = 1`, which is ordinary
//! super-Nyquist sampling). The smaller the normalized position `f_hi/B`,
//! the wider the wedges; as `f_hi/B` grows the valid windows shrink
//! toward isolated points at `f_s = 2B` — the flexibility problem that
//! motivates PNBS for SDR testing.

use crate::band::BandSpec;

/// A contiguous range of valid (alias-free) sampling rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateRange {
    /// Wedge index `n` (number of spectral replicas below the band).
    pub n: u32,
    /// Minimum alias-free rate in the wedge (inclusive), Hz.
    pub fs_min: f64,
    /// Maximum alias-free rate in the wedge (inclusive; `f64::INFINITY`
    /// for the `n = 1` wedge), Hz.
    pub fs_max: f64,
}

impl RateRange {
    /// Width of the range (may be infinite for `n = 1`).
    pub fn width(&self) -> f64 {
        self.fs_max - self.fs_min
    }

    /// `true` if `fs` lies in the range.
    pub fn contains(&self, fs: f64) -> bool {
        fs >= self.fs_min && fs <= self.fs_max
    }
}

/// Enumerates all alias-free sampling-rate wedges for `band`, highest
/// wedge index (lowest rates) first.
///
/// The maximum wedge index is `n_max = ⌊f_hi / B⌋`; at `n = n_max` the
/// minimum possible rate approaches the theoretical limit `2B`.
pub fn valid_rate_ranges(band: BandSpec) -> Vec<RateRange> {
    let b = band.bandwidth();
    let n_max = (band.f_hi() / b).floor() as u32;
    let mut out = Vec::with_capacity(n_max as usize);
    for n in (1..=n_max).rev() {
        let fs_min = 2.0 * band.f_hi() / n as f64;
        let fs_max = if n == 1 {
            f64::INFINITY
        } else {
            2.0 * band.f_lo() / (n as f64 - 1.0)
        };
        if fs_max >= fs_min {
            out.push(RateRange { n, fs_min, fs_max });
        }
    }
    out
}

/// `true` when sampling `band` uniformly at `fs` produces no aliasing
/// onto the band.
pub fn is_alias_free(band: BandSpec, fs: f64) -> bool {
    if fs <= 0.0 {
        return false;
    }
    valid_rate_ranges(band).iter().any(|r| r.contains(fs))
}

/// The minimum alias-free sampling rate for `band` (the deepest wedge's
/// lower edge). Always `≥ 2B`, approaching `2B` only for integer-
/// positioned bands.
pub fn minimum_rate(band: BandSpec) -> f64 {
    valid_rate_ranges(band)
        .first()
        .map(|r| r.fs_min)
        .unwrap_or(2.0 * band.f_hi())
}

/// Classification of one point of the paper's Fig. 3a grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig3Cell {
    /// Sampling at this rate aliases.
    Aliased,
    /// Sampling at this rate is alias-free (white region of Fig. 3a).
    Valid,
    /// Below the absolute minimum `f_s < 2B` (never valid).
    BelowNyquist,
}

/// Classifies a normalized Fig. 3a point: band position `f_hi/B` (x-axis)
/// and normalized rate `f_s/B` (y-axis).
///
/// # Panics
///
/// Panics if `fh_over_b < 1` (the band would extend below DC).
pub fn classify_fig3a(fh_over_b: f64, fs_over_b: f64) -> Fig3Cell {
    assert!(fh_over_b >= 1.0, "f_H/B must be at least 1");
    if fs_over_b < 2.0 {
        return Fig3Cell::BelowNyquist;
    }
    // work in units of B = 1
    let band = BandSpec::new(fh_over_b - 1.0, fh_over_b);
    if is_alias_free(band, fs_over_b) {
        Fig3Cell::Valid
    } else {
        Fig3Cell::Aliased
    }
}

/// Valid rate windows intersected with `[fs_lo, fs_hi]`, with a
/// symmetric guard band of `guard` Hz carved from each window — the
/// Fig. 3b view (how much sampling-clock precision uniform bandpass
/// sampling demands).
pub fn valid_windows_in(band: BandSpec, fs_lo: f64, fs_hi: f64, guard: f64) -> Vec<RateRange> {
    assert!(fs_hi > fs_lo, "rate interval must be ordered");
    assert!(guard >= 0.0, "guard must be non-negative");
    valid_rate_ranges(band)
        .into_iter()
        .filter_map(|r| {
            let lo = (r.fs_min + guard).max(fs_lo);
            let hi = (r.fs_max - guard).min(fs_hi);
            (hi >= lo).then_some(RateRange {
                n: r.n,
                fs_min: lo,
                fs_max: hi,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseband_like_band_allows_everything_above_2fh() {
        let band = BandSpec::new(0.5, 1.5); // fH/B = 1.5
        let ranges = valid_rate_ranges(band);
        // n = 1 wedge always present
        let top = ranges.last().unwrap();
        assert_eq!(top.n, 1);
        assert_eq!(top.fs_min, 3.0);
        assert_eq!(top.fs_max, f64::INFINITY);
    }

    #[test]
    fn integer_positioned_band_achieves_2b() {
        // fl = 2B: band (2, 3)·B, n_max = 3, fs_min = 2·3/3 = 2 = 2B ✓
        let band = BandSpec::new(2.0, 3.0);
        assert!((minimum_rate(band) - 2.0).abs() < 1e-12);
        assert!(is_alias_free(band, 2.0));
    }

    #[test]
    fn non_integer_band_needs_more_than_2b() {
        let band = BandSpec::new(2.3, 3.3);
        assert!(minimum_rate(band) > 2.0);
    }

    #[test]
    fn wedge_inequalities_hold() {
        let band = BandSpec::new(955e6, 1045e6);
        for r in valid_rate_ranges(band) {
            assert!(r.fs_min >= 2.0 * band.bandwidth() - 1e-6);
            if r.n > 1 {
                assert!(
                    (r.fs_min - 2.0 * band.f_hi() / r.n as f64).abs() < 1e-3,
                    "wedge {}",
                    r.n
                );
                assert!((r.fs_max - 2.0 * band.f_lo() / (r.n as f64 - 1.0)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn alias_free_agrees_with_ranges() {
        let band = BandSpec::new(2.0e9, 2.03e9);
        let ranges = valid_rate_ranges(band);
        // probe the middle of each of the five lowest wedges
        for r in ranges.iter().take(5) {
            let mid = if r.fs_max.is_finite() {
                0.5 * (r.fs_min + r.fs_max)
            } else {
                r.fs_min * 1.5
            };
            assert!(is_alias_free(band, mid), "wedge {} mid {mid}", r.n);
        }
        // probe just outside a finite wedge
        let r = ranges.iter().find(|r| r.fs_max.is_finite()).unwrap();
        assert!(!is_alias_free(band, r.fs_max + 1.0) || is_alias_free(band, r.fs_max + 1.0));
        // rates below 2B never valid
        assert!(!is_alias_free(band, 2.0 * band.bandwidth() - 1e3));
    }

    #[test]
    fn fig3a_classification_matches_paper_features() {
        // On the diagonal fs = 2·fH (n = 1 lower edge) everything above
        // is valid:
        assert_eq!(classify_fig3a(2.0, 4.5), Fig3Cell::Valid);
        // below 2B: never valid
        assert_eq!(classify_fig3a(3.0, 1.5), Fig3Cell::BelowNyquist);
        // a known gray (aliased) point: fH/B = 3, fs/B = 2.5
        // wedges: n=3: [2, 2] (point), n=2: [3, 4], n=1: [6, ∞)
        assert_eq!(classify_fig3a(3.0, 2.5), Fig3Cell::Aliased);
        assert_eq!(classify_fig3a(3.0, 2.0), Fig3Cell::Valid);
        assert_eq!(classify_fig3a(3.0, 3.5), Fig3Cell::Valid);
    }

    #[test]
    fn paper_fig3b_windows_are_narrow() {
        // fH = 2.03 GHz, B = 30 MHz: windows around 90 MHz are ~100s kHz
        let band = BandSpec::new(2.0e9, 2.03e9);
        let wins = valid_windows_in(band, 60e6, 100e6, 0.0);
        assert!(!wins.is_empty());
        for w in &wins {
            assert!(
                w.width() < 2e6,
                "window {} unexpectedly wide: {}",
                w.n,
                w.width()
            );
            assert!(w.width() > 0.0);
        }
        // sampling precision requirement: a few hundred kHz near 90 MHz
        let near_90: Vec<_> = wins
            .iter()
            .filter(|w| w.fs_min > 85e6 && w.fs_max < 95e6)
            .collect();
        assert!(!near_90.is_empty());
        for w in near_90 {
            assert!(w.width() < 1e6, "{}", w.width());
        }
    }

    #[test]
    fn guard_bands_shrink_windows() {
        let band = BandSpec::new(2.0e9, 2.03e9);
        let no_guard = valid_windows_in(band, 60e6, 100e6, 0.0);
        let guarded = valid_windows_in(band, 60e6, 100e6, 100e3);
        assert!(guarded.len() <= no_guard.len());
        let total = |ws: &[RateRange]| ws.iter().map(|w| w.width()).sum::<f64>();
        assert!(total(&guarded) < total(&no_guard));
    }

    #[test]
    fn higher_position_ratio_means_tighter_minimal_rate_window() {
        // Fig 3a trend: the deepest wedge (the one closest to fs = 2B)
        // narrows as fH/B rises — minimal-rate sampling gets less
        // tolerant of clock error.
        let low_position = BandSpec::new(1.2, 2.2); // fH/B = 2.2
        let high_position = BandSpec::new(5.2, 6.2); // fH/B = 6.2
        let deepest = |b: BandSpec| valid_rate_ranges(b)[0].width();
        assert!(deepest(high_position) < deepest(low_position));
    }

    #[test]
    fn integer_positioned_deepest_wedge_is_a_point() {
        // Band (2, 3)·B: the n = 3 wedge collapses to the single rate
        // fs = 2B — the zero-tolerance case Fig. 3 illustrates.
        let band = BandSpec::new(2.0, 3.0);
        let deepest = valid_rate_ranges(band)[0];
        assert_eq!(deepest.n, 3);
        assert_eq!(deepest.width(), 0.0);
        assert!(deepest.contains(2.0));
        assert!(!deepest.contains(2.0 + 1e-9));
    }

    #[test]
    fn wedge_edges_are_inclusive() {
        let band = BandSpec::new(2.3, 3.3);
        let finite: Vec<_> = valid_rate_ranges(band)
            .into_iter()
            .filter(|r| r.fs_max.is_finite())
            .collect();
        assert!(!finite.is_empty());
        for r in &finite {
            assert!(is_alias_free(band, r.fs_min), "lower edge of wedge {}", r.n);
            assert!(is_alias_free(band, r.fs_max), "upper edge of wedge {}", r.n);
            // strictly outside (and not inside a neighboring wedge for
            // this band geometry) must alias
            assert!(!is_alias_free(band, r.fs_max + 1e-6), "above wedge {}", r.n);
        }
    }

    #[test]
    fn low_position_band_has_only_the_nyquist_wedge() {
        // fH/B < 2 ⇒ n_max = 1: plain super-Nyquist sampling only.
        let band = BandSpec::new(0.5, 1.5);
        let ranges = valid_rate_ranges(band);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].n, 1);
        assert_eq!(minimum_rate(band), 2.0 * band.f_hi());
    }

    #[test]
    fn nonpositive_rate_is_never_alias_free() {
        let band = BandSpec::new(2.0, 3.0);
        assert!(!is_alias_free(band, 0.0));
        assert!(!is_alias_free(band, -1.0));
    }

    #[test]
    fn fig3a_boundary_band_touching_dc() {
        // fH/B = 1 is the degenerate lowpass band (f_lo = 0); Nyquist
        // sampling at 2B is valid for it.
        assert_eq!(classify_fig3a(1.0, 2.0), Fig3Cell::Valid);
        assert_eq!(classify_fig3a(1.0, 100.0), Fig3Cell::Valid);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn fig3a_rejects_band_below_dc() {
        let _ = classify_fig3a(0.99, 3.0);
    }

    #[test]
    fn oversized_guard_consumes_all_windows() {
        let band = BandSpec::new(2.0e9, 2.03e9);
        // every window near 60–100 MHz is < 2 MHz wide, so a 2 MHz
        // guard on each side erases them all
        assert!(valid_windows_in(band, 60e6, 100e6, 2e6).is_empty());
    }

    #[test]
    fn minimum_rate_is_at_least_2b() {
        for (lo, hi) in [(1.3, 2.3), (7.9, 8.9), (100.0, 101.0)] {
            let band = BandSpec::new(lo, hi);
            assert!(minimum_rate(band) >= 2.0 * band.bandwidth() - 1e-9);
        }
    }
}
