//! Bandpass sampling theory: uniform (PBS) and periodically nonuniform
//! (PNBS) second-order sampling, after Kohlenberg (1953) and Vaughan,
//! Scott & White (1991), as applied by the DATE 2014 BIST paper.
//!
//! - [`band`]: bandpass spectral supports and their positioning numbers,
//! - [`pbs`]: uniform bandpass sampling feasibility (paper Fig. 3),
//! - [`kohlenberg`]: the second-order interpolants `s₀`, `s₁` (paper
//!   eq. 2) and the delay constraints (eq. 3),
//! - [`reconstruct`]: windowed finite-tap PNBS reconstruction (eq. 6),
//! - [`plan`]: the precomputed batch-evaluation engine behind it
//!   (phase-rotor kernels, prepared windows, scratch reuse),
//! - [`gridplan`]: the grid-aware engine for uniform analysis grids
//!   (cross-point rotor reuse, factored per-sample phasor tables,
//!   tabulated windows),
//! - [`dualrate`]: the dual-rate non-degeneracy conditions (eq. 9) and
//!   the search bound `m`,
//! - [`error`]: reconstruction-sensitivity bounds (eq. 4) and skew
//!   budgets (eq. 5),
//! - [`uniform`]: first-order bandpass reconstruction baseline,
//! - [`fixedpoint`]: fixed-point tap quantization (hardware-mapping
//!   ablation).
//!
//! # Example: paper Section V parameters
//!
//! ```
//! use rfbist_sampling::band::BandSpec;
//!
//! // fc = 1 GHz, B = 90 MHz ⇒ fl = 955 MHz, k = 22, k⁺ = 23.
//! let band = BandSpec::centered(1e9, 90e6);
//! assert_eq!(band.k(), 22);
//! assert_eq!(band.k_plus(), 23);
//! ```

// Production code must not take shortcuts through unwrap/expect: the
// fail-safe pipeline treats every runtime fault as a typed value. Test
// modules (cfg(test)) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod band;
pub mod dualrate;
pub mod error;
pub mod fixedpoint;
pub mod gridplan;
pub mod kohlenberg;
pub mod pbs;
pub mod plan;
pub mod reconstruct;
pub mod uniform;

pub use band::BandSpec;
pub use gridplan::{GridScratch, PnbsGridPlan, StreamWorkerPanic};
pub use plan::{PnbsPlan, PnbsScratch};
pub use reconstruct::{NonuniformCapture, PnbsReconstructor};
