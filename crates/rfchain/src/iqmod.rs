//! Quadrature modulator impairments.
//!
//! Gain/phase imbalance and LO leakage in the complex-envelope domain:
//! an imbalanced modulator maps `a → μ·a + ν·a* + c`, where the image
//! weight `ν` sets the image-rejection ratio and the constant `c` is the
//! carrier (LO) leakage.

use rfbist_math::Complex64;

/// Quadrature-modulator imperfection parameters.
///
/// # Example
///
/// ```
/// use rfbist_rfchain::iqmod::IqImbalance;
///
/// let iq = IqImbalance::new(0.5, 2.0, -40.0); // 0.5 dB, 2°, −40 dBc LO
/// assert!(iq.image_rejection_db() < 40.0); // imbalance limits IRR
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IqImbalance {
    /// Gain imbalance `g = g_I/g_Q` expressed in dB.
    pub gain_db: f64,
    /// Phase imbalance in degrees (quadrature error).
    pub phase_deg: f64,
    /// LO feed-through relative to a unit-power signal, in dBc;
    /// `f64::NEG_INFINITY` for none.
    pub lo_leakage_dbc: f64,
    /// Phase of the leaked carrier, radians.
    pub lo_leakage_phase: f64,
}

impl IqImbalance {
    /// Creates an imbalance spec from the gain mismatch `gain_db`
    /// (dB), the phase mismatch `phase_deg` (degrees) and the LO
    /// leakage `lo_leakage_dbc` (dBc; `-inf` disables leakage).
    pub fn new(gain_db: f64, phase_deg: f64, lo_leakage_dbc: f64) -> Self {
        IqImbalance {
            gain_db,
            phase_deg,
            lo_leakage_dbc,
            lo_leakage_phase: 0.0,
        }
    }

    /// A perfectly balanced modulator.
    pub fn ideal() -> Self {
        IqImbalance {
            gain_db: 0.0,
            phase_deg: 0.0,
            lo_leakage_dbc: f64::NEG_INFINITY,
            lo_leakage_phase: 0.0,
        }
    }

    /// Sets the LO-leakage carrier phase.
    pub fn with_leakage_phase(mut self, phase: f64) -> Self {
        self.lo_leakage_phase = phase;
        self
    }

    /// The direct-path weight `μ = (g_I·e^{jφ/2} + g_Q·e^{−jφ/2})/2`
    /// with `g_I/g_Q` split symmetrically from `gain_db`.
    pub fn mu(&self) -> Complex64 {
        let (gi, gq) = self.path_gains();
        let half_phi = self.phase_deg.to_radians() / 2.0;
        (Complex64::cis(half_phi) * gi + Complex64::cis(-half_phi) * gq) * 0.5
    }

    /// The image-path weight `ν = (g_I·e^{jφ/2} − g_Q·e^{−jφ/2})/2`.
    pub fn nu(&self) -> Complex64 {
        let (gi, gq) = self.path_gains();
        let half_phi = self.phase_deg.to_radians() / 2.0;
        (Complex64::cis(half_phi) * gi - Complex64::cis(-half_phi) * gq) * 0.5
    }

    fn path_gains(&self) -> (f64, f64) {
        // split the dB imbalance symmetrically between the two paths
        let half = 10f64.powf(self.gain_db / 40.0);
        (half, 1.0 / half)
    }

    /// Complex LO-leakage term added to the envelope.
    pub fn leakage(&self) -> Complex64 {
        if self.lo_leakage_dbc == f64::NEG_INFINITY {
            Complex64::ZERO
        } else {
            Complex64::from_polar(
                10f64.powf(self.lo_leakage_dbc / 20.0),
                self.lo_leakage_phase,
            )
        }
    }

    /// Applies the impairment to one envelope sample:
    /// `a → μ·a + ν·a* + leakage`.
    pub fn apply(&self, a: Complex64) -> Complex64 {
        self.mu() * a + self.nu() * a.conj() + self.leakage()
    }

    /// Image rejection ratio `|μ|²/|ν|²` in dB (infinite when balanced).
    pub fn image_rejection_db(&self) -> f64 {
        let nu = self.nu().norm_sqr();
        if nu == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (self.mu().norm_sqr() / nu).log10()
        }
    }
}

impl Default for IqImbalance {
    fn default() -> Self {
        IqImbalance::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_identity() {
        let iq = IqImbalance::ideal();
        let a = Complex64::new(0.7, -0.2);
        assert!((iq.apply(a) - a).abs() < 1e-12);
        assert_eq!(iq.image_rejection_db(), f64::INFINITY);
        assert_eq!(iq.leakage(), Complex64::ZERO);
    }

    #[test]
    fn gain_imbalance_produces_image() {
        let iq = IqImbalance::new(1.0, 0.0, f64::NEG_INFINITY);
        let nu = iq.nu();
        assert!(nu.abs() > 1e-3, "image weight {nu}");
        // known closed form: IRR for pure gain imbalance g:
        // IRR = ((g+1)/(g−1))² with g = 10^{gain_db/20}
        let g = 10f64.powf(1.0 / 20.0);
        let irr_expected = 20.0 * ((g + 1.0) / (g - 1.0)).log10();
        assert!(
            (iq.image_rejection_db() - irr_expected).abs() < 0.01,
            "{} vs {irr_expected}",
            iq.image_rejection_db()
        );
    }

    #[test]
    fn phase_imbalance_produces_image() {
        let iq = IqImbalance::new(0.0, 2.0, f64::NEG_INFINITY);
        // known: IRR ≈ 20·log10(cot(φ/2)) for pure phase imbalance
        let half = 1.0f64.to_radians();
        let expected = 20.0 * (half.cos() / half.sin()).log10();
        assert!(
            (iq.image_rejection_db() - expected).abs() < 0.05,
            "{} vs {expected}",
            iq.image_rejection_db()
        );
    }

    #[test]
    fn image_maps_positive_to_negative_frequency() {
        // a rotating phasor e^{jωt} through an imbalanced modulator gains
        // a counter-rotating component with weight ν
        let iq = IqImbalance::new(0.8, 1.5, f64::NEG_INFINITY);
        let a = Complex64::cis(0.9);
        let out = iq.apply(a);
        let direct = iq.mu() * a;
        let image = iq.nu() * a.conj();
        assert!((out - (direct + image)).abs() < 1e-12);
        assert!(image.abs() > 0.0);
    }

    #[test]
    fn lo_leakage_adds_dc_term() {
        let iq = IqImbalance::new(0.0, 0.0, -40.0);
        let out = iq.apply(Complex64::ZERO);
        assert!((out.abs() - 0.01).abs() < 1e-9, "leakage {}", out.abs());
        // with phase
        let iq2 = IqImbalance::new(0.0, 0.0, -40.0).with_leakage_phase(std::f64::consts::FRAC_PI_2);
        let out2 = iq2.apply(Complex64::ZERO);
        assert!(out2.re.abs() < 1e-12);
        assert!((out2.im - 0.01).abs() < 1e-9);
    }

    #[test]
    fn energy_conservation_when_balanced() {
        // |μ|² + |ν|² == 1 for the symmetric gain split when balanced in dB
        let iq = IqImbalance::new(0.5, 1.0, f64::NEG_INFINITY);
        let total = iq.mu().norm_sqr() + iq.nu().norm_sqr();
        // symmetric split keeps total near (g²+1/g²)/2 ≈ 1 for small dB
        assert!((total - 1.0).abs() < 0.01, "total {total}");
    }

    #[test]
    fn worse_imbalance_means_worse_irr() {
        let small = IqImbalance::new(0.1, 0.5, f64::NEG_INFINITY);
        let large = IqImbalance::new(1.0, 5.0, f64::NEG_INFINITY);
        assert!(large.image_rejection_db() < small.image_rejection_db());
    }
}
