//! Memoryless power-amplifier models.
//!
//! Behavioral AM/AM + AM/PM conversion applied to the complex envelope:
//! `y = G(|x|)·e^{j(∠x + Φ(|x|))}`. The classic trio — Rapp (solid-state),
//! Saleh (TWT), odd polynomial — plus an ideal linear reference.

use rfbist_math::Complex64;

/// A memoryless PA nonlinearity.
///
/// # Example
///
/// ```
/// use rfbist_rfchain::pa::PaModel;
/// use rfbist_math::Complex64;
///
/// let pa = PaModel::rapp(10.0, 1.0, 2.0); // 20 dB gain, 1 V saturation
/// let small = pa.apply(Complex64::new(0.001, 0.0));
/// assert!((small.re / 0.001 - 10.0).abs() < 0.01); // linear for small input
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PaModel {
    /// Distortion-free amplifier with voltage gain `gain`.
    Linear {
        /// Linear voltage gain.
        gain: f64,
    },
    /// Rapp model: `G(r) = g·r / (1 + (g·r/v_sat)^{2p})^{1/(2p)}`, no
    /// AM/PM. Smooth compression typical of solid-state PAs.
    Rapp {
        /// Small-signal voltage gain.
        gain: f64,
        /// Output saturation voltage.
        v_sat: f64,
        /// Knee sharpness (`p → ∞` approaches a hard limiter).
        p: f64,
    },
    /// Saleh model: `G(r) = α_a·r/(1 + β_a·r²)`,
    /// `Φ(r) = α_p·r²/(1 + β_p·r²)` — strong AM/PM, typical of TWTs.
    Saleh {
        /// AM/AM numerator coefficient (small-signal gain).
        alpha_a: f64,
        /// AM/AM denominator coefficient.
        beta_a: f64,
        /// AM/PM numerator coefficient (radians).
        alpha_p: f64,
        /// AM/PM denominator coefficient.
        beta_p: f64,
    },
    /// Odd polynomial on the envelope: `y = a1·x + a3·x·|x|² + a5·x·|x|⁴`
    /// (complex-baseband form of a memoryless odd nonlinearity).
    Polynomial {
        /// Linear term.
        a1: f64,
        /// Third-order term (negative for compression).
        a3: f64,
        /// Fifth-order term.
        a5: f64,
    },
}

impl PaModel {
    /// Ideal amplifier with gain in dB.
    pub fn linear_db(gain_db: f64) -> Self {
        PaModel::Linear {
            gain: 10f64.powf(gain_db / 20.0),
        }
    }

    /// Rapp model constructor (voltage gain, saturation voltage, knee).
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive.
    pub fn rapp(gain: f64, v_sat: f64, p: f64) -> Self {
        assert!(
            gain > 0.0 && v_sat > 0.0 && p > 0.0,
            "Rapp parameters must be positive"
        );
        PaModel::Rapp { gain, v_sat, p }
    }

    /// Classic Saleh TWT parameters (α_a = 2.1587, β_a = 1.1517,
    /// α_p = 4.0033, β_p = 9.1040).
    pub fn saleh_classic() -> Self {
        PaModel::Saleh {
            alpha_a: 2.1587,
            beta_a: 1.1517,
            alpha_p: 4.0033,
            beta_p: 9.104,
        }
    }

    /// AM/AM response: output envelope for input envelope `r ≥ 0`.
    pub fn am_am(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0);
        match *self {
            PaModel::Linear { gain } => gain * r,
            PaModel::Rapp { gain, v_sat, p } => {
                let lin = gain * r;
                lin / (1.0 + (lin / v_sat).powf(2.0 * p)).powf(1.0 / (2.0 * p))
            }
            PaModel::Saleh {
                alpha_a, beta_a, ..
            } => alpha_a * r / (1.0 + beta_a * r * r),
            PaModel::Polynomial { a1, a3, a5 } => a1 * r + a3 * r.powi(3) + a5 * r.powi(5),
        }
    }

    /// AM/PM response: phase shift (radians) for input envelope `r ≥ 0`.
    pub fn am_pm(&self, r: f64) -> f64 {
        match *self {
            PaModel::Saleh {
                alpha_p, beta_p, ..
            } => alpha_p * r * r / (1.0 + beta_p * r * r),
            _ => 0.0,
        }
    }

    /// Applies the nonlinearity to a complex envelope sample.
    pub fn apply(&self, x: Complex64) -> Complex64 {
        let r = x.abs();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        let g = self.am_am(r);
        let dphi = self.am_pm(r);
        Complex64::from_polar(g, x.arg() + dphi)
    }

    /// Small-signal voltage gain (slope of AM/AM at the origin,
    /// numerically probed).
    pub fn small_signal_gain(&self) -> f64 {
        let r = 1e-9;
        self.am_am(r) / r
    }

    /// Input-referred 1 dB compression point: the input envelope at which
    /// the gain has dropped 1 dB below small-signal, found by bisection.
    ///
    /// Returns `None` for models that never compress (e.g. linear).
    pub fn input_p1db(&self) -> Option<f64> {
        let g0 = self.small_signal_gain();
        let target = g0 * 10f64.powf(-1.0 / 20.0);
        let compressed = |r: f64| self.am_am(r) / r < target;
        // bracket: find an upper bound where compression happened
        let mut hi = 1e-6;
        for _ in 0..80 {
            if compressed(hi) {
                break;
            }
            hi *= 2.0;
        }
        if !compressed(hi) {
            return None;
        }
        let mut lo = hi / 2.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if compressed(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Output-referred 1 dB compression point.
    pub fn output_p1db(&self) -> Option<f64> {
        self.input_p1db().map(|r| self.am_am(r))
    }
}

impl Default for PaModel {
    /// Unity-gain linear amplifier.
    fn default() -> Self {
        PaModel::Linear { gain: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_exactly_linear() {
        let pa = PaModel::linear_db(20.0);
        let x = Complex64::new(0.3, -0.4);
        let y = pa.apply(x);
        assert!((y - x * 10.0).abs() < 1e-12);
        assert!(pa.input_p1db().is_none());
    }

    #[test]
    fn rapp_small_signal_gain() {
        let pa = PaModel::rapp(10.0, 1.0, 2.0);
        assert!((pa.small_signal_gain() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn rapp_saturates_at_vsat() {
        let pa = PaModel::rapp(10.0, 1.0, 2.0);
        let huge = pa.am_am(100.0);
        assert!((huge - 1.0).abs() < 1e-3, "saturated output {huge}");
        // monotone increasing
        let mut last = 0.0;
        for i in 1..100 {
            let v = pa.am_am(i as f64 * 0.01);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn rapp_p1db_matches_analytic() {
        // For Rapp: gain drop of 1 dB when (lin/vsat)^{2p} = 10^{2p·1/20}/ ...
        // solve numerically: g(r)/g0 = (1+(g0 r/v)^{2p})^{-1/(2p)} = 10^{-1/20}
        // ⇒ (g0·r/v)^{2p} = 10^{2p/20} − 1
        let (g0, v, p) = (10.0, 1.0, 2.0);
        let pa = PaModel::rapp(g0, v, p);
        let rhs = (10f64.powf(2.0 * p / 20.0) - 1.0).powf(1.0 / (2.0 * p));
        let analytic = rhs * v / g0;
        let got = pa.input_p1db().unwrap();
        assert!(
            (got - analytic).abs() / analytic < 1e-6,
            "{got} vs {analytic}"
        );
    }

    #[test]
    fn higher_knee_is_more_linear_below_saturation() {
        let soft = PaModel::rapp(10.0, 1.0, 1.0);
        let hard = PaModel::rapp(10.0, 1.0, 10.0);
        // at half saturation input, the hard-knee PA compresses less
        let r = 0.05;
        assert!(hard.am_am(r) > soft.am_am(r));
    }

    #[test]
    fn saleh_peak_and_rolloff() {
        let pa = PaModel::saleh_classic();
        // Saleh AM/AM peaks at r = 1/sqrt(beta_a) then decreases
        let r_peak = 1.0 / 1.1517f64.sqrt();
        let peak = pa.am_am(r_peak);
        assert!(pa.am_am(r_peak * 0.5) < peak);
        assert!(pa.am_am(r_peak * 2.0) < peak);
    }

    #[test]
    fn saleh_has_am_pm() {
        let pa = PaModel::saleh_classic();
        assert_eq!(pa.am_pm(0.0), 0.0);
        assert!(pa.am_pm(0.5) > 0.1);
        // phase rotation shows up in apply()
        let y = pa.apply(Complex64::new(0.5, 0.0));
        assert!(y.arg().abs() > 0.1);
    }

    #[test]
    fn polynomial_compression() {
        let pa = PaModel::Polynomial {
            a1: 10.0,
            a3: -20.0,
            a5: 0.0,
        };
        assert!((pa.small_signal_gain() - 10.0).abs() < 1e-5);
        // gain at r=0.3: 10 − 20·0.09 = 8.2 → compressed
        assert!((pa.am_am(0.3) / 0.3 - 8.2).abs() < 1e-9);
        let p1 = pa.input_p1db().unwrap();
        // analytic: 10(1 − 2 r²) = 10·10^{-1/20} ⇒ r² = (1−10^{-1/20})/2
        let analytic = ((1.0 - 10f64.powf(-0.05)) / 2.0).sqrt();
        assert!((p1 - analytic).abs() < 1e-6);
    }

    #[test]
    fn apply_preserves_phase_without_ampm() {
        let pa = PaModel::rapp(5.0, 1.0, 2.0);
        let x = Complex64::from_polar(0.1, 1.2);
        let y = pa.apply(x);
        assert!((y.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn zero_input_zero_output() {
        for pa in [
            PaModel::default(),
            PaModel::rapp(10.0, 1.0, 2.0),
            PaModel::saleh_classic(),
        ] {
            assert_eq!(pa.apply(Complex64::ZERO), Complex64::ZERO);
        }
    }

    #[test]
    fn output_p1db_consistent() {
        let pa = PaModel::rapp(10.0, 2.0, 2.0);
        let rin = pa.input_p1db().unwrap();
        let rout = pa.output_p1db().unwrap();
        assert!((rout - pa.am_am(rin)).abs() < 1e-12);
        // output P1dB is ~1 dB below g0·rin
        let ideal = pa.small_signal_gain() * rin;
        assert!((20.0 * (rout / ideal).log10() + 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_rapp_panics() {
        let _ = PaModel::rapp(-1.0, 1.0, 2.0);
    }
}
