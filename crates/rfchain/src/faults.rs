//! Parametric fault catalogue for BIST fault-coverage studies.
//!
//! The paper's end goal is detecting out-of-spec transmitters via
//! spectral-mask measurements. This module enumerates the classic
//! parametric Tx faults and maps each onto the behavioral impairment
//! model, so the BIST engine can be scored on which faults it catches.

use crate::impairments::TxImpairments;
use crate::pa::PaModel;

/// A parametric transmitter fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// PA small-signal gain shifted by the given dB (negative = weak PA).
    PaGainShift {
        /// Gain change in dB.
        delta_db: f64,
    },
    /// PA saturation voltage reduced by the given factor in `(0, 1]` —
    /// the device compresses earlier, spreading spectral regrowth.
    PaEarlyCompression {
        /// Multiplier on the healthy saturation voltage.
        v_sat_factor: f64,
    },
    /// Additional quadrature gain imbalance in dB.
    IqGainImbalance {
        /// Added gain imbalance in dB.
        gain_db: f64,
    },
    /// Additional quadrature phase error in degrees.
    IqPhaseImbalance {
        /// Added phase imbalance in degrees.
        phase_deg: f64,
    },
    /// Carrier feed-through raised to the given dBc level.
    LoLeakage {
        /// Leakage level in dBc.
        level_dbc: f64,
    },
}

impl FaultKind {
    /// Short machine-readable identifier.
    pub fn id(&self) -> &'static str {
        match self {
            FaultKind::PaGainShift { .. } => "pa-gain-shift",
            FaultKind::PaEarlyCompression { .. } => "pa-early-compression",
            FaultKind::IqGainImbalance { .. } => "iq-gain-imbalance",
            FaultKind::IqPhaseImbalance { .. } => "iq-phase-imbalance",
            FaultKind::LoLeakage { .. } => "lo-leakage",
        }
    }
}

/// A named fault with its severity applied to a baseline impairment set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// The fault type and severity.
    pub kind: FaultKind,
}

impl Fault {
    /// Wraps a fault kind, validating its parameters so a bad corpus
    /// fails when it is built, not mid-campaign inside
    /// [`inject`](Self::inject).
    ///
    /// # Panics
    ///
    /// Panics if a fault parameter is non-finite, or if
    /// `v_sat_factor` lies outside `(0, 1]`.
    pub fn new(kind: FaultKind) -> Self {
        match kind {
            FaultKind::PaGainShift { delta_db } => {
                assert!(delta_db.is_finite(), "gain shift must be finite");
            }
            FaultKind::PaEarlyCompression { v_sat_factor } => {
                assert!(
                    v_sat_factor > 0.0 && v_sat_factor <= 1.0,
                    "v_sat factor must be in (0, 1]"
                );
            }
            FaultKind::IqGainImbalance { gain_db } => {
                assert!(gain_db.is_finite(), "gain imbalance must be finite");
            }
            FaultKind::IqPhaseImbalance { phase_deg } => {
                assert!(phase_deg.is_finite(), "phase imbalance must be finite");
            }
            FaultKind::LoLeakage { level_dbc } => {
                // NEG_INFINITY would mean "no leakage" — not a fault
                assert!(level_dbc.is_finite(), "leakage level must be finite dBc");
            }
        }
        Fault { kind }
    }

    /// Injects this fault into `healthy`, returning the faulty
    /// impairment configuration.
    pub fn inject(&self, healthy: TxImpairments) -> TxImpairments {
        match self.kind {
            FaultKind::PaGainShift { delta_db } => {
                let factor = 10f64.powf(delta_db / 20.0);
                let pa = match healthy.pa {
                    PaModel::Linear { gain } => PaModel::Linear {
                        gain: gain * factor,
                    },
                    PaModel::Rapp { gain, v_sat, p } => PaModel::Rapp {
                        gain: gain * factor,
                        v_sat,
                        p,
                    },
                    PaModel::Saleh {
                        alpha_a,
                        beta_a,
                        alpha_p,
                        beta_p,
                    } => PaModel::Saleh {
                        alpha_a: alpha_a * factor,
                        beta_a,
                        alpha_p,
                        beta_p,
                    },
                    PaModel::Polynomial { a1, a3, a5 } => PaModel::Polynomial {
                        a1: a1 * factor,
                        a3: a3 * factor,
                        a5: a5 * factor,
                    },
                };
                healthy.with_pa(pa)
            }
            FaultKind::PaEarlyCompression { v_sat_factor } => {
                // `new` validates; this guards struct-literal construction
                assert!(
                    v_sat_factor > 0.0 && v_sat_factor <= 1.0,
                    "v_sat factor must be in (0, 1]"
                );
                let pa = match healthy.pa {
                    PaModel::Rapp { gain, v_sat, p } => PaModel::Rapp {
                        gain,
                        v_sat: v_sat * v_sat_factor,
                        p,
                    },
                    // non-Rapp PAs: emulate early compression with a Rapp
                    // wrapper at the reduced saturation level
                    other => {
                        let g = other.small_signal_gain();
                        PaModel::Rapp {
                            gain: g,
                            v_sat: g * v_sat_factor,
                            p: 2.0,
                        }
                    }
                };
                healthy.with_pa(pa)
            }
            FaultKind::IqGainImbalance { gain_db } => {
                let mut iq = healthy.iq;
                iq.gain_db += gain_db;
                healthy.with_iq(iq)
            }
            FaultKind::IqPhaseImbalance { phase_deg } => {
                let mut iq = healthy.iq;
                iq.phase_deg += phase_deg;
                healthy.with_iq(iq)
            }
            FaultKind::LoLeakage { level_dbc } => {
                let mut iq = healthy.iq;
                // A fault only ever adds carrier feed-through: clamp to
                // the healthy residual so a level below the baseline
                // cannot "repair" the device under injection.
                iq.lo_leakage_dbc = level_dbc.max(iq.lo_leakage_dbc);
                healthy.with_iq(iq)
            }
        }
    }
}

/// A representative fault set spanning the catalogue, graded from
/// marginal to gross — the default corpus for fault-coverage
/// experiments.
pub fn standard_fault_set() -> Vec<Fault> {
    vec![
        Fault::new(FaultKind::PaGainShift { delta_db: -1.0 }),
        Fault::new(FaultKind::PaGainShift { delta_db: -3.0 }),
        Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.5 }),
        Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.25 }),
        Fault::new(FaultKind::IqGainImbalance { gain_db: 1.0 }),
        Fault::new(FaultKind::IqGainImbalance { gain_db: 3.0 }),
        Fault::new(FaultKind::IqPhaseImbalance { phase_deg: 3.0 }),
        Fault::new(FaultKind::IqPhaseImbalance { phase_deg: 10.0 }),
        Fault::new(FaultKind::LoLeakage { level_dbc: -30.0 }),
        Fault::new(FaultKind::LoLeakage { level_dbc: -15.0 }),
    ]
}

/// The gross (unambiguously out-of-spec) subset of
/// [`standard_fault_set`]: the severe grade of each fault family. A
/// BIST worth shipping must detect every one of these — the
/// fault-coverage campaign asserts 100 % detection on exactly this
/// set, while the marginal grades are only scored.
pub fn gross_fault_set() -> Vec<Fault> {
    vec![
        Fault::new(FaultKind::PaGainShift { delta_db: -3.0 }),
        Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.25 }),
        Fault::new(FaultKind::IqGainImbalance { gain_db: 3.0 }),
        Fault::new(FaultKind::IqPhaseImbalance { phase_deg: 10.0 }),
        Fault::new(FaultKind::LoLeakage { level_dbc: -15.0 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::Complex64;

    #[test]
    fn pa_gain_shift_scales_output() {
        let healthy = TxImpairments::ideal().with_pa(PaModel::linear_db(20.0));
        let faulty = Fault::new(FaultKind::PaGainShift { delta_db: -3.0 }).inject(healthy);
        let a = Complex64::new(0.01, 0.0);
        let ratio = faulty.apply(a).abs() / healthy.apply(a).abs();
        assert!((20.0 * ratio.log10() + 3.0).abs() < 1e-9);
    }

    #[test]
    fn early_compression_reduces_p1db() {
        let healthy = TxImpairments::typical();
        let faulty =
            Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.5 }).inject(healthy);
        let p1_healthy = healthy.pa.input_p1db().unwrap();
        let p1_faulty = faulty.pa.input_p1db().unwrap();
        assert!((p1_faulty / p1_healthy - 0.5).abs() < 0.01);
    }

    #[test]
    fn early_compression_wraps_non_rapp() {
        let healthy = TxImpairments::ideal(); // linear PA
        let faulty =
            Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.5 }).inject(healthy);
        assert!(matches!(faulty.pa, PaModel::Rapp { .. }));
        assert!(faulty.pa.input_p1db().is_some());
    }

    #[test]
    fn iq_faults_accumulate_on_baseline() {
        let healthy = TxImpairments::typical(); // 0.05 dB residual
        let faulty = Fault::new(FaultKind::IqGainImbalance { gain_db: 1.0 }).inject(healthy);
        assert!((faulty.iq.gain_db - 1.05).abs() < 1e-12);
        let faulty2 = Fault::new(FaultKind::IqPhaseImbalance { phase_deg: 3.0 }).inject(healthy);
        assert!((faulty2.iq.phase_deg - 3.3).abs() < 1e-12);
    }

    #[test]
    fn lo_leakage_fault_sets_level() {
        let healthy = TxImpairments::typical();
        let faulty = Fault::new(FaultKind::LoLeakage { level_dbc: -15.0 }).inject(healthy);
        assert_eq!(faulty.iq.lo_leakage_dbc, -15.0);
        // stronger leakage than healthy
        assert!(faulty.iq.leakage().abs() > healthy.iq.leakage().abs());
    }

    #[test]
    fn lo_leakage_fault_never_improves_the_device() {
        // typical() carries a −55 dBc residual; a "fault" below that
        // must clamp to the healthy level, not reduce the leakage
        let healthy = TxImpairments::typical();
        let faulty = Fault::new(FaultKind::LoLeakage { level_dbc: -70.0 }).inject(healthy);
        assert_eq!(faulty.iq.lo_leakage_dbc, healthy.iq.lo_leakage_dbc);
        assert!(faulty.iq.leakage().abs() >= healthy.iq.leakage().abs());
    }

    #[test]
    fn standard_set_covers_all_kinds() {
        let set = standard_fault_set();
        assert!(set.len() >= 10);
        let ids: std::collections::BTreeSet<&str> = set.iter().map(|f| f.kind.id()).collect();
        assert_eq!(ids.len(), 5, "all five fault families present");
    }

    #[test]
    fn gross_set_is_a_subset_of_the_standard_set() {
        let all = standard_fault_set();
        let gross = gross_fault_set();
        let ids: std::collections::BTreeSet<&str> = gross.iter().map(|f| f.kind.id()).collect();
        assert_eq!(ids.len(), 5, "one gross grade per family");
        for f in &gross {
            assert!(all.contains(f), "{:?} missing from the standard set", f);
        }
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn invalid_compression_factor_panics() {
        let _ = Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.0 })
            .inject(TxImpairments::typical());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn invalid_compression_factor_fails_at_construction() {
        // must fail in `new`, before any campaign run reaches `inject`
        let _ = Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 1.5 });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_fault_parameter_fails_at_construction() {
        let _ = Fault::new(FaultKind::IqGainImbalance { gain_db: f64::NAN });
    }
}
