//! Behavioral homodyne transmitter model.
//!
//! The paper validates its BIST architecture against "the behavioral
//! model of a homodyne transmitter … behavioral-passband models" (Fig. 1
//! and Section V). This crate reproduces that model in continuous time:
//! every block is a pointwise transformation of the complex envelope, so
//! the transmitter output remains evaluable at the arbitrary instants
//! PNBS sampling requires.
//!
//! - [`pa`]: memoryless power-amplifier nonlinearities (linear, Rapp,
//!   Saleh, odd polynomial) with AM/AM + AM/PM conversion,
//! - [`iqmod`]: quadrature modulator with gain/phase imbalance and LO
//!   leakage,
//! - [`impairments`]: the aggregate impairment configuration,
//! - [`txchain`]: the assembled homodyne transmitter,
//! - [`faults`]: a parametric fault catalogue for BIST fault-coverage
//!   experiments,
//! - [`loopback`]: the loopback-BIST baseline and its fault-masking
//!   weakness (the paper's Section I motivation).
//!
//! # Example
//!
//! ```
//! use rfbist_rfchain::txchain::HomodyneTx;
//! use rfbist_signal::prelude::*;
//!
//! let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 1);
//! let tx = HomodyneTx::builder(bb, 1e9).build();
//! let rf = tx.rf_output();
//! assert!(rf.eval(1.5e-6).is_finite());
//! ```

pub mod faults;
pub mod impairments;
pub mod iqmod;
pub mod loopback;
pub mod pa;
pub mod txchain;

pub use faults::{Fault, FaultKind};
pub use impairments::TxImpairments;
pub use iqmod::IqImbalance;
pub use pa::PaModel;
pub use txchain::HomodyneTx;
