//! Aggregate transmitter impairment configuration.

use crate::iqmod::IqImbalance;
use crate::pa::PaModel;

/// All impairments applied along the Tx chain, in signal order:
/// IQ modulator → PA → output attenuation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TxImpairments {
    /// Quadrature-modulator imperfections.
    pub iq: IqImbalance,
    /// Power-amplifier nonlinearity.
    pub pa: PaModel,
    /// Output coupling gain (linear voltage; models the observation
    /// attenuator feeding the BIST sampler).
    pub output_gain: f64,
}

impl TxImpairments {
    /// A clean transmitter: ideal modulator, linear unity PA, unit
    /// coupling.
    pub fn ideal() -> Self {
        TxImpairments {
            iq: IqImbalance::ideal(),
            pa: PaModel::default(),
            output_gain: 1.0,
        }
    }

    /// A "healthy production unit" profile: tiny residual imbalance,
    /// mildly compressing Rapp PA operated with generous back-off, and a
    /// coupling gain that normalizes the small-signal chain gain to 1.
    pub fn typical() -> Self {
        let pa_gain = 10.0; // 20 dB
        TxImpairments {
            iq: IqImbalance::new(0.05, 0.3, -55.0),
            pa: PaModel::rapp(pa_gain, 40.0, 2.0),
            output_gain: 1.0 / pa_gain,
        }
    }

    /// Builder-style: replace the IQ imbalance.
    pub fn with_iq(mut self, iq: IqImbalance) -> Self {
        self.iq = iq;
        self
    }

    /// Builder-style: replace the PA model.
    pub fn with_pa(mut self, pa: PaModel) -> Self {
        self.pa = pa;
        self
    }

    /// Builder-style: replace the output gain.
    pub fn with_output_gain(mut self, gain: f64) -> Self {
        self.output_gain = gain;
        self
    }

    /// Applies the full impairment chain to one envelope sample.
    pub fn apply(&self, a: rfbist_math::Complex64) -> rfbist_math::Complex64 {
        self.pa.apply(self.iq.apply(a)) * self.output_gain
    }
}

impl Default for TxImpairments {
    fn default() -> Self {
        TxImpairments::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::Complex64;

    #[test]
    fn ideal_chain_is_identity() {
        let imp = TxImpairments::ideal();
        let a = Complex64::new(0.4, 0.3);
        assert!((imp.apply(a) - a).abs() < 1e-12);
    }

    #[test]
    fn typical_chain_is_near_unity_at_nominal_level() {
        // −55 dBc LO leakage is referenced to unit signal level, so probe
        // at |a| = 1 where it is negligible and the PA barely compresses.
        let imp = TxImpairments::typical();
        let a = Complex64::new(1.0, 0.0);
        let out = imp.apply(a);
        assert!(
            (out.abs() / a.abs() - 1.0).abs() < 0.02,
            "gain {}",
            out.abs() / a.abs()
        );
    }

    #[test]
    fn chain_order_is_iq_then_pa() {
        // with LO leakage and a compressing PA, the leakage is amplified
        // and compressed along with the signal
        let imp = TxImpairments::ideal()
            .with_iq(IqImbalance::new(0.0, 0.0, -20.0))
            .with_pa(PaModel::rapp(10.0, 0.5, 2.0));
        let out = imp.apply(Complex64::ZERO);
        // leakage 0.1 → PA: 10·0.1 = 1.0 but saturates toward 0.5
        assert!(out.abs() < 1.0);
        assert!(out.abs() > 0.3);
    }

    #[test]
    fn builders_replace_fields() {
        let imp = TxImpairments::ideal()
            .with_output_gain(0.5)
            .with_pa(PaModel::linear_db(6.0));
        let a = Complex64::ONE;
        let expected = 10f64.powf(6.0 / 20.0) * 0.5;
        assert!((imp.apply(a).abs() - expected).abs() < 1e-9);
    }
}
