//! The assembled homodyne transmitter (paper Fig. 1).
//!
//! `baseband I/Q → quadrature modulator (impairments) → PA → coupling` —
//! all pointwise on the complex envelope, so the RF output stays
//! evaluable at arbitrary instants.

use crate::impairments::TxImpairments;
use rfbist_math::Complex64;
use rfbist_signal::bandpass::BandpassSignal;
use rfbist_signal::baseband::ShapedBaseband;
use rfbist_signal::traits::ComplexEnvelope;

/// A behavioral homodyne transmitter.
///
/// Generic over the baseband envelope source `E`; the impairment chain
/// is applied per evaluation.
///
/// # Example
///
/// ```
/// use rfbist_rfchain::txchain::HomodyneTx;
/// use rfbist_rfchain::pa::PaModel;
/// use rfbist_signal::prelude::*;
///
/// let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 7);
/// let tx = HomodyneTx::builder(bb, 1e9)
///     .pa(PaModel::rapp(10.0, 5.0, 2.0))
///     .output_gain(0.1)
///     .build();
/// assert!(tx.rf_output().eval(1.4e-6).is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct HomodyneTx<E> {
    baseband: E,
    carrier_hz: f64,
    impairments: TxImpairments,
}

impl<E: ComplexEnvelope + Clone> HomodyneTx<E> {
    /// Starts a builder with the mandatory pieces: baseband source and
    /// carrier frequency (Hz).
    pub fn builder(baseband: E, carrier_hz: f64) -> HomodyneTxBuilder<E> {
        HomodyneTxBuilder {
            baseband,
            carrier_hz,
            impairments: TxImpairments::ideal(),
        }
    }

    /// Carrier frequency in Hz.
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// The impairment configuration.
    pub fn impairments(&self) -> &TxImpairments {
        &self.impairments
    }

    /// The clean (pre-impairment) baseband source.
    pub fn baseband(&self) -> &E {
        &self.baseband
    }

    /// The impaired envelope as a standalone [`ComplexEnvelope`].
    pub fn impaired_envelope(&self) -> ImpairedEnvelope<E> {
        ImpairedEnvelope {
            baseband: self.baseband.clone(),
            impairments: self.impairments,
        }
    }

    /// The RF output as a real passband [`ContinuousSignal`] — what the
    /// BIST sampler observes at the PA output.
    pub fn rf_output(&self) -> BandpassSignal<ImpairedEnvelope<E>> {
        BandpassSignal::new(self.impaired_envelope(), self.carrier_hz)
    }

    /// The *ideal* RF output (impairments bypassed) — the reference the
    /// BIST engine compares against.
    pub fn ideal_rf_output(&self) -> BandpassSignal<E> {
        BandpassSignal::new(self.baseband.clone(), self.carrier_hz)
    }
}

impl HomodyneTx<ShapedBaseband> {
    /// Steady (edge-free) time range of the underlying symbol stream.
    pub fn steady_time_range(&self) -> (f64, f64) {
        self.baseband.steady_time_range()
    }
}

/// Builder for [`HomodyneTx`].
#[derive(Clone, Debug)]
pub struct HomodyneTxBuilder<E> {
    baseband: E,
    carrier_hz: f64,
    impairments: TxImpairments,
}

impl<E: ComplexEnvelope + Clone> HomodyneTxBuilder<E> {
    /// Sets the whole impairment block at once.
    pub fn impairments(mut self, imp: TxImpairments) -> Self {
        self.impairments = imp;
        self
    }

    /// Sets the quadrature-modulator imbalance.
    pub fn iq(mut self, iq: crate::iqmod::IqImbalance) -> Self {
        self.impairments.iq = iq;
        self
    }

    /// Sets the PA model.
    pub fn pa(mut self, pa: crate::pa::PaModel) -> Self {
        self.impairments.pa = pa;
        self
    }

    /// Sets the output coupling gain.
    pub fn output_gain(mut self, gain: f64) -> Self {
        self.impairments.output_gain = gain;
        self
    }

    /// Finalizes the transmitter.
    pub fn build(self) -> HomodyneTx<E> {
        assert!(self.carrier_hz > 0.0, "carrier frequency must be positive");
        HomodyneTx {
            baseband: self.baseband,
            carrier_hz: self.carrier_hz,
            impairments: self.impairments,
        }
    }
}

/// The impaired envelope view of a transmitter.
#[derive(Clone, Debug)]
pub struct ImpairedEnvelope<E> {
    baseband: E,
    impairments: TxImpairments,
}

impl<E: ComplexEnvelope> ComplexEnvelope for ImpairedEnvelope<E> {
    fn eval_iq(&self, t: f64) -> Complex64 {
        self.impairments.apply(self.baseband.eval_iq(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iqmod::IqImbalance;
    use crate::pa::PaModel;
    use rfbist_signal::baseband::ShapedBaseband;
    use rfbist_signal::traits::{ContinuousSignal, FnEnvelope};

    fn bb() -> ShapedBaseband {
        ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 0xACE1)
    }

    #[test]
    fn ideal_tx_output_matches_clean_upconversion() {
        let tx = HomodyneTx::builder(bb(), 1e9).build();
        let rf = tx.rf_output();
        let ideal = tx.ideal_rf_output();
        for i in 0..20 {
            let t = 1.3e-6 + i as f64 * 7.7e-9;
            assert!((rf.eval(t) - ideal.eval(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn impairments_change_output() {
        let tx = HomodyneTx::builder(bb(), 1e9)
            .iq(IqImbalance::new(1.0, 3.0, -30.0))
            .pa(PaModel::rapp(1.0, 1.2, 2.0))
            .build();
        let rf = tx.rf_output();
        let ideal = tx.ideal_rf_output();
        let mut max_diff = 0.0f64;
        for i in 0..200 {
            let t = 1.3e-6 + i as f64 * 3.1e-9;
            max_diff = max_diff.max((rf.eval(t) - ideal.eval(t)).abs());
        }
        assert!(max_diff > 0.01, "impairments had no effect: {max_diff}");
    }

    #[test]
    fn builder_sets_all_fields() {
        let tx = HomodyneTx::builder(bb(), 2.4e9)
            .output_gain(0.25)
            .pa(PaModel::linear_db(12.0))
            .iq(IqImbalance::new(0.2, 0.5, -50.0))
            .build();
        assert_eq!(tx.carrier_hz(), 2.4e9);
        assert_eq!(tx.impairments().output_gain, 0.25);
        assert_eq!(tx.impairments().iq.gain_db, 0.2);
    }

    #[test]
    fn impaired_envelope_applies_chain() {
        let env = FnEnvelope(|_| Complex64::new(0.5, 0.0));
        let tx = HomodyneTx::builder(env, 1e9)
            .pa(PaModel::linear_db(6.0))
            .build();
        let z = tx.impaired_envelope().eval_iq(0.0);
        assert!((z.abs() - 0.5 * 10f64.powf(0.3)).abs() < 1e-9);
    }

    #[test]
    fn steady_range_passthrough() {
        let tx = HomodyneTx::builder(bb(), 1e9).build();
        let (t0, t1) = tx.steady_time_range();
        assert!(t1 > t0);
    }

    #[test]
    #[should_panic(expected = "carrier frequency must be positive")]
    fn zero_carrier_panics() {
        let _ = HomodyneTx::builder(bb(), 0.0).build();
    }
}
