//! Loopback BIST baseline — and its fault-masking weakness.
//!
//! The paper's introduction motivates the direct-observation BP-TIADC
//! approach by the classic flaw of RF loopback BIST: "fault masking is a
//! situation where a (non-catastrophic) failure of the Tx is covered up
//! by an exceptionally good Rx, or the inverse. A marginal product could
//! then go undetected (test escapes)." This module implements a simple
//! behavioral receiver and a gain-based loopback test so that weakness
//! can be demonstrated quantitatively against the PNBS strategy.

use crate::iqmod::IqImbalance;
use rfbist_math::Complex64;
use rfbist_signal::traits::ComplexEnvelope;

/// A behavioral direct-conversion receiver for loopback tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Receiver {
    /// Voltage gain of the LNA + baseband chain.
    pub gain: f64,
    /// Receiver's own quadrature imperfections.
    pub iq: IqImbalance,
}

impl Receiver {
    /// A nominal receiver with the given linear voltage gain.
    pub fn new(gain: f64) -> Self {
        Receiver {
            gain,
            iq: IqImbalance::ideal(),
        }
    }

    /// Builder-style: receiver-side IQ imbalance.
    pub fn with_iq(mut self, iq: IqImbalance) -> Self {
        self.iq = iq;
        self
    }

    /// Processes one received envelope sample.
    pub fn process(&self, a: Complex64) -> Complex64 {
        self.iq.apply(a) * self.gain
    }
}

/// Result of a loopback gain measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoopbackMeasurement {
    /// Measured end-to-end RMS gain (Tx chain × coupling × Rx chain).
    pub chain_gain: f64,
    /// Measured image-rejection proxy: residual conjugate-component
    /// power ratio of the round-trip constellation.
    pub image_ratio: f64,
}

/// Measures the loopback chain: the known clean baseband `reference`
/// drives the DUT whose (impaired) output envelope is `tx_output`; the
/// round trip closes through `rx`. Gain is end-to-end relative to the
/// reference — the only signal the tester actually knows.
pub fn measure_loopback<R: ComplexEnvelope, E: ComplexEnvelope>(
    reference: &R,
    tx_output: &E,
    rx: &Receiver,
    times: &[f64],
) -> LoopbackMeasurement {
    assert!(!times.is_empty(), "need probe times");
    let mut p_out = 0.0;
    let mut p_ref = 0.0;
    let mut direct = Complex64::ZERO;
    let mut image = Complex64::ZERO;
    for &t in times {
        let a_ref = reference.eval_iq(t);
        let y = rx.process(tx_output.eval_iq(t));
        p_out += y.norm_sqr();
        p_ref += a_ref.norm_sqr();
        // correlate output with the reference and with its conjugate to
        // split direct and image paths
        direct += y * a_ref.conj();
        image += y * a_ref;
    }
    let chain_gain = if p_ref > 0.0 {
        (p_out / p_ref).sqrt()
    } else {
        0.0
    };
    let image_ratio = if direct.norm_sqr() > 0.0 {
        image.norm_sqr() / direct.norm_sqr()
    } else {
        0.0
    };
    LoopbackMeasurement {
        chain_gain,
        image_ratio,
    }
}

/// Loopback pass/fail on chain gain: PASS when the measured end-to-end
/// gain is within `tolerance_db` of `nominal_gain`.
pub fn loopback_gain_verdict(
    measurement: &LoopbackMeasurement,
    nominal_gain: f64,
    tolerance_db: f64,
) -> bool {
    assert!(
        nominal_gain > 0.0 && measurement.chain_gain > 0.0,
        "gains must be positive"
    );
    let err_db = 20.0 * (measurement.chain_gain / nominal_gain).log10();
    err_db.abs() <= tolerance_db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impairments::TxImpairments;
    use crate::pa::PaModel;
    use crate::txchain::HomodyneTx;
    use rfbist_signal::baseband::ShapedBaseband;

    fn probe_times() -> Vec<f64> {
        (0..400).map(|i| 1.3e-6 + i as f64 * 7.3e-9).collect()
    }

    fn tx_with(imp: TxImpairments) -> HomodyneTx<ShapedBaseband> {
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 64, 0xACE1);
        HomodyneTx::builder(bb, 1e9).impairments(imp).build()
    }

    #[test]
    fn nominal_chain_measures_unit_gain() {
        let tx = tx_with(TxImpairments::typical());
        let rx = Receiver::new(1.0);
        let m = measure_loopback(tx.baseband(), &tx.impaired_envelope(), &rx, &probe_times());
        assert!((m.chain_gain - 1.0).abs() < 0.05, "gain {}", m.chain_gain);
        assert!(m.image_ratio < 1e-3, "image {}", m.image_ratio);
    }

    #[test]
    fn weak_tx_with_nominal_rx_is_detected() {
        let weak = TxImpairments::typical()
            .with_output_gain(TxImpairments::typical().output_gain * 10f64.powf(-1.5 / 20.0));
        let tx = tx_with(weak);
        let rx = Receiver::new(1.0);
        let m = measure_loopback(tx.baseband(), &tx.impaired_envelope(), &rx, &probe_times());
        assert!(
            !loopback_gain_verdict(&m, 1.0, 1.0),
            "a 1.5 dB-weak Tx must fail a ±1 dB loopback limit"
        );
    }

    #[test]
    fn fault_masking_hot_rx_hides_weak_tx() {
        // The paper's core criticism: the same 1.5 dB-weak Tx passes when
        // the Rx happens to be 1.5 dB hot — a test escape.
        let weak = TxImpairments::typical()
            .with_output_gain(TxImpairments::typical().output_gain * 10f64.powf(-1.5 / 20.0));
        let tx = tx_with(weak);
        let hot_rx = Receiver::new(10f64.powf(1.5 / 20.0));
        let m = measure_loopback(
            tx.baseband(),
            &tx.impaired_envelope(),
            &hot_rx,
            &probe_times(),
        );
        assert!(
            loopback_gain_verdict(&m, 1.0, 1.0),
            "fault masking should let this marginal unit escape"
        );
    }

    #[test]
    fn direct_observation_is_immune_to_rx_state() {
        // The BP-TIADC observes the PA output directly, so the same weak
        // Tx is caught regardless of any Rx gain — measured here as the
        // Tx-side chain gain alone.
        let weak = TxImpairments::typical()
            .with_output_gain(TxImpairments::typical().output_gain * 10f64.powf(-1.5 / 20.0));
        let tx = tx_with(weak);
        let direct = measure_loopback(
            tx.baseband(),
            &tx.impaired_envelope(),
            &Receiver::new(1.0), // the sampler's fixed, calibrated path
            &probe_times(),
        );
        assert!(!loopback_gain_verdict(&direct, 1.0, 1.0));
    }

    #[test]
    fn rx_iq_imbalance_adds_image() {
        let tx = tx_with(TxImpairments::ideal());
        let rx = Receiver::new(1.0).with_iq(IqImbalance::new(1.0, 3.0, f64::NEG_INFINITY));
        let m = measure_loopback(tx.baseband(), &tx.impaired_envelope(), &rx, &probe_times());
        assert!(m.image_ratio > 1e-4, "image {}", m.image_ratio);
    }

    #[test]
    fn compressing_pa_lowers_large_signal_gain() {
        let compressing = TxImpairments::ideal().with_pa(PaModel::rapp(1.0, 0.9, 2.0));
        let tx = tx_with(compressing);
        let rx = Receiver::new(1.0);
        let m = measure_loopback(tx.baseband(), &tx.impaired_envelope(), &rx, &probe_times());
        assert!(
            m.chain_gain < 0.95,
            "compression should show: {}",
            m.chain_gain
        );
    }
}
