//! The BIST verdict service: a persistent worker pool for sharded
//! (standard × carrier × DUT) verdict campaigns.
//!
//! One [`BistEngine::try_run_with`] call serves one capture; a
//! production line serves many DUTs against many deployments at
//! once. The service keeps a pool of long-lived worker threads, each
//! owning its [`BistScratch`] arena for the life of the pool —
//! replacing the per-verdict scoped producer spawn inside
//! `stream_blocks_parallel` with job-level sharding: every job runs
//! its reconstruction feed sequentially (`stream_workers = 1`) on a
//! warm arena, and the cores are saturated by running many jobs, not
//! by splitting one.
//!
//! Jobs flow through a bounded queue ([`ServiceConfig::queue_depth`])
//! so a fast submitter gets backpressure instead of unbounded memory
//! growth: [`VerdictService::try_submit`] blocks while the queue is
//! full and no job is ever dropped. A job whose attempt panics is
//! retried in place up to [`ServiceConfig::max_retries`] times, then
//! surfaced as a typed [`BistError::WorkerPanic`] — the pool itself
//! survives every panic (the worker catches the unwind and moves to
//! the next job).
//!
//! The byte-level companion is [`wire`](crate::wire): sample blocks
//! and partial reports cross a transport as length-prefixed frames.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use rfbist_rfchain::impairments::TxImpairments;
use rfbist_rfchain::txchain::HomodyneTx;
use rfbist_signal::prelude::*;

use crate::bist::{BistConfig, BistEngine, BistScratch};
use crate::campaign::{Deployment, CALIBRATION_SYMBOL_RATE, CAMPAIGN_B};
use crate::error::BistError;
use crate::mask::{MaskLibrary, SpectralMask};
use crate::report::BistReport;

/// A stimulus shared across jobs and worker threads.
pub type SharedSignal = Arc<dyn ContinuousSignal + Send + Sync>;

/// Sizing of the verdict worker pool and its job queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker thread count; `0` resolves to the machine's available
    /// parallelism (see [`resolved_workers`](Self::resolved_workers)).
    pub workers: usize,
    /// Bounded job-queue depth: a submitter blocks once this many
    /// jobs are waiting (backpressure, not drops). Must be ≥ 1.
    pub queue_depth: usize,
    /// How many times a job whose attempt panics is retried on the
    /// same worker before the panic is surfaced as a typed
    /// [`BistError::WorkerPanic`].
    pub max_retries: u32,
}

impl ServiceConfig {
    /// Auto-sized pool: one worker per core, a 16-deep queue, one
    /// retry for panicked jobs.
    pub fn paper_default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_depth: 16,
            max_retries: 1,
        }
    }

    /// Sets the worker thread count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the bounded job-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-job panic retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// The worker count [`workers`](Self::workers) resolves to on
    /// this machine: the configured value, or — for the `0` auto
    /// default — one worker per available core.
    pub fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            w => w,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One (standard × carrier × DUT) verdict job.
#[derive(Clone)]
pub struct VerdictJob {
    /// Caller-chosen correlation id; outcomes are sorted by it.
    pub job_id: u64,
    /// Which DUT on the line this job scores.
    pub dut: u32,
    /// Mask-library standard name (for triage; the mask itself rides
    /// along below).
    pub standard: String,
    /// The engine configuration for this deployment. Campaign-built
    /// jobs force `stream_workers = 1`: sharding is per job, not per
    /// verdict.
    pub config: BistConfig,
    /// The emission mask to score against.
    pub mask: SpectralMask,
    /// The DUT's RF output.
    pub stimulus: SharedSignal,
    /// Optional clean reference for the Δε reconstruction-error
    /// metric.
    pub reference: Option<SharedSignal>,
}

impl std::fmt::Debug for VerdictJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerdictJob")
            .field("job_id", &self.job_id)
            .field("dut", &self.dut)
            .field("standard", &self.standard)
            .finish_non_exhaustive()
    }
}

/// The service's answer for one job.
#[derive(Clone, Debug)]
pub struct VerdictOutcome {
    /// The job's correlation id.
    pub job_id: u64,
    /// The job's DUT id.
    pub dut: u32,
    /// The job's standard name.
    pub standard: String,
    /// Attempts the job took (1 on the clean path).
    pub attempts: u32,
    /// `true` when at least one attempt panicked and was supervised
    /// (the result below is then either a retried clean verdict or a
    /// typed [`BistError::WorkerPanic`]).
    pub recovered_panic: bool,
    /// The verdict, or the typed failure.
    pub result: Result<BistReport, BistError>,
}

/// The persistent verdict worker pool.
///
/// ```ignore
/// let mut service = VerdictService::try_start(ServiceConfig::paper_default())?;
/// let jobs = try_campaign_jobs(&Deployment::builtin_five(), &library, &duts)?;
/// let outcomes = service.try_run_all(jobs)?;
/// service.shutdown();
/// ```
pub struct VerdictService {
    jobs_tx: Option<SyncSender<VerdictJob>>,
    results_rx: Receiver<VerdictOutcome>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    in_flight: usize,
}

impl VerdictService {
    /// Spawns the worker pool. Fails fast with
    /// [`BistError::InvalidConfig`] on a zero queue depth.
    pub fn try_start(cfg: ServiceConfig) -> Result<Self, BistError> {
        if cfg.queue_depth == 0 {
            return Err(BistError::InvalidConfig {
                reason: "verdict service queue depth must be at least 1".into(),
            });
        }
        let workers = cfg.resolved_workers();
        let (jobs_tx, jobs_rx) = sync_channel::<VerdictJob>(cfg.queue_depth);
        let (results_tx, results_rx) = channel::<VerdictOutcome>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let jobs_rx = Arc::clone(&jobs_rx);
            let results_tx: Sender<VerdictOutcome> = results_tx.clone();
            let max_retries = cfg.max_retries;
            handles.push(std::thread::spawn(move || {
                // The worker's scratch arena lives as long as the
                // pool: repeated verdicts reuse its grid, stream and
                // scan buffers instead of reallocating per job.
                let mut scratch = BistScratch::new();
                loop {
                    // Take the next job, releasing the receiver lock
                    // before the (long) verdict runs.
                    let job = match lock_unpoisoned(&jobs_rx).recv() {
                        Ok(job) => job,
                        Err(_) => break, // queue closed: shut down
                    };
                    let (attempts, recovered_panic, result) =
                        run_job(&job, max_retries, &mut scratch);
                    let outcome = VerdictOutcome {
                        job_id: job.job_id,
                        dut: job.dut,
                        standard: job.standard,
                        attempts,
                        recovered_panic,
                        result,
                    };
                    if results_tx.send(outcome).is_err() {
                        break; // collector hung up: shut down
                    }
                }
            }));
        }
        Ok(VerdictService {
            jobs_tx: Some(jobs_tx),
            results_rx,
            handles,
            workers,
            in_flight: 0,
        })
    }

    /// The pool's worker thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs submitted but not yet collected.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Enqueues one job, **blocking** while the bounded queue is full
    /// (backpressure — the job is never dropped). Fails only when the
    /// whole pool is gone.
    pub fn try_submit(&mut self, job: VerdictJob) -> Result<(), BistError> {
        let Some(tx) = self.jobs_tx.as_ref() else {
            return Err(BistError::InvalidConfig {
                reason: "verdict service is shut down".into(),
            });
        };
        tx.send(job).map_err(|_| BistError::WorkerPanic {
            detail: "verdict service worker pool is gone (all workers exited)".into(),
        })?;
        self.in_flight += 1;
        Ok(())
    }

    /// Blocks for the next completed outcome (any job order — workers
    /// finish as they finish).
    pub fn try_collect(&mut self) -> Result<VerdictOutcome, BistError> {
        if self.in_flight == 0 {
            return Err(BistError::InvalidConfig {
                reason: "no verdict jobs in flight".into(),
            });
        }
        let outcome = self.results_rx.recv().map_err(|_| BistError::WorkerPanic {
            detail: "verdict service worker pool is gone (all workers exited)".into(),
        })?;
        self.in_flight -= 1;
        Ok(outcome)
    }

    /// Submits every job and collects every outcome, returned sorted
    /// by `job_id`. Per-job failures are values inside
    /// [`VerdictOutcome::result`]; the `Err` arm here means the pool
    /// itself died.
    pub fn try_run_all(&mut self, jobs: Vec<VerdictJob>) -> Result<Vec<VerdictOutcome>, BistError> {
        let n = jobs.len();
        let mut outcomes = Vec::with_capacity(n);
        // Submission blocks on the bounded queue while workers drain
        // it; the unbounded results channel keeps workers from ever
        // blocking on the other side, so this cannot deadlock.
        for job in jobs {
            self.try_submit(job)?;
        }
        for _ in 0..n {
            outcomes.push(self.try_collect()?);
        }
        outcomes.sort_by_key(|o| o.job_id);
        Ok(outcomes)
    }

    /// Closes the queue and joins every worker. Outstanding jobs are
    /// finished first (workers drain the queue before seeing the
    /// close); their outcomes are discarded — collect before shutting
    /// down if they matter.
    pub fn shutdown(mut self) {
        self.jobs_tx = None; // close the queue: workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for VerdictService {
    fn drop(&mut self) {
        // Mirror `shutdown` for the early-return/test paths: close
        // the queue and reap the threads so no worker outlives the
        // handle.
        self.jobs_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one job on the calling worker thread: supervised
/// (`catch_unwind`), with in-place retries for panicked or transient
/// attempts. Returns `(attempts, saw_panic, result)`.
fn run_job(
    job: &VerdictJob,
    max_retries: u32,
    scratch: &mut BistScratch,
) -> (u32, bool, Result<BistReport, BistError>) {
    let mut attempts = 0u32;
    let mut saw_panic = false;
    loop {
        attempts += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if chaos::take_job_panic() {
                // Deliberate mid-job death: exercises the pool's
                // supervision exactly where a real fault would land.
                // analysis: allow(naked-panic) — chaos fault injection for the supervision tests
                panic!("chaos: injected verdict worker panic (job {})", job.job_id);
            }
            BistEngine::new(job.config.clone()).try_run_with(
                &job.stimulus,
                &job.mask,
                job.reference.as_ref(),
                scratch,
            )
        }));
        match attempt {
            Ok(Ok(report)) => return (attempts, saw_panic, Ok(report)),
            Ok(Err(e)) => {
                if e.is_transient() && attempts <= max_retries {
                    continue;
                }
                return (attempts, saw_panic, Err(e));
            }
            Err(payload) => {
                saw_panic = true;
                if attempts <= max_retries {
                    continue; // re-run the job in place ("requeue once")
                }
                let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                return (
                    attempts,
                    saw_panic,
                    Err(BistError::WorkerPanic {
                        detail: format!("verdict worker panicked: {detail}"),
                    }),
                );
            }
        }
    }
}

/// Lock a mutex, recovering from poisoning: the protected receiver is
/// valid in any state a panicking holder can leave it in (worker
/// panics are caught before they can unwind through the lock, but the
/// pool must not deadlock even if that invariant slips).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One DUT position on the line: its payload seed and its impairment
/// state (the thing the verdict is supposed to catch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DutSpec {
    /// DUT id, carried into every outcome.
    pub dut: u32,
    /// PRBS seed for the DUT's payload stimulus.
    pub payload_seed: u64,
    /// Tx impairments this DUT exhibits.
    pub impairments: TxImpairments,
}

impl DutSpec {
    /// A healthy DUT with typical (in-spec) impairments.
    pub fn nominal(dut: u32, payload_seed: u64) -> Self {
        DutSpec {
            dut,
            payload_seed,
            impairments: TxImpairments::typical(),
        }
    }

    /// Overrides the DUT's impairment state.
    pub fn with_impairments(mut self, impairments: TxImpairments) -> Self {
        self.impairments = impairments;
        self
    }
}

/// Builds the (standard × carrier × DUT) job matrix for the service:
/// per deployment, one wideband skew calibration (the estimate is a
/// hardware property shared by every DUT stimulus the front end
/// captures), then one job per DUT with the deployment's mask and a
/// payload stimulus shaped at the standard's symbol rate.
///
/// Campaign jobs force `stream_workers = 1`: with the service
/// sharding whole jobs across its persistent workers, nesting a
/// scoped producer pool inside each verdict would only oversubscribe
/// the cores.
pub fn try_campaign_jobs(
    deployments: &[Deployment],
    library: &MaskLibrary,
    duts: &[DutSpec],
) -> Result<Vec<VerdictJob>, BistError> {
    let mut jobs = Vec::with_capacity(deployments.len() * duts.len());
    let mut job_id = 0u64;
    for dep in deployments {
        let Some(standard) = library.get(&dep.standard) else {
            return Err(BistError::UnknownStandard {
                name: dep.standard.clone(),
                known: library.names().map(str::to_string).collect(),
            });
        };
        let base = dep.try_bist_config()?.with_stream_workers(1);
        let span = (base.fast_start as f64 + dep.fast_len as f64) / CAMPAIGN_B * 1.2;
        let cal_syms = ((span * CALIBRATION_SYMBOL_RATE) as usize + 30).max(96);
        let cal_bb = ShapedBaseband::qpsk_prbs(CALIBRATION_SYMBOL_RATE, 0.5, 12, cal_syms, 0xACE1);
        let burst = HomodyneTx::builder(cal_bb, dep.carrier_hz)
            .impairments(TxImpairments::typical())
            .build();
        let est = BistEngine::new(base.clone()).try_calibrate_skew(&burst.rf_output())?;
        let cfg = base.with_calibrated_skew(est.delay);
        for dut in duts {
            let n_sym = ((span * standard.symbol_rate) as usize + 30).max(96);
            let bb = ShapedBaseband::qpsk_prbs(
                standard.symbol_rate,
                standard.rolloff,
                12,
                n_sym,
                dut.payload_seed,
            );
            let tx = HomodyneTx::builder(bb, dep.carrier_hz)
                .impairments(dut.impairments)
                .build();
            jobs.push(VerdictJob {
                job_id,
                dut: dut.dut,
                standard: dep.standard.clone(),
                config: cfg.clone(),
                mask: standard.mask.clone(),
                stimulus: Arc::new(tx.rf_output()),
                reference: None,
            });
            job_id += 1;
        }
    }
    Ok(jobs)
}

/// Fault-injection hooks for the chaos test suite. Not part of the
/// public API contract; an armed panic fires at the top of the next
/// job attempt (across all workers), exercising the pool's
/// `catch_unwind` supervision and the in-place retry path.
#[doc(hidden)]
pub mod chaos {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static JOB_PANICS: AtomicUsize = AtomicUsize::new(0);

    /// Arm the next `n` job attempts (across all workers and
    /// services) to panic. `0` disarms.
    pub fn arm_job_panics(n: usize) {
        JOB_PANICS.store(n, Ordering::SeqCst);
    }

    /// Consume one armed panic, if any.
    pub(super) fn take_job_panic() -> bool {
        JOB_PANICS
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_queue_depth_is_rejected() {
        let err = VerdictService::try_start(ServiceConfig::paper_default().with_queue_depth(0))
            .err()
            .map(|e| e.to_string())
            .unwrap_or_default();
        assert!(err.contains("queue depth"), "{err}");
    }

    #[test]
    fn config_resolves_workers() {
        let cfg = ServiceConfig::paper_default();
        assert!(cfg.resolved_workers() >= 1);
        assert_eq!(cfg.with_workers(3).resolved_workers(), 3);
    }

    #[test]
    fn collect_without_submissions_is_a_typed_error() {
        let mut svc = VerdictService::try_start(ServiceConfig::paper_default().with_workers(1))
            .expect("start");
        let err = svc.try_collect().expect_err("nothing in flight");
        assert!(err.to_string().contains("in flight"), "{err}");
        svc.shutdown();
    }

    #[test]
    fn unknown_standard_is_rejected_when_building_jobs() {
        let library = MaskLibrary::builtin();
        let mut dep = Deployment::builtin_five().remove(0);
        dep.standard = "dvb-t2".into();
        let err = try_campaign_jobs(&[dep], &library, &[DutSpec::nominal(0, 1)])
            .expect_err("unknown standard");
        assert!(matches!(err, BistError::UnknownStandard { .. }), "{err}");
    }

    #[test]
    fn empty_dut_list_yields_no_jobs() {
        let library = MaskLibrary::builtin();
        let deps = vec![Deployment::builtin_five().remove(1)];
        let jobs = try_campaign_jobs(&deps, &library, &[]).expect("no DUTs is fine");
        assert!(jobs.is_empty());
    }
}
