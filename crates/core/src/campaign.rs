//! Monte-Carlo fault-coverage campaign: the "how good is this BIST"
//! measurement the paper only samples.
//!
//! The DATE 2014 strategy exists to catch out-of-spec transmitters,
//! so its figure of merit is not any single verdict but the
//! *detection-coverage / false-alarm matrix*: across every supported
//! standard, over independent payload realizations and clock-jitter
//! profiles, which injected faults does the pipeline flag and how
//! often does it condemn a healthy unit? This module sweeps
//! [`standard_fault_set`] (plus the healthy baseline) through
//! [`BistEngine::run_with`] on every [`MaskLibrary`] standard and
//! accumulates exactly that matrix.
//!
//! Each deployment calibrates the sampler skew once on a wideband
//! burst ([`BistEngine::calibrate_skew`]) and reuses the estimate for
//! every per-standard verdict — the fix for the narrowband trap where
//! a GSM-like stimulus leaves the LMS ~170 ps off while the mask
//! still passes. Disable [`CampaignConfig::wideband_calibration`] to
//! reproduce the broken per-run behavior.
//!
//! A fault counts as *detected* when the overall verdict fails
//! (mask, skew gate or noise figure) **or** the golden-waveform
//! deviation Δε exceeds [`CampaignConfig::eps_ratio`] times the
//! healthy baseline of the same trial — the complementary in-band
//! check the emission mask cannot see (IQ imbalance, carrier
//! feed-through stay inside the occupied band).

use crate::bist::{BistConfig, BistEngine, BistScratch};
use crate::mask::MaskLibrary;
use rfbist_converter::bptiadc::BpTiadcConfig;
use rfbist_converter::clock::JitterModel;
use rfbist_rfchain::faults::{gross_fault_set, standard_fault_set, Fault};
use rfbist_rfchain::impairments::TxImpairments;
use rfbist_rfchain::txchain::HomodyneTx;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::dualrate::DualRateConfig;
use rfbist_sampling::kohlenberg::optimal_delay;
use rfbist_signal::baseband::ShapedBaseband;
use std::fmt::Write as _;

/// Fixed fast-channel rate shared by every deployment, Hz (the
/// flexibility claim: hardware never retunes).
pub const CAMPAIGN_B: f64 = 90e6;
/// Fixed slow-channel rate, Hz.
pub const CAMPAIGN_B1: f64 = 45e6;

/// Wideband calibration-burst symbol rate (the paper's Section V
/// stimulus): fast enough to make the dual-rate cost surface steep at
/// every deployment carrier.
pub const CALIBRATION_SYMBOL_RATE: f64 = 10e6;

/// One per-standard deployment row: the carrier the standard occupies
/// and the analysis grid meeting its resolution-bandwidth
/// requirement. Hardware (the two ADC rates) is shared across rows —
/// only software retunes.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Name of a [`MaskLibrary`] standard.
    pub standard: String,
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Dense reconstruction grid rate for PSD estimation, Hz.
    pub grid_rate: f64,
    /// Analysis grid length in samples.
    pub grid_len: usize,
    /// Fast-channel capture length in pairs.
    pub fast_len: usize,
    /// Slow-channel capture length in pairs.
    pub slow_len: usize,
}

impl Deployment {
    /// The five builtin-library deployments of the multistandard
    /// sweep: GSM-shaped narrowband at VHF/UHF through a 20 Msym/s
    /// wideband carrier at 2.85 GHz, all on the same fixed-rate
    /// BP-TIADC.
    pub fn builtin_five() -> Vec<Deployment> {
        let row = |standard: &str,
                   carrier_hz: f64,
                   grid_rate: f64,
                   grid_len: usize,
                   fast_len: usize,
                   slow_len: usize| Deployment {
            standard: standard.to_string(),
            carrier_hz,
            grid_rate,
            grid_len,
            fast_len,
            slow_len,
        };
        vec![
            // the 100-kHz-scale mask offsets need a ~70 kHz RBW: the
            // grid slows to 300 MHz over 8192 points (27 µs capture)
            row("gsm-like-270k", 100e6, 300e6, 8192, 2600, 1400),
            // the paper's Section V configuration, unchanged
            row("qpsk-10msym-srrc0.5", 1e9, 4e9, 12288, 380, 200),
            row("wcdma-like-3g84", 1.55e9, 4e9, 12288, 380, 200),
            // the two thin-margin standards (healthy units clear their
            // masks by under 1 dB) take a doubled grid and capture: the
            // extra Welch segments halve the per-realization margin
            // swing that would otherwise condemn healthy units
            row("lte5-like", 2.175e9, 5e9, 32768, 760, 400),
            row("wb-20msym-srrc0.35", 2.85e9, 6.5e9, 32768, 760, 400),
        ]
    }

    /// The DCDE delay target for this deployment's band,
    /// `D = 1/(4 fc)` via [`optimal_delay`].
    pub fn delay_target(&self) -> f64 {
        optimal_delay(BandSpec::centered(self.carrier_hz, CAMPAIGN_B))
    }

    /// The per-standard engine configuration: same hardware, new
    /// software plan (DCDE target, capture lengths, analysis grid,
    /// LMS seed point).
    ///
    /// # Panics
    ///
    /// Panics if the carrier violates the eq. 9 identifiability
    /// conditions for the fixed rate pair.
    pub fn bist_config(&self) -> BistConfig {
        let d_target = self.delay_target();
        let dual = DualRateConfig::new(self.carrier_hz, CAMPAIGN_B, CAMPAIGN_B1, d_target)
            .expect("deployment carrier satisfies the eq. 9 identifiability conditions");
        let mut cfg = BistConfig::paper_default();
        cfg.dual = dual;
        cfg.frontend_fast = BpTiadcConfig::paper_section_v(dual.delay());
        cfg.frontend_slow = BpTiadcConfig::paper_section_v(dual.delay())
            .with_sample_rate(dual.slow_rate())
            .with_seed(0x51DE);
        cfg.fast_len = self.fast_len;
        cfg.slow_len = self.slow_len;
        cfg.grid_rate = self.grid_rate;
        cfg.grid_len = self.grid_len;
        cfg.lms_initial = 0.55 * d_target;
        cfg
    }

    /// Capture span in seconds (start margin plus length at the fast
    /// rate, with 20 % slack) — what the stimulus must cover.
    fn capture_span(&self, fast_start: i64) -> f64 {
        (fast_start as f64 + self.fast_len as f64) / CAMPAIGN_B * 1.2
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Deployments to score, one per standard.
    pub deployments: Vec<Deployment>,
    /// Fault corpus injected on every standard.
    pub faults: Vec<Fault>,
    /// Independent Monte-Carlo trials per (standard, jitter) cell:
    /// each trial draws a fresh PRBS payload.
    pub trials: usize,
    /// Seed the per-trial payload seeds derive from.
    pub base_seed: u64,
    /// Clock-jitter profiles (RMS seconds) applied to both front-end
    /// channels — the impairment sweep axis.
    pub jitter_rms: Vec<f64>,
    /// Golden-comparison detection threshold: a run is flagged when
    /// Δε exceeds this multiple of the same trial's healthy baseline.
    pub eps_ratio: f64,
    /// Calibrate skew once per (deployment, jitter) on a wideband
    /// burst and reuse it for every verdict (the narrowband fix).
    /// When `false`, every run re-estimates skew from its own
    /// stimulus — the pre-fix behavior, kept for A/B measurement.
    pub wideband_calibration: bool,
}

impl CampaignConfig {
    /// The full campaign: all five standards, the whole graded fault
    /// catalogue, two payload trials, two in-spec clock profiles (a
    /// quiet 1.5 ps DCDE and the paper's 3 ps). Jitter beyond spec is
    /// not a healthy condition — at 2+ GHz carriers a 6 ps clock
    /// raises the sampled noise floor ∝ (2π·fc·σ)² straight through
    /// the thin LTE/wideband masks, which is a clock *fault*, not a
    /// false alarm.
    pub fn paper_default() -> Self {
        CampaignConfig {
            deployments: Deployment::builtin_five(),
            faults: standard_fault_set(),
            trials: 2,
            base_seed: 0xACE1,
            jitter_rms: vec![1.5e-12, 3e-12],
            eps_ratio: 2.0,
            wideband_calibration: true,
        }
    }

    /// CI-sized smoke campaign: still all five standards (the
    /// acceptance claim is per-standard), but only the gross fault
    /// grades, one trial, the paper's jitter profile.
    pub fn quick() -> Self {
        CampaignConfig {
            faults: gross_fault_set(),
            trials: 1,
            jitter_rms: vec![3e-12],
            ..Self::paper_default()
        }
    }

    /// The PRBS payload seed of trial `trial` — a Weyl sequence off
    /// [`CampaignConfig::base_seed`], so trials are decorrelated but
    /// the whole campaign stays reproducible from one number.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        self.base_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial as u64 + 1))
    }
}

/// Per-fault tally within one standard.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// Runs performed.
    pub runs: usize,
    /// Runs flagged by the overall verdict alone (mask, skew gate or
    /// noise figure).
    pub verdict_detected: usize,
    /// Runs flagged by verdict *or* golden comparison — the
    /// campaign's detection criterion.
    pub detected: usize,
}

/// Accumulated results for one standard.
#[derive(Clone, Debug)]
pub struct StandardOutcome {
    /// Library standard name.
    pub standard: String,
    /// Healthy-baseline runs performed.
    pub healthy_runs: usize,
    /// Healthy runs the verdict condemned (should be zero).
    pub false_alarms: usize,
    /// Per-fault tallies, one per corpus entry.
    pub per_fault: Vec<FaultOutcome>,
    /// Worst `|D̂ − D|` across every run of this standard, seconds.
    pub worst_skew_error: f64,
}

impl StandardOutcome {
    /// Total fault-injected runs.
    pub fn fault_runs(&self) -> usize {
        self.per_fault.iter().map(|f| f.runs).sum()
    }

    /// Total detected fault runs.
    pub fn detected(&self) -> usize {
        self.per_fault.iter().map(|f| f.detected).sum()
    }

    /// Detected fraction of fault runs (1.0 when no fault ran).
    pub fn detection_rate(&self) -> f64 {
        let runs = self.fault_runs();
        if runs == 0 {
            1.0
        } else {
            self.detected() as f64 / runs as f64
        }
    }

    /// False-alarm fraction of healthy runs (0.0 when none ran).
    pub fn false_alarm_rate(&self) -> f64 {
        if self.healthy_runs == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.healthy_runs as f64
        }
    }

    /// Detection rate restricted to `subset` (e.g.
    /// [`gross_fault_set`]); corpus entries outside the subset are
    /// ignored.
    pub fn detection_rate_for(&self, subset: &[Fault]) -> f64 {
        let (mut runs, mut detected) = (0usize, 0usize);
        for f in &self.per_fault {
            if subset.contains(&f.fault) {
                runs += f.runs;
                detected += f.detected;
            }
        }
        if runs == 0 {
            1.0
        } else {
            detected as f64 / runs as f64
        }
    }
}

/// The campaign's product: the per-standard detection-coverage /
/// false-alarm matrix.
#[derive(Clone, Debug)]
pub struct CoverageMatrix {
    /// One outcome per scored standard.
    pub standards: Vec<StandardOutcome>,
}

impl CoverageMatrix {
    /// Detected fraction over every fault run of every standard.
    pub fn overall_detection_rate(&self) -> f64 {
        let runs: usize = self.standards.iter().map(|s| s.fault_runs()).sum();
        let det: usize = self.standards.iter().map(|s| s.detected()).sum();
        if runs == 0 {
            1.0
        } else {
            det as f64 / runs as f64
        }
    }

    /// Minimum over standards of the gross-subset detection rate —
    /// the acceptance headline (must be 1.0).
    pub fn gross_detection_rate(&self) -> f64 {
        let gross = gross_fault_set();
        self.standards
            .iter()
            .map(|s| s.detection_rate_for(&gross))
            .fold(1.0, f64::min)
    }

    /// False alarms over every healthy run of every standard.
    pub fn overall_false_alarm_rate(&self) -> f64 {
        let runs: usize = self.standards.iter().map(|s| s.healthy_runs).sum();
        let fa: usize = self.standards.iter().map(|s| s.false_alarms).sum();
        if runs == 0 {
            0.0
        } else {
            fa as f64 / runs as f64
        }
    }

    /// Worst `|D̂ − D|` across the whole campaign, seconds.
    pub fn worst_skew_error(&self) -> f64 {
        self.standards
            .iter()
            .map(|s| s.worst_skew_error)
            .fold(0.0, f64::max)
    }

    /// Serializes the matrix as a self-describing JSON document (the
    /// workspace vendors no serde; the schema is hand-written like the
    /// perf harness's).
    pub fn to_json(&self) -> String {
        let mut standards = String::new();
        for (i, s) in self.standards.iter().enumerate() {
            let mut faults = String::new();
            for (j, f) in s.per_fault.iter().enumerate() {
                let _ = write!(
                    faults,
                    "{}\n      {{\"fault\": \"{:?}\", \"id\": \"{}\", \"runs\": {}, \
                     \"verdict_detected\": {}, \"detected\": {}}}",
                    if j == 0 { "" } else { "," },
                    f.fault.kind,
                    f.fault.kind.id(),
                    f.runs,
                    f.verdict_detected,
                    f.detected
                );
            }
            let _ = write!(
                standards,
                "{}\n    {{\"standard\": \"{}\", \"healthy_runs\": {}, \"false_alarms\": {}, \
                 \"fault_runs\": {}, \"detected\": {}, \"detection_rate\": {:.4}, \
                 \"false_alarm_rate\": {:.4}, \"worst_skew_error_ps\": {:.3}, \"faults\": [{}\n    ]}}",
                if i == 0 { "" } else { "," },
                s.standard,
                s.healthy_runs,
                s.false_alarms,
                s.fault_runs(),
                s.detected(),
                s.detection_rate(),
                s.false_alarm_rate(),
                s.worst_skew_error * 1e12,
                faults
            );
        }
        format!(
            "{{\n  \"schema\": \"rfbist-fault-coverage/v1\",\n  \
             \"overall_detection_rate\": {:.4},\n  \
             \"gross_detection_rate\": {:.4},\n  \
             \"overall_false_alarm_rate\": {:.4},\n  \
             \"worst_skew_error_ps\": {:.3},\n  \
             \"standards\": [{}\n  ]\n}}\n",
            self.overall_detection_rate(),
            self.gross_detection_rate(),
            self.overall_false_alarm_rate(),
            self.worst_skew_error() * 1e12,
            standards
        )
    }
}

/// Builds the stimulus baseband for one deployment: enough symbols at
/// the given rate to cover the capture span.
fn stimulus_baseband(span: f64, symbol_rate: f64, rolloff: f64, seed: u64) -> ShapedBaseband {
    let n_sym = ((span * symbol_rate) as usize + 30).max(96);
    ShapedBaseband::qpsk_prbs(symbol_rate, rolloff, 12, n_sym, seed)
}

/// Runs the campaign and returns the coverage matrix.
///
/// For each (deployment, jitter-profile) cell: optionally calibrate
/// the sampler skew on a wideband burst, then for each trial run the
/// healthy baseline followed by every corpus fault through the same
/// engine and scratch, scoring detections against the trial's own
/// healthy Δε floor.
///
/// # Panics
///
/// Panics if the configuration is empty (no deployments, faults,
/// trials or jitter profiles), if a deployment names an unknown
/// standard, or if `eps_ratio` is not a finite value above 1.
pub fn run_campaign(cfg: &CampaignConfig) -> CoverageMatrix {
    assert!(!cfg.deployments.is_empty(), "no deployments to score");
    assert!(!cfg.faults.is_empty(), "empty fault corpus");
    assert!(cfg.trials > 0, "at least one trial required");
    assert!(!cfg.jitter_rms.is_empty(), "no jitter profiles");
    assert!(
        cfg.eps_ratio.is_finite() && cfg.eps_ratio > 1.0,
        "eps ratio must be a finite multiplier above 1"
    );
    let library = MaskLibrary::builtin();

    let standards = cfg
        .deployments
        .iter()
        .map(|dep| {
            let standard = library
                .get(&dep.standard)
                .unwrap_or_else(|| panic!("unknown standard `{}`", dep.standard));
            let mut outcome = StandardOutcome {
                standard: dep.standard.clone(),
                healthy_runs: 0,
                false_alarms: 0,
                per_fault: cfg
                    .faults
                    .iter()
                    .map(|&fault| FaultOutcome {
                        fault,
                        runs: 0,
                        verdict_detected: 0,
                        detected: 0,
                    })
                    .collect(),
                worst_skew_error: 0.0,
            };
            let mut scratch = BistScratch::new();

            for &jitter in &cfg.jitter_rms {
                let mut base = dep.bist_config();
                base.frontend_fast.jitter = JitterModel::Gaussian { rms: jitter };
                base.frontend_slow.jitter = JitterModel::Gaussian { rms: jitter };
                let span = dep.capture_span(base.fast_start);

                let engine = if cfg.wideband_calibration {
                    // one wideband burst per cell: skew is a hardware
                    // property, so its estimate carries across every
                    // stimulus this front-end configuration captures
                    let burst_bb =
                        stimulus_baseband(span, CALIBRATION_SYMBOL_RATE, 0.5, cfg.base_seed);
                    let burst = HomodyneTx::builder(burst_bb, dep.carrier_hz)
                        .impairments(TxImpairments::typical())
                        .build();
                    let cal = BistEngine::new(base.clone());
                    let est = cal.calibrate_skew(&burst.rf_output());
                    BistEngine::new(base.clone().with_calibrated_skew(est.delay))
                } else {
                    BistEngine::new(base.clone())
                };

                for trial in 0..cfg.trials {
                    let bb = stimulus_baseband(
                        span,
                        standard.symbol_rate,
                        standard.rolloff,
                        cfg.trial_seed(trial),
                    );

                    let healthy_tx = HomodyneTx::builder(bb.clone(), dep.carrier_hz)
                        .impairments(TxImpairments::typical())
                        .build();
                    let healthy = engine.run_with(
                        &healthy_tx.rf_output(),
                        &standard.mask,
                        Some(&healthy_tx.ideal_rf_output()),
                        &mut scratch,
                    );
                    outcome.healthy_runs += 1;
                    if !healthy.passed() {
                        outcome.false_alarms += 1;
                    }
                    outcome.worst_skew_error =
                        outcome.worst_skew_error.max(healthy.skew_abs_error());
                    let healthy_eps = healthy
                        .reconstruction_error
                        .expect("reference supplied for every campaign run");

                    for (slot, &fault) in cfg.faults.iter().enumerate() {
                        let tx = HomodyneTx::builder(bb.clone(), dep.carrier_hz)
                            .impairments(fault.inject(TxImpairments::typical()))
                            .build();
                        let report = engine.run_with(
                            &tx.rf_output(),
                            &standard.mask,
                            Some(&tx.ideal_rf_output()),
                            &mut scratch,
                        );
                        let eps = report
                            .reconstruction_error
                            .expect("reference supplied for every campaign run");
                        let verdict_flag = !report.passed();
                        let eps_flag = eps > cfg.eps_ratio * healthy_eps;
                        let tally = &mut outcome.per_fault[slot];
                        tally.runs += 1;
                        tally.verdict_detected += usize::from(verdict_flag);
                        tally.detected += usize::from(verdict_flag || eps_flag);
                        outcome.worst_skew_error =
                            outcome.worst_skew_error.max(report.skew_abs_error());
                    }
                }
            }
            outcome
        })
        .collect();

    CoverageMatrix { standards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_rfchain::faults::FaultKind;

    fn one_cell_config() -> CampaignConfig {
        // the paper standard only, two decisive faults, one trial —
        // small enough for a unit test, real enough to exercise every
        // code path including calibration
        CampaignConfig {
            deployments: vec![Deployment::builtin_five().remove(1)],
            faults: vec![
                Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.25 }),
                Fault::new(FaultKind::IqGainImbalance { gain_db: 3.0 }),
            ],
            trials: 1,
            base_seed: 0xACE1,
            jitter_rms: vec![3e-12],
            eps_ratio: 3.0,
            wideband_calibration: true,
        }
    }

    #[test]
    fn single_cell_campaign_detects_and_stays_quiet() {
        let matrix = run_campaign(&one_cell_config());
        assert_eq!(matrix.standards.len(), 1);
        let s = &matrix.standards[0];
        assert_eq!(s.standard, "qpsk-10msym-srrc0.5");
        assert_eq!(s.healthy_runs, 1);
        assert_eq!(s.false_alarms, 0, "healthy unit condemned");
        assert_eq!(s.fault_runs(), 2);
        assert_eq!(s.detected(), 2, "both gross faults must be flagged");
        // compression fails the verdict outright; IQ imbalance hides
        // in-band and needs the golden comparison
        assert_eq!(s.per_fault[0].verdict_detected, 1);
        assert_eq!(s.per_fault[0].detected, 1);
        assert_eq!(s.per_fault[1].detected, 1);
        // calibrated skew stays at the sub-2.5 ps hardware floor
        assert!(
            s.worst_skew_error < 2.5e-12,
            "skew error {} ps",
            s.worst_skew_error * 1e12
        );
        assert_eq!(matrix.overall_false_alarm_rate(), 0.0);
        assert_eq!(matrix.overall_detection_rate(), 1.0);
    }

    #[test]
    fn matrix_json_is_self_describing() {
        let matrix = CoverageMatrix {
            standards: vec![StandardOutcome {
                standard: "qpsk-10msym-srrc0.5".into(),
                healthy_runs: 2,
                false_alarms: 0,
                per_fault: vec![FaultOutcome {
                    fault: Fault::new(FaultKind::PaGainShift { delta_db: -3.0 }),
                    runs: 2,
                    verdict_detected: 1,
                    detected: 2,
                }],
                worst_skew_error: 1.1e-12,
            }],
        };
        let json = matrix.to_json();
        assert!(
            json.contains("\"schema\": \"rfbist-fault-coverage/v1\""),
            "{json}"
        );
        assert!(
            json.contains("\"overall_detection_rate\": 1.0000"),
            "{json}"
        );
        assert!(json.contains("\"false_alarm_rate\": 0.0000"), "{json}");
        assert!(json.contains("\"id\": \"pa-gain-shift\""), "{json}");
        assert!(json.contains("\"worst_skew_error_ps\": 1.100"), "{json}");
        // parity of braces/brackets as a cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn deployment_rows_name_library_standards() {
        let library = MaskLibrary::builtin();
        let deployments = Deployment::builtin_five();
        assert_eq!(deployments.len(), library.len());
        for dep in &deployments {
            assert!(
                library.get(&dep.standard).is_some(),
                "unknown standard {}",
                dep.standard
            );
            // the configured engine must construct (identifiability)
            let cfg = dep.bist_config();
            assert_eq!(cfg.grid_len, dep.grid_len);
            assert!(dep.delay_target() > 0.0);
        }
    }

    #[test]
    fn gross_subset_rate_ignores_other_corpus_entries() {
        let gross = gross_fault_set();
        let outcome = StandardOutcome {
            standard: "x".into(),
            healthy_runs: 1,
            false_alarms: 0,
            per_fault: vec![
                // a missed *marginal* fault must not drag the gross rate
                FaultOutcome {
                    fault: Fault::new(FaultKind::PaGainShift { delta_db: -1.0 }),
                    runs: 1,
                    verdict_detected: 0,
                    detected: 0,
                },
                FaultOutcome {
                    fault: gross[0],
                    runs: 1,
                    verdict_detected: 1,
                    detected: 1,
                },
            ],
            worst_skew_error: 0.0,
        };
        assert!(outcome.detection_rate() < 1.0);
        assert_eq!(outcome.detection_rate_for(&gross), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown standard")]
    fn unknown_standard_fails_fast() {
        let mut cfg = one_cell_config();
        cfg.deployments[0].standard = "no-such-standard".into();
        let _ = run_campaign(&cfg);
    }
}
