//! Monte-Carlo fault-coverage campaign: the "how good is this BIST"
//! measurement the paper only samples.
//!
//! The DATE 2014 strategy exists to catch out-of-spec transmitters,
//! so its figure of merit is not any single verdict but the
//! *detection-coverage / false-alarm matrix*: across every supported
//! standard, over independent payload realizations and clock-jitter
//! profiles, which injected faults does the pipeline flag and how
//! often does it condemn a healthy unit? This module sweeps
//! [`standard_fault_set`] (plus the healthy baseline) through
//! [`BistEngine::run_with`] on every [`MaskLibrary`] standard and
//! accumulates exactly that matrix.
//!
//! Each deployment calibrates the sampler skew once on a wideband
//! burst ([`BistEngine::calibrate_skew`]) and reuses the estimate for
//! every per-standard verdict — the fix for the narrowband trap where
//! a GSM-like stimulus leaves the LMS ~170 ps off while the mask
//! still passes. Disable [`CampaignConfig::wideband_calibration`] to
//! reproduce the broken per-run behavior.
//!
//! A fault counts as *detected* when the overall verdict fails
//! (mask, skew gate or noise figure) **or** the golden-waveform
//! deviation Δε exceeds [`CampaignConfig::eps_ratio`] times the
//! healthy baseline of the same trial — the complementary in-band
//! check the emission mask cannot see (IQ imbalance, carrier
//! feed-through stay inside the occupied band).

use crate::bist::{BistConfig, BistEngine, BistScratch};
use crate::error::BistError;
use crate::mask::{MaskLibrary, MaskStandard};
use rfbist_converter::bptiadc::BpTiadcConfig;
use rfbist_converter::clock::JitterModel;
use rfbist_rfchain::faults::{gross_fault_set, standard_fault_set, Fault};
use rfbist_rfchain::impairments::TxImpairments;
use rfbist_rfchain::txchain::HomodyneTx;
use rfbist_sampling::band::BandSpec;
use rfbist_sampling::dualrate::DualRateConfig;
use rfbist_sampling::kohlenberg::optimal_delay;
use rfbist_signal::baseband::ShapedBaseband;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::thread;
use std::time::Duration;

/// Fixed fast-channel rate shared by every deployment, Hz (the
/// flexibility claim: hardware never retunes).
pub const CAMPAIGN_B: f64 = 90e6;
/// Fixed slow-channel rate, Hz.
pub const CAMPAIGN_B1: f64 = 45e6;

/// Wideband calibration-burst symbol rate (the paper's Section V
/// stimulus): fast enough to make the dual-rate cost surface steep at
/// every deployment carrier.
pub const CALIBRATION_SYMBOL_RATE: f64 = 10e6;

/// One per-standard deployment row: the carrier the standard occupies
/// and the analysis grid meeting its resolution-bandwidth
/// requirement. Hardware (the two ADC rates) is shared across rows —
/// only software retunes.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Name of a [`MaskLibrary`] standard.
    pub standard: String,
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Dense reconstruction grid rate for PSD estimation, Hz.
    pub grid_rate: f64,
    /// Analysis grid length in samples.
    pub grid_len: usize,
    /// Fast-channel capture length in pairs.
    pub fast_len: usize,
    /// Slow-channel capture length in pairs.
    pub slow_len: usize,
}

impl Deployment {
    /// The five builtin-library deployments of the multistandard
    /// sweep: GSM-shaped narrowband at VHF/UHF through a 20 Msym/s
    /// wideband carrier at 2.85 GHz, all on the same fixed-rate
    /// BP-TIADC.
    pub fn builtin_five() -> Vec<Deployment> {
        let row = |standard: &str,
                   carrier_hz: f64,
                   grid_rate: f64,
                   grid_len: usize,
                   fast_len: usize,
                   slow_len: usize| Deployment {
            standard: standard.to_string(),
            carrier_hz,
            grid_rate,
            grid_len,
            fast_len,
            slow_len,
        };
        vec![
            // the 100-kHz-scale mask offsets need a ~70 kHz RBW: the
            // grid slows to 300 MHz over 8192 points (27 µs capture)
            row("gsm-like-270k", 100e6, 300e6, 8192, 2600, 1400),
            // the paper's Section V configuration, unchanged
            row("qpsk-10msym-srrc0.5", 1e9, 4e9, 12288, 380, 200),
            row("wcdma-like-3g84", 1.55e9, 4e9, 12288, 380, 200),
            // the two thin-margin standards (healthy units clear their
            // masks by under 1 dB) take a doubled grid and capture: the
            // extra Welch segments halve the per-realization margin
            // swing that would otherwise condemn healthy units
            row("lte5-like", 2.175e9, 5e9, 32768, 760, 400),
            row("wb-20msym-srrc0.35", 2.85e9, 6.5e9, 32768, 760, 400),
        ]
    }

    /// The DCDE delay target for this deployment's band,
    /// `D = 1/(4 fc)` via [`optimal_delay`].
    pub fn delay_target(&self) -> f64 {
        optimal_delay(BandSpec::centered(self.carrier_hz, CAMPAIGN_B))
    }

    /// The per-standard engine configuration: same hardware, new
    /// software plan (DCDE target, capture lengths, analysis grid,
    /// LMS seed point).
    ///
    /// # Panics
    ///
    /// Panics if the carrier violates the eq. 9 identifiability
    /// conditions for the fixed rate pair.
    pub fn bist_config(&self) -> BistConfig {
        self.try_bist_config().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`bist_config`](Self::bist_config) returning a typed
    /// [`BistError::InvalidConfig`] when the carrier violates the
    /// eq. 9 identifiability conditions for the fixed rate pair.
    pub fn try_bist_config(&self) -> Result<BistConfig, BistError> {
        let d_target = self.delay_target();
        let dual = DualRateConfig::new(self.carrier_hz, CAMPAIGN_B, CAMPAIGN_B1, d_target)
            .map_err(|e| BistError::InvalidConfig {
                reason: format!(
                    "deployment `{}` violates the eq. 9 identifiability conditions: {e}",
                    self.standard
                ),
            })?;
        let mut cfg = BistConfig::paper_default();
        cfg.dual = dual;
        cfg.frontend_fast = BpTiadcConfig::paper_section_v(dual.delay());
        cfg.frontend_slow = BpTiadcConfig::paper_section_v(dual.delay())
            .with_sample_rate(dual.slow_rate())
            .with_seed(0x51DE);
        cfg.fast_len = self.fast_len;
        cfg.slow_len = self.slow_len;
        cfg.grid_rate = self.grid_rate;
        cfg.grid_len = self.grid_len;
        cfg.lms_initial = 0.55 * d_target;
        Ok(cfg)
    }

    /// Capture span in seconds (start margin plus length at the fast
    /// rate, with 20 % slack) — what the stimulus must cover.
    fn capture_span(&self, fast_start: i64) -> f64 {
        (fast_start as f64 + self.fast_len as f64) / CAMPAIGN_B * 1.2
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Deployments to score, one per standard.
    pub deployments: Vec<Deployment>,
    /// Fault corpus injected on every standard.
    pub faults: Vec<Fault>,
    /// Independent Monte-Carlo trials per (standard, jitter) cell:
    /// each trial draws a fresh PRBS payload.
    pub trials: usize,
    /// Seed the per-trial payload seeds derive from.
    pub base_seed: u64,
    /// Clock-jitter profiles (RMS seconds) applied to both front-end
    /// channels — the impairment sweep axis.
    pub jitter_rms: Vec<f64>,
    /// Golden-comparison detection threshold: a run is flagged when
    /// Δε exceeds this multiple of the same trial's healthy baseline.
    pub eps_ratio: f64,
    /// Calibrate skew once per (deployment, jitter) on a wideband
    /// burst and reuse it for every verdict (the narrowband fix).
    /// When `false`, every run re-estimates skew from its own
    /// stimulus — the pre-fix behavior, kept for A/B measurement.
    pub wideband_calibration: bool,
}

impl CampaignConfig {
    /// The full campaign: all five standards, the whole graded fault
    /// catalogue, two payload trials, two in-spec clock profiles (a
    /// quiet 1.5 ps DCDE and the paper's 3 ps). Jitter beyond spec is
    /// not a healthy condition — at 2+ GHz carriers a 6 ps clock
    /// raises the sampled noise floor ∝ (2π·fc·σ)² straight through
    /// the thin LTE/wideband masks, which is a clock *fault*, not a
    /// false alarm.
    pub fn paper_default() -> Self {
        CampaignConfig {
            deployments: Deployment::builtin_five(),
            faults: standard_fault_set(),
            trials: 2,
            base_seed: 0xACE1,
            jitter_rms: vec![1.5e-12, 3e-12],
            eps_ratio: 2.0,
            wideband_calibration: true,
        }
    }

    /// CI-sized smoke campaign: still all five standards (the
    /// acceptance claim is per-standard), but only the gross fault
    /// grades, one trial, the paper's jitter profile.
    pub fn quick() -> Self {
        CampaignConfig {
            faults: gross_fault_set(),
            trials: 1,
            jitter_rms: vec![3e-12],
            ..Self::paper_default()
        }
    }

    /// The PRBS payload seed of trial `trial` — a Weyl sequence off
    /// [`CampaignConfig::base_seed`], so trials are decorrelated but
    /// the whole campaign stays reproducible from one number.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        self.base_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial as u64 + 1))
    }
}

/// Per-fault tally within one standard.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// Runs performed.
    pub runs: usize,
    /// Runs flagged by the overall verdict alone (mask, skew gate or
    /// noise figure).
    pub verdict_detected: usize,
    /// Runs flagged by verdict *or* golden comparison — the
    /// campaign's detection criterion.
    pub detected: usize,
}

/// Accumulated results for one standard.
#[derive(Clone, Debug)]
pub struct StandardOutcome {
    /// Library standard name.
    pub standard: String,
    /// Healthy-baseline runs performed.
    pub healthy_runs: usize,
    /// Healthy runs the verdict condemned (should be zero).
    pub false_alarms: usize,
    /// Runs (healthy or fault-injected) that produced no verdict at
    /// all — a typed [`BistError`] that persisted through the bounded
    /// per-trial retries. Errored runs are excluded from the
    /// detection and false-alarm denominators but surfaced here so a
    /// degraded campaign cannot masquerade as a clean one.
    pub errored_runs: usize,
    /// Per-fault tallies, one per corpus entry.
    pub per_fault: Vec<FaultOutcome>,
    /// Worst `|D̂ − D|` across every run of this standard, seconds.
    pub worst_skew_error: f64,
}

impl StandardOutcome {
    /// Total fault-injected runs.
    pub fn fault_runs(&self) -> usize {
        self.per_fault.iter().map(|f| f.runs).sum()
    }

    /// Total detected fault runs.
    pub fn detected(&self) -> usize {
        self.per_fault.iter().map(|f| f.detected).sum()
    }

    /// Detected fraction of fault runs (1.0 when no fault ran).
    pub fn detection_rate(&self) -> f64 {
        let runs = self.fault_runs();
        if runs == 0 {
            1.0
        } else {
            self.detected() as f64 / runs as f64
        }
    }

    /// False-alarm fraction of healthy runs (0.0 when none ran).
    pub fn false_alarm_rate(&self) -> f64 {
        if self.healthy_runs == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.healthy_runs as f64
        }
    }

    /// Detection rate restricted to `subset` (e.g.
    /// [`gross_fault_set`]); corpus entries outside the subset are
    /// ignored.
    pub fn detection_rate_for(&self, subset: &[Fault]) -> f64 {
        let (mut runs, mut detected) = (0usize, 0usize);
        for f in &self.per_fault {
            if subset.contains(&f.fault) {
                runs += f.runs;
                detected += f.detected;
            }
        }
        if runs == 0 {
            1.0
        } else {
            detected as f64 / runs as f64
        }
    }
}

/// The campaign's product: the per-standard detection-coverage /
/// false-alarm matrix.
#[derive(Clone, Debug)]
pub struct CoverageMatrix {
    /// One outcome per scored standard.
    pub standards: Vec<StandardOutcome>,
}

impl CoverageMatrix {
    /// Detected fraction over every fault run of every standard.
    pub fn overall_detection_rate(&self) -> f64 {
        let runs: usize = self.standards.iter().map(|s| s.fault_runs()).sum();
        let det: usize = self.standards.iter().map(|s| s.detected()).sum();
        if runs == 0 {
            1.0
        } else {
            det as f64 / runs as f64
        }
    }

    /// Minimum over standards of the gross-subset detection rate —
    /// the acceptance headline (must be 1.0).
    pub fn gross_detection_rate(&self) -> f64 {
        let gross = gross_fault_set();
        self.standards
            .iter()
            .map(|s| s.detection_rate_for(&gross))
            .fold(1.0, f64::min)
    }

    /// False alarms over every healthy run of every standard.
    pub fn overall_false_alarm_rate(&self) -> f64 {
        let runs: usize = self.standards.iter().map(|s| s.healthy_runs).sum();
        let fa: usize = self.standards.iter().map(|s| s.false_alarms).sum();
        if runs == 0 {
            0.0
        } else {
            fa as f64 / runs as f64
        }
    }

    /// Worst `|D̂ − D|` across the whole campaign, seconds.
    pub fn worst_skew_error(&self) -> f64 {
        self.standards
            .iter()
            .map(|s| s.worst_skew_error)
            .fold(0.0, f64::max)
    }

    /// Serializes the matrix as a self-describing JSON document (the
    /// workspace vendors no serde; the schema is hand-written like the
    /// perf harness's).
    pub fn to_json(&self) -> String {
        let mut standards = String::new();
        for (i, s) in self.standards.iter().enumerate() {
            let mut faults = String::new();
            for (j, f) in s.per_fault.iter().enumerate() {
                let _ = write!(
                    faults,
                    "{}\n      {{\"fault\": \"{:?}\", \"id\": \"{}\", \"runs\": {}, \
                     \"verdict_detected\": {}, \"detected\": {}}}",
                    if j == 0 { "" } else { "," },
                    f.fault.kind,
                    f.fault.kind.id(),
                    f.runs,
                    f.verdict_detected,
                    f.detected
                );
            }
            let _ = write!(
                standards,
                "{}\n    {{\"standard\": \"{}\", \"healthy_runs\": {}, \"false_alarms\": {}, \
                 \"errored_runs\": {}, \
                 \"fault_runs\": {}, \"detected\": {}, \"detection_rate\": {:.4}, \
                 \"false_alarm_rate\": {:.4}, \"worst_skew_error_ps\": {:.3}, \"faults\": [{}\n    ]}}",
                if i == 0 { "" } else { "," },
                s.standard,
                s.healthy_runs,
                s.false_alarms,
                s.errored_runs,
                s.fault_runs(),
                s.detected(),
                s.detection_rate(),
                s.false_alarm_rate(),
                s.worst_skew_error * 1e12,
                faults
            );
        }
        format!(
            "{{\n  \"schema\": \"rfbist-fault-coverage/v2\",\n  \
             \"overall_detection_rate\": {:.4},\n  \
             \"gross_detection_rate\": {:.4},\n  \
             \"overall_false_alarm_rate\": {:.4},\n  \
             \"worst_skew_error_ps\": {:.3},\n  \
             \"standards\": [{}\n  ]\n}}\n",
            self.overall_detection_rate(),
            self.gross_detection_rate(),
            self.overall_false_alarm_rate(),
            self.worst_skew_error() * 1e12,
            standards
        )
    }
}

/// Builds the stimulus baseband for one deployment: enough symbols at
/// the given rate to cover the capture span.
fn stimulus_baseband(span: f64, symbol_rate: f64, rolloff: f64, seed: u64) -> ShapedBaseband {
    let n_sym = ((span * symbol_rate) as usize + 30).max(96);
    ShapedBaseband::qpsk_prbs(symbol_rate, rolloff, 12, n_sym, seed)
}

/// Progress report handed to the supervision observer after every
/// completed (deployment, jitter) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignProgress {
    /// Cells completed so far (including restored ones at resume).
    pub completed_cells: usize,
    /// Total cells in the campaign
    /// (`deployments.len() × jitter_rms.len()`).
    pub total_cells: usize,
    /// Standard of the cell that just completed.
    pub standard: String,
    /// Jitter profile of the cell that just completed, RMS seconds.
    pub jitter_rms: f64,
}

/// Per-fault tally of one completed campaign cell, positionally
/// matching the configured corpus (ids may repeat across a corpus, so
/// position — not id — is the join key; the id is stored for sanity
/// checking at resume).
#[derive(Clone, Debug, PartialEq)]
struct CellFault {
    id: String,
    runs: usize,
    verdict_detected: usize,
    detected: usize,
}

/// One completed (deployment, jitter) cell — the checkpoint unit.
#[derive(Clone, Debug, PartialEq)]
struct CellRecord {
    standard: String,
    jitter_rms: f64,
    healthy_runs: usize,
    false_alarms: usize,
    errored_runs: usize,
    worst_skew_error: f64,
    faults: Vec<CellFault>,
}

/// Runs `op` with bounded backoff: transient failures (per
/// [`BistError::is_transient`]) are retried up to twice, sleeping
/// 10 ms then 40 ms; anything else — or a third transient failure —
/// is returned.
fn with_retry<T>(mut op: impl FnMut() -> Result<T, BistError>) -> Result<T, BistError> {
    const BACKOFF_MS: [u64; 2] = [10, 40];
    let mut attempt = 0usize;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < BACKOFF_MS.len() => {
                thread::sleep(Duration::from_millis(BACKOFF_MS[attempt]));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Validates a campaign configuration up front, so every rejection —
/// empty axes, a bad threshold, an unknown standard, a carrier
/// violating eq. 9 — happens before the first capture, not an hour
/// into the sweep.
fn validate(cfg: &CampaignConfig, library: &MaskLibrary) -> Result<(), BistError> {
    let invalid = |reason: &str| {
        Err(BistError::InvalidConfig {
            reason: reason.to_string(),
        })
    };
    if cfg.deployments.is_empty() {
        return invalid("no deployments to score");
    }
    if cfg.faults.is_empty() {
        return invalid("empty fault corpus");
    }
    if cfg.trials == 0 {
        return invalid("at least one trial required");
    }
    if cfg.jitter_rms.is_empty() {
        return invalid("no jitter profiles");
    }
    if !(cfg.eps_ratio.is_finite() && cfg.eps_ratio > 1.0) {
        return invalid("eps ratio must be a finite multiplier above 1");
    }
    for dep in &cfg.deployments {
        if library.get(&dep.standard).is_none() {
            let mut known: Vec<String> = library.names().map(str::to_string).collect();
            known.sort();
            return Err(BistError::UnknownStandard {
                name: dep.standard.clone(),
                known,
            });
        }
        dep.try_bist_config()?;
    }
    Ok(())
}

/// Runs one (deployment, jitter) cell. Infallible by design: a run
/// whose typed error survives the bounded retries is tallied under
/// `errored_runs` instead of aborting the campaign — a robustness
/// campaign must outlive the failures it measures.
fn run_cell(
    cfg: &CampaignConfig,
    dep: &Deployment,
    standard: &MaskStandard,
    jitter: f64,
) -> CellRecord {
    let mut record = CellRecord {
        standard: dep.standard.clone(),
        jitter_rms: jitter,
        healthy_runs: 0,
        false_alarms: 0,
        errored_runs: 0,
        worst_skew_error: 0.0,
        faults: cfg
            .faults
            .iter()
            .map(|f| CellFault {
                id: f.kind.id().to_string(),
                runs: 0,
                verdict_detected: 0,
                detected: 0,
            })
            .collect(),
    };
    let mut scratch = BistScratch::new();

    let mut base = dep.bist_config();
    base.frontend_fast.jitter = JitterModel::Gaussian { rms: jitter };
    base.frontend_slow.jitter = JitterModel::Gaussian { rms: jitter };
    let span = dep.capture_span(base.fast_start);

    let engine = if cfg.wideband_calibration {
        // one wideband burst per cell: skew is a hardware property, so
        // its estimate carries across every stimulus this front-end
        // configuration captures
        let burst_bb = stimulus_baseband(span, CALIBRATION_SYMBOL_RATE, 0.5, cfg.base_seed);
        let burst = HomodyneTx::builder(burst_bb, dep.carrier_hz)
            .impairments(TxImpairments::typical())
            .build();
        let cal = BistEngine::new(base.clone());
        match with_retry(|| cal.try_calibrate_skew(&burst.rf_output())) {
            Ok(est) => BistEngine::new(base.clone().with_calibrated_skew(est.delay)),
            Err(_) => {
                // no skew estimate, no verdicts: the whole cell errors
                record.errored_runs = cfg.trials * (cfg.faults.len() + 1);
                return record;
            }
        }
    } else {
        BistEngine::new(base.clone())
    };

    for trial in 0..cfg.trials {
        let bb = stimulus_baseband(
            span,
            standard.symbol_rate,
            standard.rolloff,
            cfg.trial_seed(trial),
        );

        let healthy_tx = HomodyneTx::builder(bb.clone(), dep.carrier_hz)
            .impairments(TxImpairments::typical())
            .build();
        let healthy = match with_retry(|| {
            engine.try_run_with(
                &healthy_tx.rf_output(),
                &standard.mask,
                Some(&healthy_tx.ideal_rf_output()),
                &mut scratch,
            )
        }) {
            Ok(report) => report,
            Err(_) => {
                // without the healthy Δε floor the trial's fault runs
                // cannot be scored either: the whole trial errors
                record.errored_runs += cfg.faults.len() + 1;
                continue;
            }
        };
        record.healthy_runs += 1;
        if !healthy.passed() {
            record.false_alarms += 1;
        }
        record.worst_skew_error = record.worst_skew_error.max(healthy.skew_abs_error());
        let Some(healthy_eps) = healthy.reconstruction_error else {
            // a reference is supplied for every campaign run, so a
            // missing Δε means the run itself was unusable
            record.healthy_runs -= 1;
            record.errored_runs += cfg.faults.len() + 1;
            continue;
        };

        for (slot, &fault) in cfg.faults.iter().enumerate() {
            let tx = HomodyneTx::builder(bb.clone(), dep.carrier_hz)
                .impairments(fault.inject(TxImpairments::typical()))
                .build();
            let report = match with_retry(|| {
                engine.try_run_with(
                    &tx.rf_output(),
                    &standard.mask,
                    Some(&tx.ideal_rf_output()),
                    &mut scratch,
                )
            }) {
                Ok(report) => report,
                Err(_) => {
                    record.errored_runs += 1;
                    continue;
                }
            };
            let Some(eps) = report.reconstruction_error else {
                record.errored_runs += 1;
                continue;
            };
            let verdict_flag = !report.passed();
            let eps_flag = eps > cfg.eps_ratio * healthy_eps;
            let tally = &mut record.faults[slot];
            tally.runs += 1;
            tally.verdict_detected += usize::from(verdict_flag);
            tally.detected += usize::from(verdict_flag || eps_flag);
            record.worst_skew_error = record.worst_skew_error.max(report.skew_abs_error());
        }
    }
    record
}

/// Folds completed cell records (deployment-major, jitter-minor order)
/// into the per-standard coverage matrix. Integer tallies sum and the
/// worst skew error maxes, so a resumed campaign folds to exactly the
/// matrix an uninterrupted run would have produced.
fn fold_records(cfg: &CampaignConfig, records: &[CellRecord]) -> CoverageMatrix {
    let per_standard = cfg.jitter_rms.len();
    let standards = records
        .chunks(per_standard)
        .zip(&cfg.deployments)
        .map(|(chunk, dep)| {
            let mut outcome = StandardOutcome {
                standard: dep.standard.clone(),
                healthy_runs: 0,
                false_alarms: 0,
                errored_runs: 0,
                per_fault: cfg
                    .faults
                    .iter()
                    .map(|&fault| FaultOutcome {
                        fault,
                        runs: 0,
                        verdict_detected: 0,
                        detected: 0,
                    })
                    .collect(),
                worst_skew_error: 0.0,
            };
            for cell in chunk {
                outcome.healthy_runs += cell.healthy_runs;
                outcome.false_alarms += cell.false_alarms;
                outcome.errored_runs += cell.errored_runs;
                outcome.worst_skew_error = outcome.worst_skew_error.max(cell.worst_skew_error);
                for (slot, f) in cell.faults.iter().enumerate() {
                    let tally = &mut outcome.per_fault[slot];
                    tally.runs += f.runs;
                    tally.verdict_detected += f.verdict_detected;
                    tally.detected += f.detected;
                }
            }
            outcome
        })
        .collect();
    CoverageMatrix { standards }
}

/// A deterministic digest of everything that shapes the campaign's
/// cell sequence and arithmetic. A checkpoint written under one
/// fingerprint refuses to resume under another — resuming half a
/// campaign against different parameters would silently splice two
/// incomparable measurements.
fn config_fingerprint(cfg: &CampaignConfig) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "v1;seed={};trials={};eps={};cal={};jitter=",
        cfg.base_seed, cfg.trials, cfg.eps_ratio, cfg.wideband_calibration
    );
    for j in &cfg.jitter_rms {
        let _ = write!(s, "{j},");
    }
    let _ = write!(s, ";deployments=");
    for d in &cfg.deployments {
        let _ = write!(
            s,
            "{}:{}:{}:{}:{}:{}|",
            d.standard, d.carrier_hz, d.grid_rate, d.grid_len, d.fast_len, d.slow_len
        );
    }
    let _ = write!(s, ";faults=");
    for f in &cfg.faults {
        let _ = write!(s, "{:?}|", f.kind);
    }
    s
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the checkpoint: schema header, config fingerprint, and
/// one record per completed cell. Floats use Rust's shortest-exact
/// `{}` formatting, which `parse::<f64>()` round-trips bit-for-bit —
/// the property the resumed-equals-uninterrupted guarantee rests on.
fn checkpoint_json(fingerprint: &str, records: &[CellRecord]) -> String {
    let mut cells = String::new();
    for (i, c) in records.iter().enumerate() {
        let mut faults = String::new();
        for (j, f) in c.faults.iter().enumerate() {
            let _ = write!(
                faults,
                "{}{{\"id\": \"{}\", \"runs\": {}, \"verdict_detected\": {}, \"detected\": {}}}",
                if j == 0 { "" } else { ", " },
                json_escape(&f.id),
                f.runs,
                f.verdict_detected,
                f.detected
            );
        }
        let _ = write!(
            cells,
            "{}\n    {{\"standard\": \"{}\", \"jitter_rms\": {}, \"healthy_runs\": {}, \
             \"false_alarms\": {}, \"errored_runs\": {}, \"worst_skew_error\": {}, \
             \"faults\": [{}]}}",
            if i == 0 { "" } else { "," },
            json_escape(&c.standard),
            c.jitter_rms,
            c.healthy_runs,
            c.false_alarms,
            c.errored_runs,
            c.worst_skew_error,
            faults
        );
    }
    format!(
        "{{\n  \"schema\": \"{CHECKPOINT_SCHEMA}\",\n  \"fingerprint\": \"{}\",\n  \
         \"cells\": [{}\n  ]\n}}\n",
        json_escape(fingerprint),
        cells
    )
}

/// Checkpoint document schema identifier.
const CHECKPOINT_SCHEMA: &str = "rfbist-campaign-checkpoint/v1";

/// Atomically replaces the checkpoint file (write to a sibling temp
/// file, then rename): a kill mid-write leaves the previous complete
/// checkpoint, never a torn one.
fn write_checkpoint(
    path: &Path,
    fingerprint: &str,
    records: &[CellRecord],
) -> Result<(), BistError> {
    let doc = checkpoint_json(fingerprint, records);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, &doc).map_err(|e| BistError::Checkpoint {
        reason: format!("cannot write `{}`: {e}", tmp.display()),
    })?;
    fs::rename(&tmp, path).map_err(|e| BistError::Checkpoint {
        reason: format!("cannot move `{}` into place: {e}", tmp.display()),
    })?;
    Ok(())
}

/// Loads and validates a checkpoint against the running config:
/// schema, fingerprint, and that the stored cells form a *prefix* of
/// this campaign's cell sequence (position by position, including the
/// per-cell fault-corpus ids).
fn load_checkpoint(
    path: &Path,
    fingerprint: &str,
    cfg: &CampaignConfig,
) -> Result<Vec<CellRecord>, BistError> {
    let err = |reason: String| BistError::Checkpoint { reason };
    let text = fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read `{}`: {e}", path.display())))?;
    let doc = minijson::parse(&text).map_err(|e| err(format!("`{}`: {e}", path.display())))?;
    let schema = doc.get("schema").and_then(minijson::Value::as_str);
    if schema != Some(CHECKPOINT_SCHEMA) {
        return Err(err(format!(
            "`{}` is not a campaign checkpoint (schema {:?})",
            path.display(),
            schema
        )));
    }
    match doc.get("fingerprint").and_then(minijson::Value::as_str) {
        Some(f) if f == fingerprint => {}
        _ => {
            return Err(err(format!(
                "`{}` was written by a different campaign configuration — \
                 refusing to splice incomparable runs",
                path.display()
            )))
        }
    }
    let cells = doc
        .get("cells")
        .and_then(minijson::Value::as_arr)
        .ok_or_else(|| err(format!("`{}` has no cells array", path.display())))?;
    let total = cfg.deployments.len() * cfg.jitter_rms.len();
    if cells.len() > total {
        return Err(err(format!(
            "`{}` holds {} cells but the campaign only has {total}",
            path.display(),
            cells.len()
        )));
    }
    let expected_ids: Vec<&str> = cfg.faults.iter().map(|f| f.kind.id()).collect();
    let mut records = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let dep = &cfg.deployments[i / cfg.jitter_rms.len()];
        let jitter = cfg.jitter_rms[i % cfg.jitter_rms.len()];
        let field = |k: &str| {
            cell.get(k)
                .and_then(minijson::Value::as_f64)
                .ok_or_else(|| err(format!("cell {i} is missing numeric field `{k}`")))
        };
        let standard = cell
            .get("standard")
            .and_then(minijson::Value::as_str)
            .ok_or_else(|| err(format!("cell {i} is missing `standard`")))?;
        let jitter_rms = field("jitter_rms")?;
        if standard != dep.standard || jitter_rms != jitter {
            return Err(err(format!(
                "cell {i} is ({standard}, {jitter_rms} s) but this campaign's cell {i} \
                 is ({}, {jitter} s) — the checkpoint is not a prefix of this run",
                dep.standard
            )));
        }
        let faults = cell
            .get("faults")
            .and_then(minijson::Value::as_arr)
            .ok_or_else(|| err(format!("cell {i} has no faults array")))?;
        if faults.len() != expected_ids.len() {
            return Err(err(format!(
                "cell {i} tallies {} faults but the corpus has {}",
                faults.len(),
                expected_ids.len()
            )));
        }
        let mut cell_faults = Vec::with_capacity(faults.len());
        for (slot, f) in faults.iter().enumerate() {
            let id = f
                .get("id")
                .and_then(minijson::Value::as_str)
                .ok_or_else(|| err(format!("cell {i} fault {slot} is missing `id`")))?;
            if id != expected_ids[slot] {
                return Err(err(format!(
                    "cell {i} fault {slot} is `{id}` but the corpus has \
                     `{}` at that position",
                    expected_ids[slot]
                )));
            }
            let ffield = |k: &str| {
                f.get(k)
                    .and_then(minijson::Value::as_f64)
                    .ok_or_else(|| err(format!("cell {i} fault {slot} is missing `{k}`")))
            };
            cell_faults.push(CellFault {
                id: id.to_string(),
                runs: ffield("runs")? as usize,
                verdict_detected: ffield("verdict_detected")? as usize,
                detected: ffield("detected")? as usize,
            });
        }
        records.push(CellRecord {
            standard: standard.to_string(),
            jitter_rms,
            healthy_runs: field("healthy_runs")? as usize,
            false_alarms: field("false_alarms")? as usize,
            errored_runs: field("errored_runs")? as usize,
            worst_skew_error: field("worst_skew_error")?,
            faults: cell_faults,
        });
    }
    Ok(records)
}

/// Runs the campaign and returns the coverage matrix, or a typed
/// [`BistError`] when the configuration is invalid.
///
/// For each (deployment, jitter-profile) cell: optionally calibrate
/// the sampler skew on a wideband burst, then for each trial run the
/// healthy baseline followed by every corpus fault through the same
/// engine and scratch, scoring detections against the trial's own
/// healthy Δε floor. Per-run failures never abort the sweep — see
/// [`StandardOutcome::errored_runs`].
pub fn try_run_campaign(cfg: &CampaignConfig) -> Result<CoverageMatrix, BistError> {
    try_run_campaign_supervised(cfg, None, false, &mut |_| true)
}

/// The fully supervised campaign driver: optional checkpointing after
/// every completed cell, resume from a compatible checkpoint, and an
/// observer that can stop the sweep between cells.
///
/// - `checkpoint`: when `Some`, the partial cell sequence is
///   atomically rewritten to this path after every completed cell
///   (schema `rfbist-campaign-checkpoint/v1`).
/// - `resume`: when `true` and the checkpoint file exists, its cells
///   are restored (after schema/fingerprint/prefix validation) and
///   the sweep continues from the first missing cell. Restored cells
///   do not re-invoke the observer.
/// - `after_cell`: invoked after each newly computed cell (its
///   checkpoint already durable); returning `false` stops the sweep
///   with [`BistError::Interrupted`].
///
/// A resumed campaign folds to exactly the matrix the uninterrupted
/// run produces: cells are deterministic given the config, and the
/// checkpoint round-trips every tally bit-for-bit.
pub fn try_run_campaign_supervised(
    cfg: &CampaignConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    after_cell: &mut dyn FnMut(&CampaignProgress) -> bool,
) -> Result<CoverageMatrix, BistError> {
    let library = MaskLibrary::builtin();
    validate(cfg, &library)?;
    let fingerprint = config_fingerprint(cfg);
    let total_cells = cfg.deployments.len() * cfg.jitter_rms.len();

    let mut records: Vec<CellRecord> = match checkpoint {
        Some(path) if resume && path.exists() => load_checkpoint(path, &fingerprint, cfg)?,
        _ => Vec::new(),
    };

    for index in records.len()..total_cells {
        let dep = &cfg.deployments[index / cfg.jitter_rms.len()];
        let jitter = cfg.jitter_rms[index % cfg.jitter_rms.len()];
        let standard = match library.get(&dep.standard) {
            Some(s) => s,
            None => {
                // validate() above checked every deployment
                return Err(BistError::UnknownStandard {
                    name: dep.standard.clone(),
                    known: Vec::new(),
                });
            }
        };
        let record = run_cell(cfg, dep, standard, jitter);
        records.push(record);
        if let Some(path) = checkpoint {
            write_checkpoint(path, &fingerprint, &records)?;
        }
        let progress = CampaignProgress {
            completed_cells: records.len(),
            total_cells,
            standard: dep.standard.clone(),
            jitter_rms: jitter,
        };
        if !after_cell(&progress) {
            return Err(BistError::Interrupted {
                completed_cells: records.len(),
                total_cells,
            });
        }
    }

    Ok(fold_records(cfg, &records))
}

/// Runs the campaign and returns the coverage matrix.
///
/// Thin panicking wrapper over [`try_run_campaign`], kept for
/// call-site compatibility.
///
/// # Panics
///
/// Panics if the configuration is empty (no deployments, faults,
/// trials or jitter profiles), if a deployment names an unknown
/// standard, or if `eps_ratio` is not a finite value above 1.
pub fn run_campaign(cfg: &CampaignConfig) -> CoverageMatrix {
    try_run_campaign(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// A dependency-free recursive-descent JSON reader, just big enough
/// for the checkpoint documents this module writes (the workspace
/// vendors no serde). Numbers are lexed as text and converted with
/// `parse::<f64>()`, the exact inverse of the `{}` formatting the
/// writer uses.
mod minijson {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of document".to_string())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", c as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("malformed literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "malformed \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "malformed \\u escape".to_string())?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid \\u code point".to_string())?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // consume one UTF-8 scalar (multi-byte safe)
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "invalid number".to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("malformed number `{text}` at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_rfchain::faults::FaultKind;

    fn one_cell_config() -> CampaignConfig {
        // the paper standard only, two decisive faults, one trial —
        // small enough for a unit test, real enough to exercise every
        // code path including calibration
        CampaignConfig {
            deployments: vec![Deployment::builtin_five().remove(1)],
            faults: vec![
                Fault::new(FaultKind::PaEarlyCompression { v_sat_factor: 0.25 }),
                Fault::new(FaultKind::IqGainImbalance { gain_db: 3.0 }),
            ],
            trials: 1,
            base_seed: 0xACE1,
            jitter_rms: vec![3e-12],
            eps_ratio: 3.0,
            wideband_calibration: true,
        }
    }

    #[test]
    fn single_cell_campaign_detects_and_stays_quiet() {
        let matrix = run_campaign(&one_cell_config());
        assert_eq!(matrix.standards.len(), 1);
        let s = &matrix.standards[0];
        assert_eq!(s.standard, "qpsk-10msym-srrc0.5");
        assert_eq!(s.healthy_runs, 1);
        assert_eq!(s.false_alarms, 0, "healthy unit condemned");
        assert_eq!(s.fault_runs(), 2);
        assert_eq!(s.detected(), 2, "both gross faults must be flagged");
        // compression fails the verdict outright; IQ imbalance hides
        // in-band and needs the golden comparison
        assert_eq!(s.per_fault[0].verdict_detected, 1);
        assert_eq!(s.per_fault[0].detected, 1);
        assert_eq!(s.per_fault[1].detected, 1);
        // calibrated skew stays at the sub-2.5 ps hardware floor
        assert!(
            s.worst_skew_error < 2.5e-12,
            "skew error {} ps",
            s.worst_skew_error * 1e12
        );
        assert_eq!(matrix.overall_false_alarm_rate(), 0.0);
        assert_eq!(matrix.overall_detection_rate(), 1.0);
    }

    #[test]
    fn matrix_json_is_self_describing() {
        let matrix = CoverageMatrix {
            standards: vec![StandardOutcome {
                standard: "qpsk-10msym-srrc0.5".into(),
                healthy_runs: 2,
                false_alarms: 0,
                errored_runs: 0,
                per_fault: vec![FaultOutcome {
                    fault: Fault::new(FaultKind::PaGainShift { delta_db: -3.0 }),
                    runs: 2,
                    verdict_detected: 1,
                    detected: 2,
                }],
                worst_skew_error: 1.1e-12,
            }],
        };
        let json = matrix.to_json();
        assert!(
            json.contains("\"schema\": \"rfbist-fault-coverage/v2\""),
            "{json}"
        );
        assert!(json.contains("\"errored_runs\": 0"), "{json}");
        assert!(
            json.contains("\"overall_detection_rate\": 1.0000"),
            "{json}"
        );
        assert!(json.contains("\"false_alarm_rate\": 0.0000"), "{json}");
        assert!(json.contains("\"id\": \"pa-gain-shift\""), "{json}");
        assert!(json.contains("\"worst_skew_error_ps\": 1.100"), "{json}");
        // parity of braces/brackets as a cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn deployment_rows_name_library_standards() {
        let library = MaskLibrary::builtin();
        let deployments = Deployment::builtin_five();
        assert_eq!(deployments.len(), library.len());
        for dep in &deployments {
            assert!(
                library.get(&dep.standard).is_some(),
                "unknown standard {}",
                dep.standard
            );
            // the configured engine must construct (identifiability)
            let cfg = dep.bist_config();
            assert_eq!(cfg.grid_len, dep.grid_len);
            assert!(dep.delay_target() > 0.0);
        }
    }

    #[test]
    fn gross_subset_rate_ignores_other_corpus_entries() {
        let gross = gross_fault_set();
        let outcome = StandardOutcome {
            standard: "x".into(),
            healthy_runs: 1,
            false_alarms: 0,
            errored_runs: 0,
            per_fault: vec![
                // a missed *marginal* fault must not drag the gross rate
                FaultOutcome {
                    fault: Fault::new(FaultKind::PaGainShift { delta_db: -1.0 }),
                    runs: 1,
                    verdict_detected: 0,
                    detected: 0,
                },
                FaultOutcome {
                    fault: gross[0],
                    runs: 1,
                    verdict_detected: 1,
                    detected: 1,
                },
            ],
            worst_skew_error: 0.0,
        };
        assert!(outcome.detection_rate() < 1.0);
        assert_eq!(outcome.detection_rate_for(&gross), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown standard")]
    fn unknown_standard_fails_fast() {
        let mut cfg = one_cell_config();
        cfg.deployments[0].standard = "no-such-standard".into();
        let _ = run_campaign(&cfg);
    }

    #[test]
    fn unknown_standard_error_lists_known_names() {
        let mut cfg = one_cell_config();
        cfg.deployments[0].standard = "no-such-standard".into();
        match try_run_campaign(&cfg) {
            Err(BistError::UnknownStandard { name, known }) => {
                assert_eq!(name, "no-such-standard");
                assert!(
                    known.iter().any(|k| k == "qpsk-10msym-srrc0.5"),
                    "{known:?}"
                );
            }
            other => panic!("expected UnknownStandard, got {other:?}"),
        }
    }

    #[test]
    fn retry_helper_retries_transients_and_gives_up() {
        // two transient failures, then success
        let mut calls = 0usize;
        let out = with_retry(|| {
            calls += 1;
            if calls < 3 {
                Err(BistError::WorkerPanic {
                    detail: "injected".into(),
                })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        // a non-transient error is returned immediately
        let mut calls = 0usize;
        let out: Result<(), _> = with_retry(|| {
            calls += 1;
            Err(BistError::InvalidConfig {
                reason: "nope".into(),
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        // a persistent transient error exhausts the backoff schedule
        let mut calls = 0usize;
        let out: Result<(), _> = with_retry(|| {
            calls += 1;
            Err(BistError::WorkerPanic {
                detail: "stuck".into(),
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn minijson_round_trips_checkpoint_documents() {
        let records = vec![
            CellRecord {
                standard: "qpsk-10msym-srrc0.5".into(),
                jitter_rms: 3e-12,
                healthy_runs: 2,
                false_alarms: 0,
                errored_runs: 1,
                worst_skew_error: 1.234_567_890_123e-12,
                faults: vec![CellFault {
                    id: "pa-gain-shift".into(),
                    runs: 2,
                    verdict_detected: 1,
                    detected: 2,
                }],
            },
            CellRecord {
                standard: "wcdma-like-3g84".into(),
                jitter_rms: 1.5e-12,
                healthy_runs: 1,
                false_alarms: 1,
                errored_runs: 0,
                worst_skew_error: 0.0,
                faults: vec![CellFault {
                    id: "iq-gain-imbalance".into(),
                    runs: 1,
                    verdict_detected: 0,
                    detected: 1,
                }],
            },
        ];
        let doc = checkpoint_json("fp \"quoted\"\\backslash", &records);
        let parsed = minijson::parse(&doc).expect("parses");
        assert_eq!(
            parsed.get("schema").and_then(minijson::Value::as_str),
            Some(CHECKPOINT_SCHEMA)
        );
        assert_eq!(
            parsed.get("fingerprint").and_then(minijson::Value::as_str),
            Some("fp \"quoted\"\\backslash")
        );
        let cells = parsed
            .get("cells")
            .and_then(minijson::Value::as_arr)
            .expect("cells");
        assert_eq!(cells.len(), 2);
        // floats round-trip bit-exactly through {} + parse::<f64>()
        let skew = cells[0]
            .get("worst_skew_error")
            .and_then(minijson::Value::as_f64)
            .expect("skew");
        assert_eq!(skew.to_bits(), 1.234_567_890_123e-12f64.to_bits());
    }

    #[test]
    fn minijson_rejects_malformed_documents() {
        assert!(minijson::parse("{\"a\": }").is_err());
        assert!(minijson::parse("{\"a\": 1,}").is_err());
        assert!(minijson::parse("[1, 2").is_err());
        assert!(minijson::parse("{\"a\": 1} junk").is_err());
        assert!(minijson::parse("\"unterminated").is_err());
        assert!(minijson::parse("nul").is_err());
    }

    #[test]
    fn checkpoint_load_validates_prefix_and_fingerprint() {
        let cfg = one_cell_config();
        let fp = config_fingerprint(&cfg);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rfbist-ckpt-test-{}.json", std::process::id()));
        let records = vec![CellRecord {
            standard: cfg.deployments[0].standard.clone(),
            jitter_rms: cfg.jitter_rms[0],
            healthy_runs: 1,
            false_alarms: 0,
            errored_runs: 0,
            worst_skew_error: 2.5e-13,
            faults: cfg
                .faults
                .iter()
                .map(|f| CellFault {
                    id: f.kind.id().to_string(),
                    runs: 1,
                    verdict_detected: 1,
                    detected: 1,
                })
                .collect(),
        }];
        write_checkpoint(&path, &fp, &records).expect("write");
        let restored = load_checkpoint(&path, &fp, &cfg).expect("load");
        assert_eq!(restored, records);
        // wrong fingerprint (e.g. a different base seed) is refused
        let err = load_checkpoint(&path, "other", &cfg).unwrap_err();
        assert!(
            matches!(&err, BistError::Checkpoint { reason }
                if reason.contains("different campaign configuration")),
            "{err:?}"
        );
        // corruption is a typed error, not a panic
        std::fs::write(&path, "{\"schema\": \"wrong\"").expect("corrupt");
        assert!(matches!(
            load_checkpoint(&path, &fp, &cfg),
            Err(BistError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_configs_are_typed_up_front() {
        let reason_of = |cfg: &CampaignConfig| match try_run_campaign(cfg) {
            Err(BistError::InvalidConfig { reason }) => reason,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        let mut cfg = one_cell_config();
        cfg.deployments.clear();
        assert_eq!(reason_of(&cfg), "no deployments to score");
        let mut cfg = one_cell_config();
        cfg.faults.clear();
        assert_eq!(reason_of(&cfg), "empty fault corpus");
        let mut cfg = one_cell_config();
        cfg.trials = 0;
        assert_eq!(reason_of(&cfg), "at least one trial required");
        let mut cfg = one_cell_config();
        cfg.jitter_rms.clear();
        assert_eq!(reason_of(&cfg), "no jitter profiles");
        let mut cfg = one_cell_config();
        cfg.eps_ratio = f64::NAN;
        assert_eq!(
            reason_of(&cfg),
            "eps ratio must be a finite multiplier above 1"
        );
    }
}
