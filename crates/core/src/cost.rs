//! The dual-rate self-consistency cost function (paper eqs. 7–8).
//!
//! Two captures of the *same* transmitter output, taken at rates `B` and
//! `B1` with the same physical skew `D`, are each reconstructed assuming
//! a candidate `D̂`. The mean-squared disagreement between the two
//! reconstructions over a probe-time set `t`,
//!
//! ```text
//! ε(D̂) = (1/N) Σᵢ ( f^T_D̂(tᵢ) − f^{T1}_D̂(tᵢ) )²
//! ```
//!
//! vanishes only when `D̂ = D` (both reconstructions then equal the true
//! signal), and under the eq. (9) conditions has a *unique* minimum on
//! `]0, m[` — no reference signal required.

use crate::error::BistError;
use rfbist_dsp::window::Window;
use rfbist_math::rng::Randomizer;
use rfbist_sampling::dualrate::DualRateConfig;
use rfbist_sampling::gridplan::{GridScratch, PnbsGridPlan};
use rfbist_sampling::plan::{PnbsPlan, PnbsScratch};
use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};

/// The paper's probe-schedule reconstruction configuration (61 taps,
/// Kaiser β = 8), shared by the coverage-window computation and both
/// generated schedules so they can never drift apart.
const PAPER_PROBE_TAPS: usize = 61;
const PAPER_PROBE_WINDOW: Window = Window::Kaiser(8.0);

/// A bound cost function: captures + probe times + filter settings.
#[derive(Clone, Debug)]
pub struct DualRateCost {
    fast: NonuniformCapture,
    slow: NonuniformCapture,
    config: DualRateConfig,
    times: Vec<f64>,
    /// `Some((t0, step))` when `times` is the uniform grid
    /// `t0, t0 + step, …` — the schedule that routes every cost
    /// evaluation through the grid-aware reconstruction plan
    /// ([`PnbsGridPlan`]) instead of the per-point batch path.
    grid: Option<(f64, f64)>,
    num_taps: usize,
    window: Window,
}

impl DualRateCost {
    /// Builds the cost from explicit probe times.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty, if either capture's rate disagrees
    /// with `config`, or if any probe time falls outside both captures'
    /// reconstruction coverage (checked against the paper's 61-tap
    /// filter span).
    pub fn new(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        times: Vec<f64>,
        num_taps: usize,
        window: Window,
    ) -> Self {
        Self::try_new(fast, slow, config, times, num_taps, window).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`new`](Self::new) in typed form: every contract violation
    /// surfaces as [`BistError::InvalidConfig`] (with the same message
    /// the panicking constructor raises) instead of a panic.
    pub fn try_new(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        times: Vec<f64>,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, BistError> {
        if times.is_empty() {
            return Err(BistError::InvalidConfig {
                reason: "at least one probe time required".to_string(),
            });
        }
        if (1.0 / fast.period() - config.fast_rate()).abs() >= 1e-3 {
            return Err(BistError::InvalidConfig {
                reason: "fast capture rate disagrees with config".to_string(),
            });
        }
        if (1.0 / slow.period() - config.slow_rate()).abs() >= 1e-3 {
            return Err(BistError::InvalidConfig {
                reason: "slow capture rate disagrees with config".to_string(),
            });
        }
        let cost = DualRateCost {
            fast,
            slow,
            config,
            times,
            grid: None,
            num_taps,
            window,
        };
        // verify coverage with a representative (valid) delay
        let probe = cost.config.delay().min(cost.config.m_bound() * 0.5);
        let (fast_rec, slow_rec) = cost.reconstructors(probe);
        for &t in &cost.times {
            if fast_rec.try_reconstruct_at(&cost.fast, t).is_none() {
                return Err(BistError::InvalidConfig {
                    reason: format!("probe time {t:.3e} s outside fast-capture coverage"),
                });
            }
            if slow_rec.try_reconstruct_at(&cost.slow, t).is_none() {
                return Err(BistError::InvalidConfig {
                    reason: format!("probe time {t:.3e} s outside slow-capture coverage"),
                });
            }
        }
        Ok(cost)
    }

    /// The coverage check behind every probe schedule, in typed form:
    /// `Err` carries the same message the panicking constructors raise
    /// ("… capture too short" / "captures do not overlap in time"), so
    /// the engine's `try_*` paths can reject an undersized capture as
    /// a value before the cost is built.
    pub fn try_probe_window(
        fast: &NonuniformCapture,
        slow: &NonuniformCapture,
        config: &DualRateConfig,
    ) -> Result<(f64, f64), String> {
        let num_taps = PAPER_PROBE_TAPS;
        let window = PAPER_PROBE_WINDOW;
        let probe_delay = config.delay().min(config.m_bound() * 0.5);
        let fast_rec = PnbsReconstructor::new(config.fast_band(), probe_delay, num_taps, window)
            .map_err(|_| "valid probe delay".to_string())?;
        let slow_rec = PnbsReconstructor::new(config.slow_band(), probe_delay, num_taps, window)
            .map_err(|_| "valid probe delay".to_string())?;
        let (f_lo, f_hi) = fast_rec
            .coverage(fast)
            .ok_or("fast capture too short")
            .map_err(str::to_string)?;
        let (s_lo, s_hi) = slow_rec
            .coverage(slow)
            .ok_or("slow capture too short")
            .map_err(str::to_string)?;
        let lo = f_lo.max(s_lo);
        let hi = f_hi.min(s_hi);
        if hi <= lo {
            return Err("captures do not overlap in time".to_string());
        }
        Ok((lo, hi))
    }

    /// The paper's probe setup: `n` random times drawn uniformly from
    /// the intersection of both captures' coverage (the paper uses
    /// N = 300 over a 1230 ns window), 61-tap Kaiser reconstruction.
    pub fn paper_probes(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        n: usize,
        seed: u64,
    ) -> Self {
        Self::try_paper_probes(fast, slow, config, n, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`paper_probes`](Self::paper_probes) in typed form: an empty
    /// schedule or an undersized capture surfaces as a
    /// [`BistError`] (with the panicking constructor's message)
    /// instead of a panic.
    pub fn try_paper_probes(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        n: usize,
        seed: u64,
    ) -> Result<Self, BistError> {
        if n == 0 {
            return Err(BistError::InvalidConfig {
                reason: "at least one probe time required".to_string(),
            });
        }
        let (lo, hi) = Self::try_probe_window(&fast, &slow, &config)
            .map_err(|reason| BistError::CaptureTooShort { reason })?;
        let mut rng = Randomizer::from_seed(seed);
        let times = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Ok(DualRateCost {
            fast,
            slow,
            config,
            times,
            grid: None,
            num_taps: PAPER_PROBE_TAPS,
            window: PAPER_PROBE_WINDOW,
        })
    }

    /// Uniform-grid probe schedule: `n` probe times at the midpoints of
    /// a uniform subdivision of both captures' coverage intersection
    /// (so the singular coverage edges are never touched), 61-tap
    /// Kaiser reconstruction.
    ///
    /// Functionally interchangeable with
    /// [`paper_probes`](Self::paper_probes) — the cost keeps its unique
    /// minimum at the true delay — but the uniform spacing lets every
    /// evaluation reconstruct both captures through the grid-aware plan
    /// ([`PnbsGridPlan`]): per-tap rotors are reused *across* probe
    /// points instead of being re-seeded per point, which is where LMS
    /// descents and Fig. 5 sweeps spend their time.
    pub fn grid_probes(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        n: usize,
    ) -> Self {
        Self::try_grid_probes(fast, slow, config, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`grid_probes`](Self::grid_probes) in typed form: an empty
    /// schedule or an undersized capture surfaces as a
    /// [`BistError`] (with the panicking constructor's message)
    /// instead of a panic.
    pub fn try_grid_probes(
        fast: NonuniformCapture,
        slow: NonuniformCapture,
        config: DualRateConfig,
        n: usize,
    ) -> Result<Self, BistError> {
        if n == 0 {
            return Err(BistError::InvalidConfig {
                reason: "at least one probe time required".to_string(),
            });
        }
        let (lo, hi) = Self::try_probe_window(&fast, &slow, &config)
            .map_err(|reason| BistError::CaptureTooShort { reason })?;
        let step = (hi - lo) / n as f64;
        let t0 = lo + 0.5 * step;
        let times = (0..n).map(|i| t0 + i as f64 * step).collect();
        Ok(DualRateCost {
            fast,
            slow,
            config,
            times,
            grid: Some((t0, step)),
            num_taps: PAPER_PROBE_TAPS,
            window: PAPER_PROBE_WINDOW,
        })
    }

    /// `Some((t0, step))` when the probe times form a uniform grid (the
    /// [`grid_probes`](Self::grid_probes) schedule), enabling the
    /// grid-aware reconstruction path inside every evaluation.
    pub fn probe_grid(&self) -> Option<(f64, f64)> {
        self.grid
    }

    /// The dual-rate configuration.
    pub fn config(&self) -> &DualRateConfig {
        &self.config
    }

    /// The probe times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The fast-rate capture.
    pub fn fast_capture(&self) -> &NonuniformCapture {
        &self.fast
    }

    /// The slow-rate capture.
    pub fn slow_capture(&self) -> &NonuniformCapture {
        &self.slow
    }

    fn reconstructors(&self, d_hat: f64) -> (PnbsReconstructor, PnbsReconstructor) {
        (
            PnbsReconstructor::new_unchecked(
                self.config.fast_band(),
                d_hat,
                self.num_taps,
                self.window,
            ),
            PnbsReconstructor::new_unchecked(
                self.config.slow_band(),
                d_hat,
                self.num_taps,
                self.window,
            ),
        )
    }

    /// Evaluates `ε(D̂)` (paper eq. 8) through the planned batch path.
    ///
    /// Candidates are clamped into the open search interval `]0, m[`
    /// with a 0.1 ps margin, so optimizer overshoot cannot hit the
    /// kernel singularities at the interval ends.
    // analysis: allow(typed-error-parity) — cannot panic: candidates are clamped into ]0, m[ and the `::new` tokens the fixpoint matches are the plan/scratch constructors, not the panicking sibling `new`
    pub fn evaluate(&self, d_hat: f64) -> f64 {
        self.evaluator().eval(d_hat)
    }

    /// [`evaluate`](Self::evaluate) through the preserved direct
    /// reconstruction path (four kernel cosines + two Bessel series per
    /// tap) — the scalar baseline the perf-trajectory harness measures
    /// the planned engine against.
    pub fn evaluate_reference(&self, d_hat: f64) -> f64 {
        let d = self.clamp_candidate(d_hat);
        let (fast_rec, slow_rec) = self.reconstructors(d);
        let mut acc = 0.0;
        for &t in &self.times {
            let a = fast_rec.reconstruct_at_reference(&self.fast, t);
            let b = slow_rec.reconstruct_at_reference(&self.slow, t);
            acc += (a - b) * (a - b);
        }
        acc / self.times.len() as f64
    }

    /// The shared clamping contract of every evaluation path: the open
    /// search interval `]0, m[` with a 0.1 ps margin, so optimizer
    /// overshoot cannot hit the kernel singularities at the ends.
    fn clamp_candidate(&self, d_hat: f64) -> f64 {
        let margin = 0.1e-12;
        d_hat.clamp(margin, self.config.m_bound() - margin)
    }

    /// A reusable evaluator holding the scratch buffers one cost
    /// evaluation needs, so grid sweeps and LMS runs allocate once
    /// instead of per candidate.
    // analysis: allow(typed-error-parity) — cannot panic: candidates are clamped into ]0, m[ and the `::new` tokens the fixpoint matches are the plan/scratch constructors, not the panicking sibling `new`
    pub fn evaluator(&self) -> CostEvaluator<'_> {
        CostEvaluator {
            cost: self,
            fast_scratch: PnbsScratch::new(),
            slow_scratch: PnbsScratch::new(),
            fast_grid: GridScratch::new(),
            slow_grid: GridScratch::new(),
        }
    }

    /// Evaluates `ε(D̂)` for every candidate in `candidates`, reusing
    /// one pair of scratch buffers (and one plan per candidate) across
    /// the whole grid — the batched form of the Fig. 5 sweep.
    // analysis: allow(typed-error-parity) — cannot panic: candidates are clamped into ]0, m[ and the `::new` tokens the fixpoint matches are the plan/scratch constructors, not the panicking sibling `new`
    pub fn eval_grid(&self, candidates: &[f64]) -> Vec<f64> {
        self.evaluator().eval_grid(candidates)
    }

    /// The uniform grid of `n` candidates across `]0, m[` the paper's
    /// Fig. 5 sweeps (midpoint placement, so the singular endpoints are
    /// never touched).
    pub fn sweep_candidates(&self, n: usize) -> Vec<f64> {
        self.try_sweep_candidates(n)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`sweep_candidates`](Self::sweep_candidates) in typed form:
    /// returns [`BistError::InvalidConfig`] on a degenerate grid
    /// instead of panicking.
    pub fn try_sweep_candidates(&self, n: usize) -> Result<Vec<f64>, BistError> {
        if n < 2 {
            return Err(BistError::InvalidConfig {
                reason: "sweep needs at least two points".to_string(),
            });
        }
        let m = self.config.m_bound();
        Ok((0..n).map(|i| m * (i as f64 + 0.5) / n as f64).collect())
    }

    /// Evaluates the cost on a uniform grid of `n` candidates across
    /// `]0, m[` — the paper's Fig. 5 sweep.
    pub fn sweep(&self, n: usize) -> Vec<(f64, f64)> {
        self.try_sweep(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`sweep`](Self::sweep) in typed form: returns
    /// [`BistError::InvalidConfig`] on a degenerate grid instead of
    /// panicking.
    pub fn try_sweep(&self, n: usize) -> Result<Vec<(f64, f64)>, BistError> {
        let candidates = self.try_sweep_candidates(n)?;
        let values = self.eval_grid(&candidates);
        Ok(candidates.into_iter().zip(values).collect())
    }
}

/// A cost evaluator bound to one [`DualRateCost`], carrying the scratch
/// buffers the planned reconstruction engine reuses across candidates.
///
/// Built by [`DualRateCost::evaluator`]; the LMS estimator keeps one
/// for its whole descent, and [`DualRateCost::eval_grid`] keeps one for
/// a whole grid.
#[derive(Clone, Debug)]
pub struct CostEvaluator<'a> {
    cost: &'a DualRateCost,
    fast_scratch: PnbsScratch,
    slow_scratch: PnbsScratch,
    fast_grid: GridScratch,
    slow_grid: GridScratch,
}

impl CostEvaluator<'_> {
    /// Evaluates `ε(D̂)` with the same clamping contract as
    /// [`DualRateCost::evaluate`].
    ///
    /// Uniform-grid probe schedules
    /// ([`DualRateCost::grid_probes`]) dispatch to the grid-aware
    /// reconstruction plan; random schedules use the per-point batch
    /// path. Both agree with the direct reference to ≤ 1e-9.
    // analysis: allow(typed-error-parity) — cannot panic: candidates are clamped into ]0, m[ and the `::new` tokens the fixpoint matches are the plan/scratch constructors, not the panicking sibling `new`
    pub fn eval(&mut self, d_hat: f64) -> f64 {
        let cost = self.cost;
        let d = cost.clamp_candidate(d_hat);
        if let Some((t0, step)) = cost.grid {
            let n = cost.times.len();
            let fast_plan =
                PnbsGridPlan::new(cost.config.fast_band(), d, cost.num_taps, cost.window);
            let slow_plan =
                PnbsGridPlan::new(cost.config.slow_band(), d, cost.num_taps, cost.window);
            let a = fast_plan.reconstruct_grid(&cost.fast, t0, step, n, &mut self.fast_grid);
            let b = slow_plan.reconstruct_grid(&cost.slow, t0, step, n, &mut self.slow_grid);
            let acc: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            return acc / n as f64;
        }
        let fast_plan = PnbsPlan::new(cost.config.fast_band(), d, cost.num_taps, cost.window);
        let slow_plan = PnbsPlan::new(cost.config.slow_band(), d, cost.num_taps, cost.window);
        let a = fast_plan.reconstruct_batch(&cost.fast, &cost.times, &mut self.fast_scratch);
        let b = slow_plan.reconstruct_batch(&cost.slow, &cost.times, &mut self.slow_scratch);
        let acc: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        acc / cost.times.len() as f64
    }

    /// Evaluates a batch of candidates through this evaluator's scratch
    /// buffers — the entry point [`DualRateCost::eval_grid`] and the
    /// LMS gradient probes share, so plan setup and scratch reuse
    /// amortize across every candidate of a descent or sweep.
    // analysis: allow(typed-error-parity) — cannot panic: candidates are clamped into ]0, m[ and the `::new` tokens the fixpoint matches are the plan/scratch constructors, not the panicking sibling `new`
    pub fn eval_grid(&mut self, candidates: &[f64]) -> Vec<f64> {
        candidates.iter().map(|&d| self.eval(d)).collect()
    }

    /// The bound cost function.
    pub fn cost(&self) -> &DualRateCost {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
    use rfbist_signal::bandpass::BandpassSignal;
    use rfbist_signal::baseband::ShapedBaseband;

    fn paper_setup(ideal: bool) -> DualRateCost {
        let cfg = DualRateConfig::paper_section_v();
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 96, 0xACE1);
        let tx = BandpassSignal::new(bb, 1e9);
        let (fast_cfg, slow_cfg) = if ideal {
            (
                BpTiadcConfig::ideal(cfg.fast_rate(), cfg.delay()),
                BpTiadcConfig::ideal(cfg.slow_rate(), cfg.delay()),
            )
        } else {
            (
                BpTiadcConfig::paper_section_v(cfg.delay()),
                BpTiadcConfig::paper_section_v(cfg.delay())
                    .with_sample_rate(cfg.slow_rate())
                    .with_seed(0x51DE),
            )
        };
        let mut fast = BpTiadc::new(fast_cfg);
        let mut slow = BpTiadc::new(slow_cfg);
        DualRateCost::paper_probes(
            fast.capture(&tx, 80, 260),
            slow.capture(&tx, 40, 160),
            cfg,
            120,
            7,
        )
    }

    #[test]
    fn cost_vanishes_at_true_delay_ideal_frontend() {
        let cost = paper_setup(true);
        let at_truth = cost.evaluate(180e-12);
        let away = cost.evaluate(120e-12);
        assert!(at_truth < 1e-3, "cost at truth {at_truth}");
        assert!(away > 20.0 * at_truth, "contrast {away} vs {at_truth}");
    }

    #[test]
    fn minimum_is_at_true_delay() {
        let cost = paper_setup(true);
        let sweep = cost.sweep(60);
        let (d_min, _) = sweep
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (d_min - 180e-12).abs() < 5e-12,
            "minimum at {} ps",
            d_min * 1e12
        );
    }

    #[test]
    fn minimum_is_unique_on_the_interval() {
        // count strict local minima of the sweep — conditions (9) promise one
        let cost = paper_setup(true);
        let sweep = cost.sweep(80);
        let mut minima = 0;
        for w in sweep.windows(3) {
            if w[1].1 < w[0].1 && w[1].1 < w[2].1 {
                minima += 1;
            }
        }
        assert_eq!(minima, 1, "expected exactly one local minimum");
    }

    #[test]
    fn noisy_frontend_keeps_minimum_near_truth() {
        let cost = paper_setup(false);
        let sweep = cost.sweep(60);
        let (d_min, _) = sweep
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (d_min - 180e-12).abs() < 10e-12,
            "minimum at {} ps",
            d_min * 1e12
        );
    }

    #[test]
    fn cost_is_finite_across_search_interval() {
        let cost = paper_setup(true);
        for (d, v) in cost.sweep(40) {
            assert!(v.is_finite(), "cost at {} ps is {v}", d * 1e12);
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn clamping_protects_interval_ends() {
        let cost = paper_setup(true);
        // m and 0 are outside ]0, m[; evaluation must still be finite
        assert!(cost.evaluate(0.0).is_finite());
        assert!(cost.evaluate(cost.config().m_bound()).is_finite());
        assert!(cost.evaluate(-5e-12).is_finite());
    }

    #[test]
    fn accessors_expose_setup() {
        let cost = paper_setup(true);
        assert_eq!(cost.times().len(), 120);
        assert_eq!(cost.fast_capture().len(), 260);
        assert_eq!(cost.slow_capture().len(), 160);
        assert!((cost.config().m_bound() * 1e12 - 483.09).abs() < 0.1);
    }

    #[test]
    fn planned_cost_matches_reference_cost() {
        let cost = paper_setup(false);
        for d_ps in [50.0, 120.0, 180.0, 250.0, 400.0] {
            let planned = cost.evaluate(d_ps * 1e-12);
            let reference = cost.evaluate_reference(d_ps * 1e-12);
            // Absolute tolerance: near the minimum the cost is a tiny
            // squared residual, so a relative bound would demand more
            // agreement of ε than the reconstructions themselves carry.
            assert!(
                (planned - reference).abs() <= 1e-9,
                "D̂ = {d_ps} ps: planned {planned} vs reference {reference}"
            );
        }
    }

    #[test]
    fn eval_grid_matches_pointwise_evaluation() {
        let cost = paper_setup(true);
        let candidates: Vec<f64> = (1..=10).map(|i| i as f64 * 40e-12).collect();
        let grid = cost.eval_grid(&candidates);
        for (i, &d) in candidates.iter().enumerate() {
            assert_eq!(grid[i], cost.evaluate(d), "grid diverges at {d:e}");
        }
        // the evaluator's batch entry point (shared with the LMS
        // gradient probes) is the same computation
        let mut ev = cost.evaluator();
        assert_eq!(ev.eval_grid(&candidates), grid);
    }

    fn paper_grid_setup(ideal: bool) -> DualRateCost {
        let random = paper_setup(ideal);
        DualRateCost::grid_probes(
            random.fast_capture().clone(),
            random.slow_capture().clone(),
            *random.config(),
            120,
        )
    }

    #[test]
    fn grid_probes_form_a_uniform_midpoint_grid() {
        let cost = paper_grid_setup(true);
        let (t0, step) = cost.probe_grid().expect("grid schedule");
        assert!(step > 0.0);
        assert_eq!(cost.times().len(), 120);
        for (i, &t) in cost.times().iter().enumerate() {
            assert_eq!(t, t0 + i as f64 * step, "probe {i} off the grid");
        }
        // random schedules expose no grid
        assert!(paper_setup(true).probe_grid().is_none());
    }

    #[test]
    fn grid_probed_cost_keeps_minimum_at_true_delay() {
        let cost = paper_grid_setup(true);
        let sweep = cost.sweep(60);
        let (d_min, _) = sweep
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (d_min - 180e-12).abs() < 5e-12,
            "minimum at {} ps",
            d_min * 1e12
        );
        let at_truth = cost.evaluate(180e-12);
        let away = cost.evaluate(120e-12);
        assert!(away > 20.0 * at_truth, "contrast {away} vs {at_truth}");
    }

    #[test]
    fn grid_probed_cost_matches_reference_cost() {
        // The grid-aware reconstruction path inside the evaluator must
        // agree with the direct reference over the same probe times.
        let cost = paper_grid_setup(false);
        for d_ps in [50.0, 120.0, 180.0, 250.0, 400.0] {
            let planned = cost.evaluate(d_ps * 1e-12);
            let reference = cost.evaluate_reference(d_ps * 1e-12);
            assert!(
                (planned - reference).abs() <= 1e-9,
                "D̂ = {d_ps} ps: grid {planned} vs reference {reference}"
            );
        }
    }

    #[test]
    fn grid_probed_eval_grid_matches_pointwise_evaluation() {
        let cost = paper_grid_setup(true);
        let candidates: Vec<f64> = (1..=8).map(|i| i as f64 * 50e-12).collect();
        let grid = cost.eval_grid(&candidates);
        for (i, &d) in candidates.iter().enumerate() {
            assert_eq!(grid[i], cost.evaluate(d), "grid diverges at {d:e}");
        }
        let mut ev = cost.evaluator();
        assert_eq!(ev.eval_grid(&candidates), grid);
    }

    #[test]
    fn sweep_uses_midpoint_candidates() {
        let cost = paper_setup(true);
        let sweep = cost.sweep(10);
        let candidates = cost.sweep_candidates(10);
        let m = cost.config().m_bound();
        assert_eq!(sweep.len(), 10);
        for (i, ((d, _), dc)) in sweep.iter().zip(&candidates).enumerate() {
            assert_eq!(d, dc);
            assert!((d - m * (i as f64 + 0.5) / 10.0).abs() < 1e-24);
        }
    }

    #[test]
    #[should_panic(expected = "rate disagrees")]
    fn mismatched_rates_panic() {
        let cfg = DualRateConfig::paper_section_v();
        let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 96, 1);
        let tx = BandpassSignal::new(bb, 1e9);
        let mut fast = BpTiadc::new(BpTiadcConfig::ideal(80e6, cfg.delay()));
        let mut slow = BpTiadc::new(BpTiadcConfig::ideal(45e6, cfg.delay()));
        let _ = DualRateCost::new(
            fast.capture(&tx, 80, 200),
            slow.capture(&tx, 40, 160),
            cfg,
            vec![1.5e-6],
            61,
            Window::Kaiser(8.0),
        );
    }
}
