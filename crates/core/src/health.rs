//! Pre-scan capture health guards: a corrupted capture must never
//! produce a silent PASS.
//!
//! [`CaptureHealth::scan`] inspects a raw (pre-calibration) capture
//! for the three front-end failure signatures that would otherwise
//! flow undetected into the Goertzel bank:
//!
//! - **non-finite samples** — NaN from a glitched ADC propagates
//!   through the quantizer (`NaN.round().clamp(..)` stays NaN) and
//!   through every downstream dot product;
//! - **clip-rail saturation** — the quantizer clamps to
//!   `[-FS, FS - lsb]`, so a sliced waveform still *looks* finite
//!   while its spectrum is fiction (an `+Inf` input lands on the rail
//!   too, so gross overdrive surfaces here rather than as NaN);
//! - **dead channels** — an all-quiet capture has an empty spectrum
//!   that passes every emission mask.
//!
//! Unusable captures are rejected with a typed
//! [`BistError`](crate::error::BistError); marginal ones (light
//! clipping below the reject threshold) are annotated on the
//! [`BistReport`](crate::report::BistReport) so an operator can see
//! the verdict ran close to the rails.

use rfbist_converter::bptiadc::BpTiadcConfig;
use rfbist_sampling::reconstruct::NonuniformCapture;

use crate::error::BistError;

/// Thresholds for [`CaptureHealth::scan`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Reject the capture when more than this fraction of samples sit
    /// on the ADC clip rails.
    pub max_clip_fraction: f64,
    /// Annotate the report as marginal above this clip fraction.
    pub warn_clip_fraction: f64,
    /// Reject when any channel's AC RMS falls below this fraction of
    /// the converter full scale (dead cable / muted DUT).
    pub min_rms_fraction: f64,
    /// Reject when the capture carries more than this many non-finite
    /// samples. Zero: any NaN refuses the verdict.
    pub max_non_finite: usize,
}

impl HealthPolicy {
    /// Defaults sized for the paper's Section V front end: reject at
    /// 2 % railed samples (well past soft clipping), warn from 0.2 %,
    /// and treat any channel quieter than `1e-6·FS` as disconnected.
    pub fn paper_default() -> Self {
        HealthPolicy {
            max_clip_fraction: 0.02,
            warn_clip_fraction: 0.002,
            min_rms_fraction: 1e-6,
            max_non_finite: 0,
        }
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy::paper_default()
    }
}

/// What the pre-scan saw. Attached to the report so marginal captures
/// stay visible even when the verdict proceeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CaptureHealth {
    /// Total samples scanned (both channels).
    pub samples: usize,
    /// Non-finite samples found.
    pub non_finite: usize,
    /// Samples at the ADC clip rails.
    pub clipped: usize,
    /// `clipped / samples`.
    pub clip_fraction: f64,
    /// Smallest per-channel AC (mean-removed) RMS.
    pub min_channel_ac_rms: f64,
    /// True when the capture passed but exceeded the warn clip
    /// fraction — the verdict ran close to the rails.
    pub marginal: bool,
}

impl CaptureHealth {
    /// Scan a raw capture against `policy`, using the converter
    /// geometry in `frontend` to place the clip rails.
    ///
    /// Must run on the capture **before** offset/gain calibration:
    /// the statistics here are NaN-tolerant, while the calibration
    /// means are not, and the rails live in the quantizer's output
    /// domain. Per-channel means are removed before the RMS test
    /// because raw captures legitimately carry per-channel DC offsets.
    pub fn scan(
        capture: &NonuniformCapture,
        frontend: &BpTiadcConfig,
        policy: &HealthPolicy,
    ) -> Result<CaptureHealth, BistError> {
        let full_scale = frontend.full_scale;
        let lsb = 2.0 * full_scale / (1u64 << frontend.bits) as f64;
        // The quantizer output range is asymmetric: [-FS, FS - lsb].
        // Each threshold catches exactly the outermost code per side.
        let pos_rail = full_scale - 1.5 * lsb;
        let neg_rail = -full_scale + 0.5 * lsb;

        let mut samples = 0usize;
        let mut non_finite = 0usize;
        let mut first_non_finite = None;
        let mut clipped = 0usize;
        let mut min_ac_rms = f64::INFINITY;
        for (ch, stream) in [capture.even(), capture.odd()].into_iter().enumerate() {
            let (mut sum, mut sumsq, mut finite) = (0.0f64, 0.0f64, 0usize);
            for (i, &x) in stream.iter().enumerate() {
                if !x.is_finite() {
                    non_finite += 1;
                    // Interleaved order: even samples sit at 2i,
                    // odd at 2i+1.
                    first_non_finite.get_or_insert(2 * i + ch);
                    continue;
                }
                if x >= pos_rail || x <= neg_rail {
                    clipped += 1;
                }
                sum += x;
                sumsq += x * x;
                finite += 1;
            }
            samples += stream.len();
            if finite > 0 {
                let mean = sum / finite as f64;
                let ac = (sumsq / finite as f64 - mean * mean).max(0.0).sqrt();
                min_ac_rms = min_ac_rms.min(ac);
            }
        }
        if samples == 0 {
            return Err(BistError::CaptureTooShort {
                reason: "capture too short: no samples to scan".into(),
            });
        }
        if non_finite > policy.max_non_finite {
            return Err(BistError::NonFiniteCapture {
                count: non_finite,
                first_index: first_non_finite.unwrap_or(0),
                samples,
            });
        }
        let clip_fraction = clipped as f64 / samples as f64;
        if clip_fraction > policy.max_clip_fraction {
            return Err(BistError::SaturatedCapture {
                clip_fraction,
                max_clip_fraction: policy.max_clip_fraction,
            });
        }
        let min_ac = policy.min_rms_fraction * full_scale;
        if min_ac_rms < min_ac {
            return Err(BistError::DeadCapture {
                ac_rms: min_ac_rms,
                min_ac_rms: min_ac,
            });
        }
        Ok(CaptureHealth {
            samples,
            non_finite,
            clipped,
            clip_fraction,
            min_channel_ac_rms: min_ac_rms,
            marginal: clip_fraction > policy.warn_clip_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(even: Vec<f64>, odd: Vec<f64>) -> NonuniformCapture {
        NonuniformCapture::from_streams(1.0 / 90e6, 180e-12, 0, even, odd)
    }

    fn frontend() -> BpTiadcConfig {
        BpTiadcConfig::paper_section_v(180e-12)
    }

    fn sine(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (0.37 * i as f64 + phase).sin()).collect()
    }

    #[test]
    fn healthy_capture_scans_clean() {
        let h = CaptureHealth::scan(
            &capture(sine(256, 0.0), sine(256, 0.5)),
            &frontend(),
            &HealthPolicy::paper_default(),
        )
        .unwrap();
        assert_eq!(h.samples, 512);
        assert_eq!((h.non_finite, h.clipped), (0, 0));
        assert!(!h.marginal);
        assert!(h.min_channel_ac_rms > 0.5);
    }

    #[test]
    fn nan_is_rejected_with_its_interleaved_index() {
        let mut odd = sine(256, 0.5);
        odd[3] = f64::NAN;
        let err = CaptureHealth::scan(
            &capture(sine(256, 0.0), odd),
            &frontend(),
            &HealthPolicy::paper_default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            BistError::NonFiniteCapture {
                count: 1,
                first_index: 7,
                samples: 512
            }
        );
    }

    #[test]
    fn per_channel_offsets_do_not_fake_a_live_signal() {
        // DC-only channels: raw captures carry per-channel offsets, so
        // the dead test must look at AC RMS, not plain RMS.
        let err = CaptureHealth::scan(
            &capture(vec![0.02; 256], vec![-0.01; 256]),
            &frontend(),
            &HealthPolicy::paper_default(),
        )
        .unwrap_err();
        assert!(matches!(err, BistError::DeadCapture { .. }));
    }

    #[test]
    fn rails_are_placed_on_the_asymmetric_quantizer_range() {
        let fe = frontend();
        let lsb = 2.0 * fe.full_scale / (1u64 << fe.bits) as f64;
        let top = fe.full_scale - lsb; // largest representable code
        let bottom = -fe.full_scale; // smallest representable code
        let inner_top = fe.full_scale - 2.0 * lsb; // one code below rail
        let mut even = sine(256, 0.0);
        for s in even.iter_mut().take(64) {
            *s = top;
        }
        for s in even.iter_mut().skip(64).take(64) {
            *s = inner_top;
        }
        let mut odd = sine(256, 0.5);
        for s in odd.iter_mut().take(64) {
            *s = bottom;
        }
        let relaxed = HealthPolicy {
            max_clip_fraction: 1.0,
            ..HealthPolicy::paper_default()
        };
        let h = CaptureHealth::scan(&capture(even, odd), &fe, &relaxed).unwrap();
        // only the true rail codes count — the inner code does not
        assert_eq!(h.clipped, 128);
        assert!(h.marginal);
    }

    #[test]
    fn heavy_clipping_is_rejected() {
        let err = CaptureHealth::scan(
            &capture(vec![2.0 - 2.0 / 512.0; 256], sine(256, 0.5)),
            &frontend(),
            &HealthPolicy::paper_default(),
        )
        .unwrap_err();
        assert!(matches!(err, BistError::SaturatedCapture { .. }));
    }
}
