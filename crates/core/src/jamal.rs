//! Sine-fit time-skew estimation — the baseline technique the paper
//! adapts from Jamal et al., "Calibration of sample-time error in a
//! two-channel time-interleaved analog-to-digital converter"
//! (TCAS-I 2004), and finds "restrictive and unreliable".
//!
//! A *known* sinusoid of RF frequency `f₀` is captured by the
//! BP-TIADC. Each channel's stream is a bandpass-aliased tone at the
//! apparent frequency `f_a = fold(f₀, f_s)`; a three-parameter sine fit
//! per channel recovers each stream's phase, and the inter-channel
//! phase difference divided by `2π·f₀` is the skew.
//!
//! The method's weakness — the reason the paper built the LMS estimator
//! — is its dependence on the test frequency `ω₀`: when `ω₀/B` is a
//! small-denominator rational (e.g. the paper's `0.4·B = 2B/5`), the
//! channels revisit only a handful of distinct tone phases, so
//! quantization error stops averaging out and biases the fit; and the
//! method needs a dedicated known stimulus, where LMS works on the
//! mission-mode signal.

use crate::skew::SkewEstimate;
use rfbist_math::linalg::Matrix;
use rfbist_sampling::reconstruct::NonuniformCapture;
use std::f64::consts::PI;

/// Phase wrap to `(-π, π]`.
fn wrap_phase(x: f64) -> f64 {
    let mut y = x % (2.0 * PI);
    if y > PI {
        y -= 2.0 * PI;
    } else if y <= -PI {
        y += 2.0 * PI;
    }
    y
}

/// Folds an RF frequency into the first Nyquist zone of rate `fs`,
/// returning `(apparent_frequency, parity)`; `parity = -1` means the
/// folded tone's phase is conjugated.
pub fn fold_frequency(f_rf: f64, fs: f64) -> (f64, f64) {
    assert!(fs > 0.0, "sample rate must be positive");
    let z = f_rf.rem_euclid(fs);
    if z <= fs / 2.0 {
        (z, 1.0)
    } else {
        (fs - z, -1.0)
    }
}

/// Least-squares three-parameter sine fit at known frequency:
/// `y[n] ≈ a·cos(2πf·tₙ) + b·sin(2πf·tₙ) + c`, returning the phase
/// `ψ` of `cos(2πf·tₙ + ψ)` (i.e. `atan2(−b, a)`) and the amplitude.
pub fn sine_fit_phase(samples: &[f64], times: &[f64], freq: f64) -> (f64, f64) {
    assert_eq!(samples.len(), times.len(), "length mismatch");
    assert!(
        samples.len() >= 4,
        "need at least 4 samples for a 3-parameter fit"
    );
    let rows: Vec<Vec<f64>> = times
        .iter()
        .map(|&t| {
            let th = 2.0 * PI * freq * t;
            vec![th.cos(), th.sin(), 1.0]
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let beta = Matrix::from_rows(&row_refs)
        .lstsq(samples)
        .unwrap_or_else(|_| panic!("sine-fit normal equations are singular"));
    let (a, b) = (beta[0], beta[1]);
    ((-b).atan2(a), (a * a + b * b).sqrt())
}

/// Estimates the BP-TIADC skew from a capture of a known sinusoid at
/// RF frequency `f_rf` (Hz).
///
/// # Panics
///
/// Panics if the capture is shorter than 4 pairs or `f_rf <= 0`.
pub fn estimate_skew_jamal(capture: &NonuniformCapture, f_rf: f64) -> SkewEstimate {
    assert!(f_rf > 0.0, "test frequency must be positive");
    assert!(capture.len() >= 4, "capture too short for sine fitting");
    let fs = 1.0 / capture.period();
    let (f_a, parity) = fold_frequency(f_rf, fs);

    // Both streams are fitted against the *nominal* grid n·T; the odd
    // stream's extra phase is exactly 2π·f_rf·D.
    let times: Vec<f64> = (0..capture.len())
        .map(|i| (capture.n_start() + i as i64) as f64 * capture.period())
        .collect();
    let (psi_even_fit, _) = sine_fit_phase(capture.even(), &times, f_a);
    let (psi_odd_fit, _) = sine_fit_phase(capture.odd(), &times, f_a);

    // Undo folding parity, then difference.
    let dpsi = wrap_phase(parity * (psi_odd_fit - psi_even_fit));
    let delay = dpsi / (2.0 * PI * f_rf);
    // The phase difference is only defined modulo the carrier period;
    // report the positive representative (skews are < 1/f_rf here).
    let delay = if delay < 0.0 {
        delay + 1.0 / f_rf
    } else {
        delay
    };
    SkewEstimate::from_delay(delay)
}

/// Picks the RF test frequency whose bandpass alias lands at
/// `ratio · fs` (the paper's `ω₀ = 0.4·B`, `0.46·B` choices), placed in
/// the Nyquist zone containing `f_center`.
///
/// # Panics
///
/// Panics unless `0 < ratio < 0.5`.
pub fn test_tone_for_ratio(f_center: f64, fs: f64, ratio: f64) -> f64 {
    assert!(ratio > 0.0 && ratio < 0.5, "ratio must be in (0, 0.5)");
    let zone_base = (f_center / fs).floor() * fs;
    zone_base + ratio * fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
    use rfbist_signal::tone::Tone;

    const FS: f64 = 90e6;
    const D: f64 = 180e-12;

    fn capture_tone(f_rf: f64, ideal: bool, count: usize) -> NonuniformCapture {
        let cfg = if ideal {
            BpTiadcConfig::ideal(FS, D)
        } else {
            BpTiadcConfig::paper_section_v(D)
        };
        let mut adc = BpTiadc::new(cfg);
        adc.capture(&Tone::new(f_rf, 0.9, 0.37), 0, count)
    }

    #[test]
    fn fold_frequency_zones() {
        let (f, p) = fold_frequency(36e6, FS);
        assert!((f - 36e6).abs() < 1.0);
        assert_eq!(p, 1.0);
        // second half of the zone folds with conjugation
        let (f2, p2) = fold_frequency(54e6, FS);
        assert!((f2 - 36e6).abs() < 1.0);
        assert_eq!(p2, -1.0);
        // high zones
        let (f3, p3) = fold_frequency(1026e6, FS); // 1026 = 11·90 + 36
        assert!((f3 - 36e6).abs() < 1.0);
        assert_eq!(p3, 1.0);
        let (f4, _) = fold_frequency(90e6, FS);
        assert!(f4.abs() < 1.0);
    }

    #[test]
    fn sine_fit_recovers_phase_and_amplitude() {
        let f = 0.11e6;
        let times: Vec<f64> = (0..200).map(|n| n as f64 * 1e-7).collect();
        let samples: Vec<f64> = times
            .iter()
            .map(|&t| 0.8 * (2.0 * PI * f * t + 0.9).cos() + 0.1)
            .collect();
        let (psi, amp) = sine_fit_phase(&samples, &times, f);
        assert!((psi - 0.9).abs() < 1e-9, "phase {psi}");
        assert!((amp - 0.8).abs() < 1e-9, "amp {amp}");
    }

    #[test]
    fn ideal_frontend_estimate_is_exact() {
        let f_rf = test_tone_for_ratio(1e9, FS, 0.46);
        let cap = capture_tone(f_rf, true, 300);
        let est = estimate_skew_jamal(&cap, f_rf);
        assert!(
            (est.delay - D).abs() < 0.01e-12,
            "estimate {} ps",
            est.delay * 1e12
        );
    }

    #[test]
    fn paper_frontend_estimate_is_subps_at_good_ratio() {
        let f_rf = test_tone_for_ratio(1e9, FS, 0.46);
        let cap = capture_tone(f_rf, false, 300);
        let est = estimate_skew_jamal(&cap, f_rf);
        assert!(
            (est.delay - D).abs() < 1e-12,
            "estimate {} ps",
            est.delay * 1e12
        );
    }

    #[test]
    fn rational_ratio_is_less_accurate_than_irrationalish() {
        // ω0 = 0.4B revisits only 5 tone phases; quantization error stops
        // averaging. Compare median |error| across seeds at both ratios.
        let err_at = |ratio: f64| -> f64 {
            let f_rf = test_tone_for_ratio(1e9, FS, ratio);
            let mut errs: Vec<f64> = (0..7)
                .map(|seed| {
                    let cfg = BpTiadcConfig::paper_section_v(D).with_seed(seed);
                    let mut adc = BpTiadc::new(cfg);
                    let cap = adc.capture(&Tone::new(f_rf, 0.9, 0.37), 0, 300);
                    (estimate_skew_jamal(&cap, f_rf).delay - D).abs()
                })
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errs[errs.len() / 2]
        };
        let bad = err_at(0.4);
        let good = err_at(0.46);
        assert!(
            bad > good,
            "0.4B median err {} ps vs 0.46B {} ps",
            bad * 1e12,
            good * 1e12
        );
    }

    #[test]
    fn test_tone_lands_in_expected_zone() {
        let f = test_tone_for_ratio(1e9, FS, 0.4);
        assert!((f - 1026e6).abs() < 1.0);
        let (fa, parity) = fold_frequency(f, FS);
        assert!((fa - 36e6).abs() < 1.0);
        assert_eq!(parity, 1.0);
    }

    #[test]
    fn works_for_conjugate_zone_tones() {
        // a tone whose alias folds with parity −1
        let f_rf = 990e6 + 54e6; // alias 36 MHz, parity −1
        let cap = capture_tone(f_rf, true, 300);
        let est = estimate_skew_jamal(&cap, f_rf);
        assert!(
            (est.delay - D).abs() < 0.05e-12,
            "estimate {} ps",
            est.delay * 1e12
        );
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn bad_ratio_panics() {
        let _ = test_tone_for_ratio(1e9, FS, 0.6);
    }
}
