//! Shared time-skew estimate records and error metrics (Table I
//! columns).

use rfbist_sampling::reconstruct::{NonuniformCapture, PnbsReconstructor};
use rfbist_sampling::BandSpec;
use rfbist_signal::traits::ContinuousSignal;

/// A time-skew estimate with optional method metadata.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewEstimate {
    /// The estimated delay `D̂` in seconds.
    pub delay: f64,
    /// Residual cost at the estimate (LMS only).
    pub residual_cost: Option<f64>,
    /// Iterations used (LMS only).
    pub iterations: Option<usize>,
}

impl SkewEstimate {
    /// Wraps a bare delay estimate.
    pub fn from_delay(delay: f64) -> Self {
        SkewEstimate {
            delay,
            residual_cost: None,
            iterations: None,
        }
    }
}

/// The error metrics the paper's Table I reports for an estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewErrorMetrics {
    /// `|D̂ − D|` in seconds (Table I column 2).
    pub abs_error: f64,
    /// `|1 − D̂/D|` (Table I column 3).
    pub rel_error: f64,
    /// `Δε(f^T_D̂(t))`: relative RMS reconstruction error using the
    /// estimate (Table I column 4), when evaluated.
    pub reconstruction_error: Option<f64>,
}

/// Computes the first two Table I columns.
///
/// # Panics
///
/// Panics if `d_true` is zero (the relative metric is undefined).
pub fn skew_error(d_true: f64, d_hat: f64) -> SkewErrorMetrics {
    assert!(d_true != 0.0, "true delay must be non-zero");
    SkewErrorMetrics {
        abs_error: (d_hat - d_true).abs(),
        rel_error: (1.0 - d_hat / d_true).abs(),
        reconstruction_error: None,
    }
}

/// Computes all three Table I columns: reconstructs `capture` with the
/// estimate and compares against the true signal at `times`
/// (relative RMS, `‖f̂ − f‖/‖f‖`).
pub fn skew_error_with_reconstruction<S: ContinuousSignal>(
    d_true: f64,
    d_hat: f64,
    band: BandSpec,
    capture: &NonuniformCapture,
    truth: &S,
    times: &[f64],
) -> SkewErrorMetrics {
    let mut metrics = skew_error(d_true, d_hat);
    let rec =
        PnbsReconstructor::new_unchecked(band, d_hat, 61, rfbist_dsp::window::Window::Kaiser(8.0));
    let got = rec.reconstruct(capture, times);
    let want = truth.sample(times);
    metrics.reconstruction_error = Some(rfbist_math::stats::nrmse(&got, &want));
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfbist_math::rng::Randomizer;
    use rfbist_signal::tone::Tone;

    #[test]
    fn error_metrics_match_table1_definitions() {
        let m = skew_error(180e-12, 185e-12);
        assert!((m.abs_error - 5e-12).abs() < 1e-24);
        assert!((m.rel_error - 5.0 / 180.0).abs() < 1e-12);
        assert!(m.reconstruction_error.is_none());
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let m = skew_error(180e-12, 180e-12);
        assert_eq!(m.abs_error, 0.0);
        assert_eq!(m.rel_error, 0.0);
    }

    #[test]
    fn reconstruction_error_grows_with_estimate_error() {
        let band = BandSpec::centered(1e9, 90e6);
        let d = 180e-12;
        let tone = Tone::unit(0.987e9);
        let cap = NonuniformCapture::from_signal(&tone, 1.0 / 90e6, d, -50, 350);
        let mut rng = Randomizer::from_seed(3);
        let times: Vec<f64> = (0..100).map(|_| rng.uniform(0.5e-6, 2.0e-6)).collect();
        let good = skew_error_with_reconstruction(d, d, band, &cap, &tone, &times);
        let bad = skew_error_with_reconstruction(d, d + 5e-12, band, &cap, &tone, &times);
        let g = good.reconstruction_error.unwrap();
        let b = bad.reconstruction_error.unwrap();
        assert!(g < 0.01, "good {g}");
        assert!(b > 2.0 * g, "bad {b} vs good {g}");
    }

    #[test]
    fn from_delay_strips_metadata() {
        let e = SkewEstimate::from_delay(1e-12);
        assert_eq!(e.delay, 1e-12);
        assert!(e.residual_cost.is_none());
        assert!(e.iterations.is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_true_delay_panics() {
        let _ = skew_error(0.0, 1e-12);
    }
}
