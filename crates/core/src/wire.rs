//! Length-prefixed wire format for the verdict service.
//!
//! A transport (socket, pipe, shared ring) feeds captured sample
//! blocks *into* a verdict worker and drains partial
//! [`MaskReport`]s back out mid-capture; this module defines the
//! byte-level frames for both directions plus an incremental decoder
//! that tolerates arbitrary chunking. Every frame is
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────┐
//! │ u32 LE len │ u8 type │ body (len − 1 bytes) │
//! └────────────┴─────────┴──────────────────────┘
//! ```
//!
//! where `len` counts the type byte plus the body. All integers are
//! little-endian; floats are IEEE-754 `f64` little-endian bit
//! patterns, so a report round-trips bit-exactly. Malformed bytes —
//! truncated bodies, unknown frame types, oversized length prefixes,
//! non-UTF-8 names — surface as [`BistError::Wire`]; the decoder
//! never panics on attacker-controlled input.

use crate::error::BistError;
use crate::mask::{MaskReport, MaskViolation};
use crate::scan::{ScanFeed, StreamingMaskScan};

/// Hard ceiling on a single frame's `len` field. A sample block of
/// the largest built-in deployment grid (32768 bins, 8 bytes each) is
/// ~256 KiB; 16 MiB leaves generous headroom while keeping a hostile
/// length prefix from forcing a giant allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Byte budget of the fixed frame header (`u32` length prefix).
const HEADER_LEN: usize = 4;

const TYPE_JOB_OPEN: u8 = 0x01;
const TYPE_SAMPLE_BLOCK: u8 = 0x02;
const TYPE_REPORT_REQUEST: u8 = 0x03;
const TYPE_PARTIAL_REPORT: u8 = 0x04;
const TYPE_FINAL_REPORT: u8 = 0x05;
const TYPE_JOB_CLOSE: u8 = 0x06;
const TYPE_ERROR: u8 = 0x07;

/// One frame of the verdict-service wire protocol.
///
/// `JobOpen`/`SampleBlock`/`ReportRequest`/`JobClose` flow from the
/// capture side to a worker; `PartialReport`/`FinalReport`/`Error`
/// flow back.
#[derive(Clone, Debug, PartialEq)]
pub enum WireFrame {
    /// Opens a verdict job: subsequent `SampleBlock`s with the same
    /// `job_id` feed its streaming mask scan.
    JobOpen {
        /// Caller-chosen job correlation id.
        job_id: u64,
        /// Mask-library standard name the job is scored against.
        standard: String,
    },
    /// One captured block of reconstructed samples for an open job.
    SampleBlock {
        /// Job the block belongs to.
        job_id: u64,
        /// Reconstructed uniform-grid samples.
        samples: Vec<f64>,
    },
    /// Asks the worker for a mid-capture partial verdict.
    ReportRequest {
        /// Job to report on.
        job_id: u64,
    },
    /// A mid-capture partial verdict (response to `ReportRequest`).
    PartialReport {
        /// Job the report belongs to.
        job_id: u64,
        /// Welch segments folded into the partial PSD so far.
        segments: u64,
        /// The partial mask verdict.
        report: MaskReport,
    },
    /// The final verdict after `JobClose`.
    FinalReport {
        /// Job the report belongs to.
        job_id: u64,
        /// The complete mask verdict.
        report: MaskReport,
    },
    /// Ends a job's sample feed and requests the final verdict.
    JobClose {
        /// Job to finish.
        job_id: u64,
    },
    /// A typed failure for one job (the session stays usable for
    /// other jobs on the same transport).
    Error {
        /// Job the failure belongs to.
        job_id: u64,
        /// `Display` text of the underlying [`BistError`].
        reason: String,
    },
}

impl WireFrame {
    /// Serializes the frame, header included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            WireFrame::JobOpen { job_id, standard } => {
                body.push(TYPE_JOB_OPEN);
                put_u64(&mut body, *job_id);
                put_str(&mut body, standard);
            }
            WireFrame::SampleBlock { job_id, samples } => {
                body.reserve(9 + 8 * samples.len());
                body.push(TYPE_SAMPLE_BLOCK);
                put_u64(&mut body, *job_id);
                put_u32(&mut body, samples.len() as u32);
                for s in samples {
                    put_f64(&mut body, *s);
                }
            }
            WireFrame::ReportRequest { job_id } => {
                body.push(TYPE_REPORT_REQUEST);
                put_u64(&mut body, *job_id);
            }
            WireFrame::PartialReport {
                job_id,
                segments,
                report,
            } => {
                body.push(TYPE_PARTIAL_REPORT);
                put_u64(&mut body, *job_id);
                put_u64(&mut body, *segments);
                put_report(&mut body, report);
            }
            WireFrame::FinalReport { job_id, report } => {
                body.push(TYPE_FINAL_REPORT);
                put_u64(&mut body, *job_id);
                put_report(&mut body, report);
            }
            WireFrame::JobClose { job_id } => {
                body.push(TYPE_JOB_CLOSE);
                put_u64(&mut body, *job_id);
            }
            WireFrame::Error { job_id, reason } => {
                body.push(TYPE_ERROR);
                put_u64(&mut body, *job_id);
                put_str(&mut body, reason);
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// The frame's job correlation id.
    pub fn job_id(&self) -> u64 {
        match self {
            WireFrame::JobOpen { job_id, .. }
            | WireFrame::SampleBlock { job_id, .. }
            | WireFrame::ReportRequest { job_id }
            | WireFrame::PartialReport { job_id, .. }
            | WireFrame::FinalReport { job_id, .. }
            | WireFrame::JobClose { job_id }
            | WireFrame::Error { job_id, .. } => *job_id,
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Report body layout: name, pass flag, three `f64` summary levels,
/// total violation count, capped violation list, truncation flag —
/// exactly the public fields of [`MaskReport`], so decode∘encode is
/// the identity.
fn put_report(out: &mut Vec<u8>, r: &MaskReport) {
    put_str(out, &r.mask_name);
    out.push(u8::from(r.passed));
    put_f64(out, r.worst_margin_db);
    put_f64(out, r.worst_frequency_hz);
    put_f64(out, r.reference_db);
    put_u64(out, r.violation_count as u64);
    put_u32(out, r.violations.len() as u32);
    for v in &r.violations {
        put_f64(out, v.frequency);
        put_f64(out, v.measured_dbc);
        put_f64(out, v.limit_dbc);
    }
    out.push(u8::from(r.truncated));
}

/// Bounded cursor over one frame body. Every read is checked; running
/// off the end is a typed [`BistError::Wire`], never a slice panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BistError> {
        if self.remaining() < n {
            return Err(BistError::Wire {
                reason: format!(
                    "frame body truncated: needed {n} more byte(s), {} left",
                    self.remaining()
                ),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, BistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BistError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, BistError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, BistError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, BistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BistError::Wire {
            reason: format!("string field is not valid UTF-8 ({n} bytes)"),
        })
    }

    fn flag(&mut self) -> Result<bool, BistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BistError::Wire {
                reason: format!("boolean field holds {other}, expected 0 or 1"),
            }),
        }
    }

    fn finish(self) -> Result<(), BistError> {
        if self.remaining() != 0 {
            return Err(BistError::Wire {
                reason: format!("{} trailing byte(s) after frame body", self.remaining()),
            });
        }
        Ok(())
    }
}

fn read_report(r: &mut Reader<'_>) -> Result<MaskReport, BistError> {
    let mask_name = r.string()?;
    let passed = r.flag()?;
    let worst_margin_db = r.f64()?;
    let worst_frequency_hz = r.f64()?;
    let reference_db = r.f64()?;
    let violation_count = r.u64()? as usize;
    let listed = r.u32()? as usize;
    if listed > violation_count {
        return Err(BistError::Wire {
            reason: format!(
                "report lists {listed} violations but claims only {violation_count} total"
            ),
        });
    }
    if listed * 24 > r.remaining() {
        return Err(BistError::Wire {
            reason: format!(
                "violation list claims {listed} entries but only {} byte(s) remain",
                r.remaining()
            ),
        });
    }
    let mut violations = Vec::with_capacity(listed);
    for _ in 0..listed {
        violations.push(MaskViolation {
            frequency: r.f64()?,
            measured_dbc: r.f64()?,
            limit_dbc: r.f64()?,
        });
    }
    let truncated = r.flag()?;
    Ok(MaskReport {
        mask_name,
        passed,
        worst_margin_db,
        worst_frequency_hz,
        reference_db,
        violation_count,
        violations,
        truncated,
    })
}

/// Decodes one complete frame body (the bytes after the length
/// prefix) into a [`WireFrame`].
fn decode_body(body: &[u8]) -> Result<WireFrame, BistError> {
    let mut r = Reader::new(body);
    let kind = r.u8()?;
    let frame = match kind {
        TYPE_JOB_OPEN => WireFrame::JobOpen {
            job_id: r.u64()?,
            standard: r.string()?,
        },
        TYPE_SAMPLE_BLOCK => {
            let job_id = r.u64()?;
            let n = r.u32()? as usize;
            if n * 8 != r.remaining() {
                return Err(BistError::Wire {
                    reason: format!(
                        "sample block claims {n} samples but carries {} byte(s)",
                        r.remaining()
                    ),
                });
            }
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(r.f64()?);
            }
            WireFrame::SampleBlock { job_id, samples }
        }
        TYPE_REPORT_REQUEST => WireFrame::ReportRequest { job_id: r.u64()? },
        TYPE_PARTIAL_REPORT => WireFrame::PartialReport {
            job_id: r.u64()?,
            segments: r.u64()?,
            report: read_report(&mut r)?,
        },
        TYPE_FINAL_REPORT => WireFrame::FinalReport {
            job_id: r.u64()?,
            report: read_report(&mut r)?,
        },
        TYPE_JOB_CLOSE => WireFrame::JobClose { job_id: r.u64()? },
        TYPE_ERROR => WireFrame::Error {
            job_id: r.u64()?,
            reason: r.string()?,
        },
        other => {
            return Err(BistError::Wire {
                reason: format!("unknown frame type 0x{other:02x}"),
            })
        }
    };
    r.finish()?;
    Ok(frame)
}

/// Incremental frame decoder: feed it transport chunks of any size
/// and drain complete frames as they materialize.
///
/// A decode error is sticky for the byte stream — framing is lost
/// once a length prefix lies — so callers should drop the connection
/// after the first [`BistError::Wire`].
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete frame, `Ok(None)` when more bytes
    /// are needed, `Err` on a malformed frame.
    pub fn try_next_frame(&mut self) -> Result<Option<WireFrame>, BistError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.buf[..HEADER_LEN]);
        let len = u32::from_le_bytes(a) as usize;
        if len == 0 {
            return Err(BistError::Wire {
                reason: "frame length 0 cannot hold a type byte".into(),
            });
        }
        if len > MAX_FRAME_LEN {
            return Err(BistError::Wire {
                reason: format!("frame length {len} exceeds limit {MAX_FRAME_LEN}"),
            });
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let frame = decode_body(&self.buf[HEADER_LEN..HEADER_LEN + len])?;
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(frame))
    }
}

/// One job's verdict session over the wire protocol: owns the
/// borrowed [`StreamingMaskScan`] and translates inbound frames into
/// scan operations and outbound report frames.
///
/// The scan borrows its engine and scratch, so the session is scoped
/// the same way:
///
/// ```ignore
/// let mut scratch = StreamScratch::new();
/// let scan = engine.stream(&mut scratch, None);
/// let mut session = WireVerdictSession::new(job_id, scan);
/// while let Some(frame) = decoder.try_next_frame()? { /* … */ }
/// let final_frame = session.try_close()?;
/// ```
pub struct WireVerdictSession<'a> {
    job_id: u64,
    scan: StreamingMaskScan<'a>,
}

impl<'a> WireVerdictSession<'a> {
    /// Binds a streaming scan to a wire job id.
    pub fn new(job_id: u64, scan: StreamingMaskScan<'a>) -> Self {
        WireVerdictSession { job_id, scan }
    }

    /// The session's job id.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Whether the scan's early-verdict policy has already stopped
    /// the capture (further sample blocks are ignored).
    pub fn early_stopped(&self) -> bool {
        self.scan.early_stopped()
    }

    /// Handles one inbound frame, returning the outbound response
    /// frame when the protocol calls for one.
    ///
    /// `SampleBlock` feeds the scan (no response); `ReportRequest`
    /// yields a `PartialReport` once at least one Welch segment is
    /// complete. Frames for a different job, or frame types that only
    /// flow worker→caller, are protocol violations and return a
    /// [`BistError::Wire`].
    pub fn try_handle(&mut self, frame: &WireFrame) -> Result<Option<WireFrame>, BistError> {
        if frame.job_id() != self.job_id {
            return Err(BistError::Wire {
                reason: format!(
                    "frame for job {} routed to session for job {}",
                    frame.job_id(),
                    self.job_id
                ),
            });
        }
        match frame {
            WireFrame::SampleBlock { samples, .. } => {
                let _: ScanFeed = self.scan.push(samples);
                Ok(None)
            }
            WireFrame::ReportRequest { .. } => match self.scan.partial_report() {
                Some(report) => Ok(Some(WireFrame::PartialReport {
                    job_id: self.job_id,
                    segments: self.scan.segments_completed() as u64,
                    report,
                })),
                None => Err(BistError::Wire {
                    reason: format!(
                        "partial report requested for job {} before any Welch \
                         segment completed",
                        self.job_id
                    ),
                }),
            },
            WireFrame::JobOpen { .. } => Err(BistError::Wire {
                reason: format!("job {} is already open", self.job_id),
            }),
            WireFrame::JobClose { .. } => Err(BistError::Wire {
                reason: "JobClose must go through try_close (it consumes the session)".into(),
            }),
            WireFrame::PartialReport { .. }
            | WireFrame::FinalReport { .. }
            | WireFrame::Error { .. } => Err(BistError::Wire {
                reason: "report/error frames flow worker to caller, not inbound".into(),
            }),
        }
    }

    /// Finishes the scan and returns the `FinalReport` frame.
    pub fn try_close(self) -> Result<WireFrame, BistError> {
        let job_id = self.job_id;
        let report = self.scan.try_finish()?;
        Ok(WireFrame::FinalReport { job_id, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(violations: usize) -> MaskReport {
        MaskReport {
            mask_name: "gsm-like-270k".into(),
            passed: violations == 0,
            worst_margin_db: if violations == 0 { 4.25 } else { -1.5 },
            worst_frequency_hz: 100.4e6,
            reference_db: -38.7,
            violation_count: violations,
            violations: (0..violations)
                .map(|i| MaskViolation {
                    frequency: 100.0e6 + i as f64 * 1.0e5,
                    measured_dbc: -30.0 - i as f64,
                    limit_dbc: -33.0,
                })
                .collect(),
            truncated: false,
        }
    }

    fn all_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::JobOpen {
                job_id: 7,
                standard: "lte5-like".into(),
            },
            WireFrame::SampleBlock {
                job_id: 7,
                samples: vec![0.0, -1.25, 3.5e-3, f64::MIN_POSITIVE],
            },
            WireFrame::ReportRequest { job_id: 7 },
            WireFrame::PartialReport {
                job_id: 7,
                segments: 3,
                report: sample_report(2),
            },
            WireFrame::FinalReport {
                job_id: 7,
                report: sample_report(0),
            },
            WireFrame::JobClose { job_id: 7 },
            WireFrame::Error {
                job_id: 7,
                reason: "capture too short".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in all_frames() {
            let bytes = frame.encode();
            let mut dec = FrameDecoder::new();
            dec.feed(&bytes);
            let back = dec.try_next_frame().expect("decode").expect("complete");
            assert_eq!(back, frame);
            assert_eq!(dec.buffered(), 0);
            assert!(dec.try_next_frame().expect("idle decode").is_none());
        }
    }

    #[test]
    fn decoder_handles_one_byte_chunking_and_concatenation() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.feed(&[b]);
            while let Some(f) = dec.try_next_frame().expect("decode") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_le_bytes());
        let err = dec.try_next_frame().expect_err("zero length");
        assert!(matches!(err, BistError::Wire { .. }), "{err}");

        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        let err = dec.try_next_frame().expect_err("oversized length");
        assert!(err.to_string().contains("exceeds limit"), "{err}");
    }

    #[test]
    fn unknown_type_and_truncated_body_are_typed_errors() {
        let mut dec = FrameDecoder::new();
        dec.feed(&1u32.to_le_bytes());
        dec.feed(&[0x7f]);
        let err = dec.try_next_frame().expect_err("unknown type");
        assert!(err.to_string().contains("unknown frame type 0x7f"), "{err}");

        // a SampleBlock whose sample count lies about the body size
        let mut body = vec![TYPE_SAMPLE_BLOCK];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes()); // claims 100 samples, carries none
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let err = dec.try_next_frame().expect_err("short body");
        assert!(err.to_string().contains("claims 100 samples"), "{err}");
    }

    #[test]
    fn trailing_garbage_inside_a_frame_is_rejected() {
        let mut bytes = WireFrame::JobClose { job_id: 1 }.encode();
        // grow the length prefix by one and append a stray byte
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) + 1;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        bytes.push(0xAA);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let err = dec.try_next_frame().expect_err("trailing byte");
        assert!(err.to_string().contains("trailing byte"), "{err}");
    }

    #[test]
    fn inconsistent_violation_counts_are_rejected() {
        let mut report = sample_report(1);
        report.violation_count = 0; // fewer than the listed violations
        let frame = WireFrame::FinalReport { job_id: 3, report };
        let mut dec = FrameDecoder::new();
        dec.feed(&frame.encode());
        let err = dec.try_next_frame().expect_err("bad counts");
        assert!(err.to_string().contains("claims only 0 total"), "{err}");
    }

    #[test]
    fn non_utf8_standard_name_is_rejected() {
        let mut body = vec![TYPE_JOB_OPEN];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe]);
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let err = dec.try_next_frame().expect_err("bad utf8");
        assert!(err.to_string().contains("not valid UTF-8"), "{err}");
    }
}
