//! Structured BIST results.

use crate::mask::MaskReport;
use crate::skew::SkewEstimate;
use std::fmt;

/// The complete record of one BIST run.
#[derive(Clone, Debug)]
pub struct BistReport {
    /// The skew estimate the engine converged to.
    pub skew: SkewEstimate,
    /// Ground-truth physical delay (available in simulation only; a
    /// real unit would not know this).
    pub true_delay: f64,
    /// Spectral-mask verdict.
    pub mask: MaskReport,
    /// Relative RMS reconstruction error against a supplied reference
    /// (Δε), when a reference was given. After an early exit this
    /// covers only the reconstructed prefix of the analysis grid.
    pub reconstruction_error: Option<f64>,
    /// `true` when the streaming early-verdict policy stopped
    /// reconstruction before the full analysis grid — the mask verdict
    /// is then a (failing) partial-capture verdict.
    pub early_exit: bool,
}

impl BistReport {
    /// `|D̂ − D|` in seconds.
    pub fn skew_abs_error(&self) -> f64 {
        (self.skew.delay - self.true_delay).abs()
    }

    /// Overall verdict: mask passed.
    pub fn passed(&self) -> bool {
        self.mask.passed
    }
}

impl fmt::Display for BistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BIST {}: mask `{}` worst margin {:+.2} dB at {:.3} MHz",
            if self.passed() { "PASS" } else { "FAIL" },
            self.mask.mask_name,
            self.mask.worst_margin_db,
            self.mask.worst_frequency_hz / 1e6,
        )?;
        writeln!(
            f,
            "  skew estimate {:.3} ps (true {:.3} ps, |err| {:.3} ps, {} iterations)",
            self.skew.delay * 1e12,
            self.true_delay * 1e12,
            self.skew_abs_error() * 1e12,
            self.skew
                .iterations
                .map_or("?".to_string(), |i| i.to_string()),
        )?;
        if let Some(e) = self.reconstruction_error {
            writeln!(f, "  reconstruction Δε = {:.3} %", e * 100.0)?;
        }
        if self.early_exit {
            writeln!(f, "  early exit: verdict decided mid-capture")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskReport;

    fn dummy_report(passed: bool) -> BistReport {
        BistReport {
            skew: SkewEstimate {
                delay: 180.2e-12,
                residual_cost: Some(1e-6),
                iterations: Some(12),
            },
            true_delay: 180e-12,
            mask: MaskReport {
                mask_name: "test".into(),
                passed,
                worst_margin_db: if passed { 7.5 } else { -3.0 },
                worst_frequency_hz: 1.013e9,
                reference_db: -40.0,
                violation_count: 0,
                violations: vec![],
                truncated: false,
            },
            reconstruction_error: Some(0.0084),
            early_exit: false,
        }
    }

    #[test]
    fn abs_error_is_computed() {
        let r = dummy_report(true);
        assert!((r.skew_abs_error() - 0.2e-12).abs() < 1e-18);
        assert!(r.passed());
    }

    #[test]
    fn display_mentions_verdict_and_numbers() {
        let r = dummy_report(true);
        let s = r.to_string();
        assert!(s.contains("PASS"), "{s}");
        assert!(s.contains("180.200 ps"), "{s}");
        assert!(s.contains("12 iterations"), "{s}");
        assert!(s.contains("0.840 %"), "{s}");
        let f = dummy_report(false);
        assert!(f.to_string().contains("FAIL"));
    }

    #[test]
    fn display_mentions_early_exit() {
        let mut r = dummy_report(false);
        assert!(!r.to_string().contains("early exit"));
        r.early_exit = true;
        assert!(r.to_string().contains("early exit"), "{r}");
    }
}
