//! Structured BIST results.

use crate::bist::StreamRecovery;
use crate::health::CaptureHealth;
use crate::mask::MaskReport;
use crate::skew::SkewEstimate;
use std::fmt;

/// The complete record of one BIST run.
///
/// Derives `PartialEq` so equivalence harnesses (the verdict service
/// must produce reports bit-identical to single-shot
/// [`try_run_with`](crate::bist::BistEngine::try_run_with)) can compare
/// whole reports directly.
#[derive(Clone, Debug, PartialEq)]
pub struct BistReport {
    /// The skew estimate the engine converged to.
    pub skew: SkewEstimate,
    /// Ground-truth physical delay (available in simulation only; a
    /// real unit would not know this).
    pub true_delay: f64,
    /// Spectral-mask verdict.
    pub mask: MaskReport,
    /// Relative RMS reconstruction error against a supplied reference
    /// (Δε), when a reference was given. After an early exit this
    /// covers only the reconstructed prefix of the analysis grid.
    pub reconstruction_error: Option<f64>,
    /// `true` when the streaming early-verdict policy stopped
    /// reconstruction before the full analysis grid — the mask verdict
    /// is then a (failing) partial-capture verdict.
    pub early_exit: bool,
    /// Whether the skew estimate met the engine's acceptance gate
    /// ([`SkewGate`](crate::bist::SkewGate)): a diverged LMS or an
    /// out-of-tolerance residual cost fails the overall verdict even
    /// when the mask happens to pass on the mis-reconstructed
    /// waveform. Always `true` for runs on an externally calibrated
    /// skew (the calibration run carried the gate).
    pub skew_ok: bool,
    /// Measured noise figure in dB — excess of the measured
    /// out-of-band noise density over the configured reference floor —
    /// when the engine's [`NoiseFigureConfig`](crate::bist::NoiseFigureConfig)
    /// is armed.
    pub noise_figure_db: Option<f64>,
    /// Whether the noise figure met its configured limit (`true` when
    /// no NF measurement or no limit is configured).
    pub nf_ok: bool,
    /// Pre-calibration health scan of the fast-rate capture the
    /// verdict was computed from. `None` only for reports built
    /// outside the engine (e.g. hand-assembled in tests). A capture
    /// bad enough to be rejected never reaches a report — see
    /// [`BistError`](crate::error::BistError) — so a populated scan
    /// here is at worst *marginal* (elevated but tolerable clipping).
    pub capture_health: Option<CaptureHealth>,
    /// Set when the streaming feed had to recover from a panicking
    /// producer worker: the verdict is still the clean-path verdict
    /// (attempts are rebuilt from scratch and the sequential fallback
    /// is bit-identical), but the incident is surfaced here for
    /// logging and maintenance triage.
    pub stream_recovery: Option<StreamRecovery>,
}

impl BistReport {
    /// `|D̂ − D|` in seconds.
    pub fn skew_abs_error(&self) -> f64 {
        (self.skew.delay - self.true_delay).abs()
    }

    /// Overall verdict: the mask passed, the skew estimate met its
    /// acceptance gate and the noise figure (when measured against a
    /// limit) stayed within it.
    pub fn passed(&self) -> bool {
        self.mask.passed && self.skew_ok && self.nf_ok
    }
}

impl fmt::Display for BistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BIST {}: mask `{}` worst margin {:+.2} dB at {:.3} MHz",
            if self.passed() { "PASS" } else { "FAIL" },
            self.mask.mask_name,
            self.mask.worst_margin_db,
            self.mask.worst_frequency_hz / 1e6,
        )?;
        writeln!(
            f,
            "  skew estimate {:.3} ps (true {:.3} ps, |err| {:.3} ps, {} iterations)",
            self.skew.delay * 1e12,
            self.true_delay * 1e12,
            self.skew_abs_error() * 1e12,
            self.skew
                .iterations
                .map_or("?".to_string(), |i| i.to_string()),
        )?;
        if !self.skew_ok {
            writeln!(f, "  skew gate FAILED: estimate outside acceptance")?;
        }
        if let Some(e) = self.reconstruction_error {
            writeln!(f, "  reconstruction Δε = {:.3} %", e * 100.0)?;
        }
        if let Some(nf) = self.noise_figure_db {
            writeln!(
                f,
                "  noise figure {:.2} dB{}",
                nf,
                if self.nf_ok { "" } else { " — over limit" }
            )?;
        }
        if self.early_exit {
            writeln!(f, "  early exit: verdict decided mid-capture")?;
        }
        if let Some(h) = &self.capture_health {
            if h.marginal {
                writeln!(
                    f,
                    "  capture health MARGINAL: clip fraction {:.4} ({} of {} samples at a rail)",
                    h.clip_fraction, h.clipped, h.samples
                )?;
            }
        }
        if let Some(r) = self.stream_recovery {
            writeln!(
                f,
                "  stream feed recovered: {}",
                match r {
                    StreamRecovery::ParallelRetry => "parallel retry",
                    StreamRecovery::SequentialFallback => "sequential fallback",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskReport;

    fn dummy_report(passed: bool) -> BistReport {
        BistReport {
            skew: SkewEstimate {
                delay: 180.2e-12,
                residual_cost: Some(1e-6),
                iterations: Some(12),
            },
            true_delay: 180e-12,
            mask: MaskReport {
                mask_name: "test".into(),
                passed,
                worst_margin_db: if passed { 7.5 } else { -3.0 },
                worst_frequency_hz: 1.013e9,
                reference_db: -40.0,
                violation_count: 0,
                violations: vec![],
                truncated: false,
            },
            reconstruction_error: Some(0.0084),
            early_exit: false,
            skew_ok: true,
            noise_figure_db: None,
            nf_ok: true,
            capture_health: None,
            stream_recovery: None,
        }
    }

    #[test]
    fn abs_error_is_computed() {
        let r = dummy_report(true);
        assert!((r.skew_abs_error() - 0.2e-12).abs() < 1e-18);
        assert!(r.passed());
    }

    #[test]
    fn failed_gates_fail_the_overall_verdict() {
        // a passing mask must not override a rejected skew estimate…
        let mut r = dummy_report(true);
        r.skew_ok = false;
        assert!(!r.passed());
        assert!(r.to_string().contains("skew gate FAILED"), "{r}");
        // …or an out-of-limit noise figure
        let mut r = dummy_report(true);
        r.noise_figure_db = Some(9.5);
        r.nf_ok = false;
        assert!(!r.passed());
        assert!(r.to_string().contains("over limit"), "{r}");
        // an in-limit measurement is reported without failing
        let mut r = dummy_report(true);
        r.noise_figure_db = Some(3.2);
        assert!(r.passed());
        assert!(r.to_string().contains("noise figure 3.20 dB"), "{r}");
    }

    #[test]
    fn display_mentions_verdict_and_numbers() {
        let r = dummy_report(true);
        let s = r.to_string();
        assert!(s.contains("PASS"), "{s}");
        assert!(s.contains("180.200 ps"), "{s}");
        assert!(s.contains("12 iterations"), "{s}");
        assert!(s.contains("0.840 %"), "{s}");
        let f = dummy_report(false);
        assert!(f.to_string().contains("FAIL"));
    }

    #[test]
    fn display_mentions_recovery_and_marginal_health() {
        let mut r = dummy_report(true);
        assert!(!r.to_string().contains("recovered"));
        r.stream_recovery = Some(StreamRecovery::ParallelRetry);
        assert!(r.to_string().contains("recovered: parallel retry"), "{r}");
        r.stream_recovery = Some(StreamRecovery::SequentialFallback);
        assert!(
            r.to_string().contains("recovered: sequential fallback"),
            "{r}"
        );
        // a healthy scan stays silent; a marginal one is surfaced
        r.capture_health = Some(CaptureHealth {
            samples: 4096,
            non_finite: 0,
            clipped: 0,
            clip_fraction: 0.0,
            min_channel_ac_rms: 0.3,
            marginal: false,
        });
        assert!(!r.to_string().contains("MARGINAL"), "{r}");
        if let Some(h) = r.capture_health.as_mut() {
            h.clipped = 41;
            h.clip_fraction = 0.01;
            h.marginal = true;
        }
        assert!(r.to_string().contains("capture health MARGINAL"), "{r}");
        assert!(r.to_string().contains("41 of 4096"), "{r}");
    }

    #[test]
    fn display_mentions_early_exit() {
        let mut r = dummy_report(false);
        assert!(!r.to_string().contains("early exit"));
        r.early_exit = true;
        assert!(r.to_string().contains("early exit"), "{r}");
    }
}
