//! RF BIST core — the paper's contribution.
//!
//! Reproduces the DATE 2014 strategy end to end:
//!
//! - [`cost`]: the dual-rate self-consistency cost `ε^{T,D̂}_{T1,D̂}(t)`
//!   (paper eqs. 7–8) whose unique minimum sits at the true skew,
//! - [`lms`]: the normalized variable-step LMS estimator (Algorithm 1),
//! - [`jamal`]: the sine-fit baseline adapted from Jamal et al. [14],
//! - [`skew`]: estimate/error-metric types shared by both estimators,
//! - [`mask`]: spectral masks and compliance checking (the BIST's
//!   verdict machinery),
//! - [`scan`]: the banked-Goertzel mask-bin scanner (evaluates only
//!   the bins the mask constrains), batched or as a push-style
//!   streaming consumer with early verdicts,
//! - [`bist`]: the end-to-end engine (capture → calibrate → estimate →
//!   reconstruct → mask check),
//! - [`campaign`]: the Monte-Carlo fault-coverage campaign runner
//!   (fault corpus × standards × jitter profiles → detection/false-alarm
//!   matrix), with checkpoint/resume,
//! - [`error`]: the typed failure taxonomy behind every `try_*` entry
//!   point,
//! - [`health`]: pre-scan capture health guards (NaN/clip/dead-signal
//!   rejection),
//! - [`report`]: serializable result records,
//! - [`service`]: the persistent-worker verdict service (shards
//!   (standard × carrier × DUT) jobs across long-lived workers with
//!   bounded-queue backpressure),
//! - [`wire`]: the length-prefixed wire format for feeding sample
//!   blocks to a verdict worker and draining partial reports.
//!
//! # Example: estimating a 180 ps skew
//!
//! ```
//! use rfbist_core::cost::DualRateCost;
//! use rfbist_core::lms::{estimate_skew_lms, LmsConfig};
//! use rfbist_converter::bptiadc::{BpTiadc, BpTiadcConfig};
//! use rfbist_sampling::dualrate::DualRateConfig;
//! use rfbist_signal::prelude::*;
//!
//! let cfg = DualRateConfig::paper_section_v();
//! let bb = ShapedBaseband::qpsk_prbs(10e6, 0.5, 12, 96, 0xACE1);
//! let tx = BandpassSignal::new(bb, 1e9);
//!
//! let mut fast = BpTiadc::new(BpTiadcConfig::ideal(cfg.fast_rate(), cfg.delay()));
//! let mut slow = BpTiadc::new(BpTiadcConfig::ideal(cfg.slow_rate(), cfg.delay()));
//! let cost = DualRateCost::paper_probes(
//!     fast.capture(&tx, 80, 260),
//!     slow.capture(&tx, 40, 160),
//!     cfg,
//!     300,
//!     1,
//! );
//! let result = estimate_skew_lms(&cost, LmsConfig::paper_default(50e-12));
//! assert!((result.estimate - 180e-12).abs() < 1e-12);
//! ```

// Production code must not take shortcuts through unwrap/expect: the
// fail-safe pipeline treats every runtime fault as a typed value. Test
// modules (cfg(test)) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bist;
pub mod campaign;
pub mod cost;
pub mod error;
pub mod health;
pub mod jamal;
pub mod lms;
pub mod mask;
pub mod report;
pub mod scan;
pub mod service;
pub mod skew;
pub mod wire;

pub use bist::{
    BistConfig, BistEngine, BistScratch, NoiseFigureConfig, ScanStrategy, SkewGate, StreamRecovery,
};
pub use campaign::{
    run_campaign, try_run_campaign, try_run_campaign_supervised, CampaignConfig, CampaignProgress,
    CoverageMatrix, Deployment, FaultOutcome, StandardOutcome,
};
pub use cost::{CostEvaluator, DualRateCost};
pub use error::BistError;
pub use health::{CaptureHealth, HealthPolicy};
pub use lms::{estimate_skew_lms, LmsConfig, LmsResult};
pub use mask::{MaskLibrary, MaskReport, MaskStandard, SpectralMask};
pub use scan::{EarlyVerdict, MaskScanEngine, MaskScanScratch, StreamScratch, StreamingMaskScan};
pub use service::{DutSpec, ServiceConfig, VerdictJob, VerdictOutcome, VerdictService};
pub use wire::{FrameDecoder, WireFrame, WireVerdictSession};
