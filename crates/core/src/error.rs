//! Typed error taxonomy for the fail-safe verdict pipeline.
//!
//! Every failure the BIST engine, the streaming mask scan and the
//! fault-coverage campaign can encounter is a value of [`BistError`].
//! The long-standing panicking entry points (`BistEngine::run`,
//! `run_campaign`, `MaskScanEngine::new`, …) are thin wrappers over
//! `try_*` variants that panic with the error's `Display` text, so the
//! panic messages existing callers (and `#[should_panic]` pins) rely
//! on are exactly the `Display` strings defined here.

use std::fmt;

use rfbist_sampling::gridplan::StreamWorkerPanic;

/// Everything that can go wrong between a capture and a verdict.
///
/// The taxonomy deliberately distinguishes *capture* problems (the
/// DUT/front-end produced unusable samples — reject, do not score)
/// from *configuration* problems (the caller asked for something
/// impossible — fail fast, before any trial runs) and *infrastructure*
/// problems (a worker thread died, a checkpoint is stale — recover or
/// surface, never emit a wrong verdict).
#[derive(Clone, Debug, PartialEq)]
pub enum BistError {
    /// The capture cannot support the reconstruction tap window or the
    /// requested analysis grid. `reason` carries the specific geometry.
    CaptureTooShort {
        /// Human-readable geometry detail (contains "capture too short"
        /// or "shorter" for wrapper-panic compatibility).
        reason: String,
    },
    /// The scan grid or PSD has no bins inside the mask's reference
    /// region, segments, or noise-figure band — no verdict is possible.
    NoMaskCoverage {
        /// Which coverage region is empty.
        reason: String,
    },
    /// The capture contains NaN samples (a glitched front end). A
    /// corrupted capture must never flow into the Goertzel bank.
    NonFiniteCapture {
        /// How many samples were non-finite.
        count: usize,
        /// Interleaved sample index of the first offender.
        first_index: usize,
        /// Total samples scanned (both channels).
        samples: usize,
    },
    /// Too many samples sit on the ADC clip rails — the waveform is
    /// being sliced and any mask margin computed from it is fiction.
    SaturatedCapture {
        /// Fraction of samples at the rails.
        clip_fraction: f64,
        /// The policy limit that was exceeded.
        max_clip_fraction: f64,
    },
    /// A channel carries no AC signal at all (dead cable, muted DUT) —
    /// an all-quiet spectrum would pass every mask silently.
    DeadCapture {
        /// Smallest per-channel AC RMS observed.
        ac_rms: f64,
        /// The policy floor it fell below.
        min_ac_rms: f64,
    },
    /// A campaign deployment names a standard the mask library does
    /// not carry.
    UnknownStandard {
        /// The unrecognized name.
        name: String,
        /// The library's known standards, sorted.
        known: Vec<String>,
    },
    /// A streaming producer worker panicked (supervised and recovered
    /// by the engine; surfaced directly by the low-level feed API).
    WorkerPanic {
        /// Which worker and what its panic payload said.
        detail: String,
    },
    /// The configuration itself is invalid (empty corpus, degenerate
    /// rates, non-finite thresholds, …).
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
    /// A campaign checkpoint could not be read, parsed, or matched
    /// against the running configuration.
    Checkpoint {
        /// Parse/validation detail.
        reason: String,
    },
    /// A length-prefixed wire frame could not be decoded: truncated
    /// body, unknown frame type, oversized length prefix, or a payload
    /// that fails its own invariants. Malformed bytes from a transport
    /// must surface here — never as a panic.
    Wire {
        /// What is wrong with the frame.
        reason: String,
    },
    /// The campaign observer requested a stop; the checkpoint (if any)
    /// holds every completed cell.
    Interrupted {
        /// Cells fully scored before the stop.
        completed_cells: usize,
        /// Total cells in the sweep.
        total_cells: usize,
    },
}

impl BistError {
    /// Whether retrying the same operation can plausibly succeed.
    ///
    /// Only infrastructure faults (a panicked worker thread) are
    /// transient; capture and configuration errors are deterministic
    /// and retrying them would just burn the backoff budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, BistError::WorkerPanic { .. })
    }
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::CaptureTooShort { reason } | BistError::NoMaskCoverage { reason } => {
                write!(f, "{reason}")
            }
            BistError::NonFiniteCapture {
                count,
                first_index,
                samples,
            } => write!(
                f,
                "capture contains {count} non-finite sample(s) (first at \
                 interleaved index {first_index} of {samples}) — glitched \
                 front end; verdict refused"
            ),
            BistError::SaturatedCapture {
                clip_fraction,
                max_clip_fraction,
            } => write!(
                f,
                "capture saturated: {:.3}% of samples at the ADC clip rails \
                 (policy limit {:.3}%); verdict refused",
                clip_fraction * 100.0,
                max_clip_fraction * 100.0
            ),
            BistError::DeadCapture { ac_rms, min_ac_rms } => write!(
                f,
                "capture dead: per-channel AC RMS {ac_rms:.3e} below \
                 {min_ac_rms:.3e} — no signal reached the ADC; verdict refused"
            ),
            BistError::UnknownStandard { name, known } => {
                write!(f, "unknown standard `{name}` — known standards: ")?;
                for (i, k) in known.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{k}`")?;
                }
                Ok(())
            }
            BistError::WorkerPanic { detail } => {
                write!(f, "streaming producer worker panicked: {detail}")
            }
            BistError::InvalidConfig { reason } => write!(f, "{reason}"),
            BistError::Checkpoint { reason } => {
                write!(f, "campaign checkpoint error: {reason}")
            }
            BistError::Wire { reason } => write!(f, "wire format error: {reason}"),
            BistError::Interrupted {
                completed_cells,
                total_cells,
            } => write!(
                f,
                "campaign interrupted after {completed_cells}/{total_cells} \
                 cells (completed cells are checkpointed)"
            ),
        }
    }
}

impl std::error::Error for BistError {}

impl From<StreamWorkerPanic> for BistError {
    fn from(p: StreamWorkerPanic) -> Self {
        BistError::WorkerPanic {
            detail: p.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_legacy_panic_phrases() {
        let e = BistError::CaptureTooShort {
            reason: "capture too short for the analysis grid".into(),
        };
        assert!(e.to_string().contains("capture too short"));
        let e = BistError::UnknownStandard {
            name: "dvb-t2".into(),
            known: vec!["gsm-like-270k".into(), "lte5-like".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown standard `dvb-t2`"));
        assert!(msg.contains("`gsm-like-270k`, `lte5-like`"));
    }

    #[test]
    fn only_worker_panics_are_transient() {
        assert!(BistError::WorkerPanic { detail: "x".into() }.is_transient());
        assert!(!BistError::InvalidConfig { reason: "x".into() }.is_transient());
        assert!(!BistError::DeadCapture {
            ac_rms: 0.0,
            min_ac_rms: 1e-6
        }
        .is_transient());
    }

    #[test]
    fn worker_panic_converts_from_the_sampling_type() {
        let p = StreamWorkerPanic {
            worker: 2,
            detail: "boom".into(),
        };
        let e: BistError = p.into();
        assert_eq!(
            e,
            BistError::WorkerPanic {
                detail: "stream producer worker 2 panicked: boom".into()
            }
        );
    }

    #[test]
    fn wire_errors_are_typed_and_not_transient() {
        let e = BistError::Wire {
            reason: "frame length 9000000 exceeds limit".into(),
        };
        assert!(e.to_string().starts_with("wire format error: "));
        assert!(e.to_string().contains("9000000"));
        assert!(!e.is_transient());
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(BistError::Checkpoint {
            reason: "truncated file".into(),
        });
        assert!(e.to_string().contains("checkpoint"));
    }
}
